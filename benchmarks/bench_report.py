"""Cold-path engine benchmark: cycle-skipping engine vs. naive stepper.

Times uncached (``REPRO_CACHE=0``) cycle-tier runs twice — once under the
cycle-skipping fast engine and once under the naive per-cycle stepper
(``REPRO_FAST=0``) — and emits ``BENCH_cycletier.json`` at the repo root
with wall-clock, simulated cycles/sec, skip fraction, and the fast-vs-naive
speedup per bench.

Equality is the contract: every bench compares its full result (cycle
counts, stats snapshots, experiment tables) between the two engines and
fails if they differ in any byte.  The memory-stall-heavy benches
(DRAM-resident pointer chase, and the Figure 4 interval sweep in the
paper's headline ``xui_kb_timer_tracking`` configuration) carry a >= 3x
speedup gate.  The dense compute benches (``count_loop_kb_timer``,
``memops_baseline``) carry the same gate since the macro-op trace tier
(``REPRO_MACRO``, see ``repro.cpu.macroop``) landed: a pipeline that is
busy every cycle has nothing to *skip*, but a steady-state loop body can
be *replayed* in O(1) per iteration.

Run directly (``PYTHONPATH=src python benchmarks/bench_report.py``) or via
pytest (``python -m pytest benchmarks/bench_report.py``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from contextlib import contextmanager
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.apps import microbench as mb
from repro.common.counters import ENV_FAST, ENV_MACRO, GLOBAL_COUNTERS
from repro.experiments import cycletier
from repro.experiments.fig4_overheads import run_interval_sweep
from repro.perf.cache import ENV_CACHE_ENABLED

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cycletier.json"

#: Payload schema: 2 added the ``meta`` block (git/host/engine provenance);
#: 3 added macro-tier telemetry per bench and gated the dense benches.
REPORT_SCHEMA = 3

#: Acceptance floor for the gated benches (stall-heavy via cycle skipping,
#: dense loops via macro-op replay).
GATED_SPEEDUP = 3.0

#: DRAM-resident pointer chase: 4096 nodes x 64 B = 256 KiB, past the L2,
#: so every hop is a long memory stall the fast engine can skip across.
PTR_NODES = 4096


def _pointer_chase() -> mb.Workload:
    return mb.make_pointer_chase(PTR_NODES, stride=64)


def _bench_pointer_chase_baseline() -> Any:
    result = cycletier.run_baseline(_pointer_chase())
    return {"cycles": result.cycles, "stats": dict(result.stats.__dict__)}


def _bench_pointer_chase_kb_timer() -> Any:
    result = cycletier.run_with_kb_timer(_pointer_chase(), interval=10_000)
    return {
        "cycles": result.cycles,
        "interrupts": result.interrupts_delivered,
        "stats": dict(result.stats.__dict__),
    }


def _bench_fig4_interval_sweep() -> Any:
    return run_interval_sweep(
        partial(mb.make_pointer_chase, PTR_NODES),
        intervals=[5_000, 10_000],
        configurations=["xui_kb_timer_tracking"],
        jobs=1,
    )


def _bench_count_loop_kb_timer() -> Any:
    result = cycletier.run_with_kb_timer(mb.make_count_loop(60_000), interval=5_000)
    return {
        "cycles": result.cycles,
        "interrupts": result.interrupts_delivered,
        "stats": dict(result.stats.__dict__),
    }


def _bench_memops_baseline() -> Any:
    # 6k iterations so the cache-warmup prefix (~3k cycles, during which
    # the pipeline picture is not yet periodic and the macro tier cannot
    # replay) is amortized and steady-state streaming dominates what the
    # dense gate measures.
    result = cycletier.run_baseline(mb.make_memops(iterations=6_000))
    return {"cycles": result.cycles, "stats": dict(result.stats.__dict__)}


#: (name, runner, gated): gated benches must clear :data:`GATED_SPEEDUP`.
BENCHES: Tuple[Tuple[str, Callable[[], Any], bool], ...] = (
    ("pointer_chase_baseline", _bench_pointer_chase_baseline, True),
    ("fig4_interval_sweep", _bench_fig4_interval_sweep, True),
    ("pointer_chase_kb_timer", _bench_pointer_chase_kb_timer, False),
    ("count_loop_kb_timer", _bench_count_loop_kb_timer, True),
    ("memops_baseline", _bench_memops_baseline, True),
)


@contextmanager
def _env(**overrides: str) -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _timed(fn: Callable[[], Any], repeats: int = 2) -> Tuple[Any, float, Dict[str, float]]:
    """Run ``fn`` cold ``repeats`` times; keep the best wall clock.

    Best-of-N because the container these run in is shared: a single timing
    can be off by 2x from scheduler noise, and the engines are compared by
    ratio."""
    g = GLOBAL_COUNTERS
    result = None
    elapsed = float("inf")
    telemetry: Dict[str, float] = {}
    for _ in range(repeats):
        g.reset()
        start = time.perf_counter()
        result = fn()
        this_time = time.perf_counter() - start
        if this_time < elapsed:
            elapsed = this_time
            telemetry = {
                "simulated_cycles": g.cycles_stepped
                + g.cycles_skipped
                + g.macro_replayed_cycles,
                "skip_fraction": g.skip_fraction,
                "macro_replayed_fraction": g.macro_replayed_fraction,
                "macro_formations": g.macro_formations,
                "macro_replays": g.macro_replays,
            }
    return result, elapsed, telemetry


def _git(*argv: str) -> Optional[str]:
    try:
        out = subprocess.run(
            ("git", *argv),
            cwd=REPORT_PATH.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def run_metadata() -> Dict[str, Any]:
    """Machine-readable provenance: which code, host, and engine ran this.

    A baseline number without its git sha and engine flags cannot be
    compared honestly; the gate (``repro bench-gate``) reads this block to
    annotate its verdicts.
    """
    status = _git("status", "--porcelain")
    return {
        "git_sha": _git("rev-parse", "HEAD"),
        "git_dirty": bool(status) if status is not None else None,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "engine_flags": {
            ENV_FAST: os.environ.get(ENV_FAST),
            ENV_MACRO: os.environ.get(ENV_MACRO),
            ENV_CACHE_ENABLED: os.environ.get(ENV_CACHE_ENABLED),
        },
        "created_unix": int(time.time()),
    }


def run_report(
    report: Callable[[str], None] = print,
    out_path: Optional[Path] = REPORT_PATH,
    only: Optional[set] = None,
) -> Dict[str, Any]:
    """Run every bench fast + naive; write and return the report payload.

    ``out_path=None`` skips the write — the perf gate runs a fresh report
    for comparison without clobbering the committed baseline.  ``only``
    restricts the run to a subset of bench names (the CI dense-bench smoke
    job runs just the two macro-tier benches); a subset report should be
    written somewhere other than the committed baseline path.
    """
    if only is not None:
        known = {name for name, _, _ in BENCHES}
        unknown = sorted(only - known)
        if unknown:
            raise SystemExit(f"unknown bench name(s): {', '.join(unknown)}")
    benches: Dict[str, Any] = {}
    ok = True
    for name, runner, gated in BENCHES:
        if only is not None and name not in only:
            continue
        report(f"{name}: fast engine (cycle skip + macro replay)...")
        with _env(**{ENV_CACHE_ENABLED: "0", ENV_FAST: "1", ENV_MACRO: "1"}):
            fast, t_fast, fast_counters = _timed(runner)
        report(
            f"  {t_fast:.2f}s ({fast_counters['skip_fraction']:.0%} cycles skipped, "
            f"{fast_counters['macro_replayed_fraction']:.0%} macro-replayed)"
        )
        report(f"{name}: naive stepper (REPRO_FAST=0)...")
        with _env(**{ENV_CACHE_ENABLED: "0", ENV_FAST: "0", ENV_MACRO: "0"}):
            naive, t_naive, naive_counters = _timed(runner)
        report(f"  {t_naive:.2f}s")

        equal = fast == naive
        speedup = t_naive / t_fast if t_fast > 0 else float("inf")
        cycles = naive_counters["simulated_cycles"]
        entry = {
            "gated": gated,
            "results_identical": equal,
            "wall_fast_s": round(t_fast, 4),
            "wall_naive_s": round(t_naive, 4),
            "speedup": round(speedup, 2),
            "simulated_cycles": cycles,
            "cycles_per_sec_fast": round(cycles / t_fast) if t_fast > 0 else None,
            "cycles_per_sec_naive": round(cycles / t_naive) if t_naive > 0 else None,
            "skip_fraction": round(fast_counters["skip_fraction"], 4),
            "macro_replayed_fraction": round(
                fast_counters["macro_replayed_fraction"], 4
            ),
            "macro_formations": fast_counters["macro_formations"],
            "macro_replays": fast_counters["macro_replays"],
        }
        benches[name] = entry
        if not equal:
            ok = False
            report(f"  FAIL  {name}: fast and naive results differ")
        elif gated and speedup < GATED_SPEEDUP:
            ok = False
            report(f"  FAIL  {name}: {speedup:.2f}x < {GATED_SPEEDUP}x gate")
        else:
            gate = f" (gate >= {GATED_SPEEDUP}x)" if gated else ""
            report(f"  PASS  {name}: {speedup:.2f}x, results identical{gate}")

    payload = {
        "report": "cold cycle-tier runs, cycle-skipping engine vs naive stepper",
        "schema": REPORT_SCHEMA,
        "meta": run_metadata(),
        "gate_speedup": GATED_SPEEDUP,
        "ok": ok,
        "benches": benches,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        report(f"wrote {out_path}")
    return payload


def test_cold_engine_report():
    """Pytest entry: the full report, asserting equality plus gated speedups."""
    payload = run_report()
    assert payload["ok"], json.dumps(payload["benches"], indent=2)


def _main(argv: list) -> int:
    """``bench_report.py [BENCH ...] [--out PATH]`` — subset runs for CI."""
    out_path: Optional[Path] = REPORT_PATH
    names = []
    it = iter(argv)
    for arg in it:
        if arg == "--out":
            out_path = Path(next(it, "") or REPORT_PATH)
        else:
            names.append(arg)
    only = set(names) if names else None
    if only is not None and out_path == REPORT_PATH:
        out_path = None  # never clobber the committed baseline with a subset
    return 0 if run_report(out_path=out_path, only=only)["ok"] else 1


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
