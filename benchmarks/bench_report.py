"""Cold-path engine benchmark: cycle-skipping engine vs. naive stepper.

Times uncached (``REPRO_CACHE=0``) cycle-tier runs twice — once under the
cycle-skipping fast engine and once under the naive per-cycle stepper
(``REPRO_FAST=0``) — and emits ``BENCH_cycletier.json`` at the repo root
with wall-clock, simulated cycles/sec, skip fraction, and the fast-vs-naive
speedup per bench.

Equality is the contract: every bench compares its full result (cycle
counts, stats snapshots, experiment tables) between the two engines and
fails if they differ in any byte.  The memory-stall-heavy benches
(DRAM-resident pointer chase, and the Figure 4 interval sweep in the
paper's headline ``xui_kb_timer_tracking`` configuration) carry a >= 3x
speedup gate.  The dense compute benches (``count_loop_kb_timer``,
``memops_baseline``) carry the same gate since the macro-op trace tier
(``REPRO_MACRO``, see ``repro.cpu.macroop``) landed: a pipeline that is
busy every cycle has nothing to *skip*, but a steady-state loop body can
be *replayed* in O(1) per iteration.

Run directly (``PYTHONPATH=src python benchmarks/bench_report.py``) or via
pytest (``python -m pytest benchmarks/bench_report.py``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from contextlib import contextmanager
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.apps import microbench as mb
from repro.common.counters import ENV_BATCH, ENV_FAST, ENV_MACRO, GLOBAL_COUNTERS
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.experiments import cycletier
from repro.experiments.fig4_overheads import run_interval_sweep
from repro.perf.cache import ENV_CACHE_ENABLED

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cycletier.json"

#: Payload schema: 2 added the ``meta`` block (git/host/engine provenance);
#: 3 added macro-tier telemetry per bench and gated the dense benches;
#: 4 added the many-core batch-stepper benches (three-legged: batch vs
#: scalar-fast vs naive, with ``wall_scalar_s``/``batch_speedup`` rows) and
#: per-bench batch-tier telemetry.
REPORT_SCHEMA = 4

#: Acceptance floor for the gated benches (stall-heavy via cycle skipping,
#: dense loops via macro-op replay).
GATED_SPEEDUP = 3.0

#: DRAM-resident pointer chase: 4096 nodes x 64 B = 256 KiB, past the L2,
#: so every hop is a long memory stall the fast engine can skip across.
PTR_NODES = 4096

#: Hops per loop iteration in the many-core chases: one serial dependence
#: chain, so the loop-control busy burst is amortized over ``CHASE_UNROLL``
#: full-latency stalls and the worker pipelines are quiescent >98% of the
#: time — the regime the batch stepper's idle lanes are built for.
CHASE_UNROLL = 16


def _pointer_chase() -> mb.Workload:
    return mb.make_pointer_chase(PTR_NODES, stride=64)


def _bench_pointer_chase_baseline() -> Any:
    result = cycletier.run_baseline(_pointer_chase())
    return {"cycles": result.cycles, "stats": dict(result.stats.__dict__)}


def _bench_pointer_chase_kb_timer() -> Any:
    result = cycletier.run_with_kb_timer(_pointer_chase(), interval=10_000)
    return {
        "cycles": result.cycles,
        "interrupts": result.interrupts_delivered,
        "stats": dict(result.stats.__dict__),
    }


def _bench_fig4_interval_sweep() -> Any:
    return run_interval_sweep(
        partial(mb.make_pointer_chase, PTR_NODES),
        intervals=[5_000, 10_000],
        configurations=["xui_kb_timer_tracking"],
        jobs=1,
    )


def _bench_count_loop_kb_timer() -> Any:
    result = cycletier.run_with_kb_timer(mb.make_count_loop(60_000), interval=5_000)
    return {
        "cycles": result.cycles,
        "interrupts": result.interrupts_delivered,
        "stats": dict(result.stats.__dict__),
    }


def _bench_memops_baseline() -> Any:
    # 6k iterations so the cache-warmup prefix (~3k cycles, during which
    # the pipeline picture is not yet periodic and the macro tier cannot
    # replay) is amortized and steady-state streaming dominates what the
    # dense gate measures.
    result = cycletier.run_baseline(mb.make_memops(iterations=6_000))
    return {"cycles": result.cycles, "stats": dict(result.stats.__dict__)}


def _many_core_payload(system: MultiCoreSystem) -> Any:
    return {
        "cycles": system.cycle,
        "stats": [dict(c.stats.snapshot().__dict__) for c in system.cores],
        "apics": [apic.counters_as_dict() for apic in system.apics],
    }


def _bench_fig7_rocksdb_16core() -> Any:
    """Figure 7's shape at the cycle tier: a preempted RocksDB-ish worker.

    Core 0 runs a DRAM-resident pointer chase and takes preemption UIPIs
    from core 1, the paper's dedicated timer core (§5.3, short quantum so
    the sender's dense rdtsc spin stays a sliver of the run — the bench
    measures the stepper over the stalled workers, not the spin loop);
    cores 2-15 are worker tenants on the same chase with staggered per-core
    KB timers.  The naive stepper walks all 16 pipelines every cycle; the
    batch stepper keeps the stalled workers in idle lanes and visits only
    the active run list.  Delivery is flush everywhere: a tracked delivery
    into a dependent-load chain busy-waits the whole in-flight window
    (§6.1), which measures the delivery strategy rather than the stepper —
    the tracked cells live in the equality suite, not the perf gate.
    """
    worker_cores = 14
    workloads = [
        mb.make_pointer_chase(PTR_NODES, stride=64, iterations=60, unroll=CHASE_UNROLL)
    ]
    sender = mb.make_uipi_timer_core(1_500, 2)
    programs = [workloads[0].program, sender.program]
    strategies = [FlushStrategy(), FlushStrategy()]
    for k in range(worker_cores):
        chase = mb.make_pointer_chase(
            PTR_NODES, stride=64, iterations=60 + k, unroll=CHASE_UNROLL
        )
        workloads.append(chase)
        programs.append(chase.program)
        strategies.append(FlushStrategy())
    system = MultiCoreSystem(programs, strategies)
    for workload in workloads:
        workload.install(system.shared)
    system.connect_uipi(sender_core_id=1, receiver_core_id=0, user_vector=1)
    system.enable_kb_timer(0)
    system.cores[0].uintr.kb_timer.arm_periodic(7_500, now=0)
    for k in range(worker_cores):
        core_id = 2 + k
        system.enable_kb_timer(core_id)
        system.cores[core_id].uintr.kb_timer.arm_periodic(25_000 + 311 * k, now=0)
    halt_ids = [0] + list(range(2, 2 + worker_cores))
    system.run(400_000, until_halted=halt_ids)
    return _many_core_payload(system)


def _bench_l3fwd_8core_sweep() -> Any:
    """Figure 8's shape at the cycle tier: forwarded device interrupts.

    Eight cores run the pointer chase with device-interrupt forwarding
    enabled (§4.5) while two NIC rate classes — a fast queue on cores 0-3,
    a slow queue on cores 4-7 — raise pre-scheduled device interrupts.
    Every interrupt carries a core hint, so the batch stepper wakes exactly
    the destination lane (targeted invalidation) instead of re-scanning all
    eight cores.
    """
    n = 8
    workloads = []
    programs = []
    strategies = []
    for k in range(n):
        chase = mb.make_pointer_chase(
            PTR_NODES, stride=64, iterations=80 + 2 * k, unroll=CHASE_UNROLL
        )
        workloads.append(chase)
        programs.append(chase.program)
        strategies.append(FlushStrategy())
    system = MultiCoreSystem(programs, strategies)
    for workload in workloads:
        workload.install(system.shared)
    for k in range(n):
        system.enable_forwarding(k, vector=0x30 + k, user_vector=3)
        interval = 4_000 if k < 4 else 9_000
        for shot in range(18 if k < 4 else 8):
            system.raise_device_interrupt(
                k, 0x30 + k, delay=1_000 + 173 * k + shot * interval
            )
    system.run(400_000, until_halted=list(range(n)))
    return _many_core_payload(system)


#: (name, runner, gated): gated benches must clear :data:`GATED_SPEEDUP`.
BENCHES: Tuple[Tuple[str, Callable[[], Any], bool], ...] = (
    ("pointer_chase_baseline", _bench_pointer_chase_baseline, True),
    ("fig4_interval_sweep", _bench_fig4_interval_sweep, True),
    ("pointer_chase_kb_timer", _bench_pointer_chase_kb_timer, False),
    ("count_loop_kb_timer", _bench_count_loop_kb_timer, True),
    ("memops_baseline", _bench_memops_baseline, True),
    ("fig7_rocksdb_16core", _bench_fig7_rocksdb_16core, True),
    ("l3fwd_8core_sweep", _bench_l3fwd_8core_sweep, True),
)

#: Many-core benches get a third leg (scalar fast loop, ``REPRO_BATCH=0``)
#: so the report can attribute the win: ``speedup`` is batch vs naive (the
#: gated number) and ``batch_speedup`` is batch vs the scalar fast loop.
MANY_CORE_BENCHES = frozenset({"fig7_rocksdb_16core", "l3fwd_8core_sweep"})


@contextmanager
def _env(**overrides: str) -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _timed(fn: Callable[[], Any], repeats: int = 2) -> Tuple[Any, float, Dict[str, float]]:
    """Run ``fn`` cold ``repeats`` times; keep the best wall clock.

    Best-of-N because the container these run in is shared: a single timing
    can be off by 2x from scheduler noise, and the engines are compared by
    ratio."""
    g = GLOBAL_COUNTERS
    result = None
    elapsed = float("inf")
    telemetry: Dict[str, float] = {}
    for _ in range(repeats):
        g.reset()
        start = time.perf_counter()
        result = fn()
        this_time = time.perf_counter() - start
        if this_time < elapsed:
            elapsed = this_time
            telemetry = {
                "simulated_cycles": g.cycles_stepped
                + g.cycles_skipped
                + g.macro_replayed_cycles,
                "skip_fraction": g.skip_fraction,
                "macro_replayed_fraction": g.macro_replayed_fraction,
                "macro_formations": g.macro_formations,
                "macro_replays": g.macro_replays,
                "batch_group_jumps": g.batch_group_jumps,
                "batch_idle_transitions": g.batch_idle_transitions,
                "batch_targeted_invalidations": g.batch_targeted_invalidations,
            }
    return result, elapsed, telemetry


def _git(*argv: str) -> Optional[str]:
    try:
        out = subprocess.run(
            ("git", *argv),
            cwd=REPORT_PATH.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def run_metadata() -> Dict[str, Any]:
    """Machine-readable provenance: which code, host, and engine ran this.

    A baseline number without its git sha and engine flags cannot be
    compared honestly; the gate (``repro bench-gate``) reads this block to
    annotate its verdicts.
    """
    status = _git("status", "--porcelain")
    return {
        "git_sha": _git("rev-parse", "HEAD"),
        "git_dirty": bool(status) if status is not None else None,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "engine_flags": {
            ENV_FAST: os.environ.get(ENV_FAST),
            ENV_MACRO: os.environ.get(ENV_MACRO),
            ENV_BATCH: os.environ.get(ENV_BATCH),
            ENV_CACHE_ENABLED: os.environ.get(ENV_CACHE_ENABLED),
        },
        "created_unix": int(time.time()),
    }


def run_report(
    report: Callable[[str], None] = print,
    out_path: Optional[Path] = REPORT_PATH,
    only: Optional[set] = None,
) -> Dict[str, Any]:
    """Run every bench fast + naive; write and return the report payload.

    ``out_path=None`` skips the write — the perf gate runs a fresh report
    for comparison without clobbering the committed baseline.  ``only``
    restricts the run to a subset of bench names (the CI dense-bench smoke
    job runs just the two macro-tier benches); a subset report should be
    written somewhere other than the committed baseline path.
    """
    if only is not None:
        known = {name for name, _, _ in BENCHES}
        unknown = sorted(only - known)
        if unknown:
            raise SystemExit(f"unknown bench name(s): {', '.join(unknown)}")
    benches: Dict[str, Any] = {}
    ok = True
    for name, runner, gated in BENCHES:
        if only is not None and name not in only:
            continue
        report(f"{name}: fast engine (cycle skip + macro replay + batch)...")
        with _env(
            **{ENV_CACHE_ENABLED: "0", ENV_FAST: "1", ENV_MACRO: "1", ENV_BATCH: "1"}
        ):
            fast, t_fast, fast_counters = _timed(runner)
        report(
            f"  {t_fast:.2f}s ({fast_counters['skip_fraction']:.0%} cycles skipped, "
            f"{fast_counters['macro_replayed_fraction']:.0%} macro-replayed)"
        )
        report(f"{name}: naive stepper (REPRO_FAST=0)...")
        with _env(**{ENV_CACHE_ENABLED: "0", ENV_FAST: "0", ENV_MACRO: "0"}):
            naive, t_naive, naive_counters = _timed(runner)
        report(f"  {t_naive:.2f}s")

        equal = fast == naive
        t_scalar = None
        if name in MANY_CORE_BENCHES:
            # Third leg: the scalar fast loop, to attribute the batch win.
            report(f"{name}: scalar fast loop (REPRO_BATCH=0)...")
            with _env(
                **{ENV_CACHE_ENABLED: "0", ENV_FAST: "1", ENV_MACRO: "1", ENV_BATCH: "0"}
            ):
                scalar, t_scalar, _ = _timed(runner)
            report(f"  {t_scalar:.2f}s")
            equal = equal and scalar == naive
        speedup = t_naive / t_fast if t_fast > 0 else float("inf")
        cycles = naive_counters["simulated_cycles"]
        entry = {
            "gated": gated,
            "results_identical": equal,
            "wall_fast_s": round(t_fast, 4),
            "wall_naive_s": round(t_naive, 4),
            "speedup": round(speedup, 2),
            "simulated_cycles": cycles,
            "cycles_per_sec_fast": round(cycles / t_fast) if t_fast > 0 else None,
            "cycles_per_sec_naive": round(cycles / t_naive) if t_naive > 0 else None,
            "skip_fraction": round(fast_counters["skip_fraction"], 4),
            "macro_replayed_fraction": round(
                fast_counters["macro_replayed_fraction"], 4
            ),
            "macro_formations": fast_counters["macro_formations"],
            "macro_replays": fast_counters["macro_replays"],
            "batch_group_jumps": fast_counters["batch_group_jumps"],
            "batch_idle_transitions": fast_counters["batch_idle_transitions"],
            "batch_targeted_invalidations": fast_counters[
                "batch_targeted_invalidations"
            ],
        }
        if t_scalar is not None:
            entry["wall_scalar_s"] = round(t_scalar, 4)
            entry["batch_speedup"] = (
                round(t_scalar / t_fast, 2) if t_fast > 0 else None
            )
        benches[name] = entry
        if not equal:
            ok = False
            report(f"  FAIL  {name}: fast and naive results differ")
        elif gated and speedup < GATED_SPEEDUP:
            ok = False
            report(f"  FAIL  {name}: {speedup:.2f}x < {GATED_SPEEDUP}x gate")
        else:
            gate = f" (gate >= {GATED_SPEEDUP}x)" if gated else ""
            report(f"  PASS  {name}: {speedup:.2f}x, results identical{gate}")

    payload = {
        "report": "cold cycle-tier runs, cycle-skipping engine vs naive stepper",
        "schema": REPORT_SCHEMA,
        "meta": run_metadata(),
        "gate_speedup": GATED_SPEEDUP,
        "ok": ok,
        "benches": benches,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        report(f"wrote {out_path}")
    return payload


def test_cold_engine_report():
    """Pytest entry: the full report, asserting equality plus gated speedups."""
    payload = run_report()
    assert payload["ok"], json.dumps(payload["benches"], indent=2)


def _main(argv: list) -> int:
    """``bench_report.py [BENCH ...] [--out PATH]`` — subset runs for CI."""
    out_path: Optional[Path] = REPORT_PATH
    names = []
    it = iter(argv)
    for arg in it:
        if arg == "--out":
            out_path = Path(next(it, "") or REPORT_PATH)
        else:
            names.append(arg)
    only = set(names) if names else None
    if only is not None and out_path == REPORT_PATH:
        out_path = None  # never clobber the committed baseline with a subset
    return 0 if run_report(out_path=out_path, only=only)["ok"] else 1


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
