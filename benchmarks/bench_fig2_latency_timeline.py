"""Figure 2: the UIPI latency timeline.

Paper:  senduipi -> receiver interrupted at ~380 cy; ~424 cy to the first
        observable notification event; notification+delivery >= 262 cy;
        uiret ~10 cy.
"""

from repro.analysis.tables import format_table
from repro.experiments.characterize import run_fig2_timeline

PAPER_SEGMENTS = {
    "send_to_interrupt": 380.0,
    "interrupt_to_first_notif_event": 424.0,
    "notification_and_delivery": 262.0,
    "uiret": 10.0,
    "end_to_end": 1360.0,
}


def test_fig2_latency_timeline(once):
    timeline = once(run_fig2_timeline)
    print()
    rows = [
        [segment, PAPER_SEGMENTS[segment], timeline[segment]]
        for segment in PAPER_SEGMENTS
    ]
    print(
        format_table(
            ["timeline segment", "paper (cy)", "measured (cy)"],
            rows,
            title="Figure 2: UIPI latency timeline",
        )
    )
    # Ordering invariants of the timeline.
    assert timeline["icr_write_offset"] < timeline["send_to_interrupt"]
    assert timeline["send_to_interrupt"] < timeline["end_to_end"]
    assert timeline["uiret"] < 40
