"""Figure 9: latency and efficiency of DSA response delivery.

Paper: busy-spin = minimum latency, zero free cycles; periodic polling
frees cycles but its latency rises sharply with response-time noise (20 us
class); xUI stays within ~0.2 us of spinning while freeing most of the core
(~75% for noiseless 2 us requests; negligible CPU at 50K IOPS).
"""

from repro.analysis.tables import format_table
from repro.experiments.fig9_dsa import MECHANISMS, run_fig9


def test_fig9_dsa_notification(once):
    noises = [0.0, 0.5, 1.0]
    results = once(
        run_fig9,
        request_classes_us=[2.0, 20.0],
        noise_fractions=noises,
        duration_seconds=0.01,
    )
    print()
    for request_us, by_mechanism in results.items():
        rows = []
        for mechanism in MECHANISMS:
            for point in by_mechanism[mechanism]:
                rows.append(
                    [
                        mechanism,
                        point.noise_fraction,
                        point.mean_notification_lag_us,
                        point.free_fraction,
                        point.ipos,
                    ]
                )
        print(
            format_table(
                ["mechanism", "noise", "lag us", "free frac", "IOPS"],
                rows,
                title=f"Figure 9: DSA completions, {request_us:.0f} us request class",
                precision=2,
            )
        )
        print()
    for request_us, by_mechanism in results.items():
        spin = by_mechanism["busy_spin"]
        poll = by_mechanism["periodic_poll"]
        xui = by_mechanism["xui"]
        # Busy spin: no free cycles, minimal lag.
        assert all(p.free_fraction == 0.0 for p in spin)
        # xUI: lag flat in noise and within ~0.2 us of spinning.
        lags = [p.mean_notification_lag_us for p in xui]
        assert max(lags) - min(lags) < 0.05
        assert all(lag <= spin_point.mean_notification_lag_us + 0.2 for lag, spin_point in zip(lags, spin))
    # Periodic polling: latency rises sharply with noise for 20 us requests.
    poll_20 = results[20.0]["periodic_poll"]
    assert poll_20[-1].mean_notification_lag_us > poll_20[0].mean_notification_lag_us + 1.0
    # 2 us xUI anchor: most of the core freed (paper: ~75%).
    xui_2us = results[2.0]["xui"][0]
    print(f"free cycles, 2 us class, no noise: {100 * xui_2us.free_fraction:.0f}% (paper: ~75%)")
    assert xui_2us.free_fraction >= 0.65
