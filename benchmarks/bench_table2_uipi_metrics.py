"""Table 2: key performance metrics of UIPIs.

Paper row:      e2e 1360 cy | receiver 720 cy | senduipi 383 | clui 2 | stui 32
Reproduction:   measured on the cycle tier (flush-based UIPI receive).
"""

from repro.analysis.tables import format_paper_comparison
from repro.experiments.characterize import run_table2


def test_table2_uipi_metrics(once):
    rows = once(run_table2, quick=True)
    print()
    print(format_paper_comparison(rows, title="Table 2: UIPI key metrics (cycles @2GHz)"))
    # The reproduction bands (±50% here; tighter bands live in the tests).
    assert 0.4 <= rows["senduipi"]["measured"] / rows["senduipi"]["paper"] <= 1.6
    assert rows["clui"]["measured"] < rows["stui"]["measured"]
    assert rows["uipi_receive_flush"]["measured"] > 300
