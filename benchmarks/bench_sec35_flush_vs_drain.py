"""§3.5: the two experiments that fingerprint the flush strategy.

1. End-to-end UIPI latency vs. pointer-chase footprint: flat under flush,
   growing under drain (the paper used this to show Sapphire Rapids flushes).
2. Flushed micro-ops grow exactly linearly with interrupts received.
"""

from repro.analysis.tables import format_series, format_table
from repro.experiments.characterize import run_flush_vs_drain, run_flushed_uops_linearity


def test_sec35_flush_vs_drain_latency(once):
    results = once(run_flush_vs_drain, footprints_kb=[16, 64, 256], samples=4)
    print()
    print(
        format_series(
            results,
            x_label="footprint_kb",
            y_label="delivery latency cy",
            title="§3.5 exp 1: latency vs. in-flight memory work",
        )
    )
    flush = results["flush"]
    drain = results["drain"]
    spread = max(flush.values()) - min(flush.values())
    assert spread <= 0.3 * max(flush.values())  # flush: flat
    assert drain[256] > drain[16]  # drain: grows


def test_sec35_flushed_uops_linearity(once):
    results = once(run_flushed_uops_linearity, interrupt_counts=[2, 4, 8])
    print()
    rows = [[count, squashed, squashed / count] for count, squashed in sorted(results.items())]
    print(
        format_table(
            ["interrupts", "flushed uops", "uops/interrupt"],
            rows,
            title="§3.5 exp 2: flushed micro-ops scale linearly",
        )
    )
    per = [squashed / count for count, squashed in results.items()]
    assert max(per) - min(per) <= 0.25 * max(per)
