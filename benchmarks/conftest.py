"""Benchmark harness configuration.

Each benchmark module regenerates one table or figure of the paper.  The
experiment runners are deterministic and long-running, so every benchmark
executes exactly once (``rounds=1``) and prints its table — run with ``-s``
(or read the captured output) to see the paper-shaped results.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
