"""§6.1: maximum interrupt latency — the pathological stack-pointer chain.

Paper: with 50+ long-latency loads feeding the stack pointer, tracked
delivery can take ~7000 cycles worst case; Intel's flush strategy is an
order of magnitude lower (it squashes the chain).
"""

from repro.analysis.tables import format_series
from repro.experiments.characterize import run_max_latency


def test_sec61_max_latency(once):
    results = once(run_max_latency, chain_lengths=[10, 50])
    print()
    print(
        format_series(
            results,
            x_label="chain length (missing loads)",
            y_label="worst-case delivery cy",
            title="§6.1: worst-case interrupt latency, SP-dependent miss chain",
        )
    )
    tracked_50 = results["tracked"][50]
    flush_50 = results["flush"][50]
    print(
        f"\ntracked worst case at chain 50: {tracked_50:,.0f} cy (paper: ~7000); "
        f"flush: {flush_50:,.0f} cy (paper: ~10x lower)"
    )
    assert tracked_50 > 4000
    assert flush_50 * 5 < tracked_50
    assert results["tracked"][50] > results["tracked"][10]
