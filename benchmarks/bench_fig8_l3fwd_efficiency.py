"""Figure 8: l3fwd efficiency — polling vs. xUI device interrupts.

Paper: throughput within ~0.1% of polling; p95 latency within +2%/-8%/+65%
for 1/4/8 NICs; polling burns every cycle while xUI frees the unused
fraction (100% at idle, ~45% at 40% load with one queue).
"""

from repro.analysis.tables import format_table
from repro.experiments.fig8_l3fwd import run_fig8


def test_fig8_l3fwd_efficiency(once):
    nic_counts = [1, 2, 4, 8]
    loads = [0.0, 0.2, 0.4, 0.6]
    results = once(
        run_fig8, nic_counts=nic_counts, load_fractions=loads, duration_seconds=0.01
    )
    print()
    rows = []
    for mechanism, by_nics in results.items():
        for nics, points in by_nics.items():
            for point in points:
                rows.append(
                    [
                        mechanism,
                        nics,
                        point.offered_load,
                        point.free_fraction,
                        point.networking_fraction,
                        point.p95_latency_us,
                        point.achieved_pps,
                    ]
                )
    print(
        format_table(
            ["mechanism", "nics", "load", "free frac", "net frac", "p95 us", "pps"],
            rows,
            title="Figure 8: l3fwd free cycles and latency (LPM router)",
            precision=2,
        )
    )
    poll = results["polling"]
    xui = results["xui_device"]
    # Polling never frees a cycle; xUI frees everything at idle.
    assert all(p.free_fraction == 0.0 for pts in poll.values() for p in pts)
    assert all(pts[0].free_fraction == 1.0 for pts in xui.values())
    # Paper anchor: ~45% free at 40% load with 1 queue.
    at_40 = next(p for p in xui[1] if p.offered_load == 0.4)
    print(f"\nfree cycles @40% load, 1 queue: {100 * at_40.free_fraction:.0f}% (paper: 45%)")
    assert 0.30 <= at_40.free_fraction <= 0.60
    # Throughput parity at matched load.
    for nics in nic_counts:
        for poll_point, xui_point in zip(poll[nics][1:], xui[nics][1:]):
            assert abs(xui_point.achieved_pps - poll_point.achieved_pps) <= (
                0.02 * max(poll_point.achieved_pps, 1.0)
            )
    # p95 comparison table (paper: +2% / -8% / +65% for 1/4/8 NICs).
    print()
    comparison = []
    for nics in nic_counts:
        poll_p95 = next(p for p in poll[nics] if p.offered_load == 0.4).p95_latency_us
        xui_p95 = next(p for p in xui[nics] if p.offered_load == 0.4).p95_latency_us
        comparison.append([nics, poll_p95, xui_p95, 100 * (xui_p95 / poll_p95 - 1)])
    print(
        format_table(
            ["nics", "polling p95 us", "xui p95 us", "delta %"],
            comparison,
            title="p95 latency at 40% load (paper deltas: +2/-8/+65% @1/4/8 NICs)",
        )
    )
