"""Figure 7: RocksDB throughput/tail latency under preemptive scheduling.

Paper: without preemption the GET tail is hundreds of microseconds even at
low load; UIPI preemption at 5 us sustains >100k req/s with low GET tails;
xUI adds ~10% GET throughput over UIPI (and frees the timer core).
"""

from repro.analysis.tables import format_table
from repro.experiments.fig7_rocksdb import (
    CONFIGURATIONS,
    max_throughput_under_slo,
    run_fig7,
)


def test_fig7_rocksdb_preemption(once):
    loads = [20_000, 100_000, 180_000, 215_000, 235_000]
    results = once(run_fig7, loads_rps=loads, duration_seconds=0.15)
    print()
    rows = []
    for configuration in CONFIGURATIONS:
        for point in results[configuration]:
            rows.append(
                [
                    configuration,
                    point.offered_rps,
                    point.achieved_rps,
                    point.get_p999_us,
                    point.scan_p999_us,
                ]
            )
    print(
        format_table(
            ["config", "offered rps", "achieved rps", "GET p99.9 us", "SCAN p99.9 us"],
            rows,
            title="Figure 7: RocksDB on Aspen (99.5% GET / 0.5% SCAN, 5 us quantum)",
        )
    )
    no_preempt = results["no_preempt"]
    uipi = results["uipi"]
    xui = results["xui"]
    # Shape 1: no preemption -> terrible GET tails even at 20k rps.
    assert no_preempt[0].get_p999_us > 200
    # Shape 2: preemption sustains low GET tails past 100k rps (paper).
    assert uipi[1].get_p999_us < 100
    # Shape 3: xUI tails beat UIPI at high load (lower per-event overhead).
    assert xui[-1].get_p999_us < uipi[-1].get_p999_us
    slo = 200.0  # us — a tail target that separates the knees at this scale
    uipi_cap = max_throughput_under_slo(uipi, slo_us=slo)
    xui_cap = max_throughput_under_slo(xui, slo_us=slo)
    print(
        f"\nthroughput under a {slo:.0f} us GET p99.9 SLO: uipi={uipi_cap:,.0f} "
        f"xui={xui_cap:,.0f} (+{100 * (xui_cap / max(uipi_cap, 1) - 1):.1f}%; paper: +10%)"
    )
    print("(xUI additionally frees the dedicated timer core UIPI requires)")
    assert xui_cap >= uipi_cap
