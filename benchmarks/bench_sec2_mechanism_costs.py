"""§2/§4.4: unit costs of the notification mechanisms the paper motivates.

Paper: signals ~2.4 us (1.4 us kernel); UIPI 3-5x cheaper than signals but
6-9x more than ~100-cycle memory polling; a clui/stui pair costs ~34 cycles
(enough to tax a guarded malloc by ~7%).
"""

from repro.analysis.tables import format_paper_comparison, format_table
from repro.experiments.sec2_costs import run_critical_section_penalty, run_mechanism_costs


def test_sec2_mechanism_costs(once):
    rows = once(run_mechanism_costs, quick=True)
    print()
    print(
        format_paper_comparison(
            rows, title="§2: per-event mechanism costs (cycles @2GHz)"
        )
    )
    signal = rows["signal_delivery"]["measured"]
    uipi = rows["uipi_receive"]["measured"]
    poll = rows["polling_notify"]["measured"]
    print(
        f"\nsignal/UIPI = {signal / uipi:.1f}x (paper: 3-5x); "
        f"UIPI/polling = {uipi / poll:.1f}x (paper: 6-9x)"
    )
    assert 2.0 <= signal / uipi <= 12.0
    assert 3.0 <= uipi / poll <= 12.0


def test_sec44_clui_stui_critical_section(once):
    result = once(run_critical_section_penalty, iterations=3_000)
    print()
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in result.items()],
            title="§4.4: clui/stui pair around a malloc-sized critical section",
        )
    )
    # The pair costs ~34 cycles (Table 2: 2 + 32) and the slowdown is a
    # noticeable single-digit-plus percentage (paper: 7% on RocksDB).
    assert 20 <= result["pair_cost_cycles"] <= 60
    assert result["slowdown_percent"] > 3.0
