"""Figure 4: receiver-side overheads of periodic interrupts (5 us interval).

Paper: per-event cost 645 cy (UIPI SW timer) -> 231 (xUI SW timer+tracking)
-> 105 (xUI KB timer+tracking); total overhead drops ~6.9x.
"""

from repro.analysis.tables import format_series, format_table
from repro.apps import microbench as mb
from repro.experiments.fig4_overheads import (
    CONFIGURATIONS,
    PAPER_PER_EVENT,
    run_fig4,
    run_interval_sweep,
    summarize_per_event,
)


def _benchmarks():
    return {
        "fib": lambda: mb.make_fib(n=17),
        "linpack": lambda: mb.make_linpack(iterations=20_000),
        "memops": lambda: mb.make_memops(iterations=20_000),
    }


def test_fig4_receiver_overheads(once):
    results = once(run_fig4, benchmarks=_benchmarks())
    print()
    rows = []
    for bench, cells in results.items():
        for configuration in CONFIGURATIONS:
            cell = cells[configuration]
            rows.append(
                [
                    bench,
                    configuration,
                    cell["per_event_cycles"],
                    cell["overhead_percent"],
                    PAPER_PER_EVENT[configuration],
                ]
            )
    print(
        format_table(
            ["benchmark", "configuration", "cy/event", "overhead %", "paper cy/event"],
            rows,
            title="Figure 4: receiver overheads at a 5 us interrupt interval",
        )
    )
    summary = summarize_per_event(results)
    print()
    print(
        format_table(
            ["configuration", "mean cy/event", "paper"],
            [[c, summary[c], PAPER_PER_EVENT[c]] for c in CONFIGURATIONS],
            title="Figure 4 summary (mean across benchmarks)",
        )
    )
    assert (
        summary["uipi_sw_timer"]
        > summary["xui_sw_timer_tracking"]
        > summary["xui_kb_timer_tracking"]
    )
    ratio = summary["uipi_sw_timer"] / summary["xui_kb_timer_tracking"]
    print(f"\noverall reduction: {ratio:.1f}x (paper: ~6.9x)")
    assert ratio > 3.0


def test_fig4_extended_benchmark_set(once):
    """Beyond the paper's three benchmarks: the xUI ordering holds across
    workload classes (branchy sort, serial hash chain)."""
    benchmarks = {
        "quicksort": lambda: mb.make_quicksort(n=1500, seed=2),
        "fnv_hash": lambda: mb.make_fnv_hash(iterations=25_000),
    }
    results = once(run_fig4, benchmarks=benchmarks)
    print()
    rows = [
        [bench, configuration, cells[configuration]["per_event_cycles"], cells[configuration]["overhead_percent"]]
        for bench, cells in results.items()
        for configuration in CONFIGURATIONS
    ]
    print(
        format_table(
            ["benchmark", "configuration", "cy/event", "overhead %"],
            rows,
            title="Figure 4 (extended set): the ordering holds off the paper's suite",
        )
    )
    for bench, cells in results.items():
        assert (
            cells["uipi_sw_timer"]["per_event_cycles"]
            > cells["xui_sw_timer_tracking"]["per_event_cycles"]
            > cells["xui_kb_timer_tracking"]["per_event_cycles"]
        ), bench


def test_fig4_interval_sweep(once):
    """Total overhead vs. delivery interval (the curve's x-axis)."""
    sweep = once(
        run_interval_sweep,
        lambda: mb.make_count_loop(60_000),
        intervals=[5_000, 10_000, 20_000, 40_000],
    )
    print()
    print(
        format_series(
            sweep,
            x_label="interval (cy)",
            y_label="overhead %",
            title="Figure 4 sweep: overhead vs. interrupt interval (counting loop)",
        )
    )
    for configuration, by_interval in sweep.items():
        values = [by_interval[i] for i in sorted(by_interval)]
        # Overhead falls as interrupts get rarer.
        assert values[0] > values[-1]
    # At the 5 us point, the UIPI-vs-KB-timer gap is the paper's headline.
    assert sweep["uipi_sw_timer"][10_000] > 2.5 * sweep["xui_kb_timer_tracking"][10_000]
