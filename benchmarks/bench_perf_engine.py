"""Perf-engine benchmark: serial vs. parallel, cold vs. warm cache.

Times a reduced Figure 4 grid through every execution mode of the perf
subsystem and asserts the accelerated modes reproduce the serial/uncached
table exactly.  Speedup floors: warm cache must beat serial by >= 5x on any
machine (a hit skips simulation entirely); the parallel-cold >= 2x floor is
asserted only when the host actually has multiple CPUs to fan out over.
"""

from __future__ import annotations

import os
import time
from functools import partial

from repro.apps import microbench as mb
from repro.experiments.fig4_overheads import run_fig4
from repro.perf.selftest import SELFTEST_INTERVAL, SELFTEST_ITERATIONS, _env
from repro.perf.cache import ENV_CACHE_DIR, ENV_CACHE_ENABLED


def _reduced_grid(jobs: int):
    benchmarks = {
        "count_loop": partial(mb.make_count_loop, SELFTEST_ITERATIONS),
        "fib": partial(mb.make_fib, n=14),
    }
    return run_fig4(interval=SELFTEST_INTERVAL, benchmarks=benchmarks, jobs=jobs)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_perf_engine_modes(benchmark, tmp_path):
    with _env(**{ENV_CACHE_ENABLED: "0"}):
        serial, t_serial = _timed(lambda: _reduced_grid(jobs=1))
        parallel, t_parallel = _timed(lambda: _reduced_grid(jobs=4))
    with _env(**{ENV_CACHE_ENABLED: "1", ENV_CACHE_DIR: str(tmp_path / "cache")}):
        cold, t_cold = _timed(lambda: _reduced_grid(jobs=1))
        # The benchmarked quantity is the warm-cache replay.
        warm = benchmark.pedantic(_reduced_grid, args=(1,), rounds=1, iterations=1)
        _, t_warm = _timed(lambda: _reduced_grid(jobs=1))

    assert parallel == serial, "parallel table differs from serial"
    assert cold == serial, "cold-cache table differs from serial"
    assert warm == serial, "warm-cache table differs from serial"

    warm_speedup = t_serial / max(t_warm, 1e-9)
    parallel_speedup = t_serial / max(t_parallel, 1e-9)
    print(
        f"\nserial {t_serial:.2f}s | parallel(j4) {t_parallel:.2f}s "
        f"({parallel_speedup:.1f}x) | cold cache {t_cold:.2f}s | "
        f"warm cache {t_warm:.3f}s ({warm_speedup:.0f}x)"
    )
    assert warm_speedup >= 5.0, f"warm cache only {warm_speedup:.1f}x over serial"
    # The >= 2x floor needs real cores to fan out over; on fewer the run
    # still verifies equality and records the (non-)speedup above.
    if (os.cpu_count() or 1) >= 4:
        assert parallel_speedup >= 2.0, (
            f"parallel cold only {parallel_speedup:.1f}x over serial"
        )
