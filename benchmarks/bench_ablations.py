"""Ablations over the design choices DESIGN.md calls out.

Not paper figures — these probe *why* the reproduction behaves as it does:

- flush-refill latency is the dominant term in UIPI's receiver cost;
- the notification (UPID) stall is what separates tracked IPIs (231 cy)
  from timer/device delivery (105 cy);
- safepoint gating adds delivery *latency* (waiting for the next safepoint)
  but not throughput overhead;
- the NIC re-arm cost controls how much of the idle fraction xUI returns;
- work stealing is what makes multi-worker runtimes robust to imbalance.
"""

import dataclasses

from repro.analysis.tables import format_table
from repro.apps import microbench as mb
from repro.cpu.config import SystemConfig, TimingParams
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.experiments import cycletier


def test_ablation_flush_refill_latency(once):
    """Receiver cost vs. the flush-refill penalty (the §3.4 dominant term)."""

    def sweep():
        rows = []
        for refill in (80, 200, 330, 450):
            timing = TimingParams(flush_refill_latency=refill)
            config = SystemConfig(timing=timing)
            workload = mb.make_count_loop(12_000)
            base = cycletier.run_baseline(workload, config=config)
            loaded = cycletier.run_with_uipi_timer(
                mb.make_count_loop(12_000),
                FlushStrategy(),
                config=config,
                expected_cycles=base.cycles,
            )
            rows.append([refill, cycletier.per_event_overhead(base.cycles, loaded)])
        return rows

    rows = once(sweep)
    print()
    print(
        format_table(
            ["flush_refill_latency", "uipi cy/event"],
            rows,
            title="Ablation: flush-refill penalty vs. UIPI receiver cost",
        )
    )
    costs = [row[1] for row in rows]
    assert costs == sorted(costs)  # monotone in the refill penalty


def test_ablation_notification_stall_separates_ipi_from_timer(once):
    """Zeroing the UPID-path stall collapses tracked IPIs toward the
    timer-delivery cost — the 231-vs-105 split is the routing cost (§4.2)."""

    def sweep():
        rows = []
        for stall in (0, 55, 110):
            timing = TimingParams(notif_latch_stall=stall)
            config = SystemConfig(timing=timing)
            base = cycletier.run_baseline(mb.make_count_loop(12_000), config=config)
            tracked = cycletier.run_with_uipi_timer(
                mb.make_count_loop(12_000),
                TrackedStrategy(),
                config=config,
                expected_cycles=base.cycles,
            )
            kb = cycletier.run_with_kb_timer(mb.make_count_loop(12_000), config=config)
            rows.append(
                [
                    stall,
                    cycletier.per_event_overhead(base.cycles, tracked),
                    cycletier.per_event_overhead(base.cycles, kb),
                ]
            )
        return rows

    rows = once(sweep)
    print()
    print(
        format_table(
            ["notif stall", "tracked IPI cy/event", "KB timer cy/event"],
            rows,
            title="Ablation: the UPID routing stall is the IPI-vs-timer gap",
        )
    )
    # The KB-timer path never touches the UPID: its cost is stall-invariant.
    kb_costs = [row[2] for row in rows]
    assert max(kb_costs) - min(kb_costs) <= 0.25 * max(kb_costs)
    # The tracked-IPI path shrinks toward it as the stall goes to zero.
    assert rows[0][1] < rows[-1][1]


def test_ablation_safepoint_gating_latency(once):
    """Safepoint mode trades delivery latency (wait for the next safepoint)
    for precision; with dense safepoints the wait is small."""

    def measure(sparse: bool):
        from repro.cpu import isa
        from repro.cpu.multicore import MultiCoreSystem
        from repro.cpu.program import ProgramBuilder

        builder = ProgramBuilder("gate")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 30))
        builder.label("outer")
        builder.emit(isa.movi(3, 0))
        builder.label("inner")
        builder.emit(isa.addi(3, 3, 1))
        inner_branch = isa.blti(3, 1500, "inner")
        builder.emit(inner_branch if sparse else inner_branch.with_safepoint())
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "outer").with_safepoint())
        builder.emit(isa.halt())
        builder.emit_default_handler()
        system = MultiCoreSystem([builder.build()], [TrackedStrategy()], trace=True)
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.safepoint_mode = True
        core.uintr.kb_timer.arm_periodic(3000, now=0)
        system.run(3_000_000, until_halted=[0])
        fires = [e.time for e in system.trace.of_kind("kb_timer_fire")]
        injects = [e.time for e in system.trace.of_kind("inject")]
        waits = []
        inject_iter = iter(injects)
        inject = next(inject_iter, None)
        for fire in fires:
            while inject is not None and inject < fire:
                inject = next(inject_iter, None)
            if inject is None:
                break
            waits.append(inject - fire)
        return sum(waits) / len(waits) if waits else float("nan")

    sparse_wait = once(lambda: (measure(sparse=True), measure(sparse=False)))
    sparse, dense = sparse_wait
    print()
    print(
        format_table(
            ["safepoint density", "mean fire->inject wait (cy)"],
            [["sparse (outer loop only)", sparse], ["dense (every back-edge)", dense]],
            title="Ablation: safepoint density vs. delivery wait",
        )
    )
    assert sparse > dense


def test_ablation_nic_rearm_cost(once):
    """The per-burst re-arm (MMIO) cost eats into xUI's free cycles."""
    from repro.common.rng import RngStreams
    from repro.net.l3fwd import L3Forwarder, L3fwdConfig
    from repro.net.nic import NIC
    from repro.net.pktgen import PacketGenerator
    from repro.notify.mechanisms import Mechanism
    from repro.sim.simulator import Simulator

    def run_rearm(rearm_cost):
        sim = Simulator()
        config = L3fwdConfig(mechanism=Mechanism.XUI_DEVICE, num_nics=1, rearm_cost=rearm_cost)
        nics = [NIC(0)]
        forwarder = L3Forwarder(sim, nics, config, rng=RngStreams(1))
        rate = 0.4 * 2e9 / config.per_packet_cost
        generator = PacketGenerator(sim, nics, rate, rng=RngStreams(1))
        generator.start()
        sim.run(until=0.008 * 2e9)
        return forwarder.free_fraction()

    rows = once(lambda: [[cost, run_rearm(cost)] for cost in (0, 150, 300, 600)])
    print()
    print(
        format_table(
            ["rearm cost (cy)", "free fraction @40% load"],
            rows,
            title="Ablation: NIC re-arm cost vs. xUI free cycles",
            precision=3,
        )
    )
    frees = [row[1] for row in rows]
    assert frees == sorted(frees, reverse=True)


def test_ablation_work_stealing(once):
    """Stealing rescues an imbalanced spawn; without it one core drowns."""
    from repro.notify.mechanisms import Mechanism
    from repro.runtime.aspen import AspenRuntime, RuntimeConfig
    from repro.runtime.uthread import UThread
    from repro.sim.simulator import Simulator

    def run_stealing(enabled):
        sim = Simulator()
        config = RuntimeConfig(
            num_workers=4,
            quantum=10_000.0,
            mechanism=Mechanism.XUI_KB_TIMER,
            work_stealing=enabled,
        )
        runtime = AspenRuntime(sim, config)
        threads = [UThread(service_cycles=100_000.0) for _ in range(12)]
        for thread in threads:  # all pile onto worker 0
            runtime.workers[0].enqueue(thread)
        sim.run(until=3_000_000.0)
        done = [t for t in threads if t.finished]
        makespan = max(t.completion_time for t in done) if len(done) == 12 else float("inf")
        return makespan

    rows = once(lambda: [[label, run_stealing(flag)] for label, flag in (("stealing", True), ("no stealing", False))])
    print()
    print(
        format_table(
            ["policy", "makespan (cy)"],
            rows,
            title="Ablation: work stealing under an imbalanced spawn",
        )
    )
    stealing, no_stealing = rows[0][1], rows[1][1]
    assert stealing < no_stealing
