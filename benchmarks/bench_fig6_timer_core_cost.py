"""Figure 6: the cost of a timer core.

Paper: OS timer interfaces consume an increasing share of a core as rates
rise; senduipi fan-out grows with receiver count (a spin core caps at ~22
workers at 5 us); xUI needs no timer core at all.
"""

from repro.analysis.tables import format_table
from repro.experiments.fig6_timer_cost import (
    INTERFACES,
    kb_timer_core_savings,
    run_fig6,
)


def test_fig6_timer_core_cost(once):
    core_counts = [1, 4, 8, 16, 22]
    intervals = [10_000.0, 100_000.0, 2_000_000.0]  # 5us / 50us / 1ms
    results = once(run_fig6, core_counts=core_counts, intervals=intervals)
    print()
    for interval in intervals:
        rows = []
        for interface in INTERFACES:
            rows.append(
                [interface] + [results[interface][interval][n] for n in core_counts]
            )
        print(
            format_table(
                ["interface"] + [f"{n} cores" for n in core_counts],
                rows,
                title=f"Figure 6: timer-core utilization at {interval / 2000:.0f} us interval",
                precision=3,
            )
        )
        print()
    # Shapes: xUI is free; setitimer saturates at fine intervals; fan-out
    # grows with receiver count.
    fine = results["setitimer"][10_000.0]
    assert all(results["xui_kb_timer"][i][n] == 0.0 for i in intervals for n in core_counts)
    assert fine[22] == 1.0
    coarse = results["setitimer"][2_000_000.0]
    assert coarse[1] < 0.01
    savings = kb_timer_core_savings(22, 10_000.0)
    print(
        f"capacity: {savings['workers_per_timer_core']:.0f} workers per spin "
        f"timer core at 5 us (paper: ~22); saving 1 core in 22 = "
        f"{100 * savings['throughput_gain_fraction']:.1f}% (paper: 4.5%)"
    )
    assert savings["workers_per_timer_core"] == 22
