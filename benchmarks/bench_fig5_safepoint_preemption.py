"""Figure 5: preemption via polling vs. UIPI vs. hardware safepoints.

Paper @5 us quantum: safepoints 1.2-1.5% slowdown; polling 8.5-11%;
UIPI in between; polling up to ~10x safepoints.
"""

from repro.analysis.tables import format_table
from repro.experiments.fig5_safepoints import MECHANISMS, run_fig5


def test_fig5_safepoint_preemption(once):
    quanta = [10_000, 20_000, 50_000]  # 5 / 10 / 25 us
    results = once(run_fig5, quanta=quanta)
    print()
    rows = []
    for program, mechanisms in results.items():
        for mechanism in MECHANISMS:
            row = [program, mechanism] + [mechanisms[mechanism][q] for q in quanta]
            rows.append(row)
    print(
        format_table(
            ["program", "mechanism", "5us %", "10us %", "25us %"],
            rows,
            title="Figure 5: preemption overhead (% slowdown) vs. quantum",
        )
    )
    for program, mechanisms in results.items():
        at_5us = {m: mechanisms[m][10_000] for m in MECHANISMS}
        # Safepoints are the cheapest precise mechanism at every quantum.
        assert at_5us["hw_safepoints"] <= at_5us["polling"]
        assert at_5us["hw_safepoints"] <= at_5us["uipi"]
        assert at_5us["hw_safepoints"] <= 4.0  # paper: 1.2-1.5%
