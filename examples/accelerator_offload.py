#!/usr/bin/env python
"""Streaming-accelerator offload: how should the CPU wait for completions?

A closed-loop client offloads DSA-style copies (2 us and 20 us classes,
§5.4) and receives completions three ways: busy-spinning on the completion
ring, polling on the OS interval timer, or an xUI forwarded device interrupt
per completion.  The sweep variable is the noise on the device's response
time — the thing that breaks periodic polling (§6.2.3).

Run:  python examples/accelerator_offload.py
"""

from repro.analysis.tables import format_table
from repro.experiments.fig9_dsa import run_point

DURATION_S = 0.008


def main() -> None:
    for request_us in (2.0, 20.0):
        rows = []
        for mechanism in ("busy_spin", "periodic_poll", "xui"):
            for noise in (0.0, 0.5, 1.0):
                point = run_point(mechanism, request_us, noise, duration_seconds=DURATION_S)
                rows.append(
                    [
                        mechanism,
                        f"±{noise:.0%}",
                        point.mean_notification_lag_us,
                        f"{point.free_fraction:.0%}",
                        point.ipos,
                    ]
                )
        print(
            format_table(
                ["mechanism", "response noise", "notify lag us", "free cycles", "IOPS"],
                rows,
                title=f"DSA offload completions, {request_us:.0f} us request class",
            )
        )
        print()
    print(
        "Busy spinning is instant but eats the core.  Periodic polling frees\n"
        "cycles until the response time gets noisy — then completions sit\n"
        "waiting for the next tick.  xUI keeps spin-level latency at every\n"
        "noise level while leaving most of the core free (Figure 9)."
    )


if __name__ == "__main__":
    main()
