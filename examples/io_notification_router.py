#!/usr/bin/env python
"""IO notification for a layer-3 router: polling vs. xUI device interrupts.

DPDK's l3fwd normally busy-polls its RX rings — every cycle not spent
forwarding is burnt polling.  With xUI interrupt forwarding (§4.5) + tracked
interrupts, the first packet into an idle ring raises a 105-cycle user
interrupt; the handler drains the rings (polling while work exists, exactly
like DPDK) and re-arms before returning.  Same throughput, and the idle
cycles come back (§6.2.2).

Run:  python examples/io_notification_router.py
"""

from repro.analysis.tables import format_table
from repro.experiments.fig8_l3fwd import run_point
from repro.notify.mechanisms import Mechanism

NUM_NICS = 1
DURATION_S = 0.01


def main() -> None:
    rows = []
    for mechanism in (Mechanism.POLLING, Mechanism.XUI_DEVICE):
        for load in (0.0, 0.2, 0.4, 0.6, 0.8):
            point = run_point(mechanism, NUM_NICS, load, duration_seconds=DURATION_S)
            rows.append(
                [
                    mechanism.value,
                    f"{load:.0%}",
                    point.achieved_pps,
                    f"{point.networking_fraction:.0%}",
                    f"{point.free_fraction:.0%}",
                    point.p95_latency_us,
                    point.interrupts,
                ]
            )
    print(
        format_table(
            ["mechanism", "load", "pps", "networking", "free cycles", "p95 us", "interrupts"],
            rows,
            title=f"l3fwd with {NUM_NICS} NIC (LPM routing, 64B packets)",
        )
    )
    print(
        "\nPolling always burns the whole core (free cycles = 0%).  xUI matches\n"
        "its throughput and latency while leaving the unused fraction free —\n"
        "~45% at 40% load, 100% at idle (Figure 8)."
    )


if __name__ == "__main__":
    main()
