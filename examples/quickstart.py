#!/usr/bin/env python
"""Quickstart: send user interrupts between two simulated cores.

Builds the §3.2 setup from scratch — a receiver thread registers a handler
(allocating a UPID), a sender registers a route (UITT entry), and then
``senduipi`` fires.  We run it twice: once with the stock UIPI flush-based
receiver, once with xUI tracked interrupts, and print the measured costs.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import format_table
from repro.cpu import (
    FlushStrategy,
    MultiCoreSystem,
    ProgramBuilder,
    TrackedStrategy,
    isa,
)

COUNTER = 0x20_0000  # the handler increments this shared word


def build_sender(num_interrupts: int) -> ProgramBuilder:
    """Send ``num_interrupts`` UIPIs, spaced by a short busy loop."""
    builder = ProgramBuilder("sender")
    for index in range(num_interrupts):
        builder.emit(isa.senduipi(0))  # UITT index 0 -> the receiver
        builder.emit(isa.movi(6, 0))
        builder.label(f"gap{index}")
        builder.emit(isa.addi(6, 6, 1))
        builder.emit(isa.blti(6, 800, f"gap{index}"))
    builder.emit(isa.halt())
    return builder


def build_receiver() -> ProgramBuilder:
    """Spin on useful work; the handler bumps a counter and returns."""
    builder = ProgramBuilder("receiver")
    builder.label("loop")
    builder.emit(isa.addi(1, 1, 1))
    builder.emit(isa.jmp("loop"))
    builder.emit_default_handler(counter_addr=COUNTER)
    return builder


def run(strategy_name: str, num_interrupts: int = 5) -> dict:
    strategy = TrackedStrategy() if strategy_name == "xui_tracked" else FlushStrategy()
    system = MultiCoreSystem(
        [build_sender(num_interrupts).build(), build_receiver().build()],
        [FlushStrategy(), strategy],
        trace=True,
    )
    # The §3.2 "system calls": register_handler allocates the receiver's
    # UPID; register_sender (via connect_uipi) adds the sender's UITT entry.
    system.connect_uipi(sender_core_id=0, receiver_core_id=1, user_vector=1)
    system.run(300_000, until_halted=[0])
    system.run(20_000)  # let the last interrupt land

    receiver = system.cores[1]
    sends = [e.time for e in system.trace.of_kind("senduipi_start")]
    entries = [
        e.time for e in system.trace.of_kind("handler_fetch") if e.detail.get("core") == 1
    ]
    latencies = [b - a for a, b in zip(sends, entries)]
    return {
        "strategy": strategy_name,
        "delivered": receiver.stats.interrupts_delivered,
        "handler_count": system.shared.read(COUNTER),
        "mean_e2e_cycles": sum(latencies) / len(latencies),
        "squashed_uops": receiver.stats.squashed_uops,
        "pipeline_flushes": receiver.stats.interrupt_flushes,
    }


def main() -> None:
    results = [run("uipi_flush"), run("xui_tracked")]
    print(
        format_table(
            ["strategy", "delivered", "e2e cycles", "squashed uops", "flushes"],
            [
                [r["strategy"], r["delivered"], r["mean_e2e_cycles"], r["squashed_uops"], r["pipeline_flushes"]]
                for r in results
            ],
            title="UIPI vs. xUI tracked interrupts (5 user interrupts)",
        )
    )
    print(
        "\nTracking delivers the same interrupts without flushing the "
        "receiver's pipeline — the in-flight work survives (§4.2)."
    )
    for r in results:
        assert r["delivered"] == r["handler_count"] == 5


if __name__ == "__main__":
    main()
