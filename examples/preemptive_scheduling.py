#!/usr/bin/env python
"""Preemptive user-level scheduling: RocksDB on an Aspen-like runtime (§6.2.1).

A single worker core serves the paper's bimodal mix — 99.5% GET (1.2 us) and
0.5% SCAN (580 us) — from an open-loop Poisson load generator.  Without
preemption, one SCAN blocks every queued GET for over half a millisecond;
with a 5 us preemption quantum the GET tail collapses.  The difference
between UIPI and the xUI KB timer is the per-tick receiver cost (645 vs.
105 cycles) plus the dedicated timer core UIPI needs as a time source.

Run:  python examples/preemptive_scheduling.py
"""

from repro.analysis.tables import format_table
from repro.experiments.fig7_rocksdb import run_point

LOAD_RPS = 120_000
DURATION_S = 0.08


def main() -> None:
    rows = []
    for configuration in ("no_preempt", "uipi", "xui"):
        point = run_point(configuration, LOAD_RPS, duration_seconds=DURATION_S)
        rows.append(
            [
                configuration,
                point.achieved_rps,
                point.get_mean_us,
                point.get_p999_us,
                point.scan_p999_us,
                point.preemptions,
                point.timer_core_busy_fraction,
            ]
        )
    print(
        format_table(
            [
                "config",
                "achieved rps",
                "GET mean us",
                "GET p99.9 us",
                "SCAN p99.9 us",
                "preempt ticks",
                "timer core busy",
            ],
            rows,
            title=f"RocksDB (99.5% GET / 0.5% SCAN) at {LOAD_RPS:,} req/s, one worker core",
        )
    )
    print(
        "\nWithout preemption the GET p99.9 sits behind 580 us SCANs.  A 5 us\n"
        "quantum fixes that; xUI does it with ~6x less receiver overhead per\n"
        "tick than UIPI and with no dedicated timer core (the 'timer core\n"
        "busy' column is a whole extra core UIPI burns)."
    )


if __name__ == "__main__":
    main()
