#!/usr/bin/env python
"""IPC without polling: a shared message ring synced by user interrupts (§1).

A producer core writes messages into a ring in shared memory and notifies
the consumer.  Two consumer builds:

- **polling**: the consumer's work loop checks the producer index every
  iteration — the classic shared-memory arrangement, taxing every iteration;
- **xUI**: the consumer runs its work loop untouched; a tracked user
  interrupt fires per batch and the handler drains the ring.

Both consumers do the same "other useful work" (a counting loop); the
comparison is how much of that work survives the IPC duty.  Message
integrity is checked with a running checksum on both sides.

Run:  python examples/ipc_message_ring.py
"""

from repro.analysis.tables import format_table
from repro.cpu import (
    FlushStrategy,
    MultiCoreSystem,
    ProgramBuilder,
    TrackedStrategy,
    isa,
)

RING_BASE = 0x70_0000
RING_SLOTS = 16
PROD_IDX = 0x70_0200  # producer's publish index
CONS_IDX = 0x70_0208  # consumer's consume index
CHECKSUM = 0x70_0210  # consumer-side sum of received messages
NUM_MESSAGES = 48
GAP = 900  # producer spacing (cycles of busy work between messages)


def build_producer(notify: bool):
    b = ProgramBuilder("producer")
    b.emit(isa.movi(1, 0))  # message counter / index
    b.emit(isa.movi(2, NUM_MESSAGES))
    b.emit(isa.movi(3, RING_BASE))
    b.emit(isa.movi(4, PROD_IDX))
    b.label("produce")
    # message value = 1000 + i ; slot = i mod RING_SLOTS
    b.emit(isa.addi(5, 1, 1000))
    b.emit(isa.andi(6, 1, RING_SLOTS - 1))
    b.emit(isa.shli(6, 6, 3))
    b.emit(isa.add(6, 3, 6))
    b.emit(isa.store(5, 6, 0))  # data first...
    b.emit(isa.addi(1, 1, 1))
    b.emit(isa.store(1, 4, 0))  # ...then publish the index
    if notify:
        b.emit(isa.senduipi(0))
    b.emit(isa.movi(7, 0))
    b.label("gap")
    b.emit(isa.addi(7, 7, 1))
    b.emit(isa.blti(7, GAP // 2, "gap"))
    b.emit(isa.blt(1, 2, "produce"))
    b.emit(isa.halt())
    return b.build()


def emit_drain(b: ProgramBuilder, done_label: str) -> None:
    """Drain ring entries from CONS_IDX up to PROD_IDX, checksumming."""
    b.emit(isa.movi(8, PROD_IDX))
    b.emit(isa.movi(9, CONS_IDX))
    b.label(f"{done_label}_scan")
    b.emit(isa.load(5, 8, 0))  # producer index
    b.emit(isa.load(6, 9, 0))  # consumer index
    b.emit(isa.bge(6, 5, done_label))  # caught up
    b.emit(isa.andi(7, 6, RING_SLOTS - 1))
    b.emit(isa.shli(7, 7, 3))
    b.emit(isa.movi(4, RING_BASE))
    b.emit(isa.add(7, 4, 7))
    b.emit(isa.load(7, 7, 0))  # the message
    b.emit(isa.movi(4, CHECKSUM))
    b.emit(isa.load(3, 4, 0))
    b.emit(isa.add(3, 3, 7))
    b.emit(isa.store(3, 4, 0))
    b.emit(isa.addi(6, 6, 1))
    b.emit(isa.store(6, 9, 0))
    b.emit(isa.jmp(f"{done_label}_scan"))
    b.label(done_label)


def build_polling_consumer(work_iterations: int):
    b = ProgramBuilder("poll_consumer")
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, work_iterations))
    b.label("work")
    b.emit(isa.addi(1, 1, 1))  # the useful work
    # Poll: has the producer published anything new?
    b.emit(isa.movi(10, PROD_IDX))
    b.emit(isa.load(11, 10, 0))
    b.emit(isa.movi(10, CONS_IDX))
    b.emit(isa.load(12, 10, 0))
    b.emit(isa.blt(12, 11, "drain"))
    b.label("resume")
    b.emit(isa.blt(1, 2, "work"))
    b.emit(isa.halt())
    b.label("drain")
    emit_drain(b, "drained")
    b.emit(isa.jmp("resume"))
    return b.build()


def build_interrupt_consumer(work_iterations: int):
    b = ProgramBuilder("ui_consumer")
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, work_iterations))
    b.label("work")
    b.emit(isa.addi(1, 1, 1))  # the useful work, uninstrumented
    b.emit(isa.blt(1, 2, "work"))
    b.emit(isa.halt())
    b.label("handler")
    b.handler("handler")
    emit_drain(b, "handled")
    b.emit(isa.uiret())
    return b.build()


def run(mode: str, work_iterations: int = 60_000):
    if mode == "polling":
        consumer = build_polling_consumer(work_iterations)
        producer = build_producer(notify=False)
        strategies = [FlushStrategy(), FlushStrategy()]
    else:
        consumer = build_interrupt_consumer(work_iterations)
        producer = build_producer(notify=True)
        strategies = [TrackedStrategy(), FlushStrategy()]
    system = MultiCoreSystem([consumer, producer], strategies)
    if mode != "polling":
        system.connect_uipi(sender_core_id=1, receiver_core_id=0, user_vector=1)
    system.run(8_000_000, until_halted=[0, 1])
    system.run(30_000)
    consumer_core = system.cores[0]
    expected_checksum = sum(1000 + i for i in range(NUM_MESSAGES))
    return {
        "mode": mode,
        "messages": system.shared.read(CONS_IDX),
        "checksum_ok": system.shared.read(CHECKSUM) == expected_checksum,
        "consumer_cycles": consumer_core.stats.cycles,
        "interrupts": consumer_core.stats.interrupts_delivered,
    }


def main() -> None:
    results = [run("polling"), run("xui")]
    print(
        format_table(
            ["mode", "messages", "checksum ok", "consumer cycles", "interrupts"],
            [[r["mode"], r["messages"], r["checksum_ok"], r["consumer_cycles"], r["interrupts"]] for r in results],
            title=f"IPC ring: {NUM_MESSAGES} messages while doing 60k iterations of other work",
        )
    )
    for r in results:
        assert r["messages"] == NUM_MESSAGES and r["checksum_ok"], r
    poll, xui = results
    saved = 100 * (poll["consumer_cycles"] - xui["consumer_cycles"]) / poll["consumer_cycles"]
    print(
        f"\nSame {NUM_MESSAGES} messages, same checksum; the interrupt-driven "
        f"consumer finished its work {saved:.1f}% sooner because its hot loop "
        "carries no per-iteration polling (§1, §4.2)."
    )


if __name__ == "__main__":
    main()
