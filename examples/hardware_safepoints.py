#!/usr/bin/env python
"""Hardware safepoints: precise preemption for precise GC (§4.4).

A moving garbage collector can only scan a thread stopped at a *safepoint*
(where its stack maps are valid).  Signals and plain UIPIs interrupt
anywhere; compiler polling is precise but taxes every loop iteration.  xUI
safepoint mode delivers tracked interrupts only at safepoint-prefixed
instructions — precision at near-zero cost.

This example builds the same loop three ways and preempts it with a 5 us
KB timer, then shows (a) delivery only happens when safepoints exist, and
(b) what each precise mechanism costs.

Run:  python examples/hardware_safepoints.py
"""

from repro.analysis.tables import format_table
from repro.apps import microbench as mb
from repro.compiler.instrument import PollingInstrumenter, SafepointInstrumenter
from repro.cpu import FlushStrategy, MultiCoreSystem, TrackedStrategy
from repro.experiments import cycletier

ITERATIONS = 20_000
QUANTUM = 10_000  # 5 us


def run_safepoint_mode(workload, expect_delivery: bool) -> dict:
    system = MultiCoreSystem([workload.program], [TrackedStrategy()])
    workload.install(system.shared)
    system.enable_kb_timer(0)
    core = system.cores[0]
    core.uintr.safepoint_mode = True
    core.uintr.kb_timer.arm_periodic(QUANTUM, now=0)
    system.run(5_000_000, until_halted=[0])
    delivered = core.stats.interrupts_delivered
    assert (delivered > 0) == expect_delivery
    return {"cycles": system.cycle, "delivered": delivered}


def main() -> None:
    # (a) Precision: in safepoint mode, a program with no safepoints is
    # never interrupted — and one with prefixed back-edges is.
    plain = run_safepoint_mode(mb.make_count_loop(ITERATIONS), expect_delivery=False)
    prefixed = run_safepoint_mode(
        mb.make_count_loop(ITERATIONS, instrument=SafepointInstrumenter()),
        expect_delivery=True,
    )
    print(
        format_table(
            ["program", "interrupts delivered"],
            [
                ["no safepoint instructions", plain["delivered"]],
                ["safepoint-prefixed back-edge", prefixed["delivered"]],
            ],
            title="Safepoint mode gates delivery to compiler-chosen points",
        )
    )

    # (b) Cost: compare the two *precise* mechanisms on base64.
    base = cycletier.run_baseline(mb.make_base64(iterations=6000)).cycles

    safepoint_run = run_safepoint_mode(
        mb.make_base64(iterations=6000, instrument=SafepointInstrumenter()),
        expect_delivery=True,
    )

    polling_workload = mb.make_base64(iterations=6000, instrument=PollingInstrumenter())
    flag_writer = mb.make_poll_timer_core(QUANTUM, base * 2 // QUANTUM + 8, 0x60_0000)
    system = MultiCoreSystem(
        [polling_workload.program, flag_writer.program], [FlushStrategy(), FlushStrategy()]
    )
    polling_workload.install(system.shared)
    system.run(5_000_000, until_halted=[0])
    polling_cycles = system.cycle

    print()
    print(
        format_table(
            ["precise mechanism", "slowdown %"],
            [
                ["compiler polling (Concord-style)", 100 * (polling_cycles - base) / base],
                ["xUI hardware safepoints", 100 * (safepoint_run["cycles"] - base) / base],
            ],
            title=f"Cost of precision on base64 at a 5 us quantum (baseline {base:,} cycles)",
        )
    )
    print("\nSafepoints are free until an interrupt actually arrives (§4.4).")


if __name__ == "__main__":
    main()
