"""Constrained-random generator: byte-stable, always-valid draws."""

import pytest

from repro.common.errors import ConfigError
from repro.scenario.dsl import Scenario
from repro.scenario.generate import (
    DEFAULT_WEIGHTS,
    GeneratorBudget,
    ScenarioGenerator,
)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = ScenarioGenerator(root_seed=5)
        b = ScenarioGenerator(root_seed=5)
        for i in range(10):
            assert a.generate(i).dumps() == b.generate(i).dumps()

    def test_draws_are_index_addressed_not_stateful(self):
        # generate(i) must not depend on which indices were drawn before it.
        gen = ScenarioGenerator(root_seed=3)
        out_of_order = gen.generate(7).dumps()
        fresh = ScenarioGenerator(root_seed=3)
        for i in range(8):
            last = fresh.generate(i).dumps()
        assert last == out_of_order

    def test_different_roots_differ(self):
        a = ScenarioGenerator(root_seed=1).generate(0)
        b = ScenarioGenerator(root_seed=2).generate(0)
        assert a.dumps() != b.dumps()

    def test_round_trips_through_json(self):
        gen = ScenarioGenerator(root_seed=11)
        for i in range(5):
            s = gen.generate(i)
            assert Scenario.loads(s.dumps()) == s


class TestValidity:
    def test_many_draws_construct_valid_scenarios(self):
        # Scenario.__init__ re-validates everything; 40 draws across two
        # streams exercising every role/fault path without raising is the
        # generator's core contract.
        for root in (0, 99):
            gen = ScenarioGenerator(root_seed=root)
            for i in range(20):
                s = gen.generate(i)
                assert any(c.role == "workload" for c in s.cores)

    def test_budget_caps_respected(self):
        budget = GeneratorBudget(
            max_workload_cores=1,
            max_sender_cores=1,
            max_idle_cores=0,
            max_faults=1,
            max_cycles=50_000,
        )
        gen = ScenarioGenerator(root_seed=4, budget=budget)
        for i in range(15):
            s = gen.generate(i)
            assert len(s.cores) <= 2
            assert not any(c.role == "idle" for c in s.cores)
            assert s.max_cycles == 50_000
            assert s.faults.count <= 1 and len(s.faults.faults) <= 1

    def test_weights_restrict_kinds(self):
        weights = {k: 0 for k in DEFAULT_WEIGHTS}
        weights["fib"] = 1
        gen = ScenarioGenerator(root_seed=8, weights=weights)
        for i in range(10):
            s = gen.generate(i)
            for core in s.cores:
                if core.workload is not None:
                    assert core.workload.kind == "fib"


class TestValidation:
    def test_unknown_weight_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload kinds"):
            ScenarioGenerator(weights={"bogosort": 1})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioGenerator(weights={k: 0 for k in DEFAULT_WEIGHTS})

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioGenerator(weights={"fib": -1})

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigError):
            GeneratorBudget(max_workload_cores=0)
        with pytest.raises(ConfigError):
            GeneratorBudget(max_faults=-1)
        with pytest.raises(ConfigError):
            GeneratorBudget(sender_interval=(100, 50))
