"""Differential fuzz driver: oracles, fingerprints, env hygiene."""

import os

import pytest

from repro.common.counters import ENV_BATCH, ENV_FAST, ENV_MACRO
from repro.common.errors import ConfigError
from repro.scenario.dsl import (
    ENGINE_LEG_NAMES,
    CoreSpec,
    FaultSpec,
    Scenario,
    WorkloadSpec,
)
from repro.scenario.fuzz import (
    ENGINE_LEGS,
    ENV_TEST_DIVERGENCE,
    FINDING_KINDS,
    ScenarioGenerator,
    _engine_env,
    fingerprint,
    fuzz,
    run_one,
    run_scenario,
)


def tiny_scenario(**overrides):
    base = dict(
        name="tiny",
        cores=(
            CoreSpec(
                role="workload",
                workload=WorkloadSpec(
                    kind="count_loop", knobs=(("iterations", 100),)
                ),
            ),
        ),
        links=(),
        faults=FaultSpec(seed=1),
        engines=ENGINE_LEG_NAMES,
        max_cycles=20_000,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


class TestFingerprint:
    def test_digit_runs_are_normalized(self):
        a = fingerprint("divergence", "fast", "cycle 3656 vs 3655")
        b = fingerprint("divergence", "fast", "cycle 12 vs 9")
        assert a == b

    def test_kind_and_leg_are_identity(self):
        detail = "cycle 10 vs 11"
        assert fingerprint("divergence", "fast", detail) != fingerprint(
            "divergence", "naive", detail
        )
        assert fingerprint("divergence", "fast", detail) != fingerprint(
            "timeout", "fast", detail
        )

    def test_shape(self):
        fp = fingerprint("crash", "naive", "ValueError: boom")
        assert len(fp) == 12
        assert all(c in "0123456789abcdef" for c in fp)


class TestEngineEnv:
    def test_legs_cover_the_engine_matrix(self):
        assert tuple(ENGINE_LEGS) == ENGINE_LEG_NAMES
        assert ENGINE_LEGS["naive"][ENV_FAST] == "0"
        assert ENGINE_LEGS["fast+macro"][ENV_MACRO] == "1"
        assert ENGINE_LEGS["fast+batch"][ENV_BATCH] == "1"

    def test_env_restored_after_leg(self, monkeypatch):
        monkeypatch.setenv(ENV_FAST, "1")
        monkeypatch.delenv(ENV_MACRO, raising=False)
        with _engine_env("naive"):
            assert os.environ[ENV_FAST] == "0"
            assert os.environ[ENV_MACRO] == "0"
        assert os.environ[ENV_FAST] == "1"
        assert ENV_MACRO not in os.environ

    def test_env_restored_on_exception(self, monkeypatch):
        monkeypatch.setenv(ENV_BATCH, "1")
        with pytest.raises(RuntimeError):
            with _engine_env("naive"):
                raise RuntimeError("boom")
        assert os.environ[ENV_BATCH] == "1"


class TestRunOne:
    def test_clean_scenario_has_no_findings(self):
        assert run_one(tiny_scenario()) == []

    def test_views_agree_across_legs(self):
        s = tiny_scenario()
        views = [run_scenario(s, leg) for leg in s.engines]
        assert all(v == views[0] for v in views[1:])

    def test_timeout_oracle_fires_on_starved_budget(self):
        s = tiny_scenario(
            cores=(
                CoreSpec(
                    role="workload",
                    workload=WorkloadSpec(
                        kind="count_loop", knobs=(("iterations", 100_000),)
                    ),
                ),
            ),
            max_cycles=1_000,
        )
        findings = run_one(s)
        assert findings
        assert {f.kind for f in findings} == {"timeout"}
        # Every leg times out the same way, so each reports it.
        assert sorted(f.leg for f in findings) == sorted(s.engines)

    def test_divergence_hook_fires_on_named_leg(self, monkeypatch):
        monkeypatch.setenv(ENV_TEST_DIVERGENCE, "fast+batch")
        findings = run_one(tiny_scenario())
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == "divergence"
        assert finding.leg == "fast+batch"
        assert "cycles" in finding.detail
        assert finding.fingerprint == fingerprint(
            "divergence", "fast+batch", finding.detail
        )

    def test_finding_to_json_is_replayable(self, monkeypatch):
        monkeypatch.setenv(ENV_TEST_DIVERGENCE, "fast")
        (finding,) = run_one(tiny_scenario())
        obj = finding.to_json()
        assert obj["engine_env"] == ENGINE_LEGS["fast"]
        assert Scenario.from_json(obj["scenario"]) == finding.scenario
        assert obj["scenario_id"] == finding.scenario.scenario_id()
        assert finding.kind in FINDING_KINDS


class TestFuzzDriver:
    def test_clean_seeds_report_clean(self):
        report = fuzz(ScenarioGenerator(root_seed=0), seeds=2)
        assert report.clean
        assert report.scenarios_run == 2
        assert (report.first_seed, report.last_seed) == (0, 1)
        assert not report.stopped_on_budget
        summary = report.summary()
        assert summary["scenarios_run"] == 2
        assert summary["findings"] == 0
        assert summary["by_kind"] == {}

    def test_hook_findings_reach_the_report(self, monkeypatch):
        monkeypatch.setenv(ENV_TEST_DIVERGENCE, "fast+macro")
        report = fuzz(ScenarioGenerator(root_seed=0), seeds=1)
        assert not report.clean
        summary = report.summary()
        assert summary["by_kind"] == {"divergence": len(report.findings)}
        assert summary["unique_fingerprints"] >= 1

    def test_zero_time_budget_stops_before_any_scenario(self):
        report = fuzz(ScenarioGenerator(root_seed=0), seeds=5, time_budget=0.0)
        assert report.scenarios_run == 0
        assert report.last_seed is None
        assert report.stopped_on_budget

    def test_progress_callback_sees_every_seed(self):
        seen = []
        fuzz(
            ScenarioGenerator(root_seed=0),
            seeds=2,
            start=10,
            progress=lambda i, s, f: seen.append((i, s.name, len(f))),
        )
        assert [i for i, _, _ in seen] == [10, 11]

    def test_negative_seeds_rejected(self):
        with pytest.raises(ConfigError):
            fuzz(ScenarioGenerator(), seeds=-1)
