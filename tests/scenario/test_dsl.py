"""Scenario DSL: construction-time validation and canonical JSON."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.faults.plan import Fault
from repro.scenario.dsl import (
    ENGINE_LEG_NAMES,
    MAX_CORES,
    MEMORY_WORKLOAD_KINDS,
    WORKLOAD_KNOBS,
    CoreSpec,
    FaultSpec,
    Scenario,
    TimerSpec,
    UipiLink,
    WorkloadSpec,
)


def wl(kind="count_loop", **knobs):
    if not knobs:
        knobs = {"iterations": 100}
    return WorkloadSpec(kind=kind, knobs=tuple(sorted(knobs.items())))


def workload_core(**kwargs):
    return CoreSpec(role="workload", workload=wl(), **kwargs)


def scenario(**overrides):
    base = dict(
        name="t",
        cores=(workload_core(),),
        links=(),
        faults=FaultSpec(seed=1),
        engines=ENGINE_LEG_NAMES,
        max_cycles=10_000,
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestWorkloadSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(kind="bogosort", knobs=())

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigError):
            wl(kind="fib", bananas=3)

    def test_out_of_range_knob_rejected(self):
        lo, hi, _ = WORKLOAD_KNOBS["fib"]["n"]
        with pytest.raises(ConfigError):
            wl(kind="fib", n=hi + 1)
        with pytest.raises(ConfigError):
            wl(kind="fib", n=lo - 1)

    def test_pow2_knob_enforced(self):
        with pytest.raises(ConfigError):
            wl(kind="fnv_hash", iterations=10, buffer_words=100)
        wl(kind="fnv_hash", iterations=10, buffer_words=128)

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigError):
            wl(kind="fib", n=True)


class TestCoreSpec:
    def test_workload_core_requires_workload(self):
        with pytest.raises(ConfigError):
            CoreSpec(role="workload")

    def test_sender_fields_are_sender_only(self):
        with pytest.raises(ConfigError):
            CoreSpec(role="workload", workload=wl(), interval=100)
        with pytest.raises(ConfigError):
            CoreSpec(role="uipi_sender", interval=100, count=3, workload=wl())

    def test_idle_core_takes_nothing(self):
        with pytest.raises(ConfigError):
            CoreSpec(role="idle", kb_timer=TimerSpec(period=512))
        CoreSpec(role="idle")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            workload_core(strategy="yolo")


class TestScenarioValidation:
    def test_needs_a_workload_core(self):
        with pytest.raises(ConfigError):
            scenario(cores=(CoreSpec(role="idle"),))

    def test_core_cap(self):
        with pytest.raises(ConfigError):
            scenario(cores=tuple(workload_core() for _ in range(MAX_CORES + 1)))

    def test_sender_needs_link(self):
        sender = CoreSpec(role="uipi_sender", interval=500, count=3)
        with pytest.raises(ConfigError, match="no link"):
            scenario(cores=(workload_core(), sender))

    def test_link_endpoints_validated(self):
        sender = CoreSpec(role="uipi_sender", interval=500, count=3)
        with pytest.raises(ConfigError):
            scenario(
                cores=(workload_core(), sender),
                links=(UipiLink(sender=1, receiver=5, vector=9),),
            )

    def test_receiver_gets_at_most_one_link(self):
        senders = (
            CoreSpec(role="uipi_sender", interval=500, count=3),
            CoreSpec(role="uipi_sender", interval=700, count=3),
        )
        with pytest.raises(ConfigError, match="more than one link"):
            scenario(
                cores=(workload_core(), *senders),
                links=(
                    UipiLink(sender=1, receiver=0, vector=9),
                    UipiLink(sender=2, receiver=0, vector=10),
                ),
            )

    def test_at_most_one_memory_image_workload(self):
        assert "quicksort" in MEMORY_WORKLOAD_KINDS
        cores = (
            CoreSpec(role="workload", workload=wl("quicksort", n=8, seed=1)),
            CoreSpec(role="workload", workload=wl("matmul", size=3)),
        )
        with pytest.raises(ConfigError, match="memory-image"):
            scenario(cores=cores)
        # Register-only kinds replicate freely alongside one memory kind.
        scenario(
            cores=(
                CoreSpec(role="workload", workload=wl("quicksort", n=8, seed=1)),
                workload_core(),
                CoreSpec(role="workload", workload=wl("fib", n=5)),
            )
        )

    def test_spurious_uintr_must_target_a_receiver(self):
        faults = FaultSpec(
            seed=1, faults=(Fault(kind="spurious_uintr", core=0, at=100),)
        )
        with pytest.raises(ConfigError, match="spurious_uintr"):
            scenario(faults=faults)
        sender = CoreSpec(role="uipi_sender", interval=500, count=3)
        scenario(
            cores=(workload_core(), sender),
            links=(UipiLink(sender=1, receiver=0, vector=9),),
            faults=faults,
        )

    def test_colliding_message_faults_rejected(self):
        faults = FaultSpec(
            seed=1,
            faults=(
                Fault(kind="drop_send", core=0, index=2),
                Fault(kind="dup_send", core=0, index=2),
            ),
        )
        with pytest.raises(ConfigError, match="accept #2"):
            scenario(faults=faults)

    def test_fault_core_in_range(self):
        faults = FaultSpec(seed=1, faults=(Fault(kind="upid_stall", core=4, at=10),))
        with pytest.raises(ConfigError):
            scenario(faults=faults)

    def test_unknown_engine_leg_rejected(self):
        with pytest.raises(ConfigError):
            scenario(engines=("naive", "warp"))
        with pytest.raises(ConfigError, match="duplicate"):
            scenario(engines=("naive", "naive"))

    def test_max_cycles_bounds(self):
        with pytest.raises(ConfigError):
            scenario(max_cycles=10)


class TestCanonicalJson:
    def _rich(self):
        sender = CoreSpec(role="uipi_sender", interval=500, count=3)
        receiver = CoreSpec(
            role="workload",
            workload=wl("quicksort", n=16, seed=5),
            strategy="tracked",
            safepoint=True,
            kb_timer=TimerSpec(period=1024),
        )
        return scenario(
            cores=(receiver, sender, CoreSpec(role="idle")),
            links=(UipiLink(sender=1, receiver=0, vector=33),),
            faults=FaultSpec(
                seed=9,
                faults=(
                    Fault(kind="upid_stall", core=0, at=700),
                    Fault(kind="drop_send", core=0, index=1),
                ),
            ),
        )

    def test_round_trip_identity(self):
        s = self._rich()
        assert Scenario.loads(s.dumps()) == s
        assert Scenario.loads(s.dumps()).dumps() == s.dumps()

    def test_dumps_is_canonical(self):
        dump = self._rich().dumps()
        obj = json.loads(dump)
        assert dump == json.dumps(obj, sort_keys=True, separators=(",", ":"))

    def test_unknown_key_rejected(self):
        obj = json.loads(self._rich().dumps())
        obj["color"] = "red"
        with pytest.raises(ConfigError, match="unknown"):
            Scenario.from_json(obj)

    def test_nested_unknown_key_rejected(self):
        obj = json.loads(self._rich().dumps())
        obj["cores"][0]["turbo"] = True
        with pytest.raises(ConfigError, match="unknown"):
            Scenario.from_json(obj)

    def test_scenario_id_tracks_content(self):
        s = self._rich()
        assert s.scenario_id() == Scenario.loads(s.dumps()).scenario_id()
        assert s.scenario_id() != scenario().scenario_id()

    def test_malformed_json_raises_config_error(self):
        with pytest.raises(ConfigError):
            Scenario.loads("{oops")


class TestSizeKey:
    def test_orders_structure_before_magnitude(self):
        small = scenario()
        bigger_cores = scenario(cores=(workload_core(), workload_core()))
        assert small.size_key() < bigger_cores.size_key()
        bigger_budget = scenario(max_cycles=20_000)
        assert small.size_key() < bigger_budget.size_key()

    def test_counts_faults_and_timers(self):
        with_fault = scenario(
            faults=FaultSpec(seed=1, faults=(Fault(kind="upid_stall", core=0, at=10),))
        )
        assert scenario().size_key() < with_fault.size_key()
        with_timer = scenario(
            cores=(workload_core(kb_timer=TimerSpec(period=512)),)
        )
        assert scenario().size_key() < with_timer.size_key()
