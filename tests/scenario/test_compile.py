"""Scenario compiler: deterministic builds, correct wiring."""

import pytest

from repro.apps import microbench as mb
from repro.common.errors import ConfigError
from repro.faults.plan import Fault, FaultPlan
from repro.scenario.compile import (
    build_system,
    compile_core,
    compile_plan,
    compile_workload,
)
from repro.scenario.dsl import (
    ENGINE_LEG_NAMES,
    CoreSpec,
    FaultSpec,
    Scenario,
    TimerSpec,
    UipiLink,
    WorkloadSpec,
)


def wl(kind="count_loop", **knobs):
    if not knobs:
        knobs = {"iterations": 100}
    return WorkloadSpec(kind=kind, knobs=tuple(sorted(knobs.items())))


def scenario(**overrides):
    base = dict(
        name="c",
        cores=(CoreSpec(role="workload", workload=wl()),),
        links=(),
        faults=FaultSpec(seed=1),
        engines=ENGINE_LEG_NAMES,
        max_cycles=10_000,
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestCompileWorkload:
    @pytest.mark.parametrize(
        "spec",
        [
            wl(),
            wl("fib", n=6),
            wl("base64", iterations=2),
            wl("fnv_hash", iterations=8, buffer_words=64),
            wl("memops", iterations=8, footprint_kb=1),
            wl("pointer_chase", num_nodes=16, stride=64, iterations=8),
            wl("matmul", size=3),
            wl("quicksort", n=8, seed=1),
        ],
        ids=lambda s: s.kind,
    )
    def test_every_kind_compiles_to_a_workload(self, spec):
        built = compile_workload(spec)
        assert isinstance(built, mb.Workload)
        assert built.program

    def test_same_spec_same_program(self):
        spec = wl("quicksort", n=16, seed=5)
        a, b = compile_workload(spec), compile_workload(spec)
        assert [str(i) for i in a.program.instructions] == [
            str(i) for i in b.program.instructions
        ]

    def test_per_core_handler_counters_never_alias(self):
        spec = CoreSpec(role="workload", workload=wl())
        programs = [
            "\n".join(
                str(i) for i in compile_core(spec, core_id=c).program.instructions
            )
            for c in (0, 1)
        ]
        assert programs[0] != programs[1]
        assert str(mb.HANDLER_COUNTER_ADDR + 64) in programs[1]


class TestCompilePlan:
    def test_explicit_faults_win(self):
        faults = (Fault(kind="upid_stall", core=0, at=10),)
        spec = FaultSpec(seed=9, count=5, faults=faults)
        assert compile_plan(spec, cores=2) == FaultPlan(seed=9, faults=faults)

    def test_zero_count_is_empty(self):
        assert compile_plan(FaultSpec(seed=9), cores=2).faults == ()

    def test_seeded_draw_is_byte_stable(self):
        spec = FaultSpec(seed=9, count=4)
        a = compile_plan(spec, cores=3)
        assert a == compile_plan(spec, cores=3)
        assert len(a.faults) <= 4
        assert set(a.kinds()) <= set(spec.kinds)


class TestBuildSystem:
    def test_builds_are_independent(self):
        s = scenario()
        a, b = build_system(s), build_system(s)
        assert a.system is not b.system
        a.system.run(max_cycles=s.max_cycles)
        assert not b.system.cores[0].halted

    def test_watch_cores_are_the_workload_cores(self):
        s = scenario(
            cores=(
                CoreSpec(role="workload", workload=wl()),
                CoreSpec(role="uipi_sender", interval=500, count=3),
                CoreSpec(role="idle"),
                CoreSpec(role="workload", workload=wl("fib", n=5)),
            ),
            links=(UipiLink(sender=1, receiver=0, vector=9),),
        )
        assert build_system(s).watch_cores == (0, 3)

    def test_links_strategies_and_timers_are_wired(self):
        s = scenario(
            cores=(
                CoreSpec(
                    role="workload",
                    workload=wl(),
                    strategy="drain",
                    safepoint=True,
                    kb_timer=TimerSpec(period=1024),
                ),
                CoreSpec(role="uipi_sender", interval=500, count=3),
            ),
            links=(UipiLink(sender=1, receiver=0, vector=33),),
        )
        built = build_system(s)
        receiver = built.system.cores[0]
        assert type(receiver.strategy).__name__ == "DrainStrategy"
        assert receiver.uintr.safepoint_mode is True
        assert receiver.uintr.kb_timer.enabled
        assert receiver.uintr.kb_timer.period == 1024
        sender = built.system.cores[1]
        assert sender.uitt is not None  # the UIPI link registered a UITT entry

    def test_seeded_spurious_on_linkless_core_rejected(self):
        # The DSL cannot see inside a seeded draw; the compiler re-checks.
        s = scenario(
            faults=FaultSpec(seed=2, count=8, kinds=("spurious_uintr",))
        )
        with pytest.raises(ConfigError, match="spurious_uintr"):
            build_system(s)
