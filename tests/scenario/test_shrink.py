"""Shrinker and crash corpus: minimize preserving identity, store strictly."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.faults.plan import Fault
from repro.scenario.corpus import ARTIFACT_VERSION, CrashCorpus
from repro.scenario.dsl import (
    ENGINE_LEG_NAMES,
    CoreSpec,
    FaultSpec,
    Scenario,
    TimerSpec,
    UipiLink,
    WorkloadSpec,
)
from repro.scenario.fuzz import ENV_TEST_DIVERGENCE, run_one
from repro.scenario.shrink import shrink


def roomy_scenario():
    """Deliberately padded: idle core, sender, timer, fault, big budget —
    all of it droppable once the hook is what makes the finding fire."""
    return Scenario(
        name="roomy",
        cores=(
            CoreSpec(
                role="workload",
                workload=WorkloadSpec(
                    kind="count_loop", knobs=(("iterations", 500),)
                ),
                kb_timer=TimerSpec(period=2048),
            ),
            CoreSpec(role="uipi_sender", interval=600, count=4),
            CoreSpec(role="idle"),
        ),
        links=(UipiLink(sender=1, receiver=0, vector=9),),
        faults=FaultSpec(
            seed=5, faults=(Fault(kind="upid_stall", core=0, at=900),)
        ),
        engines=ENGINE_LEG_NAMES,
        max_cycles=60_000,
        seed=21,
    )


@pytest.fixture
def hooked_finding(monkeypatch):
    monkeypatch.setenv(ENV_TEST_DIVERGENCE, "fast+batch")
    findings = run_one(roomy_scenario())
    assert findings, "the test hook must produce a finding"
    return findings[0]


class TestShrink:
    def test_shrinks_strictly_smaller_same_fingerprint(self, hooked_finding):
        result = shrink(hooked_finding)
        assert result.shrank
        assert result.finding.fingerprint == hooked_finding.fingerprint
        assert result.finding.scenario.size_key() < roomy_scenario().size_key()
        assert result.steps_accepted > 0
        assert result.attempts >= result.steps_accepted

    def test_shrunk_scenario_still_reproduces(self, hooked_finding):
        result = shrink(hooked_finding)
        fps = {f.fingerprint for f in run_one(result.finding.scenario)}
        assert hooked_finding.fingerprint in fps

    def test_shrunk_scenario_sheds_the_padding(self, hooked_finding):
        # The hook fires on any scenario, so everything droppable goes:
        # one bare workload core, no faults, no timers, minimal budget.
        small = shrink(hooked_finding).finding.scenario
        assert len(small.cores) == 1
        assert small.cores[0].kb_timer is None
        assert small.links == ()
        assert small.faults.faults == () and small.faults.count == 0

    def test_attempt_cap_respected(self, hooked_finding):
        result = shrink(hooked_finding, max_attempts=3)
        assert result.attempts <= 3

    def test_unreproducible_finding_comes_back_unshrunk(self, hooked_finding):
        # Drop the hook: nothing reproduces, so no candidate is accepted.
        import os

        del os.environ[ENV_TEST_DIVERGENCE]
        result = shrink(hooked_finding, max_attempts=10)
        assert not result.shrank
        assert result.finding.scenario == hooked_finding.scenario
        assert result.steps_accepted == 0


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path, hooked_finding):
        corpus = CrashCorpus(tmp_path / "corpus")
        path = corpus.save(hooked_finding)
        assert path is not None
        assert corpus.fingerprints() == [hooked_finding.fingerprint]
        obj = corpus.load(path)
        assert obj["fingerprint"] == hooked_finding.fingerprint
        assert obj["scenario_obj"] == hooked_finding.scenario

    def test_dedup_by_fingerprint(self, tmp_path, hooked_finding):
        corpus = CrashCorpus(tmp_path)
        assert corpus.save(hooked_finding) is not None
        assert corpus.save(hooked_finding) is None
        assert len(corpus.fingerprints()) == 1

    def test_shrink_metadata_recorded(self, tmp_path, hooked_finding):
        result = shrink(hooked_finding)
        corpus = CrashCorpus(tmp_path)
        path = corpus.save(result.finding, result)
        obj = corpus.load(path)
        shrunk = obj["shrunk"]
        assert shrunk["from_scenario_id"] == roomy_scenario().scenario_id()
        assert shrunk["to_size_key"] < shrunk["from_size_key"]
        assert shrunk["steps_accepted"] == result.steps_accepted

    def _artifact(self, tmp_path, hooked_finding, **overrides):
        corpus = CrashCorpus(tmp_path)
        path = corpus.save(hooked_finding)
        obj = json.loads(path.read_text())
        obj.update(overrides)
        path.write_text(json.dumps(obj))
        return corpus, path

    def test_unknown_key_rejected(self, tmp_path, hooked_finding):
        corpus, path = self._artifact(tmp_path, hooked_finding, extra=1)
        with pytest.raises(ConfigError, match="unknown key"):
            corpus.load(path)

    def test_version_mismatch_rejected(self, tmp_path, hooked_finding):
        corpus, path = self._artifact(
            tmp_path, hooked_finding, version=ARTIFACT_VERSION + 1
        )
        with pytest.raises(ConfigError, match="version"):
            corpus.load(path)

    def test_unknown_finding_kind_rejected(self, tmp_path, hooked_finding):
        corpus, path = self._artifact(tmp_path, hooked_finding, kind="vibes")
        with pytest.raises(ConfigError, match="finding kind"):
            corpus.load(path)

    def test_corrupt_scenario_rejected(self, tmp_path, hooked_finding):
        corpus, path = self._artifact(tmp_path, hooked_finding)
        obj = json.loads(path.read_text())
        obj["scenario"]["max_cycles"] = 1
        path.write_text(json.dumps(obj))
        with pytest.raises(ConfigError):
            corpus.load(path)

    def test_malformed_json_rejected(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            CrashCorpus(tmp_path).load(bad)

    def test_missing_artifact_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            CrashCorpus(tmp_path).load(tmp_path / "absent.json")

    def test_empty_corpus_lists_nothing(self, tmp_path):
        assert CrashCorpus(tmp_path / "never-made").fingerprints() == []
