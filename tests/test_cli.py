"""The ``python -m repro`` CLI."""

import pytest

from repro.cli import EXPERIMENTS, _RUNNERS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_every_experiment_has_a_runner(self):
        assert set(_RUNNERS) == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestQuickCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "interrupts_delivered" in out

    def test_quickstart_tracked(self, capsys):
        assert main(["quickstart", "--tracked"]) == 0
        assert "tracked" in capsys.readouterr().out

    def test_costs_defaults(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "senduipi" in out and "383" in out

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "send_to_interrupt" in capsys.readouterr().out

    def test_experiment_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        assert "setitimer" in capsys.readouterr().out

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "busy_spin" in out and "xui" in out


class TestPerfOptions:
    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["experiment", "fig4", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_defaults_to_none(self):
        args = build_parser().parse_args(["experiment", "fig4"])
        assert args.jobs is None

    def test_experiment_fig6_with_jobs(self, capsys):
        assert main(["experiment", "fig6", "--jobs", "2"]) == 0
        assert "setitimer" in capsys.readouterr().out

    def test_perf_selftest_ok(self, capsys, monkeypatch):
        import repro.perf.selftest as selftest

        seen = {}

        def fake_run_selftest(jobs, report=None):
            seen["jobs"] = jobs
            return {"ok": True, "checks": {}, "seconds": {}, "warm_speedup": 1.0}

        monkeypatch.setattr(selftest, "run_selftest", fake_run_selftest)
        assert main(["perf-selftest", "--jobs", "3"]) == 0
        assert seen["jobs"] == 3
        assert "perf-selftest: OK" in capsys.readouterr().out

    def test_perf_selftest_failure_exit_code(self, capsys, monkeypatch):
        import repro.perf.selftest as selftest

        monkeypatch.setattr(
            selftest,
            "run_selftest",
            lambda jobs, report=None: {"ok": False},
        )
        assert main(["perf-selftest"]) == 1
        assert "FAILED" in capsys.readouterr().err


class TestObservabilityOptions:
    def test_trace_and_metrics_flags_parse(self):
        args = build_parser().parse_args(
            ["experiment", "fig2", "--trace-out", "t.json", "--metrics-out", "m.json"]
        )
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"

    def test_flags_default_to_none(self):
        args = build_parser().parse_args(["experiment", "fig2"])
        assert args.trace_out is None
        assert args.metrics_out is None

    def test_experiment_with_trace_out_writes_perfetto_json(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "experiment",
                    "fig2",
                    "--trace-out",
                    str(trace_path),
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "observability pass" in out
        assert "Figure 4 ordering" in out

        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        phases = {record["ph"] for record in trace["traceEvents"]}
        assert "M" in phases and "i" in phases

        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == "repro.obs.metrics/v1"
        assert any(
            name.startswith("delivery.") and name.endswith(".total")
            for name in metrics["histograms"]
        )


class TestBenchGate:
    def test_defaults(self):
        args = build_parser().parse_args(["bench-gate"])
        assert args.tolerance == "25%"
        assert args.baseline is None
        assert args.json_out is None

    def test_gate_wires_parsed_arguments_through(self, monkeypatch, tmp_path):
        from pathlib import Path

        import repro.obs.regress as regress

        seen = {}

        def fake_run_gate(tolerance, baseline, report, json_out):
            seen.update(tolerance=tolerance, baseline=baseline, json_out=json_out)
            return 0

        monkeypatch.setattr(regress, "run_gate", fake_run_gate)
        assert (
            main(
                [
                    "bench-gate",
                    "--tolerance",
                    "10%",
                    "--baseline",
                    str(tmp_path / "b.json"),
                    "--json-out",
                    str(tmp_path / "v.json"),
                ]
            )
            == 0
        )
        assert seen["tolerance"] == 0.10
        assert seen["baseline"] == Path(tmp_path / "b.json")
        assert seen["json_out"] == Path(tmp_path / "v.json")

    def test_bad_tolerance_is_a_usage_error(self, capsys):
        assert main(["bench-gate", "--tolerance", "lots"]) == 2
        assert "error" in capsys.readouterr().err

    def test_regression_exit_code_propagates(self, monkeypatch):
        import repro.obs.regress as regress

        monkeypatch.setattr(regress, "run_gate", lambda **kwargs: 1)
        assert main(["bench-gate"]) == 1


class TestFuzz:
    """The fuzz CLI end to end, including the acceptance flow:
    hook -> caught -> shrunk -> saved -> replayed by ``fuzz repro``."""

    HOOK = "REPRO_FUZZ_TEST_DIVERGENCE"

    def test_clean_seeds_exit_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(self.HOOK, raising=False)
        corpus = tmp_path / "corpus"
        assert (
            main(["fuzz", "--seeds", "2", "--corpus-dir", str(corpus)]) == 0
        )
        out = capsys.readouterr().out
        assert "fuzz: OK" in out
        assert "2 scenario(s)" in out
        assert not corpus.exists()  # nothing to save

    def test_findings_exit_one_and_land_in_corpus(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(self.HOOK, "fast+batch")
        corpus = tmp_path / "corpus"
        rc = main(
            [
                "fuzz",
                "--seeds",
                "1",
                "--corpus-dir",
                str(corpus),
                "--no-shrink",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "divergence on fast+batch" in out
        artifacts = list(corpus.glob("*.json"))
        assert len(artifacts) == 1

    def test_rerun_dedups_against_existing_corpus(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(self.HOOK, "fast+batch")
        corpus = tmp_path / "corpus"
        args = ["fuzz", "--seeds", "1", "--corpus-dir", str(corpus), "--no-shrink"]
        assert main(args) == 1
        capsys.readouterr()
        assert main(args) == 1  # findings still reported...
        assert "already in corpus" in capsys.readouterr().out
        assert len(list(corpus.glob("*.json"))) == 1  # ...but stored once

    def test_metrics_out_writes_schema(self, tmp_path, monkeypatch):
        import json

        monkeypatch.delenv(self.HOOK, raising=False)
        metrics = tmp_path / "m.json"
        assert (
            main(
                [
                    "fuzz",
                    "--seeds",
                    "1",
                    "--corpus-dir",
                    str(tmp_path / "c"),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        obj = json.loads(metrics.read_text())
        assert obj["schema"] == "repro.obs.metrics/v1"
        assert obj["counters"]["fuzz.scenarios_run"] == 1
        assert obj["counters"]["fuzz.findings"] == 0

    def test_bad_artifact_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["fuzz", "repro", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_acceptance_flow_shrink_then_replay(
        self, tmp_path, capsys, monkeypatch
    ):
        # 1. Seeded bug hook on: the fuzzer catches the divergence and
        #    shrinks it to a strictly smaller scenario.
        monkeypatch.setenv(self.HOOK, "fast+batch")
        corpus = tmp_path / "corpus"
        assert (
            main(["fuzz", "--seeds", "1", "--corpus-dir", str(corpus)]) == 1
        )
        out = capsys.readouterr().out
        assert "shrunk" in out
        (artifact,) = corpus.glob("*.json")

        # 2. The shrunk artifact replays: same fingerprint reproduces.
        assert main(["fuzz", "repro", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "[MATCH]" in out
        assert "fuzz repro: reproduced" in out

        # 3. Hook off (bug "fixed"): the artifact no longer reproduces.
        monkeypatch.delenv(self.HOOK)
        assert main(["fuzz", "repro", str(artifact)]) == 1
        assert "NOT reproduced" in capsys.readouterr().err


class TestClusterCommand:
    def test_cluster_small_run_with_report(self, capsys, tmp_path):
        out = tmp_path / "cluster.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "cluster", "--tenants", "32", "--shards", "2", "--hosts", "2",
            "--tenant-rps", "2000", "--duration-ms", "10", "--seed", "5",
            "--json-out", str(out), "--metrics-out", str(metrics),
        ]) == 0
        captured = capsys.readouterr().out
        assert "ordering verdict" in captured
        import json

        report = json.loads(out.read_text())
        assert report["schema"] == "repro.cluster.report/v1"
        assert {a["strategy"] for a in report["aggregates"]} == {"flush", "tracked", "timer"}
        payload = json.loads(metrics.read_text())
        assert "cluster.flush.latency" in payload["histograms"]

    def test_cluster_rejects_bad_topology(self, capsys):
        assert main(["cluster", "--tenants", "2", "--shards", "4"]) == 2

    def test_cluster_subset_of_strategies_not_applicable(self, capsys):
        assert main([
            "cluster", "--tenants", "16", "--shards", "2", "--hosts", "1",
            "--tenant-rps", "1000", "--duration-ms", "5",
            "--strategies", "tracked,timer",
        ]) == 0
        assert "not applicable" in capsys.readouterr().out
