"""The ``python -m repro`` CLI."""

import pytest

from repro.cli import EXPERIMENTS, _RUNNERS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_every_experiment_has_a_runner(self):
        assert set(_RUNNERS) == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestQuickCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "interrupts_delivered" in out

    def test_quickstart_tracked(self, capsys):
        assert main(["quickstart", "--tracked"]) == 0
        assert "tracked" in capsys.readouterr().out

    def test_costs_defaults(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "senduipi" in out and "383" in out

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "send_to_interrupt" in capsys.readouterr().out

    def test_experiment_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        assert "setitimer" in capsys.readouterr().out

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "busy_spin" in out and "xui" in out
