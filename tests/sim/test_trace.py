"""Trace recorder: filtering, interval reconstruction, bounded retention."""

import pytest

from repro import obs
from repro.common.errors import ConfigError
from repro.sim.trace import TraceRecorder


class TestRecording:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", core=0)
        trace.record(2.0, "b")
        trace.record(3.0, "a", core=1)
        assert [e.time for e in trace.of_kind("a")] == [1.0, 3.0]

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "a")
        assert trace.events == []

    def test_detail_kwargs_stored(self):
        trace = TraceRecorder()
        trace.record(1.0, "icr_write", core=3, vector=0xEC)
        assert trace.events[0].detail == {"core": 3, "vector": 0xEC}

    def test_first_and_last(self):
        trace = TraceRecorder()
        trace.record(1.0, "x")
        trace.record(5.0, "x")
        assert trace.first("x").time == 1.0
        assert trace.last("x").time == 5.0
        assert trace.first("missing") is None
        assert trace.last("missing") is None

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "x")
        trace.clear()
        assert trace.events == []


class TestIntervals:
    def test_interval_between_kinds(self):
        trace = TraceRecorder()
        trace.record(10.0, "send")
        trace.record(390.0, "arrive")
        assert trace.interval("send", "arrive") == 380.0

    def test_interval_requires_end_after_start(self):
        trace = TraceRecorder()
        trace.record(100.0, "send")
        trace.record(50.0, "arrive")  # earlier: not a valid end
        assert trace.interval("send", "arrive") is None

    def test_interval_missing_start(self):
        trace = TraceRecorder()
        trace.record(1.0, "arrive")
        assert trace.interval("send", "arrive") is None

    def test_interval_missing_end(self):
        trace = TraceRecorder()
        trace.record(1.0, "send")
        assert trace.interval("send", "arrive") is None

    def test_interval_uses_first_start_and_first_valid_end(self):
        trace = TraceRecorder()
        trace.record(10.0, "send")
        trace.record(50.0, "send")
        trace.record(390.0, "arrive")
        trace.record(800.0, "arrive")
        assert trace.interval("send", "arrive") == 380.0

    def test_interval_of_coincident_events_is_zero(self):
        trace = TraceRecorder()
        trace.record(5.0, "send")
        trace.record(5.0, "arrive")
        assert trace.interval("send", "arrive") == 0.0

    def test_interval_same_kind(self):
        # Period between consecutive fires: first "x" to the first "x" at or
        # after it — which is itself.
        trace = TraceRecorder()
        trace.record(10.0, "x")
        trace.record(30.0, "x")
        assert trace.interval("x", "x") == 0.0

    def test_interval_skips_ends_before_the_start(self):
        trace = TraceRecorder()
        trace.record(5.0, "arrive")  # stale end from an earlier delivery
        trace.record(10.0, "send")
        trace.record(25.0, "arrive")
        assert trace.interval("send", "arrive") == 15.0


class TestBoundedRetention:
    def test_default_is_unbounded(self):
        trace = TraceRecorder()
        for cycle in range(5000):
            trace.record(float(cycle), "tick")
        assert len(trace.events) == 5000
        assert trace.dropped == 0
        assert trace.max_events is None

    def test_max_events_keeps_newest(self):
        trace = TraceRecorder(max_events=4)
        for cycle in range(10):
            trace.record(float(cycle), "tick", n=cycle)
        assert [e.time for e in trace.events] == [6.0, 7.0, 8.0, 9.0]
        assert trace.dropped == 6

    def test_queries_see_only_the_window(self):
        trace = TraceRecorder(max_events=2)
        trace.record(1.0, "send")
        trace.record(2.0, "arrive")
        trace.record(3.0, "arrive")
        assert trace.first("send") is None  # evicted
        assert trace.interval("send", "arrive") is None
        assert trace.last("arrive").time == 3.0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigError):
            TraceRecorder(max_events=0)


class TestObsForwarding:
    def test_disabled_recorder_forwards_to_enabled_tracer(self):
        trace = TraceRecorder(enabled=False)
        obs.enable()
        try:
            trace.record(390.0, "ipi_arrival", core=0, vector=0xEC)
        finally:
            obs.disable()
        assert trace.events == []  # the event lives in exactly one place
        (event,) = obs.TRACER.events()
        assert event.name == "ipi_arrival"
        assert event.track == "apic0"
        assert event.args == {"core": 0, "vector": 0xEC}

    def test_enabled_recorder_does_not_double_record(self):
        trace = TraceRecorder(enabled=True)
        obs.enable()
        try:
            trace.record(10.0, "inject", core=0)
        finally:
            obs.disable()
        assert len(trace.events) == 1
        assert obs.TRACER.events() == []

    def test_disabled_everything_is_a_noop(self):
        trace = TraceRecorder(enabled=False)
        assert not obs.enabled
        trace.record(1.0, "x")
        assert trace.events == []
