"""Trace recorder: filtering and interval reconstruction."""

from repro.sim.trace import TraceRecorder


class TestRecording:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", core=0)
        trace.record(2.0, "b")
        trace.record(3.0, "a", core=1)
        assert [e.time for e in trace.of_kind("a")] == [1.0, 3.0]

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "a")
        assert trace.events == []

    def test_detail_kwargs_stored(self):
        trace = TraceRecorder()
        trace.record(1.0, "icr_write", core=3, vector=0xEC)
        assert trace.events[0].detail == {"core": 3, "vector": 0xEC}

    def test_first_and_last(self):
        trace = TraceRecorder()
        trace.record(1.0, "x")
        trace.record(5.0, "x")
        assert trace.first("x").time == 1.0
        assert trace.last("x").time == 5.0
        assert trace.first("missing") is None
        assert trace.last("missing") is None

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "x")
        trace.clear()
        assert trace.events == []


class TestIntervals:
    def test_interval_between_kinds(self):
        trace = TraceRecorder()
        trace.record(10.0, "send")
        trace.record(390.0, "arrive")
        assert trace.interval("send", "arrive") == 380.0

    def test_interval_requires_end_after_start(self):
        trace = TraceRecorder()
        trace.record(100.0, "send")
        trace.record(50.0, "arrive")  # earlier: not a valid end
        assert trace.interval("send", "arrive") is None

    def test_interval_missing_start(self):
        trace = TraceRecorder()
        trace.record(1.0, "arrive")
        assert trace.interval("send", "arrive") is None
