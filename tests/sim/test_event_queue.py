"""Event calendar ordering and cancellation."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.event import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None, "b")
        queue.push(1.0, lambda: None, "a")
        queue.push(3.0, lambda: None, "c")
        assert [queue.pop().name for _ in range(3)] == ["a", "c", "b"]

    def test_fifo_tie_break(self):
        # Same-instant events fire in scheduling order: the UPID write must
        # be visible before the IPI that announces it.
        queue = EventQueue()
        queue.push(2.0, lambda: None, "first")
        queue.push(2.0, lambda: None, "second")
        assert queue.pop().name == "first"
        assert queue.pop().name == "second"

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(9.0, lambda: None)
        assert queue.peek_time() == 9.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, "dead")
        queue.push(2.0, lambda: None, "live")
        event.cancel()
        assert queue.pop().name == "live"

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_bool_reflects_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        assert queue
        event.cancel()
        assert not queue

    def test_peek_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        head.cancel()
        assert queue.peek_time() == 5.0


class TestCompaction:
    """Amortized sweep of cancelled entries (heavy timer re-arming)."""

    def _flood(self, queue, live=10, dead=200):
        keepers = [queue.push(float(1000 + i), lambda: None) for i in range(live)]
        victims = [queue.push(float(i), lambda: None) for i in range(dead)]
        return keepers, victims

    def test_mass_cancellation_compacts_heap(self):
        queue = EventQueue()
        keepers, victims = self._flood(queue)
        assert len(queue.heap) == 210
        for event in victims:
            event.cancel()
        # The sweep triggered once cancelled entries dominated: the heap
        # physically shrank well below the 210 scheduled (a small dead tail
        # under the compaction threshold may legitimately remain).
        assert len(queue.heap) < 100
        assert len(queue) == len(keepers)

    def test_small_queues_never_compact(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        # Below COMPACT_MIN_CANCELLED the dead entries just wait to surface.
        assert len(queue.heap) == 10
        assert len(queue) == 0

    def test_compaction_preserves_order_and_identity(self):
        queue = EventQueue()
        keepers, victims = self._flood(queue, live=5, dead=200)
        heap_before = queue.heap
        for event in victims:
            event.cancel()
        assert queue.heap is heap_before  # in-place: main loop holds a ref
        assert [queue.pop() for _ in range(5)] == sorted(
            keepers, key=lambda e: (e.time, e.sequence)
        )

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert queue._cancelled == 1

    def test_explicit_compact_resets_counter(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None).cancel()
        queue.compact()
        assert queue._cancelled == 0
        assert len(queue.heap) == 0
