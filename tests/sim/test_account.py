"""Per-core cycle accounting (free-cycle arithmetic of Figures 6/8/9)."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.account import CycleAccount


class TestCharging:
    def test_charge_accumulates_by_category(self):
        account = CycleAccount()
        account.charge("net", 100.0)
        account.charge("net", 50.0)
        account.charge("poll", 25.0)
        assert account.busy == {"net": 150.0, "poll": 25.0}

    def test_total_busy(self):
        account = CycleAccount()
        account.charge("a", 10.0)
        account.charge("b", 30.0)
        assert account.total_busy() == 40.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigError):
            CycleAccount().charge("x", -1.0)


class TestFractions:
    def test_busy_and_free_complement(self):
        account = CycleAccount()
        account.charge("work", 400.0)
        assert account.busy_fraction(1000.0) == pytest.approx(0.4)
        assert account.free_fraction(1000.0) == pytest.approx(0.6)

    def test_busy_fraction_clamped_at_one(self):
        account = CycleAccount()
        account.charge("work", 5000.0)
        assert account.busy_fraction(1000.0) == 1.0
        assert account.free_fraction(1000.0) == 0.0

    def test_category_fraction(self):
        account = CycleAccount()
        account.charge("net", 200.0)
        assert account.category_fraction("net", 1000.0) == pytest.approx(0.2)
        assert account.category_fraction("absent", 1000.0) == 0.0

    def test_zero_elapsed_rejected(self):
        account = CycleAccount()
        with pytest.raises(ConfigError):
            account.busy_fraction(0.0)

    def test_reset(self):
        account = CycleAccount()
        account.charge("x", 5.0)
        account.reset()
        assert account.total_busy() == 0.0
