"""Generator-based processes: timeouts, signals, mailboxes, joins."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.process import Process, Signal, Timeout, Waiter
from repro.sim.simulator import Simulator


class TestTimeouts:
    def test_timeout_resumes_after_delay(self):
        sim = Simulator()
        log = []

        def body():
            log.append(sim.now)
            yield Timeout(25.0)
            log.append(sim.now)

        Process(sim, body(), "p")
        sim.run()
        assert log == [0.0, 25.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_multiple_timeouts_sequence(self):
        sim = Simulator()
        log = []

        def body():
            for _ in range(3):
                yield Timeout(10.0)
                log.append(sim.now)

        Process(sim, body())
        sim.run()
        assert log == [10.0, 20.0, 30.0]


class TestSignals:
    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        signal = Signal(sim, "go")
        woken = []

        def waiter(name):
            payload = yield signal
            woken.append((name, payload, sim.now))

        Process(sim, waiter("a"))
        Process(sim, waiter("b"))
        sim.schedule(5.0, lambda: signal.fire("payload"))
        sim.run()
        assert sorted(woken) == [("a", "payload", 5.0), ("b", "payload", 5.0)]

    def test_fire_with_no_waiters_is_lost(self):
        sim = Simulator()
        signal = Signal(sim, "go")
        signal.fire()
        woken = []

        def waiter():
            yield signal
            woken.append(True)

        Process(sim, waiter())
        sim.run()
        assert woken == []  # blocked: the earlier fire did not buffer

    def test_fire_count(self):
        sim = Simulator()
        signal = Signal(sim)
        signal.fire()
        signal.fire()
        assert signal.fire_count == 2


class TestWaiter:
    def test_buffered_put_satisfies_later_get(self):
        sim = Simulator()
        box = Waiter(sim, "mail")
        box.put("hello")
        got = []

        def consumer():
            item = yield box
            got.append(item)

        Process(sim, consumer())
        sim.run()
        assert got == ["hello"]

    def test_blocking_get_woken_by_put(self):
        sim = Simulator()
        box = Waiter(sim)
        got = []

        def consumer():
            item = yield box
            got.append((item, sim.now))

        Process(sim, consumer())
        sim.schedule(12.0, lambda: box.put(42))
        sim.run()
        assert got == [(42, 12.0)]

    def test_fifo_buffering(self):
        sim = Simulator()
        box = Waiter(sim)
        box.put(1)
        box.put(2)
        assert box.try_get() == 1
        assert box.try_get() == 2
        assert box.try_get() is None

    def test_second_consumer_rejected(self):
        sim = Simulator()
        box = Waiter(sim)

        def consumer():
            yield box

        Process(sim, consumer())
        Process(sim, consumer())
        with pytest.raises(SimulationError):
            sim.run()


class TestJoin:
    def test_join_receives_return_value(self):
        sim = Simulator()
        results = []

        def worker():
            yield Timeout(10.0)
            return "done"

        def parent():
            child = Process(sim, worker(), "child")
            result = yield child
            results.append((result, sim.now))

        Process(sim, parent())
        sim.run()
        assert results == [("done", 10.0)]

    def test_join_on_finished_process(self):
        sim = Simulator()
        results = []

        def worker():
            return 7
            yield  # pragma: no cover

        def parent():
            child = Process(sim, worker())
            yield Timeout(50.0)  # child finishes long before the join
            result = yield child
            results.append(result)

        Process(sim, parent())
        sim.run()
        assert results == [7]

    def test_unsupported_condition_raises(self):
        sim = Simulator()

        def body():
            yield 42

        Process(sim, body())
        with pytest.raises(SimulationError):
            sim.run()
