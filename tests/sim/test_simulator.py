"""Simulator clock and main loop."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10.0]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_callbacks_can_chain(self):
        sim = Simulator()
        times = []

        def tick():
            times.append(sim.now)
            if sim.now < 30:
                sim.schedule(10.0, tick)

        sim.schedule(10.0, tick)
        sim.run()
        assert times == [10.0, 20.0, 30.0]


class TestRunBounds:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0
        assert sim.pending() == 1

    def test_run_until_advances_clock_when_drained(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=80.0)
        assert sim.now == 80.0

    def test_later_event_still_fires_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(100.0, lambda: fired.append(True))
        sim.run(until=50.0)
        sim.run()
        assert fired == [True]

    def test_max_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3
        assert sim.pending() == 2

    def test_step(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestCancelledFastPath:
    def test_cancelled_events_not_counted(self):
        sim = Simulator()
        fired = []
        for i in (1, 3):
            sim.schedule(float(i), lambda: fired.append(sim.now))
        for i in (2, 4):
            sim.schedule(float(i), lambda: fired.append(-1.0)).cancel()
        sim.run()
        assert fired == [1.0, 3.0]
        assert sim.events_processed == 2

    def test_cancelled_events_do_not_consume_max_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1)).cancel()
        sim.schedule(2.0, lambda: fired.append(2)).cancel()
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(max_events=1)
        assert fired == [3]
        assert sim.events_processed == 1

    def test_step_skips_cancelled_without_counting(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1)).cancel()
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [2]
        assert sim.events_processed == 1
        assert sim.step() is False

    def test_cancelled_head_leaves_clock_alone_when_drained(self):
        sim = Simulator()
        sim.schedule(9.0, lambda: None).cancel()
        sim.run()
        assert sim.now == 0.0
        assert sim.events_processed == 0


class TestRunUntilGuard:
    def test_run_until_lands_exactly_on_bound(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        assert sim.run_until(40.0) == 40.0
        assert sim.now == 40.0
        assert sim.pending() == 1

    def test_run_until_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run_until(2.0)

    def test_run_until_at_now_is_noop(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.run_until(sim.now) == sim.now


class TestNaNRejection:
    """NaN silently passes every ordered comparison, so a NaN delay would
    sail past the negative-delay guard and corrupt the heap ordering."""

    def test_schedule_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="NaN"):
            sim.schedule(float("nan"), lambda: None, name="bad")

    def test_schedule_at_nan_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="NaN"):
            sim.schedule_at(float("nan"), lambda: None, name="bad")

    def test_valid_schedules_still_accepted(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.schedule_at(5.0, lambda: None)
        assert sim.pending() == 2
