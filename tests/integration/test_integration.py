"""Cross-module integration scenarios."""

import pytest

from tests.conftest import COUNTER_ADDR, build_spin_receiver

from repro import quickstart_uipi_roundtrip
from repro.apps import microbench as mb
from repro.compiler.instrument import SafepointInstrumenter
from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.notify.costs import CostModel


class TestQuickstart:
    def test_flush_roundtrip(self):
        result = quickstart_uipi_roundtrip()
        assert result["interrupts_delivered"] == 1
        assert result["handler_counter"] == 1
        assert result["end_to_end_cycles"] > 0

    def test_tracked_roundtrip_faster(self):
        flush = quickstart_uipi_roundtrip(tracked=False)
        tracked = quickstart_uipi_roundtrip(tracked=True)
        assert tracked["end_to_end_cycles"] < flush["end_to_end_cycles"]


class TestMultipleSendersOneReceiver:
    def test_two_senders_distinct_vectors(self):
        """Two sender cores target one receiver with different user vectors;
        both posts arrive and the PIR accumulates correctly."""
        def sender():
            builder = ProgramBuilder("s")
            builder.emit(isa.senduipi(0))
            builder.emit(isa.halt())
            return builder.build()

        system = MultiCoreSystem(
            [sender(), sender(), build_spin_receiver()],
            [FlushStrategy(), FlushStrategy(), FlushStrategy()],
        )
        upid_addr = system.register_handler(2)
        system.register_sender(0, upid_addr, user_vector=1)
        system.register_sender(1, upid_addr, user_vector=2)
        system.run(200_000, until_halted=[0, 1])
        system.run(30_000)
        receiver = system.cores[2]
        assert receiver.stats.interrupts_delivered >= 1
        assert system.shared.read(COUNTER_ADDR) >= 1
        # All posted vectors eventually consumed.
        assert receiver.uintr.uirr == 0


class TestTimerPlusIpiMix:
    def test_kb_timer_and_uipi_coexist(self):
        """A receiver takes both KB-timer ticks and IPIs from a sender."""
        receiver = ProgramBuilder("r")
        receiver.emit(isa.movi(3, 4000))
        receiver.emit(isa.movi(4, 1))
        receiver.emit(isa.set_timer(3, 4))
        receiver.label("loop")
        receiver.emit(isa.addi(1, 1, 1))
        receiver.emit(isa.blti(1, 40_000, "loop"))
        receiver.emit(isa.halt())
        receiver.emit_default_handler(counter_addr=COUNTER_ADDR)

        sender = mb.make_uipi_timer_core(7000, 4)
        system = MultiCoreSystem(
            [receiver.build(), sender.program], [TrackedStrategy(), FlushStrategy()]
        )
        system.connect_uipi(1, 0, user_vector=1)
        system.enable_kb_timer(0)
        system.run(3_000_000, until_halted=[0])
        core = system.cores[0]
        assert core.halted
        # Timer ticks (every 4000) plus IPIs (every 7000) all delivered.
        assert core.stats.interrupts_delivered >= 6
        assert system.shared.read(COUNTER_ADDR) == core.stats.interrupts_delivered


class TestSafepointWorkloadEndToEnd:
    def test_instrumented_fib_under_safepoint_preemption(self):
        """Compiler-instrumented recursion + safepoint-mode KB timer:
        correctness preserved, interrupts delivered only at safepoints."""
        workload = mb.make_fib(n=15, instrument=SafepointInstrumenter())
        system = MultiCoreSystem([workload.program], [TrackedStrategy()])
        workload.install(system.shared)
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.safepoint_mode = True
        core.uintr.kb_timer.arm_periodic(4000, now=0)
        system.run(5_000_000, until_halted=[0])
        assert core.halted
        assert core.arch_regs[2] == 610  # fib(15)
        assert core.stats.interrupts_delivered >= 2


class TestCostModelDerivation:
    def test_from_cycle_model_matches_paper_bands(self):
        """The two tiers agree: re-deriving the cost model from the cycle
        tier lands within a factor-band of the paper constants."""
        derived = CostModel.from_cycle_model(quick=True)
        paper = CostModel.paper_defaults()
        assert derived.uipi_receive_flush == pytest.approx(paper.uipi_receive_flush, rel=0.35)
        assert derived.uipi_receive_tracked == pytest.approx(paper.uipi_receive_tracked, rel=0.35)
        assert derived.timer_receive_tracked == pytest.approx(paper.timer_receive_tracked, rel=0.35)
        assert derived.senduipi == pytest.approx(paper.senduipi, rel=0.2)
        # Ordering is preserved exactly.
        assert (
            derived.uipi_receive_flush
            > derived.uipi_receive_tracked
            > derived.timer_receive_tracked
        )


class TestDeviceToRuntimePath:
    def test_forwarded_interrupts_into_busy_program(self):
        """Device interrupts land in a memory-heavy program (cache pressure)
        without losing any, using tracking + forwarding."""
        workload = mb.make_memops(iterations=12_000)
        system = MultiCoreSystem([workload.program], [TrackedStrategy()])
        workload.install(system.shared)
        system.enable_forwarding(0, vector=40, user_vector=3)
        for index in range(6):
            system.raise_device_interrupt(0, 40, delay=2000 + 3000 * index)
        system.run(3_000_000, until_halted=[0])
        core = system.cores[0]
        assert core.halted
        assert core.stats.interrupts_delivered == 6
        assert system.shared.read(COUNTER_ADDR) == 6
