"""Failure injection: overloads, overflows, and protocol misuse."""

import pytest

from tests.conftest import build_spin_receiver

from repro.common.errors import ProtocolError
from repro.common.rng import RngStreams
from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.net.l3fwd import L3Forwarder, L3fwdConfig
from repro.net.nic import NIC
from repro.net.pktgen import PacketGenerator
from repro.notify.mechanisms import Mechanism
from repro.sim.simulator import Simulator


class TestRouterOverload:
    @pytest.mark.parametrize("mechanism", [Mechanism.POLLING, Mechanism.XUI_DEVICE])
    def test_offered_beyond_capacity_drops_or_queues(self, mechanism):
        """At 120% load the router saturates at core capacity; the ring
        absorbs bursts and eventually drops — no crash, no lost accounting."""
        sim = Simulator()
        config = L3fwdConfig(mechanism=mechanism, num_nics=1)
        nic = NIC(0, ring_size=256)
        forwarder = L3Forwarder(sim, [nic], config, rng=RngStreams(1))
        rate = 1.2 * 2e9 / config.per_packet_cost
        generator = PacketGenerator(sim, [nic], rate, rng=RngStreams(1))
        generator.start()
        sim.run(until=0.01 * 2e9)
        capacity_pps = 2e9 / config.per_packet_cost
        achieved = forwarder.forwarded / 0.01
        assert achieved <= capacity_pps * 1.02
        assert achieved >= capacity_pps * 0.9  # saturated, not collapsed
        # Conservation: everything offered is forwarded, queued, dropped, or
        # (at most one packet) in service at the cut-off instant.
        accounted = forwarder.forwarded + nic.pending() + nic.dropped
        assert 0 <= generator.generated - accounted <= 1

    def test_ring_overflow_counts_drops(self):
        nic = NIC(0, ring_size=4)
        from repro.net.packet import Packet

        for i in range(10):
            nic.receive(Packet(dst_ip=1, arrival_time=float(i)))
        assert nic.pending() == 4
        assert nic.dropped == 6


class TestRuntimeOverload:
    def test_sustained_overload_starves_scans_not_crash(self):
        import math

        from repro.experiments.fig7_rocksdb import run_point

        # Offered load beyond the ~244k req/s core capacity: round-robin
        # favours the 99.5% of requests that are cheap GETs, so completions
        # stay high while SCANs starve (their tail explodes).
        point = run_point("xui", 300_000, duration_seconds=0.02)
        assert point.achieved_rps < 300_000  # cannot fully keep up
        assert math.isnan(point.scan_p999_us) or point.scan_p999_us > 3_000
        assert point.get_p999_us > 0  # still measuring, not wedged


class TestProtocolMisuse:
    def test_senduipi_without_registration_raises(self):
        sender = ProgramBuilder("s")
        sender.emit(isa.senduipi(0))
        sender.emit(isa.halt())
        system = MultiCoreSystem([sender.build()], [FlushStrategy()])
        with pytest.raises(ProtocolError):
            system.run(50_000, until_halted=[0])

    def test_delivery_without_handler_raises(self):
        receiver = ProgramBuilder("r")
        receiver.label("loop")
        receiver.emit(isa.addi(1, 1, 1))
        receiver.emit(isa.jmp("loop"))
        # No handler registered; raise a forwarded device interrupt anyway.
        system = MultiCoreSystem([receiver.build()], [FlushStrategy()])
        apic = system.apics[0]
        apic.enable_forwarding(40, user_vector=3)
        apic.set_active_vectors(apic.forwarding_enabled)
        system.raise_device_interrupt(0, 40, delay=100)
        with pytest.raises(ProtocolError):
            system.run(20_000)

    def test_uitt_index_out_of_range_raises(self):
        from repro.common.errors import ConfigError

        sender = ProgramBuilder("s")
        sender.emit(isa.senduipi(7))  # only index 0 registered
        sender.emit(isa.halt())
        system = MultiCoreSystem(
            [sender.build(), build_spin_receiver()], [FlushStrategy(), FlushStrategy()]
        )
        system.connect_uipi(0, 1, user_vector=1)
        # Reading an unregistered UITT slot yields a zero UPID pointer; the
        # microcode dereferences address 0 (a benign modelled access) and the
        # IPI goes nowhere harmful — it must not crash the simulation.
        try:
            system.run(50_000, until_halted=[0])
        except Exception as exc:  # pragma: no cover - documenting behaviour
            pytest.fail(f"unregistered UITT index crashed the simulation: {exc}")
