"""The calibrated cost model (paper constants and derived helpers)."""

import pytest

from repro.common.errors import ConfigError
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism


class TestPaperDefaults:
    def test_table2_constants(self):
        costs = CostModel.paper_defaults()
        assert costs.senduipi == 383.0
        assert costs.clui == 2.0
        assert costs.stui == 32.0
        assert costs.uipi_end_to_end == 1360.0

    def test_fig4_ordering(self):
        costs = CostModel()
        assert costs.uipi_receive_flush > costs.uipi_receive_tracked > costs.timer_receive_tracked

    def test_signal_is_microseconds(self):
        costs = CostModel()
        assert costs.signal_delivery == 4800.0  # 2.4 us at 2 GHz
        assert costs.signal_kernel_share < costs.signal_delivery

    def test_polling_is_two_orders_below_uipi(self):
        # §2: UIPI is roughly 6x-9x slower than ~100-cycle memory notification.
        costs = CostModel()
        assert 6 <= costs.uipi_receive_flush / costs.poll_notify <= 9

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(senduipi=-1.0)


class TestDerivedHelpers:
    def test_preemption_cost_per_mechanism(self):
        costs = CostModel()
        assert costs.preemption_cost(Mechanism.UIPI) == costs.uipi_receive_flush
        assert costs.preemption_cost(Mechanism.XUI_KB_TIMER) == costs.timer_receive_tracked
        assert costs.preemption_cost(Mechanism.XUI_DEVICE) == costs.timer_receive_tracked
        assert costs.preemption_cost(Mechanism.SIGNAL) == costs.signal_delivery

    def test_preemption_cost_accepts_string(self):
        costs = CostModel()
        assert costs.preemption_cost("uipi") == costs.uipi_receive_flush

    def test_periodic_poll_has_no_preemption_cost(self):
        with pytest.raises(ConfigError):
            CostModel().preemption_cost(Mechanism.PERIODIC_POLL)

    def test_timer_core_capacity_matches_paper(self):
        """§6.1: one rdtsc-spin core supports ~22 workers at a 5 us quantum."""
        capacity = CostModel().timer_core_capacity(10_000)
        assert capacity == 22

    def test_scaled_override(self):
        costs = CostModel().scaled(senduipi=400.0)
        assert costs.senduipi == 400.0
        assert costs.clui == 2.0  # untouched


class TestMechanismEnum:
    def test_xui_classification(self):
        assert Mechanism.XUI_KB_TIMER.is_xui
        assert Mechanism.XUI_DEVICE.is_xui
        assert not Mechanism.UIPI.is_xui
        assert not Mechanism.POLLING.is_xui

    def test_timer_core_requirement(self):
        # UIPI-sourced preemption needs a dedicated time source (§2);
        # the KB timer does not (§4.3).
        assert Mechanism.UIPI.needs_timer_core
        assert Mechanism.XUI_TRACKED_IPI.needs_timer_core
        assert not Mechanism.XUI_KB_TIMER.needs_timer_core
        assert not Mechanism.POLLING.needs_timer_core

    def test_round_trip_by_value(self):
        assert Mechanism("uipi") is Mechanism.UIPI
