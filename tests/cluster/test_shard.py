"""Shard jobs: purity, common random numbers, per-scenario behaviour."""

import json
import pickle

import pytest

from repro.common.errors import ConfigError
from repro.notify.costs import CostModel
from repro.cluster.shard import ShardJob, run_shard_job
from repro.cluster.topology import TenantSpec


def _job(strategy="timer", scenario="rocksdb", count=8, rps=2000.0, **overrides):
    kwargs = dict(
        shard_index=0,
        host=0,
        strategy=strategy,
        workers=1,
        groups=(TenantSpec(template=scenario, count=count, rps=rps),),
        duration_ms=10.0,
        seed=1234,
        sub_bits=8,
        costs=CostModel.paper_defaults(),
    )
    kwargs.update(overrides)
    return ShardJob(**kwargs)


class TestShardJob:
    def test_validation(self):
        with pytest.raises(ConfigError):
            _job(strategy="warp")
        with pytest.raises(ConfigError):
            _job(groups=())
        with pytest.raises(ConfigError):
            _job(duration_ms=0.0)
        with pytest.raises(ConfigError):
            _job(sub_bits=0)

    def test_tenants_sums_groups(self):
        job = _job(groups=(
            TenantSpec(template="rocksdb", count=3, rps=1.0),
            TenantSpec(template="timers", count=4, rps=1.0),
        ))
        assert job.tenants == 7

    def test_picklable_and_canonical(self):
        from repro.perf.cache import canonical

        job = _job()
        assert pickle.loads(pickle.dumps(job)) == job
        # Equal jobs share one canonical form (stable checkpoint identity).
        assert canonical(job) == canonical(_job())
        assert canonical(job) != canonical(_job(seed=999))

    def test_round_trip(self):
        job = _job(scenario="fanout", strategy="flush")
        assert ShardJob.from_json(json.loads(json.dumps(job.to_json()))) == job

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            ShardJob.from_json({"bogus": 1})


class TestRunShardJob:
    def test_deterministic(self):
        a, b = run_shard_job(_job()), run_shard_job(_job())
        assert a == b

    def test_result_round_trips(self):
        from repro.cluster.shard import ShardResult

        result = run_shard_job(_job())
        assert ShardResult.from_json(json.loads(json.dumps(result.to_json()))) == result

    def test_common_random_numbers_across_strategies(self):
        """Same shard seed => identical arrival processes per strategy: the
        offered load and scan mix never differ, only the latency does."""
        results = {s: run_shard_job(_job(strategy=s)) for s in ("flush", "tracked", "timer")}
        offered = {r.offered for r in results.values()}
        scans = {r.scans for r in results.values()}
        assert len(offered) == 1 and len(scans) == 1

    def test_rocksdb_measures_gets_only(self):
        result = run_shard_job(_job(scenario="rocksdb"))
        hist = result.histogram()
        assert result.scans > 0
        assert hist.count == result.completed - result.scans

    def test_flush_tail_dominates_timer(self):
        """Per-shard Figure 7: the flush strategy's p999 exceeds timer's."""
        flush = run_shard_job(_job(strategy="flush")).histogram()
        timer = run_shard_job(_job(strategy="timer")).histogram()
        assert flush.percentile(99.9) > timer.percentile(99.9)

    def test_timers_scenario_counts_and_costs(self):
        """Each tenant fires ~rps*duration times; flush handlers carry the
        bigger receive cost, so the timer strategy's mean is strictly lower."""
        job = _job(scenario="timers", count=16, rps=10_000.0)
        result = run_shard_job(job)
        expected = 16 * 10_000.0 * (job.duration_ms / 1000.0)
        assert result.offered == pytest.approx(expected, rel=0.2)
        flush_hist = run_shard_job(_job(scenario="timers", count=16, rps=10_000.0,
                                        strategy="flush")).histogram()
        timer_hist = result.histogram()
        assert timer_hist.count == flush_hist.count
        assert timer_hist.mean < flush_hist.mean

    def test_fanout_bursts_raise_offered_load(self):
        """Burst windows push the offered count above the flat-rate total."""
        result = run_shard_job(_job(scenario="fanout", count=8, rps=5_000.0))
        flat = 8 * 5_000.0 * 0.01
        assert result.offered > flat * 1.2

    def test_preemptions_scale_with_workers(self):
        one = run_shard_job(_job())
        two = run_shard_job(_job(workers=2))
        assert two.preemptions_total > one.preemptions_total
