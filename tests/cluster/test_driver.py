"""Driver determinism: serial == parallel == checkpoint-resumed, to the byte."""

from repro.common.counters import GLOBAL_COUNTERS
from repro.cluster import ClusterDriver, ClusterTopology
from repro.cluster.driver import report_to_metrics
from repro.cluster.shard import run_shard_job
from repro.obs.registry import MetricsRegistry
from repro.perf.engine import _checkpoint_for

#: Small but non-trivial: 2 shards x 3 strategies, enough load that every
#: strategy records thousands of samples in a fraction of a second.
TOPOLOGY = ClusterTopology(
    name="unit", tenants=32, shards=2, hosts=2, tenant_rps=2000.0,
    duration_ms=10.0, seed=5,
)


class TestDriver:
    def test_job_grid_shape_and_order(self):
        jobs = ClusterDriver(TOPOLOGY).shard_jobs()
        assert len(jobs) == 2 * 3
        assert [(j.strategy, j.shard_index) for j in jobs] == [
            ("flush", 0), ("flush", 1),
            ("tracked", 0), ("tracked", 1),
            ("timer", 0), ("timer", 1),
        ]
        # Same shard seed across strategies (common random numbers).
        assert jobs[0].seed == jobs[2].seed == jobs[4].seed

    def test_report_aggregates_match_shards(self):
        driver = ClusterDriver(TOPOLOGY)
        report = driver.run()
        by_strategy = {agg.strategy: agg for agg in report.aggregates}
        assert set(by_strategy) == {"flush", "tracked", "timer"}
        for job in driver.shard_jobs():
            agg = by_strategy[job.strategy]
            assert agg.shards == 2
            assert agg.tenants == TOPOLOGY.tenants
        # Merged histogram count equals the sum over that strategy's shards.
        flush_results = [run_shard_job(j) for j in driver.shard_jobs() if j.strategy == "flush"]
        assert by_strategy["flush"].count == sum(
            r.histogram().count for r in flush_results
        )

    def test_metrics_namespace(self):
        report = ClusterDriver(TOPOLOGY).run()
        registry = MetricsRegistry()
        report_to_metrics(report, registry)
        payload = registry.as_dict()
        assert payload["counters"]["cluster.tenants"] == 32
        assert "cluster.flush.latency" in payload["histograms"]
        assert (
            payload["histograms"]["cluster.flush.latency"]["count"]
            == report.aggregates[0].count
        )


class TestSeededDeterminismAtScale:
    def test_serial_and_parallel_reports_byte_identical(self):
        serial = ClusterDriver(TOPOLOGY, jobs=1).run()
        parallel_driver = ClusterDriver(TOPOLOGY, jobs=2)
        parallel = parallel_driver.run()
        assert parallel_driver.last_mode in ("parallel", "salvaged", "serial")
        assert serial.dumps() == parallel.dumps()

    def test_interrupted_checkpoint_resume_byte_identical(self, tmp_path):
        """Kill-after-four-shards then resume == uninterrupted, byte for byte."""
        uninterrupted = ClusterDriver(TOPOLOGY).run()

        jobs = ClusterDriver(TOPOLOGY, checkpoint_dir=str(tmp_path)).shard_jobs()
        ckpt = _checkpoint_for(str(tmp_path), run_shard_job, jobs)
        for i in (0, 1, 2, 3):  # the work a dying run had completed
            ckpt.record(i, run_shard_job(jobs[i]))

        before = GLOBAL_COUNTERS.sweep_points_resumed
        resumed = ClusterDriver(TOPOLOGY, jobs=1, checkpoint_dir=str(tmp_path)).run()
        assert GLOBAL_COUNTERS.sweep_points_resumed - before == 4
        assert resumed.dumps() == uninterrupted.dumps()
        assert not ckpt.path.exists()

    def test_different_seed_changes_report(self):
        base = ClusterDriver(TOPOLOGY).run()
        other_topology = ClusterTopology(
            name="unit", tenants=32, shards=2, hosts=2, tenant_rps=2000.0,
            duration_ms=10.0, seed=6,
        )
        other = ClusterDriver(other_topology).run()
        assert base.dumps() != other.dumps()
