"""Report schema, verdict logic, and bench-gate-shaped checks."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.hist import LatencyHistogram
from repro.cluster.aggregate import (
    OrderingVerdict,
    StrategyAggregate,
    aggregate_strategy,
    ordering_verdict,
)
from repro.cluster.report import PAPER_SCALE_TENANTS, REPORT_SCHEMA, ClusterReport
from repro.cluster.shard import ShardResult
from repro.cluster.topology import ClusterTopology


def _aggregate(strategy, p999, count=100):
    hist = LatencyHistogram(sub_bits=8)
    hist.record_many([100.0] * (count - 1) + [p999])
    return StrategyAggregate(
        strategy=strategy, shards=1, tenants=10, offered=count, completed=count,
        in_window=count, scans=0, preemptions_total=5, count=hist.count,
        mean=hist.mean, p50=hist.percentile(50.0), p99=hist.percentile(99.0),
        p999=hist.percentile(99.9), hist_state=hist.to_state(),
    )


def _shard_result(strategy, index, values):
    hist = LatencyHistogram(sub_bits=8)
    hist.record_many(values)
    return ShardResult(
        shard_index=index, host=0, strategy=strategy, tenants=4, offered=len(values),
        completed=len(values), in_window=len(values), scans=0, preemptions_total=1,
        hist_state=hist.to_state(),
    )


class TestAggregation:
    def test_merged_percentiles_match_pooled_samples(self):
        """Shard boundaries are invisible: aggregating shard histograms
        equals one histogram over every sample."""
        shard_a = _shard_result("flush", 0, [10, 20, 30, 40_000])
        shard_b = _shard_result("flush", 1, [15, 25, 35])
        agg = aggregate_strategy("flush", [shard_a, shard_b])
        pooled = LatencyHistogram(sub_bits=8)
        pooled.record_many([10, 20, 30, 40_000, 15, 25, 35])
        assert agg.count == 7
        assert agg.p999 == pooled.percentile(99.9)
        assert agg.hist_state == pooled.to_state()

    def test_strategy_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            aggregate_strategy("flush", [_shard_result("timer", 0, [1.0])])

    def test_aggregate_round_trip(self):
        agg = _aggregate("tracked", 9_000.0)
        assert StrategyAggregate.from_json(json.loads(json.dumps(agg.to_json()))) == agg


class TestVerdict:
    def test_correct_ordering_passes(self):
        verdict = ordering_verdict(
            [_aggregate("flush", 30_000.0), _aggregate("tracked", 20_000.0),
             _aggregate("timer", 10_000.0)]
        )
        assert verdict.applicable and verdict.ok

    def test_inverted_ordering_fails(self):
        verdict = ordering_verdict(
            [_aggregate("flush", 10_000.0), _aggregate("tracked", 20_000.0),
             _aggregate("timer", 30_000.0)]
        )
        assert verdict.applicable and not verdict.ok

    def test_ties_fail_strict_ordering(self):
        verdict = ordering_verdict(
            [_aggregate("flush", 20_000.0), _aggregate("tracked", 20_000.0),
             _aggregate("timer", 10_000.0)]
        )
        assert verdict.applicable and not verdict.ok

    def test_subset_of_strategies_not_applicable(self):
        verdict = ordering_verdict([_aggregate("flush", 2.0), _aggregate("timer", 1.0)])
        assert not verdict.applicable and not verdict.ok

    def test_round_trip(self):
        verdict = ordering_verdict(
            [_aggregate("flush", 3.0), _aggregate("tracked", 2.0), _aggregate("timer", 1.0)]
        )
        assert OrderingVerdict.from_json(json.loads(json.dumps(verdict.to_json()))) == verdict


class TestReport:
    def _report(self, flush=30_000.0, tracked=20_000.0, timer=10_000.0):
        topology = ClusterTopology(tenants=2_000_000, shards=4, hosts=2)
        aggregates = (
            _aggregate("flush", flush),
            _aggregate("tracked", tracked),
            _aggregate("timer", timer),
        )
        return ClusterReport(
            topology=topology, aggregates=aggregates,
            verdict=ordering_verdict(aggregates),
        )

    def test_scale_factor(self):
        report = self._report()
        assert report.scale_factor == 2_000_000 / PAPER_SCALE_TENANTS == 2000.0

    def test_checks_are_bench_gate_shaped(self):
        for check in self._report().checks():
            assert set(check) == {"bench", "check", "ok", "note"}
        names = [c["check"] for c in self._report().checks()]
        assert names == ["samples_recorded", "ordering_p999"]
        assert all(c["ok"] for c in self._report().checks())

    def test_failed_ordering_reflected_in_checks(self):
        report = self._report(flush=1_000.0)
        ordering = [c for c in report.checks() if c["check"] == "ordering_p999"]
        assert ordering and not ordering[0]["ok"]

    def test_round_trip_and_byte_stable_dumps(self):
        report = self._report()
        clone = ClusterReport.from_json(json.loads(report.dumps()))
        assert clone.dumps() == report.dumps()
        assert json.loads(report.dumps())["schema"] == REPORT_SCHEMA

    def test_wrong_schema_rejected(self):
        payload = json.loads(self._report().dumps())
        payload["schema"] = "repro.cluster.report/v999"
        with pytest.raises(ConfigError):
            ClusterReport.from_json(payload)

    def test_mismatched_aggregates_rejected(self):
        topology = ClusterTopology(tenants=16, shards=2, hosts=2)
        aggregates = (_aggregate("flush", 2.0),)
        with pytest.raises(ConfigError):
            ClusterReport(
                topology=topology, aggregates=aggregates,
                verdict=ordering_verdict(aggregates),
            )
