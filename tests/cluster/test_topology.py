"""Topology validation, placement math, and canonical round trips."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.cluster.topology import (
    CLUSTER_STRATEGIES,
    ClusterTopology,
    ShardSpec,
    TenantSpec,
)


class TestValidation:
    def test_defaults_valid(self):
        topo = ClusterTopology()
        assert topo.strategies == CLUSTER_STRATEGIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenants": 0},
            {"shards": 0},
            {"tenants": 3, "shards": 4},
            {"hosts": 0},
            {"hosts": 17},  # > shards
            {"cores_per_shard": 0},
            {"cores_per_shard": 23},  # timer-core capacity bound
            {"scenario": "nope"},
            {"strategies": ()},
            {"strategies": ("flush", "flush")},
            {"strategies": ("flush", "warp")},
            {"tenant_rps": 0.0},
            {"duration_ms": 0.5},
            {"seed": 1.5},
            {"sub_bits": 13},
            {"name": ""},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterTopology(**kwargs)

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigError):
            ClusterTopology(shards=True)

    def test_tenant_spec_validation(self):
        with pytest.raises(ConfigError):
            TenantSpec(template="nope", count=1, rps=1.0)
        with pytest.raises(ConfigError):
            TenantSpec(template="rocksdb", count=0, rps=1.0)
        with pytest.raises(ConfigError):
            TenantSpec(template="rocksdb", count=1, rps=0.0)

    def test_shard_spec_validation(self):
        with pytest.raises(ConfigError):
            ShardSpec(index=-1, host=0, tenants=1, workers=1, scenario="rocksdb", seed=0)
        with pytest.raises(ConfigError):
            ShardSpec(index=0, host=0, tenants=1, workers=23, scenario="rocksdb", seed=0)


class TestPlacement:
    def test_tenant_partition_is_balanced_and_total(self):
        topo = ClusterTopology(tenants=103, shards=10)
        counts = [topo.tenants_for_shard(i) for i in range(10)]
        assert sum(counts) == 103
        assert max(counts) - min(counts) <= 1
        assert counts == sorted(counts, reverse=True)  # extras go first

    def test_hosts_round_robin(self):
        topo = ClusterTopology(tenants=64, shards=8, hosts=3)
        hosts = [spec.host for spec in topo.shard_specs()]
        assert hosts == [0, 1, 2, 0, 1, 2, 0, 1]

    def test_shard_seeds_distinct_and_stable(self):
        topo = ClusterTopology(tenants=64, shards=8, seed=42)
        seeds = [topo.seed_for_shard(i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [topo.seed_for_shard(i) for i in range(8)]
        # A different root seed moves every shard seed.
        other = ClusterTopology(tenants=64, shards=8, seed=43)
        assert all(a != b for a, b in zip(seeds, (other.seed_for_shard(i) for i in range(8))))


class TestRoundTrip:
    def test_topology_round_trip_and_id(self):
        topo = ClusterTopology(
            name="t", tenants=100, shards=5, hosts=2, scenario="timers",
            strategies=("tracked", "timer"), tenant_rps=7.5, duration_ms=12.0, seed=9,
        )
        clone = ClusterTopology.from_json(json.loads(json.dumps(topo.to_json())))
        assert clone == topo
        assert clone.topology_id() == topo.topology_id()
        assert clone.dumps() == topo.dumps()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            ClusterTopology.from_json({"tenants": 4, "shards": 2, "zap": 1})
        with pytest.raises(ConfigError):
            TenantSpec.from_json({"template": "rocksdb", "count": 1, "rps": 1, "x": 0})
        with pytest.raises(ConfigError):
            ShardSpec.from_json({"index": 0, "bogus": 1})

    def test_tenant_and_shard_spec_round_trip(self):
        spec = TenantSpec(template="fanout", count=12, rps=3.0)
        assert TenantSpec.from_json(spec.to_json()) == spec
        shard = ShardSpec(index=3, host=1, tenants=9, workers=2, scenario="rocksdb", seed=77)
        assert ShardSpec.from_json(shard.to_json()) == shard

    def test_registered_state_classes_round_trip(self):
        """Every cluster dataclass in STATE_CLASSES round-trips its codec."""
        from repro.analysis.statemodel import STATE_CLASSES
        from repro.cluster.shard import ShardResult

        registered = {
            (spec.module, spec.name)
            for spec in STATE_CLASSES
            if spec.module.startswith("repro.cluster")
        }
        assert registered == {
            ("repro.cluster.topology", "ClusterTopology"),
            ("repro.cluster.topology", "ShardSpec"),
            ("repro.cluster.topology", "TenantSpec"),
            ("repro.cluster.shard", "ShardJob"),
            ("repro.cluster.shard", "ShardResult"),
        }
        result = ShardResult(
            shard_index=1, host=0, strategy="timer", tenants=4, offered=10,
            completed=10, in_window=9, scans=0, preemptions_total=40,
            hist_state={"sub_bits": 8, "count": 1, "sum": 5.0, "min": 5.0,
                        "max": 5.0, "counts": {"5": 1}},
        )
        assert ShardResult.from_json(json.loads(json.dumps(result.to_json()))) == result
