"""Cycle-tier invariants: determinism, in-order commit, strategy equivalence."""

import pytest

from tests.conftest import COUNTER_ADDR, build_count_to, build_sender, build_spin_receiver

from repro.cpu.core import Core
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        def run():
            system = MultiCoreSystem([build_count_to(5000)], [FlushStrategy()])
            system.run(200_000, until_halted=[0])
            return system.cycle, system.cores[0].stats.committed_uops

        assert run() == run()

    def test_identical_uipi_runs_identical(self):
        def run():
            system = MultiCoreSystem(
                [build_sender(3), build_spin_receiver()],
                [FlushStrategy(), TrackedStrategy()],
            )
            system.connect_uipi(0, 1, user_vector=1)
            system.run(200_000, until_halted=[0])
            system.run(10_000)
            receiver = system.cores[1]
            return (
                system.cycle,
                receiver.stats.interrupts_delivered,
                receiver.arch_regs[1],
                system.shared.read(COUNTER_ADDR),
            )

        assert run() == run()


class TestCommitOrder:
    def test_uops_commit_in_program_order(self, monkeypatch):
        committed_seqs = []
        original = Core._commit_uop

        def spy(self, uop):
            committed_seqs.append(uop.seq)
            return original(self, uop)

        monkeypatch.setattr(Core, "_commit_uop", spy)
        system = MultiCoreSystem(
            [build_sender(2), build_spin_receiver()],
            [FlushStrategy(), FlushStrategy()],
        )
        system.connect_uipi(0, 1, user_vector=1)
        system.run(120_000, until_halted=[0])
        # Per-core commit order must be strictly increasing.  Seqs are
        # per-core counters; split streams by reconstructing monotone runs
        # per core is overkill — instead check each core separately.
        committed_seqs.clear()
        per_core = {0: [], 1: []}

        def spy2(self, uop):
            per_core[self.core_id].append(uop.seq)
            return original(self, uop)

        monkeypatch.setattr(Core, "_commit_uop", spy2)
        system2 = MultiCoreSystem(
            [build_sender(2), build_spin_receiver()],
            [FlushStrategy(), FlushStrategy()],
        )
        system2.connect_uipi(0, 1, user_vector=1)
        system2.run(120_000, until_halted=[0])
        for core_id, seqs in per_core.items():
            assert seqs == sorted(seqs), f"core {core_id} committed out of order"
            assert len(set(seqs)) == len(seqs), f"core {core_id} double-committed"


class TestStrategyEquivalence:
    """Interrupt delivery strategy changes timing, never program results."""

    @pytest.mark.parametrize(
        "strategy_factory",
        [FlushStrategy, TrackedStrategy, lambda: DrainStrategy(extra_pad=13)],
        ids=["flush", "tracked", "drain"],
    )
    def test_program_results_strategy_independent(self, strategy_factory):
        system = MultiCoreSystem(
            [build_count_to(20_000), build_sender(4, gap_iterations=400)],
            [strategy_factory(), FlushStrategy()],
        )
        system.connect_uipi(1, 0, user_vector=1)
        system.run(2_000_000, until_halted=[0])
        core = system.cores[0]
        assert core.halted
        # The program's own architectural results are identical regardless
        # of how interrupts were delivered.
        assert core.arch_regs[1] == 20_000
        # Every delivered interrupt ran the handler exactly once.
        assert system.shared.read(COUNTER_ADDR) == core.stats.interrupts_delivered
