"""Property tests: merge_many is order-free and partition-invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.hist import LatencyHistogram

#: Latency-like values spanning the linear range and many octaves.
values_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 24), min_size=0, max_size=60
)


def _partition(values, cuts):
    """Split ``values`` into contiguous shards at the given cut points."""
    bounds = sorted(set(cut % (len(values) + 1) for cut in cuts)) + [len(values)]
    shards, start = [], 0
    for end in bounds:
        shards.append(values[start:end])
        start = end
    return shards


@settings(max_examples=60, deadline=None)
@given(
    values=values_strategy,
    cuts=st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=6),
    permutation_seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_merged_percentiles_permutation_and_partition_invariant(
    values, cuts, permutation_seed
):
    """However samples are sharded, and in whatever order the shard
    histograms merge, the result equals one histogram over all samples."""
    single = LatencyHistogram()
    single.record_many(values)

    shards = []
    for chunk in _partition(values, cuts):
        hist = LatencyHistogram()
        hist.record_many(chunk)
        shards.append(hist)

    # A deterministic permutation of the shard order derived from the seed.
    permuted = list(shards)
    for i in range(len(permuted) - 1, 0, -1):
        j = (permutation_seed + 31 * i) % (i + 1)
        permuted[i], permuted[j] = permuted[j], permuted[i]

    merged = LatencyHistogram.merge_many(permuted)
    assert merged.to_state() == single.to_state()
    for p in (50.0, 90.0, 99.0, 99.9):
        assert merged.percentile(p) == single.percentile(p)
    assert merged.count == single.count
    assert merged.mean == single.mean


@settings(max_examples=30, deadline=None)
@given(values=values_strategy)
def test_merge_many_matches_repeated_merge(values):
    shards = []
    for value in values:
        hist = LatencyHistogram()
        hist.record(value)
        shards.append(hist)
    accumulator = LatencyHistogram()
    for hist in shards:
        accumulator.merge(hist)
    assert LatencyHistogram.merge_many(shards).to_state() == accumulator.to_state()
