"""Property-based tests (hypothesis) on core data structures and invariants."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import bitfield
from repro.common.stats import Histogram, RunningStats, percentile
from repro.cpu.cache import SetAssociativeCache, SharedMemory
from repro.cpu.config import CacheParams
from repro.net.lpm import LPMTable
from repro.sim.event import EventQueue
from repro.uintr.upid import UPID


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=60))
    def test_pops_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=40),
        st.data(),
    )
    def test_cancellation_preserves_order_of_rest(self, times, data):
        queue = EventQueue()
        events = [queue.push(t, lambda: None, name=str(i)) for i, t in enumerate(times)]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times) - 1)
        )
        for index in to_cancel:
            events[index].cancel()
        surviving = sorted(
            (t, i) for i, t in enumerate(times) if i not in to_cancel
        )
        popped = [(e.time, int(e.name)) for e in (queue.pop() for _ in range(len(surviving)))]
        assert popped == surviving


class TestBitfieldProperties:
    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=56),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=255),
    )
    def test_set_get_roundtrip(self, value, low, width_minus_one, field_value):
        high = low + width_minus_one
        field_value %= 1 << (width_minus_one + 1)
        updated = bitfield.set_bits(value, low, high, field_value)
        assert bitfield.get_bits(updated, low, high) == field_value

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_iter_set_bits_reconstructs(self, value):
        rebuilt = 0
        for index in bitfield.iter_set_bits(value):
            rebuilt |= 1 << index
        assert rebuilt == value

    @given(st.integers(min_value=1, max_value=(1 << 64) - 1))
    def test_lowest_set_bit_is_set_and_minimal(self, value):
        index = bitfield.lowest_set_bit(value)
        assert value >> index & 1
        assert value & ((1 << index) - 1) == 0


class TestUpidProperties:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.booleans(),
        st.booleans(),
        st.sets(st.integers(min_value=0, max_value=63), max_size=8),
    )
    def test_field_independence(self, vector, ndst, on, sn, posted):
        upid = UPID(SharedMemory(), 0x1000)
        upid.set_notification_vector(vector)
        upid.set_notification_destination(ndst)
        upid.set_outstanding(on)
        upid.set_suppressed(sn)
        for user_vector in posted:
            upid.post_vector(user_vector)
        assert upid.notification_vector == vector
        assert upid.notification_destination == ndst
        assert upid.suppressed == sn
        expected_pir = 0
        for user_vector in posted:
            expected_pir |= 1 << user_vector
        assert upid.pir == expected_pir
        assert upid.outstanding == (on or bool(posted))


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_running_stats_matches_direct(self, samples):
        stats = RunningStats()
        stats.extend(samples)
        assert abs(stats.mean - sum(samples) / len(samples)) < 1e-6 * max(
            1.0, abs(sum(samples))
        )
        assert stats.minimum == min(samples)
        assert stats.maximum == max(samples)

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=100))
    def test_percentile_bounds(self, samples):
        assert min(samples) <= percentile(samples, 50) <= max(samples)

    @given(st.lists(st.floats(min_value=0, max_value=99), min_size=1, max_size=200))
    def test_histogram_percentile_upper_bounds_nearest_rank(self, samples):
        import math

        hist = Histogram(bucket_width=1.0, num_buckets=100)
        for sample in samples:
            hist.add(sample)
        # The bucket upper-edge estimate never undershoots the nearest-rank
        # percentile (the sample the cumulative count lands on).
        rank = max(1, math.ceil(0.9 * len(samples)))
        nearest_rank_value = sorted(samples)[rank - 1]
        assert hist.percentile(90) >= nearest_rank_value


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        params = CacheParams(size_bytes=4096, associativity=4, line_bytes=64)
        cache = SetAssociativeCache(params)
        for addr in addresses:
            cache.lookup(addr)
        total_lines = sum(len(s) for s in cache._sets)
        assert total_lines <= params.size_bytes // params.line_bytes
        for tags in cache._sets:
            assert len(tags) <= params.associativity

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_immediate_rereference_always_hits(self, addresses):
        cache = SetAssociativeCache(CacheParams())
        for addr in addresses:
            cache.lookup(addr)
            assert cache.lookup(addr) is True


class TestLpmProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=0, max_value=32),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=1,
            max_size=40,
        ),
        st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=40),
    )
    @settings(max_examples=40)
    def test_trie_matches_brute_force(self, routes, addresses):
        table = LPMTable(default_next_hop=0)
        for prefix, length, hop in routes:
            host_bits = 32 - length
            prefix &= ~((1 << host_bits) - 1) if host_bits else 0xFFFFFFFF
            table.add_route(prefix, length, hop)
        for addr in addresses:
            assert table.lookup(addr) == table.lookup_brute_force(addr)


class TestSkipListProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["put", "delete"]), st.integers(0, 50), st.integers(0, 99)),
            max_size=120,
        )
    )
    @settings(max_examples=40)
    def test_matches_dict_model(self, operations):
        from repro.apps.rocksdb import SkipListStore

        store = SkipListStore(seed=7)
        model = {}
        for op, key, value in operations:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                assert store.delete(key) == (key in model)
                model.pop(key, None)
        assert len(store) == len(model)
        assert list(store.items()) == sorted(model.items())
        for key in range(51):
            assert store.get(key) == model.get(key)

    @given(
        st.sets(st.integers(0, 200), min_size=1, max_size=60),
        st.integers(0, 200),
        st.integers(0, 10),
    )
    @settings(max_examples=40)
    def test_scan_matches_sorted_slice(self, keys, start, count):
        from repro.apps.rocksdb import SkipListStore

        store = SkipListStore(seed=3)
        for key in keys:
            store.put(key, key * 2)
        expected = [(k, k * 2) for k in sorted(k for k in keys if k >= start)][:count]
        assert store.scan(start, count) == expected
