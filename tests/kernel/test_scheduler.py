"""Kernel scheduler: context switches manage UIPI/xUI state (§3.2/§4.3/§4.5)."""

import pytest

from repro.cpu.cache import SharedMemory
from repro.kernel.scheduler import CoreScheduler
from repro.kernel.syscalls import KernelInterface
from repro.kernel.threads import KernelThread, ThreadState
from repro.uintr.apic import InterruptKind, LocalApic
from repro.uintr.upid import UPID


@pytest.fixture
def setup():
    memory = SharedMemory()
    apic = LocalApic(0)
    scheduler = CoreScheduler(0, memory, apic)
    kernel = KernelInterface(memory)
    kernel.attach_scheduler(scheduler)
    return memory, apic, scheduler, kernel


class TestSnBitManagement:
    def test_deschedule_sets_sn(self, setup):
        memory, apic, scheduler, kernel = setup
        thread = KernelThread("a")
        kernel.register_handler(thread, apic)
        scheduler.add_thread(thread)
        scheduler.schedule_next(now=0.0)
        scheduler.deschedule_current(now=10.0)
        assert UPID(memory, thread.upid_addr).suppressed

    def test_resume_clears_sn(self, setup):
        memory, apic, scheduler, kernel = setup
        thread = KernelThread("a")
        kernel.register_handler(thread, apic)
        scheduler.add_thread(thread)
        scheduler.schedule_next(now=0.0)
        scheduler.preempt(now=10.0)  # deschedule + immediately resume (only thread)
        assert not UPID(memory, thread.upid_addr).suppressed


class TestSlowPath:
    def test_posted_interrupt_reposted_on_resume(self, setup):
        memory, apic, scheduler, kernel = setup
        thread = KernelThread("a")
        kernel.register_handler(thread, apic, notification_vector=0xEC)
        scheduler.add_thread(thread)
        scheduler.schedule_next(now=0.0)
        scheduler.deschedule_current(now=5.0)
        # A sender posts while the thread is out (SN set: PIR only).
        UPID(memory, thread.upid_addr).post_vector(4)
        scheduler.schedule_next(now=20.0)
        assert scheduler.slow_path_reposts == 1
        assert apic.has_pending()
        assert apic.peek().kind is InterruptKind.UIPI
        # The kernel consumed the posted bits when reposting.
        assert UPID(memory, thread.upid_addr).pir == 0

    def test_no_repost_without_posting(self, setup):
        _, apic, scheduler, kernel = setup
        thread = KernelThread("a")
        kernel.register_handler(thread, apic)
        scheduler.add_thread(thread)
        scheduler.schedule_next(now=0.0)
        scheduler.preempt(now=5.0)
        assert scheduler.slow_path_reposts == 0


class TestKbTimerMultiplexing:
    def test_timer_saved_and_restored_across_switch(self, setup):
        _, apic, scheduler, kernel = setup
        a, b = KernelThread("a"), KernelThread("b")
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        kernel.enable_kb_timer(0, vector=2)
        scheduler.schedule_next(now=0.0)  # a runs
        scheduler.kb_timer.arm_periodic(1000, now=0.0)
        deadline_a = scheduler.kb_timer.deadline
        scheduler.preempt(now=100.0)  # b runs: a's timer saved, b has none
        assert not scheduler.kb_timer.armed or scheduler.kb_timer.enabled is False
        scheduler.preempt(now=200.0)  # a resumes: timer restored
        assert scheduler.current is a
        assert scheduler.kb_timer.armed
        assert scheduler.kb_timer.deadline == deadline_a

    def test_expired_timer_fires_on_restore(self, setup):
        _, apic, scheduler, kernel = setup
        a, b = KernelThread("a"), KernelThread("b")
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        kernel.enable_kb_timer(0, vector=2)
        scheduler.schedule_next(now=0.0)
        scheduler.kb_timer.arm_oneshot(50.0)
        scheduler.preempt(now=10.0)  # b runs past the deadline
        scheduler.preempt(now=500.0)  # a resumes; deadline long passed
        assert scheduler.current is a
        assert apic.has_pending()
        assert apic.peek().kind is InterruptKind.TIMER


class TestForwardingMultiplexing:
    def test_forwarded_active_follows_current_thread(self, setup):
        _, apic, scheduler, kernel = setup
        a, b = KernelThread("a"), KernelThread("b")
        kernel.register_forwarding(a, apic, vector=40, user_vector=3)
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        scheduler.schedule_next(now=0.0)  # a: vector 40 active
        assert apic.forwarded_active >> 40 & 1 == 1
        scheduler.preempt(now=10.0)  # b: no forwarded vectors
        assert apic.forwarded_active == 0

    def test_dupid_slow_path_reposted_on_resume(self, setup):
        memory, apic, scheduler, kernel = setup
        a, b = KernelThread("a"), KernelThread("b")
        kernel.register_forwarding(a, apic, vector=40, user_vector=3)
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        scheduler.schedule_next(now=0.0)
        scheduler.preempt(now=10.0)  # b running; a's device interrupt arrives
        apic.accept(40, time=11.0, kind=InterruptKind.DEVICE)
        assert len(apic.slow_path_queue) == 1
        captured = apic.slow_path_queue.popleft()
        kernel.capture_slow_path_device(a, captured.user_vector)
        assert memory.read(a.dupid_addr) == 1 << 3
        scheduler.preempt(now=20.0)  # a resumes
        assert scheduler.current is a
        assert scheduler.slow_path_reposts == 1
        assert apic.has_pending()


class TestEagerTimerRescheduling:
    """§4.3's alternative slow path: wake the thread whose timer expired."""

    def _setup(self):
        memory = SharedMemory()
        apic = LocalApic(0)
        scheduler = CoreScheduler(0, memory, apic, eager_timer_rescheduling=True)
        kernel = KernelInterface(memory)
        kernel.attach_scheduler(scheduler)
        kernel.enable_kb_timer(0, vector=2)
        return scheduler

    def test_expired_timer_thread_preferred(self):
        scheduler = self._setup()
        a, b, c = KernelThread("a"), KernelThread("b"), KernelThread("c")
        for thread in (a, b, c):
            scheduler.add_thread(thread)
        scheduler.schedule_next(now=0.0)  # a runs
        scheduler.kb_timer.arm_oneshot(100.0)
        scheduler.deschedule_current(now=10.0)  # a queued behind b, c
        # Past a's deadline: the scheduler jumps the queue to wake a.
        woken = scheduler.schedule_next(now=200.0)
        assert woken is a
        assert scheduler.eager_wakes == 1

    def test_unexpired_timer_keeps_fifo_order(self):
        scheduler = self._setup()
        a, b = KernelThread("a"), KernelThread("b")
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        scheduler.schedule_next(now=0.0)  # a runs
        scheduler.kb_timer.arm_oneshot(1_000_000.0)
        scheduler.deschedule_current(now=10.0)
        assert scheduler.schedule_next(now=20.0) is b  # deadline not due

    def test_default_policy_is_fifo(self):
        memory = SharedMemory()
        apic = LocalApic(0)
        scheduler = CoreScheduler(0, memory, apic)  # eager disabled
        kernel = KernelInterface(memory)
        kernel.attach_scheduler(scheduler)
        kernel.enable_kb_timer(0, vector=2)
        a, b = KernelThread("a"), KernelThread("b")
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        scheduler.schedule_next(now=0.0)
        scheduler.kb_timer.arm_oneshot(5.0)
        scheduler.deschedule_current(now=10.0)
        assert scheduler.schedule_next(now=100.0) is b  # FIFO, no jump


class TestAccounting:
    def test_context_switch_cost_charged(self, setup):
        _, apic, scheduler, _ = setup
        scheduler.add_thread(KernelThread("a"))
        scheduler.schedule_next(now=0.0)
        assert scheduler.account.busy.get("context_switch", 0) > 0

    def test_finished_threads_skipped(self, setup):
        _, _, scheduler, _ = setup
        done = KernelThread("done")
        live = KernelThread("live")
        scheduler.add_thread(done)
        scheduler.add_thread(live)
        done.state = ThreadState.FINISHED
        assert scheduler.schedule_next(now=0.0) is live
