"""Kernel thread records."""

from repro.kernel.threads import KernelThread, ThreadState


class TestKernelThread:
    def test_unique_tids(self):
        a, b = KernelThread(), KernelThread()
        assert a.tid != b.tid

    def test_default_name_from_tid(self):
        thread = KernelThread()
        assert thread.name == f"thread-{thread.tid}"

    def test_initial_state(self):
        thread = KernelThread("t")
        assert thread.state is ThreadState.READY
        assert thread.upid_addr is None
        assert thread.dupid_addr is None
        assert thread.forwarded_vectors == 0
        assert thread.pending_slow_path == []

    def test_slow_path_lists_are_per_thread(self):
        a, b = KernelThread(), KernelThread()
        a.pending_slow_path.append(3)
        assert b.pending_slow_path == []
