"""Signal delivery cost model (§2: ~2.4 us, ~1.4 us of it kernel time)."""

import pytest

from repro.kernel.signals import SignalDelivery
from repro.notify.costs import CostModel
from repro.sim.account import CycleAccount
from repro.sim.simulator import Simulator


@pytest.fixture
def delivery():
    sim = Simulator()
    account = CycleAccount("core")
    return sim, account, SignalDelivery(sim, account)


class TestDelivery:
    def test_handler_invoked_with_record(self, delivery):
        sim, _, signals = delivery
        seen = []
        signals.register(14, seen.append)
        signals.send(14)
        sim.run()
        assert len(seen) == 1
        assert seen[0].signo == 14

    def test_latency_includes_kernel_entry(self, delivery):
        sim, _, signals = delivery
        signals.send(14)
        sim.run()
        record = signals.delivered[0]
        assert record.latency == pytest.approx(CostModel().signal_kernel_share)

    def test_costs_charged_to_account(self, delivery):
        sim, account, signals = delivery
        signals.send(14)
        sim.run()
        costs = CostModel()
        assert account.busy["signal_kernel"] == pytest.approx(costs.signal_kernel_share)
        total = account.total_busy()
        assert total == pytest.approx(costs.signal_delivery)

    def test_paper_magnitude_2400ns(self, delivery):
        """The full signal cost is ~2.4 us at 2 GHz (§2)."""
        _, _, signals = delivery
        total = signals.kernel_entry_cost + signals.user_damage_cost
        assert total == pytest.approx(4800)  # cycles

    def test_multiple_signals_accumulate(self, delivery):
        sim, account, signals = delivery
        for i in range(5):
            signals.send(14, delay=float(i) * 100)
        sim.run()
        assert len(signals.delivered) == 5
        assert account.total_busy() == pytest.approx(5 * CostModel().signal_delivery)

    def test_unregistered_signal_still_costs(self, delivery):
        sim, account, signals = delivery
        signals.send(99)
        sim.run()
        assert account.total_busy() > 0
