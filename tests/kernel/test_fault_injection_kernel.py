"""Event/kernel-tier fault injection: timer drift, forced preemption,
message faults on a bare APIC — the EventFaultInjector end to end."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu.cache import SharedMemory
from repro.faults import EventFaultInjector, EventTierTargets, FaultPlan
from repro.faults.plan import Fault
from repro.kernel.scheduler import CoreScheduler
from repro.kernel.syscalls import KernelInterface
from repro.kernel.threads import KernelThread
from repro.kernel.timers import KBTimer, OSIntervalTimer
from repro.sim.account import CycleAccount
from repro.sim.simulator import Simulator
from repro.uintr.apic import InterruptKind, LocalApic
from repro.uintr.upid import UPID


def make_timer(timer_cls, sim, period):
    fires = []
    timer = timer_cls(sim, CycleAccount(), period, lambda: fires.append(sim.now))
    timer.start()
    return timer, fires


class TestDelayNextFire:
    @pytest.mark.parametrize("timer_cls", [OSIntervalTimer, KBTimer])
    def test_next_fire_shifted_by_extra(self, timer_cls):
        sim = Simulator()
        timer, fires = make_timer(timer_cls, sim, period=10_000.0)
        sim.run(until=15_000.0)  # one fire down, next armed for 20 000
        assert timer.delay_next_fire(3_000.0)
        sim.run(until=60_000.0)
        assert timer.fault_delays == 1
        # The delayed fire lands at 23 000; the periodic chain re-arms
        # relative to it.
        assert fires[0] == pytest.approx(10_000.0)
        assert fires[1] == pytest.approx(23_000.0)

    def test_unarmed_timer_reports_miss(self):
        sim = Simulator()
        timer = KBTimer(sim, CycleAccount(), 10_000.0, lambda: None)
        # Never started: nothing to delay.
        assert not timer.delay_next_fire(500.0)
        assert timer.fault_delays == 0

    def test_stopped_timer_reports_miss(self):
        sim = Simulator()
        timer, _ = make_timer(KBTimer, sim, period=10_000.0)
        sim.run(until=15_000.0)
        timer.stop()
        assert not timer.delay_next_fire(500.0)


@pytest.fixture
def kernel_setup():
    memory = SharedMemory()
    apic = LocalApic(0)
    scheduler = CoreScheduler(0, memory, apic)
    kernel = KernelInterface(memory)
    kernel.attach_scheduler(scheduler)
    thread = KernelThread("victim")
    kernel.register_handler(thread, apic, notification_vector=0xEC)
    scheduler.add_thread(thread)
    scheduler.schedule_next(now=0.0)
    return memory, apic, scheduler, thread


class TestForcedPreemption:
    def test_fault_preempt_counts_and_survives_posting(self, kernel_setup):
        """A forced context switch during delivery: senders posting across
        the switch still reach the thread via the kernel slow path."""
        memory, apic, scheduler, thread = kernel_setup
        sim = Simulator()
        plan = FaultPlan(seed=0, faults=(Fault(kind="ctx_switch", at=50.0),))
        injector = EventFaultInjector(plan).install(
            EventTierTargets(sim=sim, scheduler=scheduler)
        )

        # A sender posts right when the preemption lands (SN was set for
        # the switch-out window, so the bits sit in the PIR).
        def post_during_switch():
            UPID(memory, thread.upid_addr).post_vector(4)

        sim.schedule_at(50.0, post_during_switch)
        sim.run(until=100.0)
        assert injector.counters.forced_preemptions == 1
        assert scheduler.forced_preemptions == 1
        # The single-thread preempt resumed the victim immediately; any
        # PIR bits posted while it was out were reposted on resume.
        assert scheduler.current is thread or apic.has_pending()

    def test_ctx_switch_requires_scheduler(self):
        sim = Simulator()
        plan = FaultPlan(seed=0, faults=(Fault(kind="ctx_switch", at=10.0),))
        with pytest.raises(ConfigError, match="scheduler"):
            EventFaultInjector(plan).install(EventTierTargets(sim=sim))


class TestEventTierMessageFaults:
    def _run(self, plan, accepts=4):
        sim = Simulator()
        apic = LocalApic(0)
        injector = EventFaultInjector(plan).install(
            EventTierTargets(sim=sim, apic=apic)
        )
        for i in range(accepts):
            sim.schedule_at(
                10.0 * (i + 1),
                lambda: apic.accept(1, sim.now, kind=InterruptKind.UIPI),
            )
        sim.run(until=10_000.0)
        return apic, injector

    def test_drop_fault_swallows_message(self):
        plan = FaultPlan(seed=0, faults=(Fault(kind="drop_send", index=2),))
        apic, injector = self._run(plan)
        assert injector.counters.dropped == 1
        assert apic.faults_dropped == 1
        assert len(apic._pending) == 3  # 4 accepts, one dropped

    def test_dup_fault_doubles_message(self):
        plan = FaultPlan(seed=0, faults=(Fault(kind="dup_send", index=1),))
        apic, injector = self._run(plan)
        assert injector.counters.duplicated == 1
        assert len(apic._pending) == 5

    def test_delay_fault_redelivers_later(self):
        plan = FaultPlan(
            seed=0, faults=(Fault(kind="delay_send", index=1, delay=500.0),)
        )
        apic, injector = self._run(plan)
        assert injector.counters.delayed == 1
        assert injector.counters.redelivered == 1
        assert len(apic._pending) == 4  # deferred, then redelivered
        # The redelivered copy arrived out of order (after accept #4).
        times = [p.arrival_time for p in apic._pending]
        assert max(times) == times[-1] >= 510.0

    def test_timer_drift_via_injector(self):
        sim = Simulator()
        timer, fires = make_timer(KBTimer, sim, period=1_000.0)
        plan = FaultPlan(
            seed=0, faults=(Fault(kind="timer_drift", at=1_500.0, delay=250.0),)
        )
        injector = EventFaultInjector(plan).install(
            EventTierTargets(sim=sim, timers=[timer])
        )
        sim.run(until=5_000.0)
        assert injector.counters.timer_drifts == 1
        assert fires[1] == pytest.approx(2_250.0)

    def test_cycle_tier_only_kinds_rejected(self):
        sim = Simulator()
        plan = FaultPlan(seed=0, faults=(Fault(kind="misspec_storm", at=5.0),))
        with pytest.raises(ConfigError, match="event-tier"):
            EventFaultInjector(plan).install(
                EventTierTargets(sim=sim, apic=LocalApic(0))
            )


class TestSimulatorPostpone:
    def test_postpone_moves_event(self):
        from repro.common.errors import SimulationError

        sim = Simulator()
        fired = []
        event = sim.schedule_at(100.0, lambda: fired.append(sim.now))
        moved = sim.postpone(event, 50.0)
        sim.run(until=1_000.0)
        assert fired == [150.0]
        assert moved is not None and event.cancelled

    def test_postpone_cancelled_event_is_noop(self):
        sim = Simulator()
        event = sim.schedule_at(100.0, lambda: None)
        event.cancel()
        assert sim.postpone(event, 10.0) is None

    def test_postpone_rejects_negative(self):
        from repro.common.errors import SimulationError

        sim = Simulator()
        event = sim.schedule_at(100.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.postpone(event, -1.0)
