"""OS timers vs. the KB timer on the event tier (§2, §4.3, Figure 6)."""

import pytest

from repro.common.errors import ConfigError
from repro.kernel.timers import KBTimer, NanosleepTimer, OSIntervalTimer
from repro.notify.costs import CostModel
from repro.sim.account import CycleAccount
from repro.sim.simulator import Simulator


def run_timer(timer_cls, period, duration=1_000_000.0):
    sim = Simulator()
    account = CycleAccount()
    fires = []
    timer = timer_cls(sim, account, period, lambda: fires.append(sim.now))
    timer.start()
    sim.run(until=duration)
    return timer, account, fires


class TestPeriodicBehaviour:
    @pytest.mark.parametrize("timer_cls", [OSIntervalTimer, NanosleepTimer, KBTimer])
    def test_fires_at_period(self, timer_cls):
        timer, _, fires = run_timer(timer_cls, period=10_000.0, duration=100_000.0)
        assert len(fires) == 10
        assert fires[0] == pytest.approx(10_000.0)

    @pytest.mark.parametrize("timer_cls", [OSIntervalTimer, NanosleepTimer, KBTimer])
    def test_stop_cancels(self, timer_cls):
        sim = Simulator()
        account = CycleAccount()
        timer = timer_cls(sim, account, 10_000.0, lambda: None)
        timer.start()
        sim.run(until=25_000.0)
        timer.stop()
        before = timer.fires
        sim.run(until=100_000.0)
        assert timer.fires == before

    @pytest.mark.parametrize("timer_cls", [OSIntervalTimer, NanosleepTimer, KBTimer])
    def test_invalid_period_rejected(self, timer_cls):
        sim = Simulator()
        with pytest.raises(ConfigError):
            timer_cls(sim, CycleAccount(), 0.0, lambda: None)

    def test_double_start_is_idempotent(self):
        sim = Simulator()
        timer = KBTimer(sim, CycleAccount(), 10_000.0, lambda: None)
        timer.start()
        timer.start()
        sim.run(until=10_500.0)
        assert timer.fires == 1


class TestCosts:
    def test_setitimer_charges_signal_cost_per_tick(self):
        _, account, fires = run_timer(OSIntervalTimer, period=10_000.0, duration=100_000.0)
        expected = len(fires) * CostModel().setitimer_event
        assert account.busy["setitimer"] == pytest.approx(expected)

    def test_nanosleep_cheaper_than_setitimer(self):
        _, sleep_account, _ = run_timer(NanosleepTimer, 10_000.0, 100_000.0)
        _, signal_account, _ = run_timer(OSIntervalTimer, 10_000.0, 100_000.0)
        assert sleep_account.total_busy() < signal_account.total_busy()

    def test_kb_timer_is_two_orders_cheaper(self):
        _, kb_account, _ = run_timer(KBTimer, 10_000.0, 100_000.0)
        _, os_account, _ = run_timer(OSIntervalTimer, 10_000.0, 100_000.0)
        assert kb_account.total_busy() * 20 < os_account.total_busy()


class TestOsResolutionFloor:
    def test_period_clamped_to_os_minimum(self):
        """§6.2.3: the OS interval timer bottoms out around 2 us."""
        sim = Simulator()
        timer = OSIntervalTimer(sim, CycleAccount(), period=100.0, callback=lambda: None)
        assert timer.period == CostModel().os_timer_min_period
        assert timer.requested_period == 100.0

    def test_kb_timer_has_no_floor(self):
        sim = Simulator()
        timer = KBTimer(sim, CycleAccount(), period=100.0, callback=lambda: None)
        assert timer.period == 100.0
