"""The user-interrupt syscall surface (§3.2 registration, §4.5 DUPID)."""

import pytest

from repro.common.errors import ConfigError, ProtocolError
from repro.cpu.cache import SharedMemory
from repro.kernel.scheduler import CoreScheduler
from repro.kernel.syscalls import KernelInterface
from repro.kernel.threads import KernelThread
from repro.uintr.apic import LocalApic
from repro.uintr.upid import UPID


@pytest.fixture
def kernel():
    memory = SharedMemory()
    return memory, LocalApic(0), KernelInterface(memory)


class TestRegisterHandler:
    def test_allocates_initialized_upid(self, kernel):
        memory, apic, interface = kernel
        thread = KernelThread("recv")
        addr = interface.register_handler(thread, apic, notification_vector=0xEC)
        upid = UPID(memory, addr)
        assert upid.notification_vector == 0xEC
        assert upid.notification_destination == apic.apic_id
        assert thread.upid_addr == addr

    def test_double_registration_rejected(self, kernel):
        _, apic, interface = kernel
        thread = KernelThread("recv")
        interface.register_handler(thread, apic)
        with pytest.raises(ProtocolError):
            interface.register_handler(thread, apic)

    def test_upids_do_not_overlap(self, kernel):
        _, apic, interface = kernel
        a = interface.register_handler(KernelThread(), apic)
        b = interface.register_handler(KernelThread(), apic)
        assert abs(a - b) >= 16


class TestRegisterSender:
    def test_grants_are_per_process(self, kernel):
        _, apic, interface = kernel
        receiver = KernelThread("recv")
        interface.register_handler(receiver, apic)
        p1 = interface.create_process()
        p2 = interface.create_process()
        interface.register_sender(p1, receiver, user_vector=1)
        assert p1.uitt is not None
        assert p2.uitt is None  # no implicit grant

    def test_requires_registered_receiver(self, kernel):
        _, _, interface = kernel
        process = interface.create_process()
        with pytest.raises(ProtocolError):
            interface.register_sender(process, KernelThread(), user_vector=1)

    def test_uitt_entry_points_at_upid(self, kernel):
        _, apic, interface = kernel
        receiver = KernelThread("recv")
        upid_addr = interface.register_handler(receiver, apic)
        process = interface.create_process()
        index = interface.register_sender(process, receiver, user_vector=5)
        entry = process.uitt.read(index)
        assert entry.upid_addr == upid_addr
        assert entry.user_vector == 5


class TestKbTimerSyscalls:
    def test_enable_disable(self, kernel):
        memory, apic, interface = kernel
        scheduler = CoreScheduler(0, memory, apic)
        interface.attach_scheduler(scheduler)
        interface.enable_kb_timer(0, vector=2)
        assert scheduler.kb_timer.enabled
        assert scheduler.kb_timer.vector == 2
        interface.disable_kb_timer(0)
        assert not scheduler.kb_timer.enabled

    def test_unattached_core_rejected(self, kernel):
        _, _, interface = kernel
        with pytest.raises(ConfigError):
            interface.enable_kb_timer(3, vector=2)


class TestForwardingSyscalls:
    def test_register_forwarding_allocates_dupid(self, kernel):
        _, apic, interface = kernel
        thread = KernelThread("io")
        dupid = interface.register_forwarding(thread, apic, vector=40, user_vector=3)
        assert thread.dupid_addr == dupid
        assert thread.forwarded_vectors >> 40 & 1 == 1
        assert apic.forwarding_enabled >> 40 & 1 == 1

    def test_capture_requires_dupid(self, kernel):
        _, _, interface = kernel
        with pytest.raises(ProtocolError):
            interface.capture_slow_path_device(KernelThread(), user_vector=3)

    def test_capture_accumulates_vectors(self, kernel):
        memory, apic, interface = kernel
        thread = KernelThread("io")
        interface.register_forwarding(thread, apic, vector=40, user_vector=3)
        interface.capture_slow_path_device(thread, user_vector=3)
        interface.capture_slow_path_device(thread, user_vector=5)
        assert memory.read(thread.dupid_addr) == (1 << 3) | (1 << 5)
        assert thread.pending_slow_path == [3, 5]
