"""Packet generation: rates, burstiness, multi-NIC splitting."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.net.nic import NIC
from repro.net.pktgen import PacketGenerator
from repro.sim.simulator import Simulator


class TestRates:
    def test_aggregate_rate(self):
        sim = Simulator()
        nics = [NIC(0)]
        generator = PacketGenerator(sim, nics, rate_pps=1_000_000, rng=RngStreams(1))
        generator.start()
        sim.run(until=0.01 * 2e9)
        assert generator.generated == pytest.approx(10_000, rel=0.08)

    def test_load_split_across_nics(self):
        sim = Simulator()
        nics = [NIC(i, ring_size=10**6) for i in range(4)]
        generator = PacketGenerator(sim, nics, rate_pps=2_000_000, rng=RngStreams(2))
        generator.start()
        sim.run(until=0.005 * 2e9)
        counts = [nic.rx_count for nic in nics]
        assert sum(counts) == generator.generated
        for count in counts:
            assert count == pytest.approx(generator.generated / 4, rel=0.15)

    def test_exponential_interarrivals(self):
        sim = Simulator()
        nic = NIC(0, ring_size=10**6)
        times = []
        nic.on_rx = lambda n, p: times.append(p.arrival_time)
        generator = PacketGenerator(sim, [nic], rate_pps=500_000, rng=RngStreams(3))
        generator.start()
        sim.run(until=0.02 * 2e9)
        gaps = np.diff(times)
        assert np.std(gaps) == pytest.approx(np.mean(gaps), rel=0.1)  # CV ~ 1

    def test_stop_halts_generation(self):
        sim = Simulator()
        generator = PacketGenerator(sim, [NIC(0)], rate_pps=1_000_000, rng=RngStreams(4))
        generator.start()
        sim.run(until=10_000.0)
        generator.stop()
        before = generator.generated
        sim.run(until=1_000_000.0)
        assert generator.generated == before

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            PacketGenerator(sim, [], rate_pps=1000)
        with pytest.raises(ConfigError):
            PacketGenerator(sim, [NIC(0)], rate_pps=0)

    def test_addresses_from_pool(self):
        sim = Simulator()
        nic = NIC(0, ring_size=10**6)
        pool = [11, 22, 33]
        generator = PacketGenerator(
            sim, [nic], rate_pps=200_000, rng=RngStreams(5), address_pool=pool
        )
        generator.start()
        sim.run(until=0.005 * 2e9)
        seen = {nic.poll().dst_ip for _ in range(min(50, nic.pending()))}
        assert seen <= set(pool)
