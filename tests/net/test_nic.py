"""NIC model: ring discipline and NAPI-style interrupt moderation."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.net.nic import NIC
from repro.net.packet import Packet


def packet(t=0.0, ip=0x0A000001):
    return Packet(dst_ip=ip, arrival_time=t)


class TestRing:
    def test_receive_and_poll_fifo(self):
        nic = NIC(0)
        a, b = packet(1.0), packet(2.0)
        nic.receive(a)
        nic.receive(b)
        assert nic.poll() is a
        assert nic.poll() is b
        assert nic.poll() is None

    def test_overflow_drops(self):
        nic = NIC(0, ring_size=2)
        assert nic.receive(packet())
        assert nic.receive(packet())
        assert not nic.receive(packet())
        assert nic.dropped == 1

    def test_invalid_ring_size(self):
        with pytest.raises(ConfigError):
            NIC(0, ring_size=0)

    def test_transmit_stamps_departure(self):
        nic = NIC(0)
        p = packet(t=5.0)
        nic.transmit(p, now=100.0, out_port=3)
        assert p.departure_time == 100.0
        assert p.out_port == 3
        assert p.latency == 95.0


class TestInterruptModeration:
    def test_interrupt_on_empty_to_nonempty(self):
        fired = []
        nic = NIC(0, on_interrupt=fired.append)
        nic.arm_interrupts()
        nic.receive(packet())
        assert fired == [nic]
        assert nic.interrupts_armed is False

    def test_no_interrupt_while_disarmed(self):
        fired = []
        nic = NIC(0, on_interrupt=fired.append)
        nic.receive(packet())
        assert fired == []

    def test_burst_costs_one_interrupt(self):
        fired = []
        nic = NIC(0, on_interrupt=fired.append)
        nic.arm_interrupts()
        for _ in range(5):
            nic.receive(packet())
        assert len(fired) == 1

    def test_rearm_fails_if_packets_pending(self):
        """The lost-wakeup guard: the driver must drain before idling."""
        nic = NIC(0, on_interrupt=lambda n: None)
        nic.receive(packet())
        assert nic.arm_interrupts() is False
        nic.poll()
        assert nic.arm_interrupts() is True

    def test_armed_without_sink_is_an_error(self):
        nic = NIC(0)
        nic.arm_interrupts()
        with pytest.raises(SimulationError):
            nic.receive(packet())

    def test_on_rx_observer(self):
        seen = []
        nic = NIC(0, on_rx=lambda n, p: seen.append(p.pid))
        p = packet()
        nic.receive(p)
        assert seen == [p.pid]


class TestPacketValidation:
    def test_ip_range(self):
        with pytest.raises(ConfigError):
            Packet(dst_ip=1 << 32, arrival_time=0.0)

    def test_latency_requires_departure(self):
        with pytest.raises(ConfigError):
            packet().latency
