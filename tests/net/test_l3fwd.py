"""The l3fwd router core: polling vs. xUI device interrupts (§6.2.2)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.net.l3fwd import L3Forwarder, L3fwdConfig
from repro.net.nic import NIC
from repro.net.packet import Packet
from repro.net.pktgen import PacketGenerator
from repro.notify.mechanisms import Mechanism
from repro.sim.simulator import Simulator


def build(mechanism, num_nics=1):
    sim = Simulator()
    config = L3fwdConfig(mechanism=mechanism, num_nics=num_nics)
    nics = [NIC(i) for i in range(num_nics)]
    forwarder = L3Forwarder(sim, nics, config, rng=RngStreams(1))
    return sim, nics, forwarder


class TestConfig:
    def test_only_polling_or_xui(self):
        with pytest.raises(ConfigError):
            L3fwdConfig(mechanism=Mechanism.SIGNAL)

    def test_nic_count_must_match(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            L3Forwarder(sim, [NIC(0)], L3fwdConfig(num_nics=2))


class TestForwarding:
    @pytest.mark.parametrize("mechanism", [Mechanism.POLLING, Mechanism.XUI_DEVICE])
    def test_all_packets_forwarded(self, mechanism):
        sim, nics, forwarder = build(mechanism)
        for i in range(10):
            sim.schedule_at(1000.0 * (i + 1), lambda i=i: nics[0].receive(
                Packet(dst_ip=0x0A000001, arrival_time=sim.now)
            ))
        sim.run(until=1_000_000.0)
        assert forwarder.forwarded == 10
        assert len(forwarder.latencies) == 10

    def test_polling_has_no_free_cycles(self):
        sim, nics, forwarder = build(Mechanism.POLLING)
        nics[0].receive(Packet(dst_ip=1, arrival_time=0.0))
        sim.run(until=100_000.0)
        assert forwarder.free_fraction() == 0.0
        assert forwarder.polling_fraction() > 0.9

    def test_xui_idle_core_is_fully_free(self):
        sim, _, forwarder = build(Mechanism.XUI_DEVICE)
        sim.run(until=100_000.0)
        assert forwarder.free_fraction() == 1.0

    def test_xui_burst_costs_one_interrupt(self):
        sim, nics, forwarder = build(Mechanism.XUI_DEVICE)

        def burst():
            for _ in range(8):
                nics[0].receive(Packet(dst_ip=1, arrival_time=sim.now))

        sim.schedule_at(1000.0, burst)
        sim.run(until=200_000.0)
        assert forwarder.forwarded == 8
        assert forwarder.interrupts_taken == 1

    def test_xui_rearms_after_drain(self):
        sim, nics, forwarder = build(Mechanism.XUI_DEVICE)
        sim.schedule_at(1000.0, lambda: nics[0].receive(Packet(dst_ip=1, arrival_time=sim.now)))
        sim.schedule_at(200_000.0, lambda: nics[0].receive(Packet(dst_ip=1, arrival_time=sim.now)))
        sim.run(until=400_000.0)
        assert forwarder.interrupts_taken == 2
        assert forwarder.forwarded == 2

    def test_latency_includes_interrupt_entry(self):
        sim, nics, forwarder = build(Mechanism.XUI_DEVICE)
        sim.schedule_at(1000.0, lambda: nics[0].receive(Packet(dst_ip=1, arrival_time=sim.now)))
        sim.run(until=100_000.0)
        config = forwarder.config
        floor = config.per_packet_cost
        assert forwarder.latencies[0] > floor  # wire + delivery on top


class TestMwaitSingleQueueLimitation:
    """§2: mwait parks the core but monitors only one line."""

    def test_monitored_queue_wakes_core(self):
        sim, nics, forwarder = build(Mechanism.MWAIT)
        sim.schedule_at(1000.0, lambda: nics[0].receive(Packet(dst_ip=1, arrival_time=sim.now)))
        sim.run(until=200_000.0)
        assert forwarder.forwarded == 1
        # Latency includes the mwait exit.
        assert forwarder.latencies[0] >= forwarder.config.mwait_wake_latency

    def test_unmonitored_queue_does_not_wake_core(self):
        sim, nics, forwarder = build(Mechanism.MWAIT, num_nics=2)
        sim.schedule_at(1000.0, lambda: nics[1].receive(Packet(dst_ip=1, arrival_time=sim.now)))
        sim.run(until=500_000.0)
        assert forwarder.forwarded == 0  # the core never woke
        assert nics[1].pending() == 1

    def test_unmonitored_packet_served_after_monitored_wake(self):
        sim, nics, forwarder = build(Mechanism.MWAIT, num_nics=2)
        sim.schedule_at(1000.0, lambda: nics[1].receive(Packet(dst_ip=1, arrival_time=sim.now)))
        sim.schedule_at(50_000.0, lambda: nics[0].receive(Packet(dst_ip=1, arrival_time=sim.now)))
        sim.run(until=500_000.0)
        assert forwarder.forwarded == 2
        # The queue-1 packet waited ~49k cycles for a queue-0 wake.
        assert max(forwarder.latencies) > 45_000.0

    def test_mwait_frees_cycles_when_idle(self):
        sim, _, forwarder = build(Mechanism.MWAIT)
        sim.run(until=100_000.0)
        assert forwarder.free_fraction() == 1.0

    def test_xui_beats_mwait_on_multi_queue_latency(self):
        """The comparison HyperPlane/xUI motivate: forwarded interrupts
        wake for *any* queue; mwait only for the monitored one."""
        import statistics

        def run(mechanism):
            sim, nics, forwarder = build(mechanism, num_nics=2)
            for i in range(6):
                sim.schedule_at(
                    10_000.0 * (i + 1),
                    lambda i=i: nics[i % 2].receive(Packet(dst_ip=1, arrival_time=sim.now)),
                )
            sim.run(until=1_000_000.0)
            return forwarder

        mwait = run(Mechanism.MWAIT)
        xui = run(Mechanism.XUI_DEVICE)
        assert xui.forwarded == 6
        assert statistics.mean(xui.latencies) * 5 < statistics.mean(
            mwait.latencies or [float("inf")]
        )


class TestUnderLoad:
    @pytest.mark.parametrize("mechanism", [Mechanism.POLLING, Mechanism.XUI_DEVICE])
    def test_work_conservation_at_moderate_load(self, mechanism):
        sim, nics, forwarder = build(mechanism)
        rate = 0.5 * 2e9 / forwarder.config.per_packet_cost
        generator = PacketGenerator(sim, nics, rate, rng=RngStreams(2))
        generator.start()
        sim.run(until=0.005 * 2e9)
        generator.stop()
        # All offered packets forwarded (within the tail still in flight).
        assert forwarder.forwarded >= generator.generated - 10

    def test_xui_frees_cycles_at_partial_load(self):
        sim, nics, forwarder = build(Mechanism.XUI_DEVICE)
        rate = 0.4 * 2e9 / forwarder.config.per_packet_cost
        generator = PacketGenerator(sim, nics, rate, rng=RngStreams(3))
        generator.start()
        sim.run(until=0.005 * 2e9)
        # Paper anchor: ~45% free at 40% load with one queue (§6.2.2).
        assert 0.30 <= forwarder.free_fraction() <= 0.60
