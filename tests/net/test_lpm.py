"""Longest-prefix-match correctness (the l3fwd routing substrate)."""

import pytest

from repro.common.errors import ConfigError
from repro.net.lpm import LPMTable, RouteTableGenerator


def ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


class TestLookup:
    def test_exact_prefix_match(self):
        table = LPMTable()
        table.add_route(ip(10, 0, 0, 0), 8, next_hop=1)
        assert table.lookup(ip(10, 1, 2, 3)) == 1
        assert table.lookup(ip(11, 0, 0, 0)) is None

    def test_longest_prefix_wins(self):
        table = LPMTable()
        table.add_route(ip(10, 0, 0, 0), 8, next_hop=1)
        table.add_route(ip(10, 1, 0, 0), 16, next_hop=2)
        table.add_route(ip(10, 1, 2, 0), 24, next_hop=3)
        assert table.lookup(ip(10, 1, 2, 9)) == 3
        assert table.lookup(ip(10, 1, 9, 9)) == 2
        assert table.lookup(ip(10, 9, 9, 9)) == 1

    def test_default_route(self):
        table = LPMTable(default_next_hop=0)
        assert table.lookup(ip(1, 2, 3, 4)) == 0

    def test_zero_length_prefix(self):
        table = LPMTable()
        table.add_route(0, 0, next_hop=7)
        assert table.lookup(ip(200, 1, 1, 1)) == 7

    def test_host_route(self):
        table = LPMTable()
        table.add_route(ip(10, 0, 0, 5), 32, next_hop=9)
        assert table.lookup(ip(10, 0, 0, 5)) == 9
        assert table.lookup(ip(10, 0, 0, 6)) is None

    def test_route_overwrite(self):
        table = LPMTable()
        table.add_route(ip(10, 0, 0, 0), 8, next_hop=1)
        table.add_route(ip(10, 0, 0, 0), 8, next_hop=5)
        assert table.lookup(ip(10, 2, 3, 4)) == 5
        assert len(table) == 1


class TestValidation:
    def test_bits_below_mask_rejected(self):
        with pytest.raises(ConfigError):
            LPMTable().add_route(ip(10, 0, 0, 1), 8, next_hop=1)

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigError):
            LPMTable().add_route(0, 33, next_hop=1)

    def test_address_range_checked(self):
        with pytest.raises(ConfigError):
            LPMTable().lookup(1 << 32)


class TestAgainstBruteForce:
    def test_generated_table_matches_reference(self):
        generator = RouteTableGenerator(seed=11)
        table = generator.generate(num_routes=400)
        for addr in generator.random_addresses(500):
            assert table.lookup(addr) == table.lookup_brute_force(addr)

    def test_generator_produces_requested_size(self):
        table = RouteTableGenerator(seed=1).generate(num_routes=250)
        assert len(table) == 250

    def test_full_16k_table_generates(self):
        """The experiment's 16,000-entry table builds and answers (§5.4)."""
        generator = RouteTableGenerator(seed=2)
        table = generator.generate(16_000)
        assert len(table) == 16_000
        for addr in generator.random_addresses(50):
            assert table.lookup(addr) is not None  # default route backstop
