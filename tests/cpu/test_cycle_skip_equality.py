"""Equality gate for the cycle-skipping engine (REPRO_FAST).

The fast engine changes *how* the clock advances — quiescent cycles are
skipped in bulk, decode is served from memoized templates, the event tier
fast-forwards — but must never change *what* is simulated.  This suite runs
the same cell twice, once under the naive stepper (``REPRO_FAST=0``) and
once under the skipping engine, and requires byte-identical results:
final cycle counts, the full :class:`CoreStats` snapshot of every core, and
every interrupt-delivery trace timestamp.

Cells cover each microbenchmark under all three delivery strategies
(flush / drain / tracked), with the interrupt source being either a
dedicated UIPI timer core (two-core, §2) or the receiver's own KB timer
(§4.3), and with safepoint mode (§4.4) both off and on.
"""

from __future__ import annotations

import pytest

from repro.apps import microbench as mb
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem

#: Short interval so several interrupts land inside the tiny workloads.
INTERVAL = 900
MAX_CYCLES = 2_000_000
SENDER_COUNT = 64

WORKLOADS = {
    "count_loop": lambda: mb.make_count_loop(1_500),
    "pointer_chase": lambda: mb.make_pointer_chase(48, stride=64, iterations=150),
    "memops": lambda: mb.make_memops(iterations=150, footprint_kb=16),
    "fib": lambda: mb.make_fib(9),
}

STRATEGIES = {
    "flush": FlushStrategy,
    "drain": DrainStrategy,
    "tracked": TrackedStrategy,
}


def _observe(workload_name: str, strategy_name: str, kb_timer: bool, safepoint: bool):
    """Run one cell live (trace on, no result cache) and snapshot everything
    an equality check could care about."""
    workload = WORKLOADS[workload_name]()
    strategy = STRATEGIES[strategy_name]()
    if kb_timer:
        system = MultiCoreSystem([workload.program], [strategy], trace=True)
        workload.install(system.shared)
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.safepoint_mode = safepoint
        core.uintr.kb_timer.arm_periodic(INTERVAL, now=0)
    else:
        sender = mb.make_uipi_timer_core(INTERVAL, SENDER_COUNT)
        system = MultiCoreSystem(
            [workload.program, sender.program],
            [strategy, FlushStrategy()],
            trace=True,
        )
        workload.install(system.shared)
        system.connect_uipi(sender_core_id=1, receiver_core_id=0, user_vector=1)
        core = system.cores[0]
        core.uintr.safepoint_mode = safepoint
    system.run(MAX_CYCLES, until_halted=[0])
    assert core.halted, "workload wedged"
    return {
        "cycles": system.cycle,
        "stats": [dict(c.stats.snapshot().__dict__) for c in system.cores],
        "trace": [
            (event.time, event.kind, tuple(sorted(event.detail.items())))
            for event in system.trace.events
        ],
    }


CELLS = [
    pytest.param(workload, strategy, kb_timer, safepoint, id=(
        f"{workload}-{strategy}-{'kb' if kb_timer else 'uipi'}"
        f"{'-safepoint' if safepoint else ''}"
    ))
    for workload in WORKLOADS
    for strategy in STRATEGIES
    for kb_timer in (False, True)
    for safepoint in (False, True)
]


@pytest.mark.parametrize("workload,strategy,kb_timer,safepoint", CELLS)
def test_fast_engine_matches_naive(monkeypatch, workload, strategy, kb_timer, safepoint):
    monkeypatch.setenv("REPRO_FAST", "0")
    naive = _observe(workload, strategy, kb_timer, safepoint)
    monkeypatch.setenv("REPRO_FAST", "1")
    fast = _observe(workload, strategy, kb_timer, safepoint)
    assert fast["cycles"] == naive["cycles"]
    assert fast["stats"] == naive["stats"]
    assert fast["trace"] == naive["trace"]


def test_interrupts_actually_delivered(monkeypatch):
    """Sanity: the grid is not vacuous — interrupts land in a normal cell."""
    monkeypatch.setenv("REPRO_FAST", "1")
    cell = _observe("count_loop", "flush", kb_timer=True, safepoint=False)
    assert cell["stats"][0]["interrupts_delivered"] >= 2
