"""Programs and the builder: labels, handlers, resolution."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu import isa
from repro.cpu.program import (
    CODE_BASE,
    INSTR_BYTES,
    Program,
    ProgramBuilder,
    instruction_address,
)


class TestBuilder:
    def test_label_resolution(self):
        builder = ProgramBuilder("t")
        builder.label("start")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.jmp("start"))
        program = builder.build()
        assert program.instructions[1].target == 0

    def test_forward_reference(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.jmp("end"))
        builder.emit(isa.nop())
        builder.label("end")
        builder.emit(isa.halt())
        assert builder.build().instructions[0].target == 2

    def test_undefined_label_rejected(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.jmp("nowhere"))
        with pytest.raises(ConfigError):
            builder.build()

    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder("t")
        builder.label("x")
        with pytest.raises(ConfigError):
            builder.label("x")

    def test_empty_program_rejected(self):
        with pytest.raises(ConfigError):
            ProgramBuilder("t").build()

    def test_handler_registration(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.halt())
        builder.emit_default_handler()
        program = builder.build()
        assert program.handler_index == 1
        assert program.instructions[-1].op is isa.Op.UIRET

    def test_default_handler_counter_code(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=0x1000)
        program = builder.build()
        ops = [i.op for i in program.instructions]
        assert isa.Op.LOAD in ops and isa.Op.STORE in ops

    def test_entry_label(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.nop())
        builder.label("main")
        builder.emit(isa.halt())
        builder.entry("main")
        assert builder.build().entry_index == 1

    def test_unknown_handler_label_rejected(self):
        with pytest.raises(ConfigError):
            Program(instructions=[isa.halt()], handler_label="missing")


class TestAddressing:
    def test_instruction_address(self):
        assert instruction_address(0) == CODE_BASE
        assert instruction_address(10) == CODE_BASE + 10 * INSTR_BYTES

    def test_at_bounds_checked(self):
        program = ProgramBuilder("t").emit(isa.halt()).build()
        with pytest.raises(ConfigError):
            program.at(5)
        with pytest.raises(ConfigError):
            program.at(-1)

    def test_len(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.nop(), isa.nop(), isa.halt())
        assert len(builder.build()) == 3
