"""Micro-op cache: decoded-form caching and the §4.4 safepoint bit."""

import pytest

from tests.conftest import COUNTER_ADDR

from repro.common.errors import ConfigError
from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.cpu.uopcache import UopCache


class TestUopCacheStructure:
    def test_miss_then_hit(self):
        cache = UopCache()
        assert cache.lookup(5) is None
        cache.fill(5, isa.addi(1, 1, 1), dest=1, src_regs=(1,))
        entry = cache.lookup(5)
        assert entry is not None
        assert entry.dest == 1 and entry.src_regs == (1,)

    def test_safepoint_bit_cached(self):
        cache = UopCache()
        cache.fill(7, isa.addi(1, 1, 1).with_safepoint(), dest=1, src_regs=(1,))
        assert cache.lookup(7).safepoint is True
        cache.fill(8, isa.addi(1, 1, 1), dest=1, src_regs=(1,))
        assert cache.lookup(8).safepoint is False

    def test_way_eviction(self):
        cache = UopCache(sets=1, ways=2)
        for pc in (1, 2, 3):
            cache.fill(pc, isa.nop(), dest=None, src_regs=())
        assert cache.lookup(1) is None  # oldest evicted
        assert cache.lookup(3) is not None

    def test_refill_replaces(self):
        cache = UopCache()
        cache.fill(5, isa.addi(1, 1, 1), dest=1, src_regs=(1,))
        cache.fill(5, isa.addi(2, 2, 2), dest=2, src_regs=(2,))
        assert cache.lookup(5).dest == 2

    def test_hit_rate(self):
        cache = UopCache()
        cache.lookup(1)
        cache.fill(1, isa.nop(), None, ())
        cache.lookup(1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            UopCache(sets=0)

    def test_invalidate_all(self):
        cache = UopCache()
        cache.fill(3, isa.nop(), None, ())
        cache.invalidate_all()
        assert cache.lookup(3) is None


class TestUopCacheInCore:
    def test_loops_hit_the_uop_cache(self):
        builder = ProgramBuilder("loop")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 2000))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        system = MultiCoreSystem([builder.build()], [FlushStrategy()])
        system.run(100_000, until_halted=[0])
        core = system.cores[0]
        assert core.uop_cache.hit_rate > 0.9  # the hot loop lives in the DSB

    def test_hits_shorten_frontend_latency(self):
        """A loop-resident program runs faster than with the cache disabled
        (mispredict recovery refills through the shorter path)."""
        def run(bonus):
            builder = ProgramBuilder("loop")
            builder.emit(isa.movi(1, 0))
            builder.emit(isa.movi(2, 3000))
            builder.emit(isa.movi(5, 7))
            builder.label("loop")
            builder.emit(isa.addi(1, 1, 1))
            # An unpredictable branch so front-end depth matters.
            builder.emit(isa.movi(6, 1103515245))
            builder.emit(isa.mul(5, 5, 6))
            builder.emit(isa.addi(5, 5, 12345))
            builder.emit(isa.shri(6, 5, 16))
            builder.emit(isa.andi(6, 6, 1))
            builder.emit(isa.beqi(6, 0, "skip"))
            builder.emit(isa.addi(4, 4, 1))
            builder.label("skip")
            builder.emit(isa.blt(1, 2, "loop"))
            builder.emit(isa.halt())
            system = MultiCoreSystem([builder.build()], [FlushStrategy()])
            system.cores[0].uop_cache.hit_depth_bonus = bonus
            system.run(10_000_000, until_halted=[0])
            return system.cycle

        assert run(bonus=4) < run(bonus=0)

    def test_safepoint_delivery_from_uop_cache_path(self):
        """§4.4: safepoint-mode delivery still works when the safepoint
        instruction is served from the micro-op cache (hot loop)."""
        builder = ProgramBuilder("hot")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 30_000))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop").with_safepoint())
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        system = MultiCoreSystem([builder.build()], [TrackedStrategy()])
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.safepoint_mode = True
        core.uintr.kb_timer.arm_periodic(5000, now=0)
        system.run(3_000_000, until_halted=[0])
        assert core.halted
        assert core.uop_cache.hit_rate > 0.9
        assert core.stats.interrupts_delivered >= 3
        assert system.shared.read(COUNTER_ADDR) == core.stats.interrupts_delivered

    def test_safepoint_at_consults_cache(self):
        builder = ProgramBuilder("p")
        builder.emit(isa.nop())
        builder.emit(isa.safepoint())
        builder.emit(isa.halt())
        system = MultiCoreSystem([builder.build()], [TrackedStrategy()])
        core = system.cores[0]
        assert core.safepoint_at(1) is True
        assert core.safepoint_at(0) is False
        assert core.safepoint_at(99) is False


class TestFullTemplate:
    """The entry is the complete decoded form: op and extra issue latency
    ride along so a hit needs no re-derivation (cheap-copy instantiation)."""

    def test_op_and_latency_cached(self):
        cache = UopCache()
        instruction = isa.addi(1, 1, 1)
        cache.fill(9, instruction, dest=1, src_regs=(1,), extra_latency=7)
        entry = cache.lookup(9)
        assert entry.op is instruction.op
        assert entry.op_name == instruction.op.name
        assert entry.extra_latency == 7

    def test_extra_latency_defaults_to_zero(self):
        cache = UopCache()
        cache.fill(3, isa.nop(), dest=None, src_regs=())
        assert cache.lookup(3).extra_latency == 0

    def test_mru_fast_path_counts_hit(self):
        """Back-to-back lookups of the hottest PC take the tail fast path
        and still count as hits with correct LRU state."""
        cache = UopCache(sets=1, ways=4)
        for pc in (1, 2, 3):
            cache.fill(pc, isa.nop(), dest=None, src_regs=())
        before = cache.hits
        assert cache.lookup(3).pc == 3  # MRU tail
        assert cache.lookup(3).pc == 3
        assert cache.hits == before + 2
        # LRU order unchanged by the fast path: filling a 4th then 5th PC
        # still evicts 1 (the coldest), not 3.
        cache.fill(4, isa.nop(), dest=None, src_regs=())
        cache.fill(5, isa.nop(), dest=None, src_regs=())
        assert cache.lookup(1) is None
        assert cache.lookup(3) is not None
