"""Pipeline behaviour: ILP, mispredict penalties, serialization, capacity."""

import pytest

from repro.cpu import isa
from repro.cpu.config import SystemConfig
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder


def run(builder, config=None, max_cycles=500_000):
    system = MultiCoreSystem([builder.build()], [FlushStrategy()], config=config)
    system.run(max_cycles, until_halted=[0])
    assert system.cores[0].halted
    return system


def straightline(op_factory, count):
    builder = ProgramBuilder("sl")
    for _ in range(count):
        builder.emit(op_factory())
    builder.emit(isa.halt())
    return builder


class TestParallelism:
    def test_independent_ops_run_superscalar(self):
        # 600 independent adds across 6 registers: >> 1 IPC.
        builder = ProgramBuilder("ilp")
        for i in range(100):
            for reg in range(1, 7):
                builder.emit(isa.addi(reg, reg, 1))
        builder.emit(isa.halt())
        system = run(builder)
        ipc = system.cores[0].stats.committed_instructions / system.cycle
        assert ipc > 2.0

    def test_dependent_chain_is_serial(self):
        builder = straightline(lambda: isa.addi(1, 1, 1), 400)
        system = run(builder)
        # A 1-cycle dependent chain commits ~1 per cycle, no faster.
        assert system.cycle >= 400

    def test_dependent_muls_pay_latency(self):
        add_chain = run(straightline(lambda: isa.addi(1, 1, 1), 300)).cycle
        mul_chain = run(straightline(lambda: isa.mul(1, 1, 1), 300)).cycle
        assert mul_chain > add_chain * 2  # mul latency 3 vs 1


class TestMisprediction:
    def test_predictable_loop_beats_unpredictable_branches(self):
        def body(lcg):
            builder = ProgramBuilder("b")
            builder.emit(isa.movi(1, 0))
            builder.emit(isa.movi(2, 4000))
            builder.emit(isa.movi(5, 99991))
            builder.label("loop")
            builder.emit(isa.addi(1, 1, 1))
            if lcg:
                builder.emit(isa.movi(6, 1103515245))
                builder.emit(isa.mul(5, 5, 6))
                builder.emit(isa.addi(5, 5, 12345))
                builder.emit(isa.shri(6, 5, 17))
                builder.emit(isa.andi(6, 6, 1))
            else:
                builder.emit(isa.movi(6, 0))
                builder.emit(isa.movi(7, 0))
                builder.emit(isa.movi(6, 0))
                builder.emit(isa.movi(7, 0))
                builder.emit(isa.andi(6, 1, 0))
            builder.emit(isa.beqi(6, 0, "skip"))
            builder.emit(isa.addi(4, 4, 1))
            builder.label("skip")
            builder.emit(isa.blt(1, 2, "loop"))
            builder.emit(isa.halt())
            return builder

        predictable = run(body(False))
        random_branches = run(body(True))
        rate_pred = predictable.cores[0].predictor.misprediction_rate
        rate_rand = random_branches.cores[0].predictor.misprediction_rate
        assert rate_rand > rate_pred
        assert random_branches.cores[0].stats.squashed_uops > predictable.cores[0].stats.squashed_uops

    def test_loop_exit_mispredicts_once(self):
        builder = ProgramBuilder("exit")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 500))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        system = run(builder)
        assert system.cores[0].stats.branch_squashes <= 3


class TestSerialization:
    def test_stui_costs_more_than_clui(self):
        clui_cycles = run(straightline(isa.clui, 100)).cycle
        stui_cycles = run(straightline(isa.stui, 100)).cycle
        assert stui_cycles > clui_cycles * 5

    def test_serialize_stall_counted(self):
        system = run(straightline(isa.stui, 50))
        assert system.cores[0].stats.serialize_stall_cycles > 0


class TestCapacityLimits:
    def test_small_config_still_correct(self):
        builder = ProgramBuilder("sc")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 300))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        system = run(builder, config=SystemConfig.small())
        assert system.cores[0].arch_regs[1] == 300

    def test_small_config_is_slower(self):
        def loop():
            builder = ProgramBuilder("w")
            for i in range(80):
                for reg in range(1, 7):
                    builder.emit(isa.addi(reg, reg, 1))
            builder.emit(isa.halt())
            return builder

        big = run(loop()).cycle
        small = run(loop(), config=SystemConfig.small()).cycle
        assert small > big

    def test_rob_never_exceeds_capacity(self):
        config = SystemConfig.small()
        builder = ProgramBuilder("robcap")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 500))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        system = MultiCoreSystem([builder.build()], [FlushStrategy()], config=config)
        max_rob = 0
        for _ in range(3000):
            system.step()
            max_rob = max(max_rob, len(system.cores[0].rob))
            if system.cores[0].halted:
                break
        assert max_rob <= config.core.rob_size

    def test_load_queue_never_exceeds_capacity(self):
        config = SystemConfig.small()
        builder = ProgramBuilder("lqcap")
        builder.emit(isa.movi(1, 0x300000))
        for _ in range(200):
            builder.emit(isa.load(2, 1, 0))
        builder.emit(isa.halt())
        system = MultiCoreSystem([builder.build()], [FlushStrategy()], config=config)
        max_lq = 0
        for _ in range(20_000):
            system.step()
            max_lq = max(max_lq, len(system.cores[0].lsq.loads))
            if system.cores[0].halted:
                break
        assert system.cores[0].halted
        assert max_lq <= config.core.lq_size
