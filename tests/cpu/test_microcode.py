"""MSROM routine structure (§3.3/§3.5)."""

from repro.cpu import microcode as mc
from repro.cpu.config import TimingParams
from repro.cpu.isa import Op


class TestSenduipiRoutine:
    def test_has_57_uops(self):
        routine = mc.senduipi_routine(TimingParams(), uitt_index=0)
        assert len(routine) == 57  # §3.5: 57 MSROM micro-ops

    def test_contains_icr_write(self):
        routine = mc.senduipi_routine(TimingParams(), 0)
        semantics = [u.semantic for u in routine]
        assert mc.SEM_ICR_WRITE in semantics

    def test_upid_update_precedes_icr_write(self):
        # §3.3: the PIR/ON update must be visible before the IPI is sent.
        routine = mc.senduipi_routine(TimingParams(), 0)
        semantics = [u.semantic for u in routine]
        assert semantics.index(mc.SEM_UPID_SET_PIR) < semantics.index(mc.SEM_ICR_WRITE)

    def test_serialization_stall_near_paper_279(self):
        timing = TimingParams()
        routine = mc.senduipi_routine(timing, 0)
        stall = sum(u.extra_latency for u in routine if u.op is Op.MSR_WRITE)
        assert 250 <= stall <= 400

    def test_uitt_index_propagated(self):
        routine = mc.senduipi_routine(TimingParams(), uitt_index=5)
        uitt_load = next(u for u in routine if u.semantic == mc.SEM_UITT_LOAD)
        assert uitt_load.imm == 5


class TestReceiverRoutines:
    def test_notification_reads_upid_then_clears_on(self):
        routine = mc.notification_routine(TimingParams())
        semantics = [u.semantic for u in routine]
        assert semantics.index(mc.SEM_NOTIF_READ_PIR) < semantics.index(mc.SEM_NOTIF_CLEAR_ON)

    def test_delivery_pushes_then_clears_uif(self):
        routine = mc.delivery_routine(TimingParams())
        semantics = [u.semantic for u in routine]
        assert semantics.index(mc.SEM_DEL_PUSH_SP) < semantics.index(mc.SEM_DEL_CLEAR_UIF)

    def test_delivery_pushes_read_stack_pointer(self):
        # The §6.1 worst case hinges on this dataflow edge.
        from repro.cpu.isa import RegNames

        routine = mc.delivery_routine(TimingParams())
        pushes = [u for u in routine if u.semantic == mc.SEM_DEL_PUSH_SP]
        assert pushes and pushes[0].src1 == RegNames.SP

    def test_ipi_receive_includes_notification(self):
        full = mc.receive_routine(TimingParams(), needs_notification=True)
        semantics = [u.semantic for u in full]
        assert mc.SEM_NOTIF_READ_PIR in semantics
        assert mc.SEM_DEL_CLEAR_UIF in semantics

    def test_timer_receive_skips_notification(self):
        # §4.3: "the microcode for interrupt delivery can start at step 5".
        fast = mc.receive_routine(TimingParams(), needs_notification=False)
        semantics = [u.semantic for u in fast]
        assert mc.SEM_NOTIF_READ_PIR not in semantics
        assert mc.SEM_DEL_CLEAR_UIF in semantics

    def test_timer_path_much_shorter(self):
        timing = TimingParams()
        with_notif = mc.receive_routine(timing, True)
        without = mc.receive_routine(timing, False)
        cost = lambda r: sum(u.extra_latency for u in r)
        assert cost(without) < cost(with_notif)

    def test_arch_addr_semantics_cover_memory_ops(self):
        timing = TimingParams()
        for routine in (mc.notification_routine(timing), mc.senduipi_routine(timing, 0)):
            for uop in routine:
                if uop.op in (Op.LOAD, Op.STORE) and uop.src1 is None:
                    assert uop.semantic in mc.ARCH_ADDR_SEMANTICS
