"""Program semantics on the core: the simulated ISA computes correctly."""

import pytest

from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder


def run_program(builder: ProgramBuilder, max_cycles: int = 200_000):
    system = MultiCoreSystem([builder.build()], [FlushStrategy()])
    system.run(max_cycles, until_halted=[0])
    core = system.cores[0]
    assert core.halted, "program did not halt"
    return core, system


class TestArithmetic:
    def test_add_sub(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 10))
        builder.emit(isa.movi(2, 3))
        builder.emit(isa.add(3, 1, 2))
        builder.emit(isa.sub(4, 1, 2))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[3] == 13
        assert core.arch_regs[4] == 7

    def test_mul_div(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 6))
        builder.emit(isa.movi(2, 7))
        builder.emit(isa.mul(3, 1, 2))
        builder.emit(isa.div(4, 3, 2))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[3] == 42
        assert core.arch_regs[4] == 6

    def test_div_by_zero_yields_zero(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 5))
        builder.emit(isa.movi(2, 0))
        builder.emit(isa.div(3, 1, 2))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[3] == 0

    def test_logic_and_shifts(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 0b1100))
        builder.emit(isa.andi(2, 1, 0b1010))
        builder.emit(isa.xori(3, 1, 0b0110))
        builder.emit(isa.shli(4, 1, 2))
        builder.emit(isa.shri(5, 1, 2))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[2] == 0b1000
        assert core.arch_regs[3] == 0b1010
        assert core.arch_regs[4] == 0b110000
        assert core.arch_regs[5] == 0b11

    def test_64bit_wraparound(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, (1 << 40)))
        builder.emit(isa.mul(2, 1, 1))  # 2^80 wraps to 0 mod 2^64
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[2] == 0


class TestMemory:
    def test_store_load_roundtrip(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 0x300000))
        builder.emit(isa.movi(2, 77))
        builder.emit(isa.store(2, 1, 8))
        builder.emit(isa.load(3, 1, 8))
        builder.emit(isa.halt())
        core, system = run_program(builder)
        assert core.arch_regs[3] == 77
        assert system.shared.read(0x300008) == 77

    def test_store_to_load_forwarding_value(self):
        # Dependent store->load in flight still sees the right value.
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 0x300000))
        builder.emit(isa.movi(2, 5))
        for value in range(6):
            builder.emit(isa.movi(2, value))
            builder.emit(isa.store(2, 1, 0))
            builder.emit(isa.load(3, 1, 0))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[3] == 5

    def test_pointer_chase_semantics(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 0x300000))
        builder.emit(isa.load(1, 1, 0))
        builder.emit(isa.load(1, 1, 0))
        builder.emit(isa.halt())
        system = MultiCoreSystem([builder.build()], [FlushStrategy()])
        system.shared.write(0x300000, 0x300040)
        system.shared.write(0x300040, 0x300080)
        system.run(100_000, until_halted=[0])
        assert system.cores[0].arch_regs[1] == 0x300080


class TestControlFlow:
    def test_loop_count(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 37))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[1] == 37

    def test_taken_and_not_taken_beq(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 5))
        builder.emit(isa.beqi(1, 5, "equal"))
        builder.emit(isa.movi(2, 111))  # skipped
        builder.label("equal")
        builder.emit(isa.movi(3, 222))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[2] == 0
        assert core.arch_regs[3] == 222

    def test_signed_comparison(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.subi(1, 1, 1))  # -1 (as unsigned 2^64-1)
        builder.emit(isa.movi(2, 1))
        builder.emit(isa.blt(1, 2, "neg_less"))
        builder.emit(isa.movi(3, 0))
        builder.emit(isa.halt())
        builder.label("neg_less")
        builder.emit(isa.movi(3, 1))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[3] == 1  # -1 < 1 under signed compare

    def test_call_ret(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.call("double"))
        builder.emit(isa.halt())
        builder.label("double")
        builder.emit(isa.movi(2, 21))
        builder.emit(isa.add(2, 2, 2))
        builder.emit(isa.ret())
        core, _ = run_program(builder)
        assert core.arch_regs[2] == 42

    def test_nested_calls(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.call("outer"))
        builder.emit(isa.halt())
        builder.label("outer")
        builder.emit(isa.subi(15, 15, 8))
        builder.emit(isa.store(14, 15, 0))
        builder.emit(isa.call("inner"))
        builder.emit(isa.addi(3, 3, 1))
        builder.emit(isa.load(14, 15, 0))
        builder.emit(isa.addi(15, 15, 8))
        builder.emit(isa.ret())
        builder.label("inner")
        builder.emit(isa.addi(3, 3, 10))
        builder.emit(isa.ret())
        core, _ = run_program(builder)
        assert core.arch_regs[3] == 11

    def test_rdtsc_monotonic(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.rdtsc(1))
        for _ in range(20):
            builder.emit(isa.addi(5, 5, 1))
        builder.emit(isa.rdtsc(2))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[2] > core.arch_regs[1]


class TestFlags:
    def test_testui_reflects_clui_stui(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.testui(1))  # default: enabled
        builder.emit(isa.clui())
        builder.emit(isa.testui(2))
        builder.emit(isa.stui())
        builder.emit(isa.testui(3))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        assert core.arch_regs[1] == 1
        assert core.arch_regs[2] == 0
        assert core.arch_regs[3] == 1

    def test_instruction_count(self):
        builder = ProgramBuilder("t")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 10))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        core, _ = run_program(builder)
        # 2 setup + 10 * (add + branch) + halt
        assert core.stats.committed_instructions == 2 + 20 + 1
