"""Branch prediction: gshare training, BTB, RAS, history recovery."""

from repro.cpu import isa
from repro.cpu.branch import (
    BranchPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    ReturnAddressStack,
)


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor()
        pc = 0x10
        for _ in range(8):
            history = predictor.record_speculative(True)
            predictor.update(pc, history, True)
        assert predictor.predict(pc) is True

    def test_learns_never_taken(self):
        predictor = GsharePredictor()
        pc = 0x20
        for _ in range(8):
            history = predictor.record_speculative(False)
            predictor.update(pc, history, False)
        assert predictor.predict(pc) is False

    def test_history_restore(self):
        predictor = GsharePredictor()
        saved = predictor.record_speculative(True)
        predictor.record_speculative(True)
        predictor.restore_history(saved)
        # After restore, recording the same outcome reproduces the state.
        again = predictor.record_speculative(True)
        assert again == saved


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64)
        assert btb.lookup(5) is None
        btb.update(5, 42)
        assert btb.lookup(5) == 42

    def test_aliasing_overwrites(self):
        btb = BranchTargetBuffer(entries=64)
        btb.update(5, 42)
        btb.update(5 + 64, 99)  # same slot
        assert btb.lookup(5) is None
        assert btb.lookup(5 + 64) == 99


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack()
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10
        assert ras.pop() is None

    def test_depth_bound_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack()
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.restore(snap)
        assert ras.pop() == 1


class TestCombinedPredictor:
    def test_direct_jump_never_mispredicts(self):
        predictor = BranchPredictor()
        instr = isa.Instruction(isa.Op.JMP, target=7)
        taken, target, history = predictor.predict(3, instr)
        assert taken and target == 7
        mispredicted = predictor.resolve(3, instr, history, True, 7, taken, target)
        assert mispredicted is False

    def test_call_ret_pair_predicted_via_ras(self):
        predictor = BranchPredictor()
        call = isa.Instruction(isa.Op.CALL, target=100)
        predictor.predict(10, call)  # pushes return address 11
        ret = isa.Instruction(isa.Op.RET)
        taken, target, _ = predictor.predict(105, ret)
        assert taken and target == 11

    def test_cold_ret_has_unknown_target(self):
        predictor = BranchPredictor()
        taken, target, _ = predictor.predict(50, isa.Instruction(isa.Op.RET))
        assert taken and target is None

    def test_mispredict_counted_and_trained(self):
        predictor = BranchPredictor()
        instr = isa.beq(1, 2, 30)
        # Resolve a long run of not-taken outcomes, recovering speculative
        # history on each mispredict the way the core does.
        for _ in range(30):
            taken, target, history = predictor.predict(9, instr)
            mispredicted = predictor.resolve(9, instr, history, False, 30, taken, target)
            if mispredicted:
                predictor.gshare.restore_history(history)
                predictor.gshare.record_speculative(False)
        taken, _, _ = predictor.predict(9, instr)
        assert taken is False
        assert predictor.mispredictions >= 1

    def test_wrong_target_counts_as_mispredict(self):
        predictor = BranchPredictor()
        instr = isa.beq(1, 1, 30)
        # Train taken so prediction uses the encoded target.
        for _ in range(4):
            taken, target, history = predictor.predict(9, instr)
            predictor.resolve(9, instr, history, True, 30, taken, target)
        taken, target, history = predictor.predict(9, instr)
        assert taken is True
        mispredicted = predictor.resolve(9, instr, history, True, 99, taken, target)
        assert mispredicted is True

    def test_misprediction_rate(self):
        predictor = BranchPredictor()
        assert predictor.misprediction_rate == 0.0
