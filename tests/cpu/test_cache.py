"""Cache hierarchy: LRU, coherence-lite directory, latency classes."""

import pytest

from repro.cpu.cache import (
    InstructionCache,
    MemoryHierarchy,
    SetAssociativeCache,
    SharedMemory,
)
from repro.cpu.config import CacheParams, MemoryParams


def make_hierarchy(core_id=0, shared=None):
    shared = shared or SharedMemory()
    return MemoryHierarchy(core_id, CacheParams(), MemoryParams(), shared), shared


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(CacheParams())
        assert cache.lookup(0x1000) is False
        assert cache.lookup(0x1000) is True

    def test_same_line_shares_entry(self):
        cache = SetAssociativeCache(CacheParams())
        cache.lookup(0x1000)
        assert cache.lookup(0x1038) is True  # same 64B line

    def test_lru_eviction(self):
        params = CacheParams(size_bytes=2 * 64 * 4, associativity=2, line_bytes=64)
        cache = SetAssociativeCache(params)
        sets = params.num_sets
        # Three lines mapping to set 0: the first is evicted.
        a, b, c = (i * sets * 64 for i in range(1, 4))
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(c)
        assert cache.contains(b) and cache.contains(c)
        assert not cache.contains(a)

    def test_lru_update_on_hit(self):
        params = CacheParams(size_bytes=2 * 64 * 4, associativity=2, line_bytes=64)
        cache = SetAssociativeCache(params)
        sets = params.num_sets
        a, b, c = (i * sets * 64 for i in range(1, 4))
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(a)  # touch a: b becomes LRU
        cache.lookup(c)
        assert cache.contains(a) and not cache.contains(b)

    def test_invalidate(self):
        cache = SetAssociativeCache(CacheParams())
        cache.lookup(0x40)
        assert cache.invalidate(0x40) is True
        assert cache.contains(0x40) is False
        assert cache.invalidate(0x40) is False

    def test_hit_miss_counters(self):
        cache = SetAssociativeCache(CacheParams())
        cache.lookup(0)
        cache.lookup(0)
        assert (cache.hits, cache.misses, cache.accesses) == (1, 1, 2)


class TestSharedMemory:
    def test_read_uninitialized_is_zero(self):
        assert SharedMemory().read(0x1234) == 0

    def test_write_read_roundtrip(self):
        memory = SharedMemory()
        memory.write(0x100, 42)
        assert memory.read(0x100) == 42

    def test_word_alignment(self):
        memory = SharedMemory()
        memory.write(0x101, 7)  # rounds down to 0x100
        assert memory.read(0x100) == 7

    def test_last_writer_tracking(self):
        memory = SharedMemory()
        memory.write(0x100, 1, core_id=2)
        assert memory.last_writer(0x100) == 2
        assert memory.last_writer(0x100 + 8) == 2  # same line
        memory.clear_writer(0x100)
        assert memory.last_writer(0x100) is None

    def test_write_observer(self):
        memory = SharedMemory()
        seen = []
        memory.add_write_observer(lambda core, addr: seen.append((core, addr)))
        memory.write(0x40, 1, core_id=3)
        assert seen == [(3, 0x40)]


class TestMemoryHierarchyLatency:
    def test_first_access_is_slow_then_l1(self):
        hierarchy, _ = make_hierarchy()
        cold, _ = hierarchy.load(0x2000)
        warm, _ = hierarchy.load(0x2000)
        assert cold > warm
        assert warm == hierarchy.dcache.params.hit_latency

    def test_l2_hit_cheaper_than_dram(self):
        hierarchy, _ = make_hierarchy()
        first, _ = hierarchy.load(0x9000)  # DRAM (cold everywhere)
        hierarchy.dcache.invalidate(0x9000)
        second, _ = hierarchy.load(0x9000)  # L1 miss, L2 hit
        assert first > second > hierarchy.dcache.params.hit_latency

    def test_remote_dirty_costs_more_than_l1(self):
        shared = SharedMemory()
        local, _ = make_hierarchy(0, shared)
        local.load(0x3000)  # warm locally
        shared.write(0x3000, 9, core_id=1)  # remote write invalidates
        latency, value = local.load(0x3000)
        assert value == 9
        assert latency >= MemoryParams().remote_dirty_latency
        assert local.remote_misses == 1

    def test_remote_transfer_leaves_line_clean(self):
        shared = SharedMemory()
        local, _ = make_hierarchy(0, shared)
        shared.write(0x3000, 9, core_id=1)
        local.load(0x3000)
        warm, _ = local.load(0x3000)
        assert warm == local.dcache.params.hit_latency

    def test_own_writes_do_not_self_invalidate(self):
        hierarchy, _ = make_hierarchy(0)
        hierarchy.store(0x4000, 1)
        latency, _ = hierarchy.load(0x4000)
        assert latency == hierarchy.dcache.params.hit_latency

    def test_store_probe_then_commit(self):
        hierarchy, shared = make_hierarchy(0)
        latency = hierarchy.store_probe(0x5000)
        assert latency > 0
        assert shared.read(0x5000) == 0  # value written only at commit

    def test_negative_address_clamped(self):
        hierarchy, _ = make_hierarchy()
        latency, value = hierarchy.load(-0x100)
        assert latency > 0 and value == 0


class TestInstructionCache:
    def test_cold_then_warm(self):
        icache = InstructionCache(CacheParams(), MemoryParams())
        assert icache.fetch_latency(0x400000) > 0
        assert icache.fetch_latency(0x400000) == 0

    def test_warm_range(self):
        icache = InstructionCache(CacheParams(), MemoryParams())
        icache.warm_range(0x400000, 0x400100)
        assert icache.fetch_latency(0x400080) == 0
