"""Hardware safepoints (§4.4): delivery gated to safepoint instructions."""

import pytest

from tests.conftest import COUNTER_ADDR

from repro.cpu import isa
from repro.cpu.delivery import TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder

#: Marker the handler stores so we can see *where* preemption landed.
WHERE_ADDR = 0x21_0000


def safepoint_loop_program(iterations=30_000, safepoint_every=1):
    """A loop whose back-edge carries the safepoint prefix every N iterations
    (unrolled), with instrumentation recording loop progress in r1."""
    builder = ProgramBuilder("sp_loop")
    builder.emit(isa.movi(1, 0))
    builder.emit(isa.movi(2, iterations))
    builder.label("loop")
    builder.emit(isa.addi(1, 1, 1))
    branch = isa.blt(1, 2, "loop")
    builder.emit(branch.with_safepoint() if safepoint_every == 1 else branch)
    builder.emit(isa.halt())
    builder.emit_default_handler(counter_addr=COUNTER_ADDR)
    return builder.build()


def no_safepoint_program(iterations=20_000):
    return safepoint_loop_program(iterations, safepoint_every=0)


class TestSafepointGating:
    def test_delivery_happens_at_safepoints(self):
        system = MultiCoreSystem([safepoint_loop_program()], [TrackedStrategy()])
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.safepoint_mode = True
        core.uintr.kb_timer.arm_periodic(5000, now=0)
        system.run(2_000_000, until_halted=[0])
        assert core.halted
        assert core.stats.interrupts_delivered >= 3
        assert system.shared.read(COUNTER_ADDR) == core.stats.interrupts_delivered

    def test_no_safepoints_means_no_delivery(self):
        """With safepoint mode on and no safepoint instructions, interrupts
        stay pending forever — the compiler contract matters."""
        system = MultiCoreSystem([no_safepoint_program()], [TrackedStrategy()])
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.safepoint_mode = True
        core.uintr.kb_timer.arm_periodic(4000, now=0)
        system.run(2_000_000, until_halted=[0])
        assert core.halted
        assert core.stats.interrupts_delivered == 0

    def test_safepoint_mode_off_ignores_prefixes(self):
        """Without safepoint mode, tracked delivery proceeds at any boundary."""
        system = MultiCoreSystem([no_safepoint_program()], [TrackedStrategy()])
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.kb_timer.arm_periodic(4000, now=0)
        system.run(2_000_000, until_halted=[0])
        assert core.stats.interrupts_delivered >= 2

    def test_near_zero_cost_when_idle(self):
        """Safepoint prefixes alone (no interrupts) cost essentially nothing
        — they are NOP-prefix encodings (§4.4)."""
        plain = MultiCoreSystem([no_safepoint_program(30_000)], [TrackedStrategy()])
        plain.run(2_000_000, until_halted=[0])
        prefixed = MultiCoreSystem([safepoint_loop_program(30_000)], [TrackedStrategy()])
        prefixed.run(2_000_000, until_halted=[0])
        slowdown = (prefixed.cycle - plain.cycle) / plain.cycle
        assert slowdown <= 0.01

    def test_sparse_safepoints_delay_but_deliver(self):
        """Safepoints only at an outer-loop boundary: delivery waits for the
        next safepoint instead of firing mid-inner-loop."""
        builder = ProgramBuilder("outer_sp")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 60))
        builder.label("outer")
        builder.emit(isa.movi(3, 0))
        builder.label("inner")
        builder.emit(isa.addi(3, 3, 1))
        builder.emit(isa.blti(3, 400, "inner"))
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "outer").with_safepoint())
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        system = MultiCoreSystem([builder.build()], [TrackedStrategy()])
        system.enable_kb_timer(0)
        core = system.cores[0]
        core.uintr.safepoint_mode = True
        core.uintr.kb_timer.arm_periodic(3000, now=0)
        system.run(2_000_000, until_halted=[0])
        assert core.halted
        assert core.stats.interrupts_delivered >= 2
