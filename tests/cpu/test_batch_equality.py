"""Equality gate for the multi-core batch stepper (REPRO_BATCH).

The batch stepper (``repro.cpu.batchstep``) parks quiescent cores in numpy
struct-of-arrays lanes and only visits the active run list each cycle, so
it gets the same contract as every other engine tier, three ways: the
naive stepper (``REPRO_FAST=0``), the scalar fast loop with batching off
(``REPRO_BATCH=0``), and the batch stepper must all produce byte-identical
simulated results — final cycle count, every core's full ``CoreStats``
snapshot, and every interrupt-delivery trace timestamp.

The parametrizations probe the wake/fallback paths specifically:

* **core counts** — extra pointer-chase workers with staggered KB timers
  populate the idle lanes so group jumps and horizon wakeups actually
  happen (2 cores barely idle together; 4+ cores exercise the group path).
* **timer intervals** — each interval lands KB deadlines at different
  offsets inside the senders' windows, moving the wake scan around.
* **mid-batch cross-core IPI arrival** — the dedicated UIPI timer core
  sends into the receiver while other cores sit in the idle lanes; the
  IPI's core hint must wake exactly the destination (targeted
  invalidation) at the correct cycle.
* **fault plans** — scheduled faults are hint-less timeline events that
  may mutate any core, so they must wake *every* idle core (the scalar
  loop's conservative full invalidation); an armed fault interceptor
  additionally blocks its core from ever entering the idle group.
"""

from __future__ import annotations

import pytest

from repro.apps import microbench as mb
from repro.common.counters import ENV_BATCH, ENV_FAST, ENV_MACRO, GLOBAL_COUNTERS
from repro.cpu import batchstep
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.faults.harness import run_fault_cell, simulated_view
from repro.faults.plan import plan_for_kind

MAX_CYCLES = 2_000_000

INTERVALS = (900, 2_500)
CORE_COUNTS = (2, 4)

STRATEGIES = {
    "flush": FlushStrategy,
    "drain": DrainStrategy,
    "tracked": TrackedStrategy,
}

FAULT_KINDS = ("drop_send", "spurious_uintr", "timer_drift")


def _observe(strategy_name: str, interval: int, cores_n: int):
    """One traced cell: receiver + dedicated UIPI timer core + idle-prone
    pointer-chase workers with staggered KB timers."""
    workload = mb.make_count_loop(3_000)
    sender = mb.make_uipi_timer_core(interval, 16)
    programs = [workload.program, sender.program]
    strategies = [STRATEGIES[strategy_name](), FlushStrategy()]
    extras = []
    for k in range(cores_n - 2):
        extra = mb.make_pointer_chase(48, stride=64, iterations=100)
        extras.append(extra)
        programs.append(extra.program)
        strategies.append(TrackedStrategy())
    system = MultiCoreSystem(programs, strategies, trace=True)
    workload.install(system.shared)
    for extra in extras:
        extra.install(system.shared)
    system.connect_uipi(sender_core_id=1, receiver_core_id=0, user_vector=1)
    system.enable_kb_timer(0)
    system.cores[0].uintr.kb_timer.arm_periodic(interval + 137, now=0)
    for k in range(cores_n - 2):
        system.enable_kb_timer(2 + k)
        system.cores[2 + k].uintr.kb_timer.arm_periodic(1_500 + 97 * k, now=0)
    system.run(MAX_CYCLES, until_halted=[0])
    assert system.cores[0].halted, "workload wedged"
    return {
        "cycles": system.cycle,
        "stats": [dict(c.stats.snapshot().__dict__) for c in system.cores],
        "trace": [
            (event.time, event.kind, tuple(sorted(event.detail.items())))
            for event in system.trace.events
        ],
    }


CELLS = [
    pytest.param(strategy, interval, cores_n, id=f"{strategy}-i{interval}-c{cores_n}")
    for strategy in STRATEGIES
    for interval in INTERVALS
    for cores_n in CORE_COUNTS
]


@pytest.mark.parametrize("strategy,interval,cores_n", CELLS)
def test_batch_matches_naive_and_scalar_fast(monkeypatch, strategy, interval, cores_n):
    monkeypatch.setenv(ENV_FAST, "0")
    naive = _observe(strategy, interval, cores_n)
    monkeypatch.setenv(ENV_FAST, "1")
    monkeypatch.setenv(ENV_BATCH, "0")
    scalar = _observe(strategy, interval, cores_n)
    monkeypatch.setenv(ENV_BATCH, "1")
    batched = _observe(strategy, interval, cores_n)
    assert scalar == naive
    assert batched["cycles"] == naive["cycles"]
    assert batched["stats"] == naive["stats"]
    assert batched["trace"] == naive["trace"]


def test_mid_batch_ipi_arrival_wakes_target_and_matches(monkeypatch):
    """The non-vacuity witness: idle lanes were populated, the group clock
    jumped, and cross-core IPIs landed via targeted invalidation — all
    while staying byte-identical to the scalar fast loop."""
    monkeypatch.setenv(ENV_FAST, "1")
    monkeypatch.setenv(ENV_BATCH, "0")
    reference = _observe("flush", 900, 4)
    monkeypatch.setenv(ENV_BATCH, "1")
    GLOBAL_COUNTERS.reset()
    batched = _observe("flush", 900, 4)
    assert batched == reference
    g = GLOBAL_COUNTERS
    assert g.batch_runs >= 1
    assert g.batch_idle_transitions >= 1
    assert g.batch_wakeups >= 1
    assert g.batch_group_jumps >= 1
    assert g.batch_targeted_invalidations >= 1


@pytest.mark.parametrize("batch", ("0", "1"))
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_cells_identical_with_batch_stepper(monkeypatch, kind, batch):
    """Fault plans must not open a batch-stepper equivalence gap.

    Scheduled faults are hint-less timeline events, so the batch loop's
    full invalidation must wake every idle core exactly when the scalar
    loop re-evaluates everyone; message faults arm the APIC interceptor,
    which keeps that core out of the idle group entirely.
    """
    monkeypatch.setenv(ENV_BATCH, batch)
    plan = plan_for_kind(kind, seed=0, core=0, count=2, horizon=3_000)
    naive = run_fault_cell(plan, "flush", engine="naive")
    fast = run_fault_cell(plan, "flush", engine="fast")
    assert simulated_view(fast) == simulated_view(naive)


def test_interceptor_blocks_batching(monkeypatch):
    """An armed APIC fault interceptor keeps its core on scalar stepping.

    ``drop_send`` installs ``apic.fault_interceptor`` on core 0; with a
    stall-heavy workload the core repeatedly *wants* to idle, and every
    attempt must be refused (``batch_divergence_blocks``) — the cell still
    proves equality, so the refusals are pure conservatism, not a bail.
    """
    monkeypatch.setenv(ENV_BATCH, "1")
    plan = plan_for_kind("drop_send", seed=0, core=0, count=2, horizon=3_000)
    naive = run_fault_cell(plan, "flush", engine="naive", workload_name="pointer_chase")
    GLOBAL_COUNTERS.reset()
    fast = run_fault_cell(plan, "flush", engine="fast", workload_name="pointer_chase")
    assert simulated_view(fast) == simulated_view(naive)
    assert GLOBAL_COUNTERS.batch_divergence_blocks >= 1


def test_hintless_timeline_event_wakes_all_lanes(monkeypatch):
    """Scheduled (hint-less) faults trigger full invalidation, not targeted."""
    monkeypatch.setenv(ENV_BATCH, "1")
    plan = plan_for_kind("timer_drift", seed=0, core=0, count=2, horizon=3_000)
    GLOBAL_COUNTERS.reset()
    run_fault_cell(plan, "flush", engine="fast", workload_name="pointer_chase")
    assert GLOBAL_COUNTERS.batch_full_invalidations >= 1


def test_numpy_unavailable_falls_back_to_scalar(monkeypatch):
    """Without numpy the run silently takes the scalar fast loop.

    ``REPRO_BATCH=1`` stays honest on minimal installs: dispatch checks
    :func:`batchstep.available` and counts the fallback instead of
    crashing on the missing import.
    """
    monkeypatch.setenv(ENV_FAST, "1")
    monkeypatch.setenv(ENV_BATCH, "1")
    reference = _observe("flush", 900, 2)
    monkeypatch.setattr(batchstep, "_np", None)
    assert not batchstep.available()
    GLOBAL_COUNTERS.reset()
    fallback = _observe("flush", 900, 2)
    assert fallback == reference
    assert GLOBAL_COUNTERS.batch_scalar_fallbacks >= 1
    assert GLOBAL_COUNTERS.batch_runs == 0


def test_soa_lane_layout():
    """White-box: the scheduler's SoA lanes start coherent with the cores."""
    workload = mb.make_count_loop(100)
    sender = mb.make_uipi_timer_core(900, 2)
    system = MultiCoreSystem(
        [workload.program, sender.program], [FlushStrategy(), FlushStrategy()]
    )
    workload.install(system.shared)
    sched = batchstep.BatchScheduler(system)
    snap = sched.lane_snapshot()
    assert snap["run_list"] == [0, 1]
    assert len(snap["na"]) == 2
    assert all(v == batchstep.FAR_FUTURE for v in snap["na"])
    assert snap["anchor"] == [-1, -1]
