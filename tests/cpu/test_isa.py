"""µ-ISA instruction encoding and helpers."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu import isa
from repro.cpu.isa import Instruction, Op, RegNames


class TestEncoding:
    def test_register_range_checked(self):
        with pytest.raises(ConfigError):
            Instruction(Op.ADD, dest=16)
        with pytest.raises(ConfigError):
            Instruction(Op.ADD, src1=-1)

    def test_add_helper(self):
        instr = isa.add(1, 2, 3)
        assert (instr.op, instr.dest, instr.src1, instr.src2) == (Op.ADD, 1, 2, 3)

    def test_addi_uses_immediate(self):
        instr = isa.addi(1, 1, 5)
        assert instr.src2 is None
        assert instr.imm == 5

    def test_load_store_shape(self):
        load = isa.load(4, 5, 16)
        assert (load.dest, load.src1, load.imm) == (4, 5, 16)
        store = isa.store(4, 5, 16)
        assert store.dest is None
        assert (store.src1, store.src2) == (5, 4)

    def test_branch_targets_are_labels_until_build(self):
        assert isa.beq(1, 2, "loop").target == "loop"

    def test_immediate_branch_forms(self):
        instr = isa.blti(3, 7, "x")
        assert instr.src2 is None
        assert instr.imm == 7


class TestClassification:
    def test_branch_predicates(self):
        assert isa.jmp("x").is_branch
        assert isa.beq(0, 0, "x").is_cond_branch
        assert not isa.jmp("x").is_cond_branch
        assert not isa.addi(1, 1, 1).is_branch

    def test_memory_predicate(self):
        assert isa.load(1, 2).is_mem
        assert isa.store(1, 2).is_mem
        assert not isa.mov(1, 2).is_mem

    def test_senduipi_is_microcoded(self):
        assert isa.senduipi(0).is_microcoded
        assert not isa.clui().is_microcoded


class TestSourceDestRegs:
    def test_alu_sources(self):
        assert set(isa.add(1, 2, 3).source_regs()) == {2, 3}

    def test_ret_reads_link_register(self):
        assert RegNames.LR in isa.ret().source_regs()

    def test_call_writes_link_register(self):
        assert isa.call("f").dest_reg() == RegNames.LR

    def test_store_has_no_dest(self):
        assert isa.store(1, 2).dest_reg() is None

    def test_branch_has_no_dest(self):
        assert isa.beq(1, 2, "x").dest_reg() is None

    def test_rdtsc_writes_dest(self):
        assert isa.rdtsc(5).dest_reg() == 5


class TestSafepointPrefix:
    def test_with_safepoint_copies(self):
        base = isa.addi(1, 1, 1)
        prefixed = base.with_safepoint()
        assert prefixed.safepoint and not base.safepoint
        assert prefixed.op is base.op

    def test_standalone_safepoint_is_nop(self):
        sp = isa.safepoint()
        assert sp.op is Op.NOP
        assert sp.safepoint

    def test_set_timer_reads_two_registers(self):
        instr = isa.set_timer(3, 4)
        assert set(instr.source_regs()) == {3, 4}
