"""The xUI kernel-bypass timer on the cycle tier (§4.3)."""

import pytest

from tests.conftest import COUNTER_ADDR

from repro.common.errors import ConfigError, ProtocolError
from repro.cpu import isa
from repro.cpu.delivery import TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.cpu.uintr_state import KBTimerState


def timer_program(period, mode, iterations=30_000):
    builder = ProgramBuilder("timer")
    builder.emit(isa.movi(3, period))
    builder.emit(isa.movi(4, mode))
    builder.emit(isa.set_timer(3, 4))
    builder.emit(isa.movi(1, 0))
    builder.emit(isa.movi(2, iterations))
    builder.label("loop")
    builder.emit(isa.addi(1, 1, 1))
    builder.emit(isa.blt(1, 2, "loop"))
    builder.emit(isa.halt())
    builder.emit_default_handler(counter_addr=COUNTER_ADDR)
    return builder.build()


class TestPeriodicTimer:
    def test_fires_each_period(self):
        system = MultiCoreSystem([timer_program(5000, 1)], [TrackedStrategy()])
        system.enable_kb_timer(0)
        system.run(2_000_000, until_halted=[0])
        core = system.cores[0]
        expected = system.cycle // 5000
        assert core.stats.interrupts_delivered == pytest.approx(expected, abs=2)
        assert system.shared.read(COUNTER_ADDR) == core.stats.interrupts_delivered

    def test_program_level_arming_via_set_timer(self):
        """The set_timer instruction itself (not direct state pokes) arms it."""
        system = MultiCoreSystem([timer_program(4000, 1, iterations=20_000)], [TrackedStrategy()])
        system.enable_kb_timer(0)
        system.run(2_000_000, until_halted=[0])
        assert system.cores[0].stats.interrupts_delivered >= 2

    def test_clear_timer_disarms(self):
        builder = ProgramBuilder("clr")
        builder.emit(isa.movi(3, 2000))
        builder.emit(isa.movi(4, 1))
        builder.emit(isa.set_timer(3, 4))
        builder.emit(isa.clear_timer())
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 20_000))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        system = MultiCoreSystem([builder.build()], [TrackedStrategy()])
        system.enable_kb_timer(0)
        system.run(2_000_000, until_halted=[0])
        assert system.cores[0].stats.interrupts_delivered == 0


class TestOneShot:
    def test_oneshot_fires_once(self):
        builder = ProgramBuilder("oneshot")
        builder.emit(isa.movi(3, 3000))  # absolute deadline cycle
        builder.emit(isa.movi(4, 0))  # one-shot mode
        builder.emit(isa.set_timer(3, 4))
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 20_000))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        system = MultiCoreSystem([builder.build()], [TrackedStrategy()])
        system.enable_kb_timer(0)
        system.run(2_000_000, until_halted=[0])
        assert system.cores[0].stats.interrupts_delivered == 1


class TestTimerState:
    def test_set_timer_requires_kernel_enable(self):
        system = MultiCoreSystem([timer_program(5000, 1, 100)], [TrackedStrategy()])
        # enable_kb_timer() never called: kb_config_MSR is off.
        with pytest.raises(ProtocolError):
            system.run(200_000, until_halted=[0])

    def test_periodic_requires_positive_period(self):
        state = KBTimerState(enabled=True)
        with pytest.raises(ConfigError):
            state.arm_periodic(0, now=0)

    def test_save_restore_roundtrip(self):
        state = KBTimerState(enabled=True, vector=5)
        state.arm_periodic(1000, now=0)
        saved = state.save()
        state.disarm()
        state.vector = 9
        state.restore(saved)
        assert state.armed and state.vector == 5 and state.period == 1000

    def test_periodic_no_burst_after_delay(self):
        """A delayed check advances past `now` without burst-firing."""
        state = KBTimerState(enabled=True)
        state.arm_periodic(100, now=0)
        assert state.check_fire(450) is True
        assert state.deadline > 450
        assert state.check_fire(460) is False

    def test_oneshot_disarms_after_fire(self):
        state = KBTimerState(enabled=True)
        state.arm_oneshot(50)
        assert state.check_fire(60) is True
        assert state.armed is False
        assert state.check_fire(70) is False
