"""Equality gate for the macro-op trace tier (REPRO_MACRO).

The macro tier (``repro.cpu.macroop``) replays steady-state loop periods in
O(1) instead of stepping them, so it gets the same contract as the
cycle-skipping engine, three ways: the naive stepper (``REPRO_FAST=0``),
the fast engine with the macro tier disabled (``REPRO_MACRO=0``), and the
fast engine with macro replay on must all produce byte-identical simulated
results — final cycle count, every core's full :class:`CoreStats` snapshot,
and every interrupt-delivery trace timestamp.

Three parametrizations probe the bail paths specifically:

* **timer intervals** — the KB timer deadline is a replay horizon; each
  interval puts the deadline at a different offset inside the hot loop, so
  replay must bail mid-loop and let the interpreter deliver the interrupt
  at its native cycle (the ``macro_bail_event`` path).
* **fault plans** — an armed :class:`FaultInjector` (and the invariant
  checker's write observers) must *block formation entirely*: replay under
  a pending fault arm could skip the injection cycle.  The cells still run
  with ``REPRO_MACRO=1`` to prove the guard holds.
* **mid-replay interrupt arrival** — the dense cell asserts the tier
  actually replayed cycles *and* bailed for an event, so the equality is
  not vacuous.
"""

from __future__ import annotations

import pytest

from repro.apps import microbench as mb
from repro.common.counters import ENV_FAST, ENV_MACRO, GLOBAL_COUNTERS
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.faults.harness import run_fault_cell, simulated_view
from repro.faults.plan import plan_for_kind

MAX_CYCLES = 2_000_000

#: Timer intervals chosen to land deadlines at different loop offsets:
#: shorter than a formation window, mid-loop, and past the workload end.
INTERVALS = (900, 2_500, 6_000)

STRATEGIES = {
    "flush": FlushStrategy,
    "drain": DrainStrategy,
    "tracked": TrackedStrategy,
}

#: One message-, one interrupt-, and one timing-fault kind; the full
#: matrix lives in tests/faults/ — here we only need each injector shape.
FAULT_KINDS = ("drop_send", "spurious_uintr", "timer_drift")


def _observe(strategy_name: str, interval: int, *, iterations: int = 6_000):
    """One dense KB-timer cell, traced, no result cache."""
    workload = mb.make_count_loop(iterations)
    system = MultiCoreSystem([workload.program], [STRATEGIES[strategy_name]()], trace=True)
    workload.install(system.shared)
    system.enable_kb_timer(0)
    core = system.cores[0]
    core.uintr.kb_timer.arm_periodic(interval, now=0)
    system.run(MAX_CYCLES, until_halted=[0])
    assert core.halted, "workload wedged"
    return {
        "cycles": system.cycle,
        "stats": [dict(c.stats.snapshot().__dict__) for c in system.cores],
        "trace": [
            (event.time, event.kind, tuple(sorted(event.detail.items())))
            for event in system.trace.events
        ],
    }


CELLS = [
    pytest.param(strategy, interval, id=f"{strategy}-interval{interval}")
    for strategy in STRATEGIES
    for interval in INTERVALS
]


@pytest.mark.parametrize("strategy,interval", CELLS)
def test_macro_tier_matches_naive_and_macro_off(monkeypatch, strategy, interval):
    monkeypatch.setenv(ENV_FAST, "0")
    naive = _observe(strategy, interval)
    monkeypatch.setenv(ENV_FAST, "1")
    monkeypatch.setenv(ENV_MACRO, "0")
    fast_off = _observe(strategy, interval)
    monkeypatch.setenv(ENV_MACRO, "1")
    fast_on = _observe(strategy, interval)
    assert fast_off == naive
    assert fast_on["cycles"] == naive["cycles"]
    assert fast_on["stats"] == naive["stats"]
    assert fast_on["trace"] == naive["trace"]


@pytest.mark.parametrize("macro", ("0", "1"))
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_cells_identical_with_macro_tier(monkeypatch, kind, macro):
    """Fault plans must not open a macro-tier equivalence gap.

    An installed injector arms the APIC fault interceptor, which blocks
    macro formation outright — so these cells also regress the guard: if
    formation ever slipped through and skipped an injection cycle, the
    naive/fast results would diverge here.
    """
    monkeypatch.setenv(ENV_MACRO, macro)
    plan = plan_for_kind(kind, seed=0, core=0, count=2, horizon=3_000)
    naive = run_fault_cell(plan, "flush", engine="naive")
    fast = run_fault_cell(plan, "flush", engine="fast")
    assert simulated_view(fast) == simulated_view(naive)


def test_fault_arm_blocks_formation(monkeypatch):
    """An armed APIC fault interceptor blocks the macro tier outright.

    ``drop_send`` installs ``apic.fault_interceptor``, which ``_eligible``
    treats as a hard disqualifier — no formation, no replay.  (Timeline
    kinds like ``timer_drift`` are instead *bounded* by the timeline head;
    see ``test_fault_timeline_bounds_replay``.)
    """
    monkeypatch.setenv(ENV_MACRO, "1")
    plan = plan_for_kind("drop_send", seed=0, core=0, count=2, horizon=3_000)
    GLOBAL_COUNTERS.reset()
    run_fault_cell(plan, "flush", engine="fast")
    assert GLOBAL_COUNTERS.macro_formations == 0
    assert GLOBAL_COUNTERS.macro_replayed_cycles == 0


def test_fault_timeline_bounds_replay(monkeypatch):
    """Timeline faults don't block replay — they cap it at the next event.

    ``timer_drift`` leaves the APIC interceptor uninstalled, so the macro
    tier may form and replay, but every replay session must stop at the
    injector timeline's head (counted as ``macro_bail_event``) — the
    equality cells in this file prove the fault still lands identically.
    """
    monkeypatch.setenv(ENV_MACRO, "1")
    plan = plan_for_kind("timer_drift", seed=0, core=0, count=2, horizon=3_000)
    GLOBAL_COUNTERS.reset()
    run_fault_cell(plan, "flush", engine="fast")
    if GLOBAL_COUNTERS.macro_replays:
        assert GLOBAL_COUNTERS.macro_bail_event >= 1


def test_mid_replay_interrupt_arrival_bails_and_matches(monkeypatch):
    """The non-vacuity witness: replay happened, then an interrupt landed.

    With a 2,500-cycle timer inside a 6,000-iteration loop, the timer
    deadline falls mid-replay: the controller must cap ``n`` at the
    deadline (``macro_bail_event``), hand back to the interpreter, and the
    delivery must land on the same cycle the naive engine delivers it.
    """
    monkeypatch.setenv(ENV_FAST, "1")
    monkeypatch.setenv(ENV_MACRO, "0")
    reference = _observe("flush", 2_500)
    monkeypatch.setenv(ENV_MACRO, "1")
    GLOBAL_COUNTERS.reset()
    replayed = _observe("flush", 2_500)
    assert replayed == reference
    assert GLOBAL_COUNTERS.macro_replays >= 1
    assert GLOBAL_COUNTERS.macro_replayed_cycles > 0
    assert GLOBAL_COUNTERS.macro_bail_event >= 1
    delivered = replayed["stats"][0]["interrupts_delivered"]
    assert delivered >= 2, "cell needs interrupts landing between replays"
