"""ProtocolError paths: misuse of the uintr ISA fails loudly, not silently."""

import pytest

from tests.conftest import COUNTER_ADDR, build_spin_receiver

from repro.common.errors import ProtocolError
from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.cpu.uintr_state import KBTimerState
from repro.uintr.apic import InterruptKind, PendingInterrupt


def _single_core(program):
    return MultiCoreSystem([program], [FlushStrategy()])


class TestUiretOutsideHandler:
    def test_uiret_with_no_saved_state_raises(self):
        builder = ProgramBuilder("rogue-uiret")
        builder.emit(isa.movi(1, 1))
        builder.emit(isa.uiret())
        builder.emit(isa.halt())
        system = _single_core(builder.build())
        with pytest.raises(ProtocolError, match="no saved return state"):
            system.run(10_000, until_halted=[0])

    def test_uiret_inside_handler_is_fine(self):
        """The legitimate path — delivery saves return state, uiret consumes
        it — does not trip the guard."""
        sender = ProgramBuilder("s")
        sender.emit(isa.senduipi(0))
        sender.emit(isa.halt())
        system = MultiCoreSystem(
            [sender.build(), build_spin_receiver()],
            [FlushStrategy(), FlushStrategy()],
        )
        system.connect_uipi(0, 1, user_vector=1)
        system.run(100_000, until_halted=[0])
        system.run(20_000)
        assert system.cores[1].stats.interrupts_delivered == 1
        assert system.shared.read(COUNTER_ADDR) == 1


class TestSenduipiWithoutSetup:
    def test_senduipi_without_uitt_raises(self):
        builder = ProgramBuilder("rogue-send")
        builder.emit(isa.senduipi(0))
        builder.emit(isa.halt())
        system = _single_core(builder.build())
        with pytest.raises(ProtocolError, match="registered UITT"):
            system.run(10_000, until_halted=[0])


class TestDeliveryWithoutHandler:
    def test_inject_without_handler_raises(self):
        builder = ProgramBuilder("no-handler")
        builder.emit(isa.movi(1, 1))
        builder.emit(isa.halt())
        system = _single_core(builder.build())
        core = system.cores[0]
        pending = PendingInterrupt(2, InterruptKind.TIMER, 0.0, user_vector=1)
        with pytest.raises(ProtocolError, match="no handler registered"):
            core.inject_interrupt(pending, next_pc=0)

    def test_enable_kb_timer_without_handler_raises(self):
        from repro.common.errors import ConfigError

        builder = ProgramBuilder("no-handler")
        builder.emit(isa.halt())
        system = _single_core(builder.build())
        with pytest.raises(ConfigError, match="no interrupt handler"):
            system.enable_kb_timer(0)


class TestNestedDeliveryDeferred:
    def test_second_interrupt_waits_for_uiret(self):
        """A UIPI landing while the handler runs (UIF clear) must wait for
        uiret: both deliver, but never nested — the handler body runs to
        its uiret each time (counter increments match deliveries)."""
        sender = ProgramBuilder("s")
        sender.emit(isa.senduipi(0))
        sender.emit(isa.senduipi(0))  # back to back: second lands mid-handler
        sender.emit(isa.halt())
        system = MultiCoreSystem(
            [sender.build(), build_spin_receiver(handler_body=40)],
            [FlushStrategy(), FlushStrategy()],
            trace=True,
        )
        system.connect_uipi(0, 1, user_vector=1)
        system.run(200_000, until_halted=[0])
        system.run(40_000)
        receiver = system.cores[1]
        assert receiver.stats.interrupts_delivered == 2
        assert system.shared.read(COUNTER_ADDR) == 2
        # Delivery order is serialized: every handler entry is preceded by
        # the previous handler's uiret (no handler_fetch nesting).
        fetches = [e.time for e in system.trace.of_kind("handler_fetch")]
        urets = [
            e.time
            for e in system.trace.of_kind("uiret_exec")
            if e.detail.get("core") == 1
        ]
        assert len(fetches) == 2
        assert urets[0] < fetches[1]


class TestKBTimerArming:
    def test_arm_oneshot_requires_enable(self):
        timer = KBTimerState()
        with pytest.raises(ProtocolError, match="enable_kb_timer"):
            timer.arm_oneshot(1_000)

    def test_arm_periodic_requires_enable(self):
        timer = KBTimerState()
        with pytest.raises(ProtocolError, match="enable_kb_timer"):
            timer.arm_periodic(500, now=0)

    def test_enabled_timer_arms(self):
        timer = KBTimerState(enabled=True)
        timer.arm_oneshot(1_000)
        assert timer.armed and not timer.periodic
        timer.arm_periodic(500, now=100)
        assert timer.armed and timer.periodic and timer.deadline == 600
