"""SystemConfig components validate at construction (fail fast, not mid-run)."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu.config import (
    CacheParams,
    CoreParams,
    MemoryParams,
    SystemConfig,
    TimingParams,
)


class TestCoreParams:
    def test_defaults_construct(self):
        CoreParams.sapphire_rapids_like()
        CoreParams.small()

    def test_zero_rob_rejected(self):
        with pytest.raises(ConfigError, match="rob_size"):
            CoreParams(rob_size=0)

    def test_zero_widths_rejected(self):
        for name in ("fetch_width", "decode_width", "issue_width", "retire_width"):
            with pytest.raises(ConfigError, match=name):
                CoreParams(**{name: 0})

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigError, match="int_alu_units"):
            CoreParams(int_alu_units=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError, match="mul_latency"):
            CoreParams(mul_latency=-3)

    def test_nan_frequency_rejected(self):
        with pytest.raises(ConfigError, match="frequency_ghz"):
            CoreParams(frequency_ghz=float("nan"))
        with pytest.raises(ConfigError, match="frequency_ghz"):
            CoreParams(frequency_ghz=0.0)


class TestCacheParams:
    def test_defaults_construct(self):
        CacheParams()
        CacheParams(size_bytes=4096, associativity=4, line_bytes=64)
        CacheParams(size_bytes=1024 * 1024, associativity=16, line_bytes=64)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError, match="size_bytes"):
            CacheParams(size_bytes=0)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigError, match="line_bytes"):
            CacheParams(size_bytes=48 * 48, associativity=1, line_bytes=48)

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigError, match="multiple"):
            CacheParams(size_bytes=1000, associativity=8, line_bytes=64)

    def test_non_power_of_two_sets_rejected(self):
        # 12 KiB / (4 * 64) = 48 sets: divisible, but not indexable.
        with pytest.raises(ConfigError, match="sets"):
            CacheParams(size_bytes=12 * 1024, associativity=4, line_bytes=64)

    def test_zero_hit_latency_allowed(self):
        # The hierarchy models some levels with zero added latency.
        CacheParams(hit_latency=0)
        with pytest.raises(ConfigError, match="hit_latency"):
            CacheParams(hit_latency=-1)


class TestMemoryParams:
    def test_defaults_construct(self):
        MemoryParams()

    def test_negative_latency_rejected(self):
        for name in (
            "l2_hit_latency",
            "llc_hit_latency",
            "dram_latency",
            "remote_dirty_latency",
        ):
            with pytest.raises(ConfigError, match=name):
                MemoryParams(**{name: -1})


class TestTimingParams:
    def test_defaults_construct(self):
        TimingParams()

    def test_zero_msrom_width_rejected(self):
        with pytest.raises(ConfigError, match="msrom_fetch_width"):
            TimingParams(msrom_fetch_width=0)

    def test_zero_senduipi_uops_rejected(self):
        with pytest.raises(ConfigError, match="senduipi_uop_count"):
            TimingParams(senduipi_uop_count=0)

    def test_negative_stall_rejected(self):
        with pytest.raises(ConfigError, match="flush_refill_latency"):
            TimingParams(flush_refill_latency=-10)
        # Zero stalls are legitimate calibration values.
        TimingParams(stui_stall=0, gem5_drain_pad=0)


class TestSystemConfig:
    def test_presets_construct(self):
        SystemConfig.sapphire_rapids_like()
        SystemConfig.small()

    def test_bad_component_propagates(self):
        with pytest.raises(ConfigError):
            SystemConfig(core=CoreParams(iq_size=-4))
