"""Interrupt delivery strategies on the cycle tier: flush, drain, tracked."""

import pytest

from tests.conftest import COUNTER_ADDR, build_count_to, build_sender, build_spin_receiver

from repro.cpu import isa
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder


def run_pair(receiver_strategy, sends=3, gap=60, trace=False):
    system = MultiCoreSystem(
        [build_sender(sends, gap), build_spin_receiver()],
        [FlushStrategy(), receiver_strategy],
        trace=trace,
    )
    system.connect_uipi(0, 1, user_vector=1)
    system.run(400_000, until_halted=[0])
    system.run(20_000)
    return system


class TestAllStrategiesDeliver:
    @pytest.mark.parametrize(
        "strategy_factory",
        [FlushStrategy, TrackedStrategy, lambda: DrainStrategy(extra_pad=13)],
        ids=["flush", "tracked", "drain"],
    )
    def test_three_interrupts_delivered(self, strategy_factory):
        system = run_pair(strategy_factory())
        receiver = system.cores[1]
        assert receiver.stats.interrupts_delivered == 3
        assert system.shared.read(COUNTER_ADDR) == 3

    @pytest.mark.parametrize(
        "strategy_factory",
        [FlushStrategy, TrackedStrategy, lambda: DrainStrategy()],
        ids=["flush", "tracked", "drain"],
    )
    def test_receiver_resumes_program_after_handler(self, strategy_factory):
        system = run_pair(strategy_factory())
        receiver = system.cores[1]
        before = receiver.arch_regs[1]
        system.run(2_000)
        assert receiver.arch_regs[1] > before  # spin loop still progressing


class TestFlushBehaviour:
    def test_flush_squashes_inflight_work(self):
        system = run_pair(FlushStrategy())
        receiver = system.cores[1]
        assert receiver.stats.interrupt_flushes == 3
        assert receiver.stats.squashed_uops > 0

    def test_flushed_uops_scale_with_interrupts(self):
        few = run_pair(FlushStrategy(), sends=2).cores[1].stats.squashed_uops
        many = run_pair(FlushStrategy(), sends=6).cores[1].stats.squashed_uops
        assert many > few


class TestTrackedBehaviour:
    def test_tracking_does_not_flush(self):
        system = run_pair(TrackedStrategy())
        receiver = system.cores[1]
        assert receiver.stats.interrupt_flushes == 0

    def test_tracking_squashes_less_than_flush(self):
        flush = run_pair(FlushStrategy()).cores[1].stats.squashed_uops
        tracked = run_pair(TrackedStrategy()).cores[1].stats.squashed_uops
        assert tracked < flush

    def test_tracking_survives_misspeculation(self):
        """Interrupts land in a branchy loop whose mispredicts squash the
        injected microcode; re-injection must still deliver every one."""
        builder = ProgramBuilder("branchy")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 40_000))
        builder.emit(isa.movi(5, 12345))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        # LCG-driven branch: effectively random, so mispredicts are frequent
        # and some land while the injected microcode is in flight.
        builder.emit(isa.movi(6, 1103515245))
        builder.emit(isa.mul(5, 5, 6))
        builder.emit(isa.addi(5, 5, 12345))
        builder.emit(isa.shri(6, 5, 16))
        builder.emit(isa.andi(6, 6, 1))
        builder.emit(isa.beqi(6, 0, "skip"))
        builder.emit(isa.addi(4, 4, 1))
        builder.label("skip")
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        workload_program = builder.build()

        from repro.apps.microbench import make_uipi_timer_core

        sender = make_uipi_timer_core(3000, 200)
        system = MultiCoreSystem(
            [workload_program, sender.program], [TrackedStrategy(), FlushStrategy()]
        )
        system.connect_uipi(1, 0, user_vector=1)
        system.run(3_000_000, until_halted=[0])
        receiver = system.cores[0]
        assert receiver.halted
        assert receiver.stats.branch_squashes > 1000  # mispredicts happened
        # Every interrupt that arrived before the program finished was
        # delivered exactly once (none lost to squashes, none duplicated).
        delivered = receiver.stats.interrupts_delivered
        assert delivered >= 10
        assert system.shared.read(COUNTER_ADDR) == delivered


class TestDrainBehaviour:
    def test_drain_waits_for_pipeline(self, uipi_pair):
        system = run_pair(DrainStrategy(), trace=True)
        trace = system.trace
        starts = trace.of_kind("drain_start")
        completes = trace.of_kind("drain_complete")
        assert len(starts) == 3 and len(completes) == 3
        for start, complete in zip(starts, completes):
            assert complete.time > start.time

    def test_gem5_pad_delays_delivery(self):
        plain = run_pair(DrainStrategy(extra_pad=0), trace=True)
        padded = run_pair(DrainStrategy(extra_pad=13), trace=True)

        def mean_latency(system):
            arrive = [e.time for e in system.trace.of_kind("ipi_arrival")]
            enter = [
                e.time
                for e in system.trace.of_kind("handler_fetch")
                if e.detail.get("core") == 1
            ]
            pairs = [b - a for a, b in zip(arrive, enter)]
            return sum(pairs) / len(pairs)

        assert mean_latency(padded) > mean_latency(plain)


class TestUifGating:
    def test_clui_blocks_delivery_until_stui(self):
        """A receiver that holds UIF clear defers delivery; stui releases it."""
        builder = ProgramBuilder("gated")
        builder.emit(isa.clui())
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 3000))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.stui())
        builder.label("spin")
        builder.emit(isa.addi(3, 3, 1))
        builder.emit(isa.jmp("spin"))
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        sender = ProgramBuilder("s")
        sender.emit(isa.senduipi(0))
        sender.emit(isa.halt())
        system = MultiCoreSystem(
            [sender.build(), builder.build()], [FlushStrategy(), FlushStrategy()], trace=True
        )
        system.connect_uipi(0, 1, user_vector=1)
        system.run(40_000, until_halted=[0])
        system.run(40_000)
        receiver = system.cores[1]
        assert receiver.stats.interrupts_delivered == 1
        # Delivery happened only after the gated loop finished (r1 == 3000).
        assert receiver.arch_regs[1] == 3000
        assert system.shared.read(COUNTER_ADDR) == 1

    def test_interrupt_during_handler_is_deferred(self):
        """A second UIPI arriving while the handler runs (UIF clear) is
        delivered after uiret, not nested."""
        system = run_pair(FlushStrategy(), sends=3, gap=1)  # back to back
        receiver = system.cores[1]
        assert receiver.stats.interrupts_delivered == 3
        assert system.shared.read(COUNTER_ADDR) == 3
