"""Back-end units: UOp wiring, functional-unit limits, LSQ forwarding."""

import pytest

from repro.common.errors import SimulationError
from repro.cpu.backend import (
    ST_DONE,
    FunctionalUnits,
    LoadStoreQueues,
    UOp,
    squash_penalty_cycles,
)
from repro.cpu.config import CoreParams
from repro.cpu.isa import Op


def make_uop(seq, op=Op.ADD, **kw):
    return UOp(seq=seq, op=op, pc=0, frontend_ready=0, **kw)


class TestUOp:
    def test_serializing_classification(self):
        assert make_uop(1, Op.MSR_WRITE).is_serializing
        assert make_uop(2, Op.STUI).is_serializing
        assert make_uop(3, Op.TESTUI).is_serializing
        assert not make_uop(4, Op.ADD).is_serializing

    def test_branch_classification(self):
        assert make_uop(1, Op.BEQ).is_branch and make_uop(1, Op.BEQ).is_cond_branch
        assert make_uop(2, Op.RET).is_branch and not make_uop(2, Op.RET).is_cond_branch

    def test_source_value_prefers_producer(self):
        producer = make_uop(1, dest=3)
        producer.result = 99
        consumer = make_uop(2, src_regs=(3,))
        consumer.producers[3] = producer
        assert consumer.source_value(3, [0] * 16) == 99

    def test_source_value_falls_back_to_arch(self):
        consumer = make_uop(2, src_regs=(3,))
        regs = [0] * 16
        regs[3] = 42
        assert consumer.source_value(3, regs) == 42


class TestFunctionalUnits:
    def test_per_cycle_limits(self):
        fus = FunctionalUnits(CoreParams(int_alu_units=2))
        assert fus.try_acquire(Op.ADD, cycle=0)
        assert fus.try_acquire(Op.ADD, cycle=0)
        assert not fus.try_acquire(Op.ADD, cycle=0)
        assert fus.try_acquire(Op.ADD, cycle=1)  # fresh cycle

    def test_classes_independent(self):
        fus = FunctionalUnits(CoreParams(int_alu_units=1, mul_units=1))
        assert fus.try_acquire(Op.ADD, 0)
        assert fus.try_acquire(Op.MUL, 0)  # different pool

    def test_latency_table(self):
        fus = FunctionalUnits(CoreParams())
        assert fus.latency(Op.ADD) == 1
        assert fus.latency(Op.MUL) == 3
        assert fus.latency(Op.DIV) == 12
        assert fus.latency(Op.FADD) == 3


class TestLoadStoreQueues:
    def test_capacity(self):
        lsq = LoadStoreQueues(CoreParams(lq_size=1, sq_size=1, rob_size=8))
        lsq.add(make_uop(1, Op.LOAD))
        assert not lsq.has_load_slot()
        with pytest.raises(SimulationError):
            lsq.add(make_uop(2, Op.LOAD))

    def test_forwarding_from_youngest_older_store(self):
        lsq = LoadStoreQueues(CoreParams())
        old = make_uop(1, Op.STORE)
        old.addr, old.store_value = 0x100, 5
        newer = make_uop(2, Op.STORE)
        newer.addr, newer.store_value = 0x100, 9
        lsq.add(old)
        lsq.add(newer)
        load = make_uop(3, Op.LOAD)
        load.addr = 0x104  # same 8-byte word
        lsq.add(load)
        assert lsq.forward_value(load) == 9

    def test_no_forwarding_from_younger_store(self):
        lsq = LoadStoreQueues(CoreParams())
        store = make_uop(5, Op.STORE)
        store.addr, store.store_value = 0x100, 5
        lsq.add(store)
        load = make_uop(2, Op.LOAD)
        load.addr = 0x100
        lsq.add(load)
        assert lsq.forward_value(load) is None

    def test_unresolved_older_store_detected(self):
        lsq = LoadStoreQueues(CoreParams())
        store = make_uop(1, Op.STORE)  # addr still None
        lsq.add(store)
        load = make_uop(2, Op.LOAD)
        lsq.add(load)
        assert lsq.has_unresolved_older_store(load)
        store.addr = 0x200
        assert not lsq.has_unresolved_older_store(load)

    def test_drop_squashed(self):
        lsq = LoadStoreQueues(CoreParams())
        keep = make_uop(1, Op.LOAD)
        drop = make_uop(2, Op.LOAD)
        drop.squashed = True
        lsq.add(keep)
        lsq.add(drop)
        lsq.drop_squashed()
        assert lsq.loads == [keep]


class TestSquashPenalty:
    def test_rounding_up(self):
        assert squash_penalty_cycles(0, 10) == 0
        assert squash_penalty_cycles(1, 10) == 1
        assert squash_penalty_cycles(10, 10) == 1
        assert squash_penalty_cycles(11, 10) == 2
        assert squash_penalty_cycles(384, 10) == 39
