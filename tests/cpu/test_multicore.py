"""Multi-core system: lockstep stepping, UIPI setup, the full send path."""

import pytest

from tests.conftest import COUNTER_ADDR, build_sender, build_spin_receiver

from repro.common.errors import ConfigError, SimulationError
from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import UIPI_NOTIFICATION_VECTOR, MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.uintr.upid import UPID


class TestConstruction:
    def test_core_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            MultiCoreSystem([build_spin_receiver()], [FlushStrategy(), FlushStrategy()])

    def test_no_cores_rejected(self):
        with pytest.raises(ConfigError):
            MultiCoreSystem([], [])

    def test_stack_pointers_distinct(self):
        system = MultiCoreSystem(
            [build_spin_receiver(), build_spin_receiver()],
            [FlushStrategy(), FlushStrategy()],
        )
        assert system.cores[0].arch_regs[15] != system.cores[1].arch_regs[15]


class TestRegistration:
    def test_register_handler_initializes_upid(self):
        system = MultiCoreSystem([build_spin_receiver()], [FlushStrategy()])
        upid_addr = system.register_handler(0)
        upid = UPID(system.shared, upid_addr)
        assert upid.notification_vector == UIPI_NOTIFICATION_VECTOR
        assert upid.notification_destination == 0
        assert not upid.outstanding and not upid.suppressed
        assert system.cores[0].uintr.upid_addr == upid_addr
        assert system.cores[0].uintr.handler_index is not None

    def test_register_handler_requires_handler_label(self):
        builder = ProgramBuilder("nohandler")
        builder.emit(isa.halt())
        system = MultiCoreSystem([builder.build()], [FlushStrategy()])
        with pytest.raises(ConfigError):
            system.register_handler(0)

    def test_register_sender_returns_indices(self):
        system = MultiCoreSystem(
            [build_sender(1), build_spin_receiver(), build_spin_receiver()],
            [FlushStrategy()] * 3,
        )
        upid1 = system.register_handler(1)
        upid2 = system.register_handler(2)
        assert system.register_sender(0, upid1, 1) == 0
        assert system.register_sender(0, upid2, 2) == 1


class TestSendPath:
    def test_sender_posts_pir_and_on_bit(self, uipi_pair):
        system, sender, receiver = uipi_pair
        upid = UPID(system.shared, receiver.uintr.upid_addr)
        # Run until the first senduipi has committed its UPID update.
        system.run(4_000)
        assert system.trace.first("upid_posted") is not None
        # After delivery, notification processing cleared ON and the PIR.
        system.run(200_000, until_halted=[0])
        system.run(20_000)
        assert not upid.outstanding
        assert upid.pir == 0
        assert receiver.uintr.uirr == 0  # all vectors consumed

    def test_suppressed_receiver_gets_pir_but_no_ipi(self):
        system = MultiCoreSystem(
            [build_sender(1), build_spin_receiver()],
            [FlushStrategy(), FlushStrategy()],
        )
        upid_addr = system.register_handler(1)
        system.register_sender(0, upid_addr, 1)
        upid = UPID(system.shared, upid_addr)
        upid.set_suppressed(True)  # as the kernel does on deschedule
        system.run(200_000, until_halted=[0])
        system.run(20_000)
        assert upid.pir != 0  # posted
        assert system.cores[1].stats.interrupts_delivered == 0  # not notified

    def test_end_to_end_latency_in_calibrated_band(self, uipi_pair):
        system, _, receiver = uipi_pair
        system.run(200_000, until_halted=[0])
        system.run(20_000)
        sends = [e.time for e in system.trace.of_kind("senduipi_start") if e.detail.get("core") == 0]
        entries = [e.time for e in system.trace.of_kind("handler_fetch") if e.detail.get("core") == 1]
        assert len(entries) == 3
        latency = entries[0] - sends[0]
        # Table 2 band: paper measures 1360 cycles end to end; our model
        # lands in the same order of magnitude (hundreds to ~2k).
        assert 400 <= latency <= 2500

    def test_device_interrupt_requires_forwarding(self):
        system = MultiCoreSystem([build_spin_receiver()], [FlushStrategy()])
        system.register_handler(0)
        system.raise_device_interrupt(0, vector=40)
        system.run(5_000)
        # Without forwarding enabled the vector is not a user interrupt; it
        # queues as a kernel interrupt and is not delivered to the handler.
        assert system.cores[0].stats.interrupts_delivered == 0


class TestRunControl:
    def test_until_halted_stops_early(self):
        builder = ProgramBuilder("quick")
        builder.emit(isa.halt())
        system = MultiCoreSystem([builder.build()], [FlushStrategy()])
        stepped = system.run(1_000_000, until_halted=[0])
        assert stepped < 1000

    def test_run_returns_cycles_stepped(self):
        system = MultiCoreSystem([build_spin_receiver()], [FlushStrategy()])
        assert system.run(500) == 500
        assert system.cycle == 500


class TestTimelineHygiene:
    def test_nan_delay_rejected(self):
        system = MultiCoreSystem([build_spin_receiver()], [FlushStrategy()])
        with pytest.raises(SimulationError, match="NaN"):
            system.schedule(float("nan"), lambda: None)

    def test_negative_delay_rejected(self):
        system = MultiCoreSystem([build_spin_receiver()], [FlushStrategy()])
        with pytest.raises(SimulationError):
            system.schedule(-1, lambda: None)
