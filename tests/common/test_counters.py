"""Engine telemetry: the REPRO_FAST switch and the global counters."""

import pytest

from repro.common.counters import (
    ENV_FAST,
    GLOBAL_COUNTERS,
    EngineCounters,
    fast_engine_enabled,
)
from repro.sim.simulator import Simulator


class TestFastSwitch:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(ENV_FAST, raising=False)
        assert fast_engine_enabled() is True

    @pytest.mark.parametrize("value", ["0", "off", "OFF", "false", " no "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FAST, value)
        assert fast_engine_enabled() is False

    @pytest.mark.parametrize("value", ["1", "on", "yes", "anything"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FAST, value)
        assert fast_engine_enabled() is True


class TestEngineCounters:
    def test_reset_zeroes_everything(self):
        counters = EngineCounters(cycles_stepped=5, cycles_skipped=7, events_fired=3)
        counters.reset()
        assert counters.as_dict() == EngineCounters().as_dict()

    def test_rates(self):
        counters = EngineCounters(
            cycles_stepped=25, cycles_skipped=75, uop_cache_hits=9, uop_cache_misses=1
        )
        assert counters.skip_fraction == pytest.approx(0.75)
        assert counters.uop_hit_rate == pytest.approx(0.9)

    def test_rates_empty_are_zero(self):
        counters = EngineCounters()
        assert counters.skip_fraction == 0.0
        assert counters.uop_hit_rate == 0.0

    def test_as_dict_includes_rates(self):
        d = EngineCounters().as_dict()
        assert "skip_fraction" in d and "uop_hit_rate" in d


class TestEventTierTelemetry:
    def test_run_counts_fires_and_jumps(self):
        GLOBAL_COUNTERS.reset()
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.schedule(10.0, lambda: None)  # same instant: one jump, two fires
        sim.schedule(25.0, lambda: None)
        sim.run()
        assert GLOBAL_COUNTERS.events_fired == 3
        assert GLOBAL_COUNTERS.events_fast_forwarded == 2
        GLOBAL_COUNTERS.reset()

    def test_step_counts_jump_only_when_time_moves(self):
        GLOBAL_COUNTERS.reset()
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.schedule(4.0, lambda: None)
        sim.step()
        sim.step()
        assert GLOBAL_COUNTERS.events_fired == 2
        assert GLOBAL_COUNTERS.events_fast_forwarded == 1
        GLOBAL_COUNTERS.reset()
