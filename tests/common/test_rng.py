"""Deterministic named RNG streams."""

import numpy as np
import pytest

from repro.common.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_sequence(self):
        a = RngStreams(seed=42).stream("x").random(8)
        b = RngStreams(seed=42).stream("x").random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("x").random(8)
        b = RngStreams(seed=2).stream("x").random(8)
        assert not np.array_equal(a, b)

    def test_different_stream_names_independent(self):
        streams = RngStreams(seed=7)
        a = streams.stream("alpha").random(8)
        b = streams.stream("beta").random(8)
        assert not np.array_equal(a, b)

    def test_stream_identity_is_creation_order_independent(self):
        one = RngStreams(seed=5)
        one.stream("first")
        value_one = one.stream("second").random()
        two = RngStreams(seed=5)
        value_two = two.stream("second").random()
        assert value_one == value_two

    def test_stream_is_cached(self):
        streams = RngStreams(seed=0)
        assert streams.stream("x") is streams.stream("x")

    def test_exponential_mean(self):
        streams = RngStreams(seed=3)
        samples = [streams.exponential("arrivals", 100.0) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)

    def test_exponential_positive(self):
        streams = RngStreams(seed=3)
        assert all(streams.exponential("a", 5.0) > 0 for _ in range(100))

    def test_uniform_bounds(self):
        streams = RngStreams(seed=3)
        for _ in range(200):
            value = streams.uniform("u", 2.0, 9.0)
            assert 2.0 <= value < 9.0

    def test_choice_index_range(self):
        streams = RngStreams(seed=3)
        indices = {streams.choice_index("c", 4) for _ in range(200)}
        assert indices <= {0, 1, 2, 3}
        assert len(indices) == 4  # all values reachable

    def test_seed_property(self):
        assert RngStreams(seed=11).seed == 11
