"""Statistics helpers: percentiles, running stats, histograms."""

import math

import pytest

from repro.common.errors import ConfigError
from repro.common.stats import Histogram, RunningStats, percentile, summarize


class TestPercentile:
    def test_median_of_known_data(self):
        assert percentile([1, 2, 3, 4, 5], 50) == pytest.approx(3)

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100

    def test_p99_tail(self):
        data = [1.0] * 99 + [100.0]
        assert percentile(data, 99) > 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigError):
            percentile([1.0], 101)
        with pytest.raises(ConfigError):
            percentile([1.0], -1)


class TestSummarize:
    def test_fields_present(self):
        summary = summarize([1.0, 2.0, 3.0])
        for key in ("count", "mean", "min", "max", "p50", "p95", "p99", "p999"):
            assert key in summary

    def test_values(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize([])


class TestRunningStats:
    def test_mean(self):
        stats = RunningStats()
        stats.extend([1, 2, 3, 4])
        assert stats.mean == pytest.approx(2.5)

    def test_variance_matches_textbook(self):
        stats = RunningStats()
        stats.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert stats.variance == pytest.approx(32 / 7)

    def test_stddev(self):
        stats = RunningStats()
        stats.extend([1, 5])
        assert stats.stddev == pytest.approx(math.sqrt(8))

    def test_min_max(self):
        stats = RunningStats()
        stats.extend([3, -1, 7])
        assert stats.minimum == -1
        assert stats.maximum == 7

    def test_empty_min_rejected(self):
        with pytest.raises(ConfigError):
            RunningStats().minimum

    def test_zero_samples_mean_is_zero(self):
        assert RunningStats().mean == 0.0

    def test_single_sample_variance_zero(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0


class TestHistogram:
    def test_mean_tracks_all_samples(self):
        hist = Histogram(bucket_width=1.0, num_buckets=10)
        for value in (0.5, 1.5, 2.5):
            hist.add(value)
        assert hist.mean == pytest.approx(1.5)

    def test_overflow_counted(self):
        hist = Histogram(bucket_width=1.0, num_buckets=2)
        hist.add(5.0)
        assert hist.overflow == 1
        assert hist.total == 1

    def test_percentile_within_buckets(self):
        hist = Histogram(bucket_width=1.0, num_buckets=100)
        for value in range(100):
            hist.add(float(value))
        assert hist.percentile(50) == pytest.approx(50.0, abs=1.5)

    def test_percentile_empty_rejected(self):
        hist = Histogram(bucket_width=1.0, num_buckets=4)
        with pytest.raises(ConfigError):
            hist.percentile(50)

    def test_negative_value_rejected(self):
        hist = Histogram(bucket_width=1.0, num_buckets=4)
        with pytest.raises(ConfigError):
            hist.add(-1.0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigError):
            Histogram(bucket_width=0, num_buckets=4)
        with pytest.raises(ConfigError):
            Histogram(bucket_width=1.0, num_buckets=0)
