"""Bit-field helpers used by the UPID/APIC packings."""

import pytest

from repro.common import bitfield
from repro.common.errors import ConfigError


class TestGetSetBits:
    def test_get_bits_intel_notation(self):
        # NV occupies bits 23:16 of the UPID status word (Table 1).
        value = 0xEC << 16
        assert bitfield.get_bits(value, 16, 23) == 0xEC

    def test_set_bits_roundtrip(self):
        value = bitfield.set_bits(0, 32, 63, 0xDEAD)
        assert bitfield.get_bits(value, 32, 63) == 0xDEAD

    def test_set_bits_preserves_others(self):
        value = bitfield.set_bits(0xFF, 16, 23, 0xAB)
        assert value & 0xFF == 0xFF

    def test_set_bits_overflow_rejected(self):
        with pytest.raises(ConfigError):
            bitfield.set_bits(0, 0, 3, 16)

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigError):
            bitfield.get_bits(0, 5, 3)


class TestSingleBits:
    def test_set_and_test(self):
        value = bitfield.set_bit(0, 7)
        assert bitfield.test_bit(value, 7)
        assert not bitfield.test_bit(value, 6)

    def test_clear(self):
        value = bitfield.clear_bit(0xFF, 0)
        assert value == 0xFE

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            bitfield.set_bit(0, -1)


class TestScanning:
    def test_lowest_set_bit(self):
        assert bitfield.lowest_set_bit(0b1000) == 3

    def test_lowest_set_bit_of_zero(self):
        assert bitfield.lowest_set_bit(0) == -1

    def test_lowest_of_multiple(self):
        assert bitfield.lowest_set_bit(0b1010) == 1

    def test_iter_set_bits(self):
        assert list(bitfield.iter_set_bits(0b10110)) == [1, 2, 4]

    def test_iter_set_bits_empty(self):
        assert list(bitfield.iter_set_bits(0)) == []

    def test_iter_large_vector(self):
        # 256-bit forwarding registers use high bit positions (§4.5).
        value = (1 << 255) | (1 << 8)
        assert list(bitfield.iter_set_bits(value)) == [8, 255]
