"""Units: cycle/time conversions at the paper's 2 GHz clock."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import (
    CYCLES_PER_US_2GHZ,
    PAPER_CLOCK,
    Frequency,
    cycles_to_ns,
    cycles_to_us,
    ns_to_cycles,
    us_to_cycles,
)


class TestFrequency:
    def test_ghz_constructor(self):
        assert Frequency.ghz(2.0).hertz == 2e9

    def test_mhz_constructor(self):
        assert Frequency.mhz(500).hertz == 5e8

    def test_cycle_ns_at_2ghz(self):
        assert Frequency.ghz(2.0).cycle_ns == pytest.approx(0.5)

    def test_cycles_per_us(self):
        assert Frequency.ghz(2.0).cycles_per_us() == pytest.approx(CYCLES_PER_US_2GHZ)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigError):
            Frequency(0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigError):
            Frequency(-1e9)

    def test_roundtrip_cycles_ns(self):
        freq = Frequency.ghz(3.5)
        assert freq.ns_to_cycles(freq.cycles_to_ns(1234)) == pytest.approx(1234)

    def test_roundtrip_cycles_us(self):
        freq = Frequency.ghz(2.0)
        assert freq.us_to_cycles(freq.cycles_to_us(99_999)) == pytest.approx(99_999)

    def test_seconds_conversion(self):
        assert Frequency.ghz(2.0).seconds_to_cycles(1.0) == pytest.approx(2e9)
        assert Frequency.ghz(2.0).cycles_to_seconds(2e9) == pytest.approx(1.0)


class TestModuleHelpers:
    def test_paper_clock_is_2ghz(self):
        assert PAPER_CLOCK.hertz == 2e9

    def test_cycles_to_ns_default_clock(self):
        assert cycles_to_ns(2) == pytest.approx(1.0)

    def test_cycles_to_us_default_clock(self):
        # 5 us quantum == 10,000 cycles at 2 GHz (the paper's headline quantum)
        assert cycles_to_us(10_000) == pytest.approx(5.0)

    def test_ns_to_cycles_default_clock(self):
        assert ns_to_cycles(1.0) == pytest.approx(2.0)

    def test_us_to_cycles_matches_paper_constant(self):
        assert us_to_cycles(1.0) == pytest.approx(CYCLES_PER_US_2GHZ)

    def test_signal_cost_conversion(self):
        # §2: 2.4 us at 2 GHz is 4800 cycles.
        assert us_to_cycles(2.4) == pytest.approx(4800)
