"""The µ-ISA microbenchmarks: they run, halt, and compute what they claim."""

import pytest

from repro.apps import microbench as mb
from repro.common.errors import ConfigError
from repro.compiler.instrument import PollingInstrumenter, SafepointInstrumenter
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem


def run_workload(workload, max_cycles=3_000_000, cores_extra=()):
    system = MultiCoreSystem(
        [workload.program, *cores_extra], [FlushStrategy() for _ in range(1 + len(cores_extra))]
    )
    workload.install(system.shared)
    system.run(max_cycles, until_halted=[0])
    assert system.cores[0].halted, f"{workload.name} did not halt"
    return system


class TestFib:
    def test_computes_fibonacci(self):
        system = run_workload(mb.make_fib(n=10))
        assert system.cores[0].arch_regs[2] == 55  # fib(10)

    def test_fib_base_cases(self):
        assert run_workload(mb.make_fib(n=1)).cores[0].arch_regs[2] == 1
        assert run_workload(mb.make_fib(n=2)).cores[0].arch_regs[2] == 1

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigError):
            mb.make_fib(n=0)


class TestLoops:
    def test_count_loop_counts(self):
        system = run_workload(mb.make_count_loop(1234))
        assert system.cores[0].arch_regs[1] == 1234

    def test_linpack_writes_daxpy_results(self):
        workload = mb.make_linpack(iterations=16, vector_len=8)
        system = run_workload(workload)
        # b[i] = 3*a[i] + b[i] for the first 8 indices, applied twice
        # (16 iterations wrap the 8-element vectors twice).
        a0, b0 = 1, 1  # init: a[i]=i+1, b[i]=2i+1
        once = 3 * a0 + b0
        twice = 3 * a0 + once
        assert system.shared.read(mb.ARRAY_B_BASE) == twice

    def test_linpack_rejects_nonpower_of_two(self):
        with pytest.raises(ConfigError):
            mb.make_linpack(vector_len=100)

    def test_memops_copies(self):
        workload = mb.make_memops(iterations=64, footprint_kb=8)
        system = run_workload(workload)
        dst = mb.ARRAY_B_BASE + 8 * 1024
        assert system.shared.read(dst) == system.shared.read(mb.ARRAY_A_BASE)

    def test_base64_produces_output(self):
        workload = mb.make_base64(iterations=32)
        system = run_workload(workload)
        assert system.shared.read(mb.ARRAY_B_BASE) != 0


class TestMatmul:
    def test_matmul_result_matches_numpy(self):
        import numpy as np

        size = 4
        workload = mb.make_matmul(size=size)
        system = run_workload(workload)
        a = np.array([[(i * size + k) % 7 + 1 for k in range(size)] for i in range(size)])
        b = np.array([[(k * size + j) % 5 + 1 for j in range(size)] for k in range(size)])
        expected = a @ b
        c_base = mb.MATRIX_BASE + 2 * size * size * 8
        for i in range(size):
            for j in range(size):
                got = system.shared.read(c_base + 8 * (i * size + j))
                assert got == expected[i][j], (i, j)


class TestPointerChase:
    def test_chain_is_cyclic(self):
        workload = mb.make_pointer_chase(num_nodes=16, stride=64, iterations=5)
        system = run_workload(workload)
        # After 5 hops from the base, r3 is node 5's address.
        assert system.cores[0].arch_regs[3] == mb.CHASE_BASE + 5 * 64

    def test_needs_two_nodes(self):
        with pytest.raises(ConfigError):
            mb.make_pointer_chase(num_nodes=1)

    def test_sp_chain_restores_stack_pointer(self):
        workload = mb.make_sp_dependence_chain(chain_length=4, iterations=6, num_nodes=64)
        system = run_workload(workload)
        core = system.cores[0]
        # SP restored to the boot value after the run (r9 saved it).
        assert core.arch_regs[15] == core.arch_regs[9]

    def test_sp_chain_validates_powers_of_two(self):
        with pytest.raises(ConfigError):
            mb.make_sp_dependence_chain(num_nodes=100)


class TestQuicksort:
    def test_sorts_correctly(self):
        n = 64
        workload = mb.make_quicksort(n=n, seed=3)
        system = run_workload(workload, max_cycles=8_000_000)
        values = [system.shared.read(mb.ARRAY_A_BASE + 8 * i) for i in range(n)]
        assert values == sorted(values)

    def test_multiset_preserved(self):
        n = 48
        workload = mb.make_quicksort(n=n, seed=9)
        # Capture the input by applying init to a scratch memory.
        from repro.cpu.cache import SharedMemory

        scratch = SharedMemory()
        workload.install(scratch)
        before = sorted(scratch.read(mb.ARRAY_A_BASE + 8 * i) for i in range(n))
        system = run_workload(workload, max_cycles=8_000_000)
        after = [system.shared.read(mb.ARRAY_A_BASE + 8 * i) for i in range(n)]
        assert after == before

    def test_sorts_under_interrupts(self):
        """Preemption via KB timer must not perturb the sort."""
        from repro.cpu.delivery import TrackedStrategy

        n = 256
        workload = mb.make_quicksort(n=n, seed=5)
        system = MultiCoreSystem([workload.program], [TrackedStrategy()])
        workload.install(system.shared)
        system.enable_kb_timer(0)
        system.cores[0].uintr.kb_timer.arm_periodic(1500, now=0)
        system.run(8_000_000, until_halted=[0])
        assert system.cores[0].halted
        assert system.cores[0].stats.interrupts_delivered >= 2
        values = [system.shared.read(mb.ARRAY_A_BASE + 8 * i) for i in range(n)]
        assert values == sorted(values)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            mb.make_quicksort(n=1)


class TestFnvHash:
    def test_digest_matches_reference(self):
        iterations, words = 256, 64
        workload = mb.make_fnv_hash(iterations=iterations, buffer_words=words)
        system = run_workload(workload)
        digest = 0x811C9DC5
        mask = (1 << 64) - 1
        buffer = [(i * 2654435761) % (1 << 32) for i in range(words)]
        for i in range(iterations):
            digest = ((digest ^ buffer[i % words]) * 0x01000193) & mask
        assert system.shared.read(mb.ARRAY_B_BASE) == digest

    def test_buffer_power_of_two_required(self):
        with pytest.raises(ConfigError):
            mb.make_fnv_hash(buffer_words=100)


class TestTimerCores:
    def test_uipi_timer_core_sends_at_interval(self):
        from tests.conftest import build_spin_receiver

        sender = mb.make_uipi_timer_core(interval_cycles=3000, count=4)
        system = MultiCoreSystem(
            [sender.program, build_spin_receiver()], [FlushStrategy(), FlushStrategy()]
        )
        system.connect_uipi(0, 1, user_vector=1)
        system.run(200_000, until_halted=[0])
        system.run(8_000)
        assert system.cores[1].stats.interrupts_delivered == 4

    def test_poll_timer_core_sets_flag(self):
        flag = 0x60_0000
        sender = mb.make_poll_timer_core(interval_cycles=2000, count=3, flag_addr=flag)
        system = MultiCoreSystem([sender.program], [FlushStrategy()])
        system.run(100_000, until_halted=[0])
        assert system.shared.read(flag) == 1

    def test_interval_validated(self):
        with pytest.raises(ConfigError):
            mb.make_uipi_timer_core(0, 1)
        with pytest.raises(ConfigError):
            mb.make_poll_timer_core(-5, 1, 0x1000)


class TestInstrumentedVariants:
    def test_polling_instrumented_still_correct(self):
        workload = mb.make_count_loop(500, instrument=PollingInstrumenter())
        system = run_workload(workload)
        assert system.cores[0].arch_regs[1] == 500

    def test_safepoint_instrumented_still_correct(self):
        workload = mb.make_count_loop(500, instrument=SafepointInstrumenter())
        system = run_workload(workload)
        assert system.cores[0].arch_regs[1] == 500

    def test_safepoint_backedge_carries_prefix(self):
        workload = mb.make_count_loop(10, instrument=SafepointInstrumenter())
        assert any(i.safepoint for i in workload.program.instructions)

    def test_fib_with_polling_is_correct(self):
        workload = mb.make_fib(n=8, instrument=PollingInstrumenter())
        system = run_workload(workload)
        assert system.cores[0].arch_regs[2] == 21
