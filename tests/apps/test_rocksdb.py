"""The skip-list store and the bimodal service model (§5.3)."""

import pytest

from repro.apps.rocksdb import BimodalServiceModel, SkipListStore
from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.common.units import us_to_cycles


class TestSkipListStore:
    def test_put_get(self):
        store = SkipListStore()
        store.put(b"key1", b"value1")
        assert store.get(b"key1") == b"value1"

    def test_get_missing(self):
        assert SkipListStore().get(b"nope") is None

    def test_overwrite(self):
        store = SkipListStore()
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1

    def test_delete(self):
        store = SkipListStore()
        store.put("k", 1)
        assert store.delete("k") is True
        assert store.get("k") is None
        assert store.delete("k") is False
        assert len(store) == 0

    def test_scan_is_ordered(self):
        store = SkipListStore(seed=3)
        for key in [5, 1, 9, 3, 7]:
            store.put(key, key * 10)
        result = store.scan(start_key=3, count=3)
        assert result == [(3, 30), (5, 50), (7, 70)]

    def test_scan_count_zero(self):
        store = SkipListStore()
        store.put(1, 1)
        assert store.scan(0, 0) == []

    def test_scan_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            SkipListStore().scan(0, -1)

    def test_items_sorted(self):
        store = SkipListStore(seed=1)
        import random

        keys = list(range(200))
        random.Random(0).shuffle(keys)
        for key in keys:
            store.put(key, key)
        assert [k for k, _ in store.items()] == sorted(keys)

    def test_large_store_lookups(self):
        store = SkipListStore(seed=2)
        for i in range(1000):
            store.put(f"key{i:04d}", i)
        assert store.get("key0500") == 500
        assert store.get("key0999") == 999


class TestBimodalServiceModel:
    def test_mean_service_matches_paper_mix(self):
        model = BimodalServiceModel()
        # 99.5% * 1.2us + 0.5% * 580us = 4.094 us
        assert model.mean_service_cycles == pytest.approx(us_to_cycles(4.094), rel=0.01)

    def test_max_throughput_order(self):
        # One 2 GHz core saturates around 244k req/s on this mix.
        assert BimodalServiceModel().max_throughput_rps() == pytest.approx(244_000, rel=0.01)

    def test_scan_fraction_respected(self):
        model = BimodalServiceModel(rng=RngStreams(1))
        samples = [model.sample() for _ in range(20_000)]
        scan_fraction = sum(1 for s in samples if s.kind == "scan") / len(samples)
        assert scan_fraction == pytest.approx(0.005, abs=0.002)

    def test_service_times_near_means(self):
        model = BimodalServiceModel(rng=RngStreams(2))
        gets = [s.service_cycles for s in (model.sample() for _ in range(5000)) if True]
        get_samples = [s for s in gets if s < us_to_cycles(10)]
        mean_get = sum(get_samples) / len(get_samples)
        assert mean_get == pytest.approx(us_to_cycles(1.2), rel=0.05)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            BimodalServiceModel(scan_fraction=1.5)

    def test_samples_always_positive(self):
        model = BimodalServiceModel(rng=RngStreams(3), spread=0.5)
        assert all(model.sample().service_cycles > 0 for _ in range(2000))
