"""Open-loop Poisson load generation (§5.3)."""

import numpy as np
import pytest

from repro.apps.loadgen import PoissonLoadGenerator
from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.sim.simulator import Simulator


class TestArrivals:
    def test_rate_is_respected(self):
        generator = PoissonLoadGenerator(100_000, rng=RngStreams(1))
        duration = 0.2 * 2e9  # 0.2 s in cycles
        arrivals = list(generator.arrivals(duration))
        assert len(arrivals) == pytest.approx(20_000, rel=0.05)

    def test_interarrivals_exponential(self):
        generator = PoissonLoadGenerator(50_000, rng=RngStreams(2))
        times = [a.time for a in generator.arrivals(0.5 * 2e9)]
        gaps = np.diff(times)
        mean_gap = 2e9 / 50_000
        assert np.mean(gaps) == pytest.approx(mean_gap, rel=0.05)
        # Exponential: stddev ~= mean (coefficient of variation 1).
        assert np.std(gaps) == pytest.approx(mean_gap, rel=0.1)

    def test_arrivals_ordered_and_bounded(self):
        generator = PoissonLoadGenerator(10_000, rng=RngStreams(3))
        duration = 0.05 * 2e9
        times = [a.time for a in generator.arrivals(duration, start=100.0)]
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
        assert all(100.0 <= t < 100.0 + duration for t in times)

    def test_arrivals_deterministic_per_seed(self):
        a = [x.time for x in PoissonLoadGenerator(10_000, rng=RngStreams(7)).arrivals(1e7)]
        b = [x.time for x in PoissonLoadGenerator(10_000, rng=RngStreams(7)).arrivals(1e7)]
        assert a == b

    def test_specs_carry_service_demand(self):
        generator = PoissonLoadGenerator(10_000, rng=RngStreams(4))
        arrival = next(iter(generator.arrivals(1e7)))
        assert arrival.spec.service_cycles > 0
        assert arrival.spec.kind in ("get", "scan")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigError):
            PoissonLoadGenerator(0)

    def test_invalid_duration_rejected(self):
        generator = PoissonLoadGenerator(1000)
        with pytest.raises(ConfigError):
            list(generator.arrivals(0))


class TestScheduleInto:
    def test_schedules_all_arrivals(self):
        sim = Simulator()
        generator = PoissonLoadGenerator(100_000, rng=RngStreams(5))
        seen = []
        count = generator.schedule_into(sim, 0.01 * 2e9, seen.append)
        sim.run()
        assert len(seen) == count
        assert count > 500
