"""The structured tracer: instants, spans, bounding, and the module switch."""

import pytest

from repro import obs
from repro.common.errors import SimulationError
from repro.obs.events import InstantEvent, SpanEvent
from repro.obs.spans import Tracer


class TestInstants:
    def test_instant_records_args(self):
        tracer = Tracer()
        tracer.instant(100, "apic.accept", "apic0", obs.CAT_IRQ, vector=0xEC)
        (event,) = tracer.events()
        assert isinstance(event, InstantEvent)
        assert (event.ts, event.name, event.track) == (100, "apic.accept", "apic0")
        assert event.category == obs.CAT_IRQ
        assert event.args == {"vector": 0xEC}

    def test_of_name_filters(self):
        tracer = Tracer()
        tracer.instant(1, "a", "core0")
        tracer.instant(2, "b", "core0")
        tracer.instant(3, "a", "core1")
        assert [e.ts for e in tracer.of_name("a")] == [1, 3]


class TestSpans:
    def test_complete_span(self):
        tracer = Tracer()
        tracer.complete(50, 25, "uintr.delivery", "core0", obs.CAT_DELIVERY)
        (event,) = tracer.events()
        assert isinstance(event, SpanEvent)
        assert (event.ts, event.dur) == (50, 25)

    def test_complete_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            Tracer().complete(50, -1, "x", "core0")

    def test_begin_end_stamps_duration(self):
        tracer = Tracer()
        handle = tracer.begin(10, "sched.run", "kernel.sched0", vector=1)
        assert len(tracer) == 0  # nothing recorded until end()
        event = handle.end(35, preempted=True)
        assert (event.ts, event.dur) == (10, 25)
        assert event.args == {"vector": 1, "preempted": True}
        assert tracer.events() == [event]

    def test_zero_length_span_is_fine(self):
        tracer = Tracer()
        assert tracer.begin(7, "x", "core0").end(7).dur == 0

    def test_end_before_begin_rejected(self):
        handle = Tracer().begin(10, "x", "core0")
        with pytest.raises(SimulationError):
            handle.end(9)

    def test_double_end_rejected(self):
        handle = Tracer().begin(10, "x", "core0")
        handle.end(11)
        with pytest.raises(SimulationError):
            handle.end(12)


class TestOrderingAndBounds:
    def test_events_sorted_by_timestamp(self):
        tracer = Tracer()
        tracer.instant(30, "late", "core0")
        tracer.complete(10, 5, "early", "core0")
        tracer.instant(20, "mid", "core0")
        assert [e.name for e in tracer.events()] == ["early", "mid", "late"]

    def test_ring_bound_and_dropped(self):
        tracer = Tracer(max_events=4)
        for cycle in range(10):
            tracer.instant(cycle, f"e{cycle}", "core0")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [e.ts for e in tracer.events()] == [6, 7, 8, 9]

    def test_clear(self):
        tracer = Tracer()
        tracer.instant(1, "x", "core0")
        tracer.clear()
        assert tracer.events() == []
        assert tracer.dropped == 0


class TestModuleSwitch:
    def test_disabled_by_default(self):
        assert obs.enabled is False

    def test_enable_installs_fresh_bounded_tracer(self):
        old = obs.TRACER
        old.instant(1, "stale", "core0")
        obs.enable(max_events=16)
        try:
            assert obs.enabled
            assert obs.TRACER is not old
            assert obs.TRACER.max_events == 16
            assert len(obs.TRACER) == 0
        finally:
            obs.disable()

    def test_disable_keeps_events_readable(self):
        obs.enable()
        try:
            obs.TRACER.instant(5, "kept", "core0")
        finally:
            obs.disable()
        assert not obs.enabled
        assert [e.name for e in obs.TRACER.events()] == ["kept"]

    def test_enable_clears_metrics(self):
        obs.METRICS.inc("leftover")
        obs.enable()
        try:
            assert obs.METRICS.counter_value("leftover") == 0
        finally:
            obs.disable()
