"""The central metrics registry and its absorb helpers."""

import pytest

from repro.common.counters import EngineCounters
from repro.common.errors import ConfigError
from repro.obs.registry import METRICS_SCHEMA, MetricsRegistry


class TestCountersAndGauges:
    def test_inc_creates_and_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("core0.rob.squashes")
        registry.inc("core0.rob.squashes", 4)
        assert registry.counter_value("core0.rob.squashes") == 5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_set_counter_overwrites(self):
        registry = MetricsRegistry()
        registry.set_counter("engine.cycles", 100)
        registry.set_counter("engine.cycles", 7)
        assert registry.counter_value("engine.cycles") == 7

    def test_gauge_latest_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("run.ipc", 1.5)
        registry.gauge("run.ipc", 2.25)
        assert registry.gauge_value("run.ipc") == 2.25
        assert registry.gauge_value("missing") is None

    @pytest.mark.parametrize("bad", ["", "  ", " padded "])
    def test_names_validated(self, bad):
        with pytest.raises(ConfigError):
            MetricsRegistry().inc(bad)


class TestHistograms:
    def test_histogram_created_on_first_use(self):
        registry = MetricsRegistry()
        hist = registry.histogram("delivery.total")
        assert registry.histogram("delivery.total") is hist

    def test_observe_records(self):
        registry = MetricsRegistry()
        registry.observe("delivery.total", 383)
        registry.observe("delivery.total", 645)
        hist = registry.histogram("delivery.total")
        assert hist.count == 2
        assert hist.max == 645


class TestAbsorb:
    def test_absorb_mapping_splits_ints_and_floats(self):
        registry = MetricsRegistry()
        registry.absorb_mapping(
            "core0",
            {"committed": 100, "ipc": 1.5, "traced": True, "name": "core"},
        )
        assert registry.counter_value("core0.committed") == 100
        assert registry.gauge_value("core0.ipc") == 1.5
        # bools and non-numbers are telemetry noise, not metrics
        assert registry.counter_value("core0.traced") == 0
        assert registry.gauge_value("core0.name") is None

    def test_absorb_engine_counters(self):
        counters = EngineCounters()
        counters.cycles_skipped += 42
        registry = MetricsRegistry()
        registry.absorb_engine_counters(counters)
        assert registry.counter_value("engine.cycles_skipped") == 42


class TestExport:
    def test_as_dict_schema_and_sorting(self):
        registry = MetricsRegistry()
        registry.inc("b.count")
        registry.inc("a.count")
        registry.gauge("z.ratio", 0.5)
        registry.observe("lat.total", 100)
        payload = registry.as_dict()
        assert payload["schema"] == METRICS_SCHEMA
        assert list(payload["counters"]) == ["a.count", "b.count"]
        assert payload["gauges"] == {"z.ratio": 0.5}
        assert payload["histograms"]["lat.total"]["count"] == 1

    def test_len_and_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("b", 1.0)
        registry.observe("c", 1)
        assert len(registry) == 3
        registry.clear()
        assert len(registry) == 0
        assert registry.as_dict()["counters"] == {}
