"""Chrome trace-event export: structure, track mapping, clock conversion."""

import json

from repro.obs.chrometrace import (
    CYCLES_PER_US,
    TRACE_SCHEMA,
    TraceGroup,
    build_trace,
    chrome_events,
    from_recorder,
    write_trace,
)
from repro.obs.events import CAT_DELIVERY, CAT_TIMER, InstantEvent, SpanEvent
from repro.sim.trace import TraceRecorder


def _group(name="run"):
    return TraceGroup(
        name=name,
        events=[
            InstantEvent(ts=4000, name="inject", track="core0", category=CAT_DELIVERY),
            SpanEvent(
                ts=2000, dur=1000, name="uintr.delivery", track="core0",
                category=CAT_DELIVERY, args={"vector": 0xEC},
            ),
            InstantEvent(ts=100, name="timer.kb_fire", track="timer0", category=CAT_TIMER),
        ],
    )


class TestChromeEvents:
    def test_metadata_first_then_events_in_time_order(self):
        records = chrome_events(_group(), pid=1)
        phases = [r["ph"] for r in records]
        # process_name + 2 per track, then the events sorted by ts
        assert phases[:5] == ["M"] * 5
        assert [r["name"] for r in records[5:]] == [
            "timer.kb_fire", "uintr.delivery", "inject",
        ]

    def test_track_becomes_named_thread(self):
        records = chrome_events(_group("flush"), pid=3)
        names = {
            r["args"]["name"]: r["tid"]
            for r in records
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        assert set(names) == {"core0", "timer0"}
        assert all(r["pid"] == 3 for r in records)
        process = next(r for r in records if r["name"] == "process_name")
        assert process["args"]["name"] == "flush"

    def test_span_vs_instant_phases(self):
        records = chrome_events(_group(), pid=1)
        span = next(r for r in records if r["name"] == "uintr.delivery")
        assert span["ph"] == "X"
        assert span["dur"] == 1000 / CYCLES_PER_US
        assert span["args"]["dur_cycles"] == 1000
        instant = next(r for r in records if r["name"] == "inject")
        assert instant["ph"] == "i"
        assert instant["s"] == "t"

    def test_timestamps_convert_cycles_to_microseconds(self):
        records = chrome_events(_group(), pid=1)
        span = next(r for r in records if r["name"] == "uintr.delivery")
        assert span["ts"] == 1.0  # 2000 cycles @ 2 GHz
        assert span["args"]["cycle"] == 2000
        assert span["args"]["vector"] == 0xEC

    def test_core_tracks_sort_before_timer_and_numerically(self):
        group = TraceGroup(
            name="g",
            events=[
                InstantEvent(ts=1, name="a", track="core10"),
                InstantEvent(ts=1, name="b", track="core2"),
                InstantEvent(ts=1, name="c", track="timer0"),
                InstantEvent(ts=1, name="d", track="sim.events"),
            ],
        )
        records = chrome_events(group, pid=1)
        order = [
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "thread_name"
        ]
        assert order == ["core2", "core10", "timer0", "sim.events"]


class TestBuildAndWrite:
    def test_groups_become_processes(self):
        doc = build_trace([_group("flush"), _group("tracked")])
        pids = {r["pid"] for r in doc["traceEvents"]}
        assert pids == {1, 2}
        assert doc["otherData"]["schema"] == TRACE_SCHEMA
        assert doc["otherData"]["dropped_events"] == {}

    def test_dropped_counts_reported(self):
        group = _group("windowed")
        group.dropped = 12
        doc = build_trace([group])
        assert doc["otherData"]["dropped_events"] == {"windowed": 12}

    def test_write_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        document = write_trace(str(path), [_group()])
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))
        assert loaded["traceEvents"]


class TestFromRecorder:
    def test_recorder_events_map_to_tracks(self):
        recorder = TraceRecorder()
        recorder.record(10, "senduipi_start", core=1)
        recorder.record(390, "ipi_arrival", core=0, vector=0xEC)
        recorder.record(500, "kb_timer_fire", core=0)
        recorder.record(600, "sweep_done")
        events = from_recorder(recorder.events)
        by_name = {e.name: e for e in events}
        assert by_name["senduipi_start"].track == "core1"
        assert by_name["ipi_arrival"].track == "apic0"
        assert by_name["ipi_arrival"].args == {"core": 0, "vector": 0xEC}
        assert by_name["kb_timer_fire"].track == "timer0"
        assert by_name["sweep_done"].track == "sim.events"

    def test_round_trips_through_chrome_export(self):
        recorder = TraceRecorder()
        recorder.record(10, "senduipi_start", core=1)
        doc = build_trace([TraceGroup("legacy", from_recorder(recorder.events))])
        (event,) = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        assert event["name"] == "senduipi_start"
        assert event["args"]["cycle"] == 10
