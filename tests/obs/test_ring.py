"""Bounded ring-buffer storage: eviction, drop accounting, snapshots."""

import pytest

from repro.common.errors import ConfigError
from repro.obs.ring import RingBuffer


class TestUnbounded:
    def test_grows_without_limit(self):
        ring = RingBuffer()
        ring.extend(range(1000))
        assert len(ring) == 1000
        assert ring.dropped == 0
        assert ring.max_events is None

    def test_snapshot_is_a_fresh_list(self):
        ring = RingBuffer()
        ring.append("a")
        snap = ring.snapshot()
        snap.append("b")
        assert ring.snapshot() == ["a"]


class TestBounded:
    def test_keeps_newest_drops_oldest(self):
        ring = RingBuffer(max_events=8)
        ring.extend(range(20))
        assert len(ring) == 8
        assert ring.snapshot() == list(range(12, 20))
        assert ring.dropped == 12
        assert ring.appended == 20

    def test_no_drops_below_the_bound(self):
        ring = RingBuffer(max_events=8)
        ring.extend(range(8))
        assert ring.dropped == 0

    def test_bound_of_one(self):
        ring = RingBuffer(max_events=1)
        ring.extend("abc")
        assert ring.snapshot() == ["c"]
        assert ring.dropped == 2

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bound_must_be_positive(self, bad):
        with pytest.raises(ConfigError):
            RingBuffer(max_events=bad)


class TestProtocol:
    def test_clear_resets_drop_accounting(self):
        ring = RingBuffer(max_events=2)
        ring.extend(range(5))
        ring.clear()
        assert len(ring) == 0
        assert ring.dropped == 0
        ring.append("x")
        assert ring.snapshot() == ["x"]

    def test_iter_and_bool(self):
        ring = RingBuffer()
        assert not ring
        ring.extend([1, 2, 3])
        assert ring
        assert list(ring) == [1, 2, 3]
