"""The bench gate: tolerance parsing and baseline comparison semantics."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs import regress
from repro.obs.regress import (
    EXIT_NO_BASELINE,
    EXIT_OK,
    EXIT_REGRESSION,
    compare,
    load_baseline,
    parse_tolerance,
    run_gate,
)


class TestParseTolerance:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [("25%", 0.25), ("0.25", 0.25), (" 10% ", 0.10), ("0", 0.0), ("1.5", 1.5)],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_tolerance(text) == pytest.approx(expected)

    @pytest.mark.parametrize("bad", ["", "abc", "%", "-0.1", "-5%"])
    def test_rejected_forms(self, bad):
        with pytest.raises(ConfigError):
            parse_tolerance(bad)


def _payload(wall=1.0, identical=True, ok=True):
    return {
        "ok": ok,
        "benches": {
            "fig4_reduced": {"results_identical": identical, "wall_fast_s": wall},
        },
    }


class TestCompare:
    def test_within_tolerance_passes(self):
        result = compare(_payload(1.0), _payload(1.2), tolerance=0.25)
        assert result.ok
        assert not result.failures()

    def test_wall_clock_regression_fails(self):
        result = compare(_payload(1.0), _payload(1.3), tolerance=0.25)
        assert not result.ok
        (failure,) = result.failures()
        assert (failure.bench, failure.check) == ("fig4_reduced", "wall_fast_s")

    def test_engine_divergence_fails_regardless_of_tolerance(self):
        result = compare(
            _payload(1.0), _payload(0.5, identical=False), tolerance=100.0
        )
        assert any(
            f.check == "results_identical" for f in result.failures()
        )

    def test_fresh_suite_failure_fails_the_gate(self):
        result = compare(_payload(), _payload(ok=False), tolerance=0.25)
        assert any(f.check == "fresh_suite_ok" for f in result.failures())

    def test_bench_missing_from_fresh_run_fails(self):
        fresh = {"ok": True, "benches": {}}
        result = compare(_payload(), fresh, tolerance=0.25)
        assert any(f.check == "present" for f in result.failures())

    def test_new_bench_is_informational(self):
        fresh = _payload()
        fresh["benches"]["brand_new"] = {"results_identical": True, "wall_fast_s": 9.9}
        result = compare(_payload(), fresh, tolerance=0.25)
        assert result.ok
        new = [c for c in result.checks if c.bench == "brand_new"]
        assert new and all(c.ok for c in new)

    def test_baseline_without_wall_clock_is_not_gated(self):
        base = {"ok": True, "benches": {"fig4_reduced": {"results_identical": True}}}
        result = compare(base, _payload(), tolerance=0.0)
        assert result.ok

    def test_stale_baseline_schema_fails(self):
        base = _payload(1.0)
        base["schema"] = 3
        fresh = _payload(1.0)
        fresh["schema"] = 4
        result = compare(base, fresh, tolerance=0.25)
        assert not result.ok
        (failure,) = result.failures()
        assert (failure.bench, failure.check) == ("*", "schema")
        assert "regenerate" in failure.note

    def test_schemaless_baseline_vs_schemad_suite_fails(self):
        fresh = _payload(1.0)
        fresh["schema"] = 4
        result = compare(_payload(1.0), fresh, tolerance=0.25)
        assert any(f.check == "schema" for f in result.failures())

    def test_matching_schema_passes(self):
        base = _payload(1.0)
        base["schema"] = 4
        fresh = _payload(1.0)
        fresh["schema"] = 4
        result = compare(base, fresh, tolerance=0.25)
        assert result.ok

    def test_as_dict_schema(self):
        payload = compare(_payload(), _payload(), tolerance=0.25).as_dict()
        assert payload["schema"] == "repro.obs.bench_gate/v1"
        assert payload["ok"] is True
        assert all({"bench", "check", "ok", "note"} <= set(c) for c in payload["checks"])


class TestRunGate:
    def test_missing_baseline_exit_code(self, tmp_path, capsys):
        code = run_gate(baseline=tmp_path / "nope.json", report=lambda _line: None)
        assert code == EXIT_NO_BASELINE

    def test_load_baseline_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_baseline(path)

    def _gate(self, tmp_path, monkeypatch, fresh, json_out=None):
        baseline = tmp_path / "BENCH.json"
        baseline.write_text(json.dumps(_payload(1.0)))
        monkeypatch.setattr(regress, "run_fresh", lambda report: fresh)
        lines = []
        code = run_gate(
            tolerance=0.25, baseline=baseline, report=lines.append, json_out=json_out
        )
        return code, lines

    def test_pass_and_fail_exit_codes(self, tmp_path, monkeypatch):
        code, lines = self._gate(tmp_path, monkeypatch, _payload(1.1))
        assert code == EXIT_OK
        assert any("bench-gate: OK" in line for line in lines)
        code, lines = self._gate(tmp_path, monkeypatch, _payload(5.0))
        assert code == EXIT_REGRESSION
        assert any("REGRESSION" in line for line in lines)

    def test_json_out_written(self, tmp_path, monkeypatch):
        out = tmp_path / "verdict.json"
        code, _lines = self._gate(tmp_path, monkeypatch, _payload(1.0), json_out=out)
        assert code == EXIT_OK
        verdict = json.loads(out.read_text())
        assert verdict["schema"] == "repro.obs.bench_gate/v1"

    def test_stale_schema_warning_reported(self, tmp_path, monkeypatch):
        baseline = tmp_path / "BENCH.json"
        payload = _payload(1.0)
        payload["schema"] = 3
        baseline.write_text(json.dumps(payload))
        fresh = _payload(1.0)
        fresh["schema"] = 4
        monkeypatch.setattr(regress, "run_fresh", lambda report: fresh)
        lines = []
        assert run_gate(baseline=baseline, report=lines.append) == EXIT_REGRESSION
        assert any("WARNING baseline schema" in line for line in lines)

    def test_schema2_baseline_provenance_reported(self, tmp_path, monkeypatch):
        baseline = tmp_path / "BENCH.json"
        payload = _payload(1.0)
        payload["schema"] = 2
        payload["meta"] = {"git_sha": "a" * 40, "python": "3.12.1"}
        baseline.write_text(json.dumps(payload))
        monkeypatch.setattr(regress, "run_fresh", lambda report: _payload(1.0))
        lines = []
        assert run_gate(baseline=baseline, report=lines.append) == EXIT_OK
        assert any("git aaaaaaaaaaaa" in line for line in lines)
