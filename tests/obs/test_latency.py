"""Delivery-latency pairing and the per-stage decomposition."""

from repro.obs.latency import (
    TIMER_STAGES,
    UIPI_STAGES,
    pair_latencies,
    record_stages,
    timer_delivery_stages,
    uipi_delivery_stages,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.trace import TraceRecorder


class TestPairing:
    def test_simple_pairs(self):
        assert pair_latencies([10, 100], [50, 140]) == [40, 40]

    def test_empty_inputs(self):
        assert pair_latencies([], [1, 2]) == []
        assert pair_latencies([1, 2], []) == []

    def test_end_before_first_start_is_skipped(self):
        # A stale end (e.g. from a previous delivery) never pairs backwards.
        assert pair_latencies([100], [50, 130]) == [30]

    def test_more_starts_than_ends_truncates(self):
        assert pair_latencies([10, 20, 30], [15]) == [5]

    def test_coincident_start_and_end_pair(self):
        assert pair_latencies([10], [10]) == [0]

    def test_one_end_can_serve_consecutive_starts(self):
        # Two sends before one arrival (coalesced delivery): both pair with
        # the first end at/after them; ends are not consumed.
        assert pair_latencies([10, 20], [25, 90]) == [15, 5]


def _uipi_recorder():
    recorder = TraceRecorder()
    for base in (0, 1000):
        recorder.record(base + 10, "senduipi_start", core=1)
        recorder.record(base + 390, "ipi_arrival", core=0)
        recorder.record(base + 400, "inject", core=0)
        recorder.record(base + 655, "handler_fetch", core=0)
    return recorder


class TestUipiStages:
    def test_stage_decomposition(self):
        stages = uipi_delivery_stages(
            _uipi_recorder().events, sender_core=1, receiver_core=0
        )
        assert set(stages) == set(UIPI_STAGES)
        assert stages["send_to_arrival"] == [380, 380]
        assert stages["arrival_to_inject"] == [10, 10]
        assert stages["inject_to_handler"] == [255, 255]
        assert stages["total"] == [645, 645]

    def test_wrong_core_filters_out(self):
        stages = uipi_delivery_stages(
            _uipi_recorder().events, sender_core=0, receiver_core=1
        )
        assert all(not samples for samples in stages.values())


class TestTimerStages:
    def test_stage_decomposition(self):
        recorder = TraceRecorder()
        recorder.record(500, "kb_timer_fire", core=0)
        recorder.record(502, "inject", core=0)
        recorder.record(505, "handler_fetch", core=0)
        stages = timer_delivery_stages(recorder.events, receiver_core=0)
        assert set(stages) == set(TIMER_STAGES)
        assert stages["fire_to_inject"] == [2]
        assert stages["inject_to_handler"] == [3]
        assert stages["total"] == [5]


class TestRecordStages:
    def test_feeds_named_histograms(self):
        registry = MetricsRegistry()
        record_stages(registry, "delivery.flush", {"total": [645, 231], "inject": []})
        hist = registry.histogram("delivery.flush.total")
        assert hist.count == 2
        assert hist.min == 231
        # empty stages still register (so exports show the stage exists)
        assert registry.histogram("delivery.flush.inject").count == 0
