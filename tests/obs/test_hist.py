"""Log-bucketed histogram math: buckets, percentiles, boundary behaviour."""

import pytest

from repro.common.errors import ConfigError
from repro.obs.hist import DEFAULT_SUB_BITS, LatencyHistogram


class TestBucketArithmetic:
    #: Values straddling the linear range and several octave boundaries.
    BOUNDARY_VALUES = [
        0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65,
        100, 255, 256, 1000, 1023, 1024,
        (1 << 20) - 1, 1 << 20, (1 << 20) + 1,
    ]

    @pytest.mark.parametrize("value", BOUNDARY_VALUES)
    def test_bounds_are_inverse_of_index(self, value):
        hist = LatencyHistogram()
        lower, upper = hist.bucket_bounds(hist.bucket_index(value))
        assert lower <= value <= upper

    @pytest.mark.parametrize("value", BOUNDARY_VALUES)
    def test_bucket_width_bounds_relative_error(self, value):
        hist = LatencyHistogram()
        lower, upper = hist.bucket_bounds(hist.bucket_index(value))
        if value >= (1 << DEFAULT_SUB_BITS):
            assert (upper - lower) / lower <= 2 ** -DEFAULT_SUB_BITS
        else:
            assert lower == upper == value  # linear range is exact

    def test_buckets_tile_without_gaps(self):
        hist = LatencyHistogram(sub_bits=2)
        previous_upper = -1
        for index in range(64):
            lower, upper = hist.bucket_bounds(index)
            assert lower == previous_upper + 1
            previous_upper = upper

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().bucket_index(-1)

    @pytest.mark.parametrize("bad", [0, 13])
    def test_sub_bits_range(self, bad):
        with pytest.raises(ConfigError):
            LatencyHistogram(sub_bits=bad)


class TestPercentiles:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(50) is None
        assert hist.mean is None
        assert hist.summary()["count"] == 0

    @pytest.mark.parametrize("value", [0, 7, 100, 12345])
    def test_single_sample_is_exact_at_every_percentile(self, value):
        hist = LatencyHistogram()
        hist.record(value)
        for p in (1, 50, 90, 99, 99.9, 100):
            assert hist.percentile(p) == float(value)

    def test_linear_range_is_exact(self):
        hist = LatencyHistogram()
        hist.record_many(range(16))
        assert hist.percentile(50) == 7.0
        assert hist.percentile(100) == 15.0

    def test_p50_picks_the_lower_of_two(self):
        hist = LatencyHistogram()
        hist.record_many([10, 1000])
        assert hist.percentile(50) == 10.0
        assert hist.percentile(99) == 1000.0

    def test_estimates_never_leave_observed_range(self):
        hist = LatencyHistogram()
        hist.record_many([1000, 1010])  # same bucket; upper bound is 1023
        assert hist.percentile(99) == 1010.0
        assert hist.percentile(1) >= 1000.0

    def test_relative_error_within_bucket_resolution(self):
        samples = [3, 17, 64, 383, 600, 645, 2000, 7000]
        hist = LatencyHistogram()
        hist.record_many(samples)
        for p in (50, 90, 99):
            rank = -(-len(samples) * p // 100)  # ceil
            true = sorted(samples)[int(rank) - 1]
            estimate = hist.percentile(p)
            assert abs(estimate - true) / true <= 2 ** -DEFAULT_SUB_BITS

    def test_percentile_is_monotone_in_p(self):
        hist = LatencyHistogram()
        hist.record_many([5, 50, 500, 5000, 50000])
        values = [hist.percentile(p) for p in (10, 30, 50, 70, 90, 99.9)]
        assert values == sorted(values)

    @pytest.mark.parametrize("bad", [0, -1, 100.1])
    def test_percentile_domain(self, bad):
        hist = LatencyHistogram()
        hist.record(1)
        with pytest.raises(ConfigError):
            hist.percentile(bad)


class TestRecordingAndMerge:
    def test_count_sum_min_max_mean(self):
        hist = LatencyHistogram()
        hist.record_many([4, 6, 20])
        assert (hist.count, hist.sum, hist.min, hist.max) == (3, 30.0, 4, 20)
        assert hist.mean == 10.0

    def test_nan_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().record(float("nan"))

    def test_merge_equals_recording_into_one(self):
        a, b, combined = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        a.record_many([1, 100, 383])
        b.record_many([5, 645, 7000])
        combined.record_many([1, 100, 383, 5, 645, 7000])
        a.merge(b)
        assert a.count == combined.count
        assert a.sum == combined.sum
        assert (a.min, a.max) == (combined.min, combined.max)
        for p in (50, 90, 99):
            assert a.percentile(p) == combined.percentile(p)

    def test_merge_empty_is_identity(self):
        hist = LatencyHistogram()
        hist.record(42)
        hist.merge(LatencyHistogram())
        assert (hist.count, hist.min, hist.max) == (1, 42, 42)

    def test_merge_requires_matching_sub_bits(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(sub_bits=4).merge(LatencyHistogram(sub_bits=6))


class TestExport:
    def test_summary_keys(self):
        hist = LatencyHistogram()
        hist.record(10)
        assert set(hist.summary()) == {
            "count", "min", "mean", "max", "p50", "p90", "p99", "p999",
        }

    def test_as_dict_buckets_sorted_and_consistent(self):
        hist = LatencyHistogram()
        hist.record_many([3, 3, 100, 7000])
        payload = hist.as_dict()
        assert payload["sub_bits"] == DEFAULT_SUB_BITS
        buckets = payload["buckets"]
        assert [b["lower"] for b in buckets] == sorted(b["lower"] for b in buckets)
        assert sum(b["count"] for b in buckets) == hist.count


class TestMergeMany:
    def test_equals_single_histogram(self):
        values = [1, 5, 5, 120, 4000, 77, 77, 77, 250_000, 3]
        shards = []
        for start in range(0, len(values), 3):
            hist = LatencyHistogram()
            hist.record_many(values[start : start + 3])
            shards.append(hist)
        merged = LatencyHistogram.merge_many(shards)
        single = LatencyHistogram()
        single.record_many(values)
        assert merged.to_state() == single.to_state()

    def test_empty_iterable_gives_empty_histogram(self):
        merged = LatencyHistogram.merge_many([])
        assert merged.count == 0
        assert merged.sub_bits == DEFAULT_SUB_BITS
        merged = LatencyHistogram.merge_many([], sub_bits=8)
        assert merged.sub_bits == 8

    def test_sub_bits_from_first_histogram(self):
        hist = LatencyHistogram(sub_bits=8)
        hist.record(9)
        assert LatencyHistogram.merge_many([hist]).sub_bits == 8

    def test_mismatched_sub_bits_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram.merge_many(
                [LatencyHistogram(sub_bits=4), LatencyHistogram(sub_bits=6)]
            )

    def test_inputs_unmodified(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10)
        b.record(20)
        LatencyHistogram.merge_many([a, b])
        assert (a.count, b.count) == (1, 1)


class TestExactState:
    def test_round_trip(self):
        hist = LatencyHistogram(sub_bits=8)
        hist.record_many([0, 1, 17.5, 300.25, 9_999_999])
        clone = LatencyHistogram.from_state(hist.to_state())
        assert clone.to_state() == hist.to_state()
        assert clone.sum == hist.sum
        for p in (50, 99, 99.9):
            assert clone.percentile(p) == hist.percentile(p)

    def test_state_is_json_safe(self):
        import json

        hist = LatencyHistogram()
        hist.record_many([4, 4_000_000])
        state = json.loads(json.dumps(hist.to_state()))
        assert LatencyHistogram.from_state(state).to_state() == hist.to_state()

    def test_empty_round_trip(self):
        state = LatencyHistogram(sub_bits=6).to_state()
        clone = LatencyHistogram.from_state(state)
        assert clone.count == 0 and clone.min is None and clone.max is None

    def test_inconsistent_count_rejected(self):
        hist = LatencyHistogram()
        hist.record(5)
        state = hist.to_state()
        state["count"] = 7
        with pytest.raises(ConfigError):
            LatencyHistogram.from_state(state)

    def test_missing_minmax_rejected(self):
        hist = LatencyHistogram()
        hist.record(5)
        state = hist.to_state()
        state["min"] = None
        with pytest.raises(ConfigError):
            LatencyHistogram.from_state(state)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram.from_state("nope")
        with pytest.raises(ConfigError):
            LatencyHistogram.from_state({"sub_bits": 4})
        hist = LatencyHistogram()
        hist.record(5)
        state = hist.to_state()
        state["counts"] = {"5": True}
        with pytest.raises(ConfigError):
            LatencyHistogram.from_state(state)
