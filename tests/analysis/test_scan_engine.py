"""Scan engine: file discovery, module-name mapping, parse-error policy."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import (
    collect_files,
    default_scan_root,
    module_name_for,
    run_rules,
)
from repro.common.errors import ConfigError

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.mark.parametrize(
    ("path", "expected"),
    [
        ("src/repro/sim/event.py", "repro.sim.event"),
        ("/home/x/src/repro/cpu/core.py", "repro.cpu.core"),
        ("src/repro/__init__.py", "repro"),
        ("repro/perf/cache.py", "repro.perf.cache"),  # repo-root layout
        ("venv/lib/site-packages/repro/sim/event.py", "repro.sim.event"),
        ("tests/analysis/fixtures/det004_bad.py", "det004_bad"),  # bare stem
        ("somewhere/repro/nested.py", "nested"),  # `repro` dir, not a package root
    ],
)
def test_module_name_for(path, expected):
    assert module_name_for(Path(path)) == expected


def test_collect_files_sorted_dedup_and_skips_pycache(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.py").write_text("x = 1\n")
    files = collect_files([tmp_path, tmp_path / "a.py"])
    assert [f.name for f in files] == ["a.py", "b.py"]


def test_collect_files_missing_path_raises():
    with pytest.raises(ConfigError):
        collect_files([Path("/no/such/detlint/path")])


def test_parse_error_gates(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    report = run_rules([tmp_path])
    assert not report.ok
    assert len(report.parse_errors) == 1
    assert report.files_scanned == 0


def test_default_scan_root_is_the_repro_package():
    root = default_scan_root()
    assert root.name == "repro"
    assert (root / "sim").is_dir()


def test_shipped_tree_is_clean():
    """The acceptance bar: detlint passes on the code we ship, with no
    baseline at all — every historical finding was fixed or suppressed
    inline with a documented reason."""
    report = run_rules([default_scan_root()])
    assert report.parse_errors == []
    offenders = [f.format_text() for f in report.new_findings]
    assert offenders == []
    assert report.files_scanned > 80  # the whole package, not a subset
    assert report.suppressed_count > 0  # harness engine-toggle pragmas


def test_report_ordering_is_stable_across_runs():
    first = run_rules([FIXTURES])
    second = run_rules([FIXTURES])
    assert [f.sort_key() for f in first.new_findings] == [
        f.sort_key() for f in second.new_findings
    ]
