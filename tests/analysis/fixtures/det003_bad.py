"""DET003 true positives: iterating unordered set expressions."""


def visit(vectors):
    for vector in {v & 0xFF for v in vectors}:  # set comprehension
        yield vector


def names(a, b):
    return [n for n in set(a) | set(b)]  # union of sets in a comprehension


def materialize(pending):
    return list(set(pending))  # list() freezes an arbitrary order
