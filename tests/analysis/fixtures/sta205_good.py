"""STA205 clean twin: reads are free, and the one cross-package mutation
is a declared interception point (write-grant)."""
# detlint: state-class[EngineCore owner=engine.cpu]
# detlint: write-grant[EngineCore.fault_hook sta205_good]


class EngineCore:
    __slots__ = ("cycle", "fetch_pc", "fault_hook")

    def __init__(self):
        self.cycle = 0
        self.fetch_pc = 0
        self.fault_hook = None


def install_fault_hook(core, hook):
    core.fault_hook = hook  # declared grant: the fault-injection seam


def read_clock(core):
    return core.cycle
