"""STA201 clean twin: every mutable field is snapshotted or exempted with
a stated replay invariant."""
# detlint: state-class[MiniCore owner=engine.cpu core]
# detlint: snapshot-fn[snapshot_core]
# detlint: exempt[MiniCore.spill_mask] -- scratch mask, re-derived from the uop stream on every replay


class MiniCore:
    __slots__ = ("cycle", "fetch_pc", "spill_mask")

    def __init__(self):
        self.cycle = 0
        self.fetch_pc = 0
        self.spill_mask = 0

    def step(self):
        self.cycle += 1
        self.fetch_pc += 1
        self.spill_mask |= self.fetch_pc & 7


def snapshot_core(core):
    return (core.cycle, core.fetch_pc)
