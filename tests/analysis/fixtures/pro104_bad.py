"""PRO104 true positives: a "pure" replay module that is anything but.

The pragma below stands in for a PURE_MODULES entry, so this fixture
exercises the rule without naming a real repro module.
"""
# detlint: pure-module

import os
import time
from random import random

_replay_cache = {}


def record_window(core):
    """Reads the wall clock and ambient env — both flagged."""
    started = time.monotonic()
    seed = random()
    if os.environ.get("REPLAY_DEBUG"):
        print(started, seed)
    return [core.cycle]


def replay_window(core, template):
    """Reads (and mutates through) a mutable module-level cache — flagged."""
    cached = _replay_cache.get(core.core_id)
    if cached is not None:
        return cached
    _replay_cache[core.core_id] = template
    return template


def reset_counters():
    global _replay_cache
    _replay_cache = {}
