"""DET005 true positives: order-sensitive accumulation over sets."""


def total_latency(latencies):
    return sum({round(x, 3) for x in latencies})  # float sum over a set


def bucket(histogram, samples):
    for value in set(samples):
        histogram[int(value)] += value  # '+=' into a slot, set-driven order
    return histogram
