"""STA203 clean twin: every field crosses the JSON boundary by name in
both directions."""
# detlint: json-codec
from dataclasses import dataclass


@dataclass(frozen=True)
class TimerSpec:
    name: str
    period: int
    vector: int

    def to_json(self):
        return {"name": self.name, "period": self.period, "vector": self.vector}

    @staticmethod
    def from_json(payload):
        return TimerSpec(
            name=payload["name"],
            period=payload["period"],
            vector=payload["vector"],
        )
