"""Suppression fixture: every violation below carries a pragma.

The file-level pragma silences DET003 everywhere; the line pragmas silence
individual DET001/DET002 occurrences; the wildcard silences anything on its
line.  detlint must report zero findings (and a nonzero suppressed count).
"""
# detlint: ignore-file[DET003]

import random
import time


def visit(vectors):
    for vector in set(vectors):  # silenced by the file pragma
        yield vector


def stamp():
    return time.time()  # detlint: ignore[DET001]


def jitter():
    return random.random()  # detlint: ignore[DET002]


def chaos():
    return random.random() + time.time()  # detlint: ignore[*]
