"""DET002 clean: every RNG is constructed with an explicit seed."""

import random

import numpy as np


def make_generator(seed):
    return random.Random(seed)


def make_np_generator(seed):
    return np.random.default_rng(seed)


def make_np_kwarg(seed):
    return np.random.default_rng(seed=seed)


def make_bitgen(seed):
    return np.random.PCG64(seed)
