"""PRO102 clean: callbacks carry state on the owning object."""


class Collector:
    def __init__(self):
        self.events = []
        self.count = 0

    def on_packet(self, packet):
        self.events.append(packet)

    def on_timer(self):
        self.count += 1

    def completion_callback(self, request):
        self.events.append(request)
