# detlint: pure-module
"""The clean twin of scenariocompile_bad: a compiler that is a pure
function of its spec — constants are ALL_CAPS, every decision flows from
the argument, nothing ambient is read and nothing module-level mutates."""

STRATEGY_FACTORIES = {
    "flush": lambda: ("flush",),
    "drain": lambda: ("drain",),
}

DEFAULT_ITERATIONS = 1_000


def compile_workload(spec):
    iterations = spec.get("iterations", DEFAULT_ITERATIONS)
    return {"kind": spec["kind"], "iterations": iterations}


def compile_core(spec, core_id=0):
    strategy = STRATEGY_FACTORIES[spec["strategy"]]()
    return {"core": core_id, "strategy": strategy, "workload": compile_workload(spec)}
