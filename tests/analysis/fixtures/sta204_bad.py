"""STA204 fixture: a 'read-only' probe module that scribbles on engine
state it is only supposed to observe."""
# detlint: read-only-module
# detlint: state-class[ProbeCore owner=engine.cpu]


class ProbeCore:
    __slots__ = ("cycle", "halted")

    def __init__(self):
        self.cycle = 0
        self.halted = False


def probe(core):
    core.halted = True  # a probe must not mutate the machine
    return core.cycle
