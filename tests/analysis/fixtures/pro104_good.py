"""PRO104 clean: replay state lives on the controller, constants are fine."""
# detlint: pure-module

MAX_PERIODS = 1 << 16
_HOT_THRESHOLD = 64


class ReplayController:
    __slots__ = ("core", "_cache")

    def __init__(self, core):
        self.core = core
        self._cache = {}

    def record_window(self):
        """ALL_CAPS module constants are read-only by convention — allowed."""
        return [self.core.cycle] * min(_HOT_THRESHOLD, MAX_PERIODS)

    def replay_window(self, template):
        cached = self._cache.get(self.core.core_id)
        if cached is not None:
            return cached
        self._cache[self.core.core_id] = template
        return template


def shadow_is_local(template):
    """A local named like a module global elsewhere is not a global read."""
    _replay_cache = {}
    _replay_cache.update(template)
    return _replay_cache
