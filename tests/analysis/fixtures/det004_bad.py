"""DET004 true positives: environment reads in simulation code."""

import os


def pick_engine():
    return os.environ.get("REPRO_FAST", "1")  # env consulted mid-simulation


def jobs():
    return int(os.getenv("REPRO_JOBS", "1"))


def toggle(value):
    os.environ["REPRO_FAST"] = value  # env *write* from sim code
