"""DET005 clean: accumulation order is pinned by sorting first."""


def total_latency(latencies):
    return sum(sorted({round(x, 3) for x in latencies}))


def bucket(histogram, samples):
    for value in sorted(set(samples)):
        histogram[int(value)] += value
    return histogram
