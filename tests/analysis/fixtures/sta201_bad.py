"""STA201 fixture: a core-state class with a mutable field the declared
snapshot surface never reads — replay would silently diverge."""
# detlint: state-class[MiniCore owner=engine.cpu core]
# detlint: snapshot-fn[snapshot_core]


class MiniCore:
    __slots__ = ("cycle", "fetch_pc", "spill_mask")

    def __init__(self):
        self.cycle = 0
        self.fetch_pc = 0
        self.spill_mask = 0

    def step(self):
        self.cycle += 1
        self.fetch_pc += 1
        self.spill_mask |= self.fetch_pc & 7


def snapshot_core(core):
    # spill_mask is mutable but never captured here: STA201.
    return (core.cycle, core.fetch_pc)
