"""STA204 clean twin: the probe only reads, and the one installation-time
hook write is a declared interception point."""
# detlint: read-only-module
# detlint: state-class[ProbeCore owner=engine.cpu]
# detlint: write-grant[ProbeCore.probe_hook sta204_good]


class ProbeCore:
    __slots__ = ("cycle", "halted", "probe_hook")

    def __init__(self):
        self.cycle = 0
        self.halted = False
        self.probe_hook = None


def install(core, hook):
    core.probe_hook = hook  # declared grant: the install-time hook point


def probe(core):
    return (core.cycle, core.halted)
