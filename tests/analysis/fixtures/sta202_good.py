"""STA202 clean twin: deferred work lives in the audited heap, every lane
mirror is refreshed, and config handles carry stated exemptions."""
# detlint: state-class[LoopCore owner=engine.cpu core]
# detlint: activity-fn[next_activity_cycle,note_skipped]
# detlint: lane-class[LaneSched refresh=lane_snapshot]
# detlint: exempt[LaneSched.cores] -- configuration handle, fixed in __init__


class LoopCore:
    __slots__ = ("cycle", "ready_heap", "deferred_wakeups")

    def __init__(self):
        self.cycle = 0
        self.ready_heap = []
        self.deferred_wakeups = []

    def retire(self):
        self.deferred_wakeups = [self.cycle + 4]

    def note_skipped(self, cycles):
        # The deferred list is folded into the horizon: no silent skip.
        self.cycle += cycles
        if self.deferred_wakeups:
            self.ready_heap.extend(self.deferred_wakeups)
            self.deferred_wakeups = []

    def next_activity_cycle(self):
        if self.deferred_wakeups:
            return min(self.deferred_wakeups)
        if self.ready_heap:
            return self.ready_heap[0]
        return self.cycle + 1


class LaneSched:
    __slots__ = ("cores", "fetch_pc", "rob_occ")

    def __init__(self, cores):
        self.cores = list(cores)
        self.fetch_pc = [0] * len(self.cores)
        self.rob_occ = [0] * len(self.cores)

    def lane_snapshot(self):
        for i, core in enumerate(self.cores):
            self.fetch_pc[i] = core.fetch_pc
            self.rob_occ[i] = len(core.ready_heap)
        return {"fetch_pc": self.fetch_pc, "rob_occ": self.rob_occ}
