"""PRO101 clean: every strategy takes an explicit quiescence position."""


class DeliveryStrategy:
    always_poll = True

    def on_cycle(self):
        pass

    def next_activity_cycle(self):
        return None


class QuietStrategy(DeliveryStrategy):
    name = "quiet"
    always_poll = False

    def next_activity_cycle(self):
        return None


class BusyStrategy(DeliveryStrategy):
    name = "busy"
    always_poll = True

    def next_activity_cycle(self):
        return 0
