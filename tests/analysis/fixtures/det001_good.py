"""DET001 clean: simulated time comes from the simulator clock."""


def stamp_event(event, sim):
    event.when = sim.now
    return event


def measure(core):
    start = core.cycle
    core.step()
    return core.cycle - start
