"""Batch-stepper-shaped clean twin: slotted SoA scheduler, pure module.

The shape ``repro.cpu.batchstep`` actually ships: all mutable lane state
lives on the slotted scheduler object, module level holds only read-only
ALL_CAPS constants, and the engine toggle is read by the *caller* (the
dispatch layer), never from inside the pure module.
"""
# detlint: pure-module
# detlint: slots-manifest[LaneScheduler]

FAR_HORIZON = 1 << 62
_LANE_WIDTH = 64


class LaneScheduler:
    __slots__ = ("cores", "na", "anchor", "idle_min")

    def __init__(self, cores):
        self.cores = cores
        self.na = [FAR_HORIZON] * len(cores)
        self.anchor = [-1] * len(cores)
        self.idle_min = FAR_HORIZON

    def park(self, i, cycle, horizon):
        """ALL_CAPS module constants are read-only by convention — allowed."""
        self.na[i] = min(horizon, FAR_HORIZON)
        self.anchor[i] = cycle + 1
        if horizon < self.idle_min:
            self.idle_min = horizon

    def wake(self, i):
        self.na[i] = FAR_HORIZON
        self.anchor[i] = -1


def lanes_are_local(widths):
    """A local named like a module global elsewhere is not a global read."""
    _lane_cache = {}
    for i, width in enumerate(widths):
        _lane_cache[i] = min(width, _LANE_WIDTH)
    return _lane_cache
