"""PRO101 true positives: strategies silent on the quiescence hooks."""


class DeliveryStrategy:
    always_poll = True

    def on_cycle(self):
        pass

    def next_activity_cycle(self):
        return None


class SilentStrategy(DeliveryStrategy):
    """Declares neither hook — silently disables cycle skipping."""

    name = "silent"

    def on_cycle(self):
        pass


class HalfStrategy(DeliveryStrategy):
    """Opts out of polling but never says when it acts."""

    name = "half"
    always_poll = False
