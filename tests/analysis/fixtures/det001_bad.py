"""DET001 true positives: wall-clock reads in simulation code."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp_event(event):
    event.wall = time.time()  # direct call
    return event


def measure():
    start = pc()  # aliased from-import
    return pc() - start


def log_line():
    return f"{datetime.now().isoformat()} simulated"
