"""DET003 clean: unordered expressions are sorted before iteration."""


def visit(vectors):
    for vector in sorted({v & 0xFF for v in vectors}):
        yield vector


def names(a, b):
    return [n for n in sorted(set(a) | set(b))]


def materialize(pending):
    return sorted(set(pending))
