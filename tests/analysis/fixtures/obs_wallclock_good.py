"""Observability tracing done right: timestamps are simulated cycles.

The DET-clean twin of ``obs_wallclock_bad.py`` — the trace core of
``repro.obs`` must look like this (caller-supplied ``core.cycle`` /
``sim.now`` timestamps), never like its wall-clock sibling, even though
the layer allowlist would forgive it.
"""


def trace_delivery(tracer, core, vector):
    tracer.instant(core.cycle, "apic.accept", f"apic{core.core_id}", vector=vector)


def span_of_handler(tracer, core):
    handle = tracer.begin(core.cycle, "uintr.handler", f"core{core.core_id}")
    core.run_handler()
    return handle.end(core.cycle)
