"""Batch-stepper-shaped true positives: impure SoA scheduler without slots.

Models the shape of ``repro.cpu.batchstep`` (struct-of-arrays idle lanes
for a group of cores) with every contract violation the real module must
avoid: the manifest-listed scheduler class keeps an open ``__dict__``
(PRO103), and the module reads ambient process state, the wall clock, and
a mutable module-level lane cache (PRO104).  The pragmas stand in for the
real SLOTS_MANIFEST / PURE_MODULES entries so the fixture exercises both
rules without naming a repro module.
"""
# detlint: pure-module
# detlint: slots-manifest[LaneScheduler]

import os
import time

_lane_cache = {}


class LaneScheduler:
    """SoA idle lanes — but no ``__slots__``, so a fault injector can
    scribble new attributes onto a live scheduler without an error."""

    def __init__(self, cores):
        self.cores = cores
        self.na = [0] * len(cores)
        self.anchor = [-1] * len(cores)

    def park(self, i, horizon):
        if os.environ.get("BATCH_DEBUG"):
            print("park", i, time.monotonic())
        self.na[i] = horizon

    def wake(self, i):
        cached = _lane_cache.get(i)
        if cached is not None:
            return cached
        _lane_cache[i] = self.na[i]
        return self.na[i]


def reset_lanes():
    global _lane_cache
    _lane_cache = {}
