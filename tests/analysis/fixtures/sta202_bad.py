"""STA202 fixture: the PR-8 ``note_skipped`` regression shape — deferred
work parked in a field the skip proof never consults — plus a lane-mirror
slot the refresh method skips."""
# detlint: state-class[LoopCore owner=engine.cpu core]
# detlint: activity-fn[next_activity_cycle,note_skipped]
# detlint: lane-class[LaneSched refresh=lane_snapshot]


class LoopCore:
    __slots__ = ("cycle", "ready_heap", "deferred_wakeups")

    def __init__(self):
        self.cycle = 0
        self.ready_heap = []
        self.deferred_wakeups = []

    def retire(self):
        # Due-but-blocked work parked outside the audited heap: the horizon
        # proof below never consults it, so a skip can jump past a wakeup.
        self.deferred_wakeups = [self.cycle + 4]

    def note_skipped(self, cycles):
        self.cycle += cycles

    def next_activity_cycle(self):
        if self.ready_heap:
            return self.ready_heap[0]
        return self.cycle + 1


class LaneSched:
    __slots__ = ("cores", "fetch_pc", "rob_occ")

    def __init__(self, cores):
        self.cores = list(cores)
        self.fetch_pc = [0] * len(self.cores)
        self.rob_occ = [0] * len(self.cores)

    def lane_snapshot(self):
        for i, core in enumerate(self.cores):
            self.fetch_pc[i] = core.fetch_pc
        # rob_occ is a mirror too, but this refresh forgets it: stale lane.
        return {"fetch_pc": self.fetch_pc, "rob_occ": self.rob_occ}
