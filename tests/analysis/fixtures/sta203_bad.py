"""STA203 fixture: a dataclass codec that forgets a field in both
directions — round-trip silently drops state."""
# detlint: json-codec
from dataclasses import dataclass


@dataclass(frozen=True)
class TimerSpec:
    name: str
    period: int
    vector: int

    def to_json(self):
        # vector is never emitted: a saved spec loses it.
        return {"name": self.name, "period": self.period}

    @staticmethod
    def from_json(payload):
        # ... and never parsed: a loaded spec resets it.
        return TimerSpec(payload["name"], payload["period"], 0)
