"""DET002 true positives: process-global / unseeded RNG draws."""

import random

import numpy as np


def jitter():
    return random.random()  # process-global Mersenne Twister


def pick(items):
    return random.choice(items)


def make_generator():
    return random.Random()  # no seed


def make_np_generator():
    return np.random.default_rng()  # no seed


def explicit_none():
    return random.Random(None)  # literal None is still unseeded
