"""STA201 fixture: an exemption naming a field that no longer exists —
the manifest must shrink with the model."""
# detlint: state-class[MiniCore owner=engine.cpu core]
# detlint: snapshot-fn[snapshot_core]
# detlint: exempt[MiniCore.gone_field] -- removed two refactors ago


class MiniCore:
    __slots__ = ("cycle",)

    def __init__(self):
        self.cycle = 0

    def step(self):
        self.cycle += 1


def snapshot_core(core):
    return (core.cycle,)
