"""PRO102 true positives: event callbacks mutating module-global state."""

EVENT_LOG = {}
_count = 0


def on_packet(packet):
    EVENT_LOG[packet.rid] = packet  # write through a module constant


def on_timer():
    global _count  # rebinding a global from a callback
    _count += 1


def completion_callback(request):
    EVENT_LOG[request.rid] = request
