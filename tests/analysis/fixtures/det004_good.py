"""DET004 clean: run-shape knobs arrive as explicit parameters."""


def pick_engine(config):
    return config.engine


def jobs(config):
    return config.jobs
