# detlint: pure-module
"""A scenario->system compiler shaped like repro.scenario.compile, with
every purity sin PRO104 pins down: ambient clocks and entropy, environment
reads, and mutable module state that would leak between compiles."""

import os
import random
import time

_compile_cache = {}


def compile_workload(spec):
    started = time.perf_counter()  # wall clock in a pure module
    if os.environ.get("REPRO_COMPILE_MODE") == "quick":  # ambient config
        return {"kind": spec["kind"], "quick": True, "at": started}
    cached = _compile_cache.get(spec["kind"])  # mutable module global
    if cached is not None:
        return cached
    built = {"kind": spec["kind"], "jitter": random.random()}
    _compile_cache[spec["kind"]] = built
    return built


def reset_cache():
    global _compile_cache
    _compile_cache = {}
