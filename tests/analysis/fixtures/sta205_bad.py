"""STA205 fixture: a helper module reaching into engine-owned state
without a declared grant."""
# detlint: state-class[EngineCore owner=engine.cpu]


class EngineCore:
    __slots__ = ("cycle", "fetch_pc")

    def __init__(self):
        self.cycle = 0
        self.fetch_pc = 0


def warp_clock(core, cycles):
    core.cycle += cycles  # only engine.cpu may move the machine clock
