"""STA205 fixture: a write-grant is package-scoped — the same field
written from outside the granted package is still a violation."""
# detlint: state-class[EngineCore owner=engine.cpu]
# detlint: write-grant[EngineCore.fault_hook engine.faults]


class EngineCore:
    __slots__ = ("cycle", "fault_hook")

    def __init__(self):
        self.cycle = 0
        self.fault_hook = None


def hijack(core, hook):
    core.fault_hook = hook  # grant names engine.faults, not this module
