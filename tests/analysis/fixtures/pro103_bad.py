"""PRO103 true positives: manifest-listed classes without __slots__.

The pragma below stands in for a SLOTS_MANIFEST entry, so this fixture
exercises the rule without naming a real repro module.
"""
# detlint: slots-manifest[HotEvent, GoneClass]

from dataclasses import dataclass


@dataclass
class HotEvent:
    """Listed in the (pragma) manifest but slots=True is missing."""

    time: float
    kind: str


class ColdHelper:
    """Not listed — free to use __dict__."""

    def __init__(self):
        self.notes = []
