"""Wall-clock telemetry, the way the bench gate times host execution.

Scanned with this file's bare-stem module name, DET001 must fire: the
layer allowlist only exempts code that really lives under ``repro.obs``
(see ``tests/analysis/test_obs_layer.py``, which re-scans this very source
under the ``repro.obs.regress`` module name and expects silence).
"""

import time


def time_fresh_run(bench):
    start = time.perf_counter()
    bench()
    return time.perf_counter() - start


def stamp_report(payload):
    payload["created_unix"] = time.time()
    return payload
