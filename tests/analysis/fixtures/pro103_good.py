"""PRO103 clean: every manifest-listed class declares __slots__."""
# detlint: slots-manifest[HotEvent, HotEntry]

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class HotEvent:
    time: float
    kind: str


class HotEntry:
    __slots__ = ("key", "value")

    def __init__(self, key, value):
        self.key = key
        self.value = value
