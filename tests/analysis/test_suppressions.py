"""Inline suppression pragmas: line, file-level, and wildcard forms."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import run_rules
from repro.analysis.suppressions import FILE_PRAGMA_WINDOW, Suppressions

FIXTURES = Path(__file__).parent / "fixtures"


def test_suppressed_fixture_is_clean_but_counted():
    report = run_rules([FIXTURES / "suppressed.py"])
    assert report.ok
    assert report.new_findings == []
    # 1 DET003 (file pragma) + DET001 + DET002 (line pragmas) + 2 on the
    # wildcard line (DET001 and DET002 both fire there).
    assert report.suppressed_count == 5


def test_line_pragma_single_rule():
    sup = Suppressions("x = 1  # detlint: ignore[DET001]\ny = 2\n")
    assert sup.is_suppressed("DET001", 1)
    assert not sup.is_suppressed("DET002", 1)
    assert not sup.is_suppressed("DET001", 2)


def test_line_pragma_multiple_rules_and_wildcard():
    sup = Suppressions(
        "a = 1  # detlint: ignore[DET001, PRO103]\nb = 2  # detlint: ignore[*]\n"
    )
    assert sup.is_suppressed("DET001", 1)
    assert sup.is_suppressed("PRO103", 1)
    assert not sup.is_suppressed("DET002", 1)
    assert sup.is_suppressed("DET005", 2)
    assert sup.is_suppressed("PRO101", 2)


def test_file_pragma_applies_everywhere():
    text = "# detlint: ignore-file[DET003]\n" + "x = 1\n" * 50
    sup = Suppressions(text)
    assert sup.is_suppressed("DET003", 1)
    assert sup.is_suppressed("DET003", 51)
    assert not sup.is_suppressed("DET001", 51)


def test_file_pragma_only_honored_near_the_top():
    filler = "x = 1\n" * FILE_PRAGMA_WINDOW
    sup = Suppressions(filler + "# detlint: ignore-file[DET003]\n")
    assert not sup.is_suppressed("DET003", 1)


def test_pragma_requires_exact_marker():
    sup = Suppressions("x = 1  # ignore[DET001]\ny = 2  # detlint ignore[DET001]\n")
    assert not sup.is_suppressed("DET001", 1)
    assert not sup.is_suppressed("DET001", 2)
