"""Baseline file: round trip, partitioning, and malformed-input policy."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, save_baseline, split_by_baseline
from repro.analysis.engine import run_rules
from repro.analysis.findings import Finding
from repro.common.errors import ConfigError

FIXTURES = Path(__file__).parent / "fixtures"


def _finding(rule="DET001", path="a.py", line=3, snippet="x = time.time()"):
    return Finding(rule, path, line, 0, "wall clock", hint="use sim.now", snippet=snippet)


def test_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [_finding(), _finding(rule="DET004", snippet="os.environ")]
    assert save_baseline(path, findings) == 2
    assert load_baseline(path) == {f.baseline_key() for f in findings}


def test_save_dedupes_and_is_idempotent(tmp_path):
    path = tmp_path / "baseline.json"
    # Same (rule, path, snippet) at two line numbers: one baseline entry.
    assert save_baseline(path, [_finding(line=3), _finding(line=9)]) == 1
    first = path.read_text()
    save_baseline(path, [_finding(line=9), _finding(line=3)])
    assert path.read_text() == first  # order-insensitive, byte-stable


def test_missing_file_is_empty():
    assert load_baseline(Path("/nonexistent/.detlint-baseline.json")) == set()


@pytest.mark.parametrize(
    "content",
    ["not json {", '{"no_findings": []}', '{"findings": [{"rule": "DET001"}]}'],
)
def test_malformed_baseline_raises(tmp_path, content):
    path = tmp_path / "baseline.json"
    path.write_text(content)
    with pytest.raises(ConfigError):
        load_baseline(path)


def test_split_by_baseline_partitions_and_reports_stale():
    known = _finding()
    fresh = _finding(rule="DET002", snippet="random.random()")
    stale_key = ("PRO103", "gone.py", "class Gone:")
    baseline = {known.baseline_key(), stale_key}
    new, old, stale = split_by_baseline([known, fresh], baseline)
    assert new == [fresh]
    assert old == [known]
    assert stale == {stale_key}


def test_baselined_findings_do_not_gate(tmp_path):
    bad = FIXTURES / "det001_bad.py"
    first = run_rules([bad])
    assert not first.ok
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, first.new_findings)

    second = run_rules([bad], baseline=load_baseline(baseline_path))
    assert second.ok
    assert second.new_findings == []
    assert len(second.baselined_findings) == len(first.new_findings)
    assert second.stale_baseline == []


def test_baseline_snippet_keys_survive_line_drift(tmp_path):
    bad = FIXTURES / "det001_bad.py"
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, run_rules([bad]).new_findings)
    baseline = load_baseline(baseline_path)
    # Re-key against a copy with extra lines on top; only the path differs,
    # so rebuild the expected keys on the shifted copy's findings.
    shifted = tmp_path / "copy.py"
    shifted.write_text("# pushed down two lines\n\n" + bad.read_text())
    report = run_rules([shifted])
    shifted_keys = {(f.rule_id, f.snippet) for f in report.new_findings}
    original_keys = {(rule, snippet) for rule, _, snippet in baseline}
    assert shifted_keys == original_keys
