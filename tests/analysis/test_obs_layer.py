"""The repro.obs layer allowlist: the perf gate may read wall clock, the
trace/metrics core must stay DET-clean without needing the exemption."""

from pathlib import Path

import pytest

from repro.analysis.engine import run_rules
from repro.analysis.rules import ModuleSource, all_rules
from repro.analysis.rules.determinism import ENGINE_LAYERS, WallClockRule

FIXTURES = Path(__file__).parent / "fixtures"
SRC_OBS = Path(__file__).resolve().parents[2] / "src" / "repro" / "obs"

#: The dependency-free observability core — everything that must stick to
#: simulated-cycle timestamps (repro.obs.regress is the one exception).
OBS_CORE = ["__init__.py", "ring.py", "events.py", "spans.py", "hist.py", "registry.py"]


def _as_module(path: Path, module_name: str) -> ModuleSource:
    return ModuleSource(path, str(path), module_name, path.read_text())


def test_obs_is_on_the_wallclock_allowlist():
    assert any(
        layer == "repro.obs" or layer.startswith("repro.obs.")
        for layer in ENGINE_LAYERS
    )


def test_wallclock_fixture_trips_det001_outside_the_layer():
    # Fixture files resolve to bare-stem module names, so the allowlist
    # cannot shield them.
    report = run_rules([FIXTURES / "obs_wallclock_bad.py"])
    assert not report.ok
    assert {f.rule_id for f in report.new_findings} == {"DET001"}


def test_same_source_is_exempt_under_the_obs_module_name():
    module = _as_module(FIXTURES / "obs_wallclock_bad.py", "repro.obs.regress")
    assert list(WallClockRule().check(module)) == []


def test_exemption_does_not_leak_to_lookalike_names():
    for impostor in ("repro.observability", "repro.obsolete.timer"):
        module = _as_module(FIXTURES / "obs_wallclock_bad.py", impostor)
        assert list(WallClockRule().check(module)), impostor


def test_good_fixture_is_clean_even_without_the_layer():
    report = run_rules([FIXTURES / "obs_wallclock_good.py"])
    assert report.ok
    assert report.new_findings == []


@pytest.mark.parametrize("name", OBS_CORE)
def test_obs_core_is_det_clean_without_the_exemption(name):
    # Re-scan the real source under a bare module name: every rule applies,
    # no layer allowlist, no slots manifest.  The trace/metrics core must
    # hold up on its own merits.
    path = SRC_OBS / name
    module = _as_module(path, path.stem)
    findings = [f for rule in all_rules() for f in rule.check(module)]
    assert findings == [], [f.format_text() for f in findings]
