"""The ``repro lint`` command: exit codes, --json schema, baseline flags."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.findings import JSON_SCHEMA_VERSION
from repro.analysis.lint import main
from repro.analysis.rules import rule_ids

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "det001_bad.py"
GOOD = FIXTURES / "det001_good.py"


def test_clean_path_exits_zero(capsys):
    assert main([str(GOOD)]) == 0
    assert "detlint: OK" in capsys.readouterr().out


def test_bad_fixture_exits_one(capsys):
    assert main([str(BAD), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "detlint: FAILED" in out


def test_missing_path_exits_two(capsys):
    assert main(["/no/such/file.py"]) == 2
    assert "error:" in capsys.readouterr().err


def test_shipped_package_is_clean():
    assert main([]) == 0


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_json_schema_and_ordering(capsys):
    assert main([str(FIXTURES), "--no-baseline", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == JSON_SCHEMA_VERSION
    assert payload["ok"] is False
    assert set(payload["summary"]) == {
        "files_scanned",
        "rules_run",
        "new",
        "baselined",
        "suppressed",
        "stale_baseline",
        "parse_errors",
    }
    findings = payload["findings"]
    assert findings, "fixture scan must produce findings"
    assert set(findings[0]) == {"rule", "path", "line", "col", "message", "hint", "snippet"}
    keys = [(f["path"], f["line"], f["col"], f["rule"], f["message"]) for f in findings]
    assert keys == sorted(keys)
    assert payload["summary"]["new"] == len(findings)


def test_json_output_is_byte_stable(capsys):
    main([str(FIXTURES), "--no-baseline", "--json"])
    first = capsys.readouterr().out
    main([str(FIXTURES), "--no-baseline", "--json"])
    assert capsys.readouterr().out == first


def test_write_baseline_then_pass(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([str(BAD), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()
    # Grandfathered: same scan now passes, reporting the baselined findings.
    assert main([str(BAD), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "(baselined)" in out
    # --no-baseline restores the gate.
    assert main([str(BAD), "--baseline", str(baseline), "--no-baseline"]) == 1


def test_stale_baseline_entries_are_reported(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    main([str(BAD), "--baseline", str(baseline), "--write-baseline"])
    capsys.readouterr()
    assert main([str(GOOD), "--baseline", str(baseline)]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_wiring_via_python_m_repro():
    """`python -m repro lint` — the form CI and pre-commit invoke."""
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "detlint: OK" in result.stdout
