"""Text table/series rendering."""

from repro.analysis.tables import format_paper_comparison, format_series, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["b", 22.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 2")
        assert text.splitlines()[0] == "Table 2"

    def test_large_numbers_use_commas(self):
        text = format_table(["v"], [[1360.0]])
        assert "1,360" in text

    def test_nan_rendered(self):
        text = format_table(["v"], [[float("nan")]])
        assert "n/a" in text


class TestPaperComparison:
    def test_ratio_column(self):
        rows = {"senduipi": {"paper": 383.0, "measured": 396.0}}
        text = format_paper_comparison(rows, title="Table 2")
        assert "senduipi" in text
        assert "1.03" in text  # 396/383

    def test_multiple_rows(self):
        rows = {
            "a": {"paper": 100.0, "measured": 90.0},
            "b": {"paper": 2.0, "measured": 2.0},
        }
        text = format_paper_comparison(rows)
        assert text.count("\n") >= 3


class TestSeries:
    def test_grid_with_missing_points(self):
        series = {"flush": {1: 10.0, 2: 20.0}, "tracked": {2: 5.0}}
        text = format_series(series, x_label="nics", y_label="us")
        assert "flush (us)" in text
        assert "n/a" in text  # tracked missing at x=1

    def test_x_values_sorted(self):
        series = {"s": {3: 1.0, 1: 2.0, 2: 3.0}}
        lines = format_series(series, "x", "y").splitlines()
        xs = [line.split()[0] for line in lines[2:]]
        assert xs == ["1", "2", "3"]
