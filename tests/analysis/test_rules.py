"""Every detlint rule: one true-positive fixture, one clean twin.

The fixtures under ``fixtures/`` are scanned with the real engine, so these
tests cover file discovery, module-name mapping (fixtures get bare-stem
names and thus never match layer allowlists), rule dispatch, and ordering —
not just the rule visitors in isolation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import run_rules
from repro.analysis.rules import all_rules, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

ALL_RULE_IDS = (
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "PRO101",
    "PRO102",
    "PRO103",
    "PRO104",
    "STA201",
    "STA202",
    "STA203",
    "STA204",
    "STA205",
)


def scan(name: str):
    return run_rules([FIXTURES / name])


def test_registry_is_complete_and_ordered():
    assert rule_ids() == list(ALL_RULE_IDS)
    for rule in all_rules():
        assert rule.description, rule.rule_id
        assert rule.hint, rule.rule_id


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_bad_fixture_triggers_rule(rule_id):
    report = scan(f"{rule_id.lower()}_bad.py")
    assert not report.ok
    assert rule_id in {f.rule_id for f in report.new_findings}


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    report = scan(f"{rule_id.lower()}_good.py")
    assert report.ok
    assert report.new_findings == []
    assert report.suppressed_count == 0


def test_det001_flags_aliased_import():
    report = scan("det001_bad.py")
    messages = [f.message for f in report.new_findings]
    assert any("time.perf_counter" in m for m in messages)  # `pc` alias resolved
    assert any("datetime.datetime.now" in m for m in messages)


def test_det002_flags_literal_none_seed():
    report = scan("det002_bad.py")
    snippets = [f.snippet for f in report.new_findings if f.rule_id == "DET002"]
    assert any("random.Random(None)" in s for s in snippets)


def test_det005_bad_also_trips_unordered_iteration():
    # The histogram loop iterates set(samples) directly: DET003 and DET005
    # both apply, at the loop and the augmented assignment respectively.
    rules = {f.rule_id for f in scan("det005_bad.py").new_findings}
    assert {"DET003", "DET005"} <= rules


def test_pro101_names_the_missing_hooks():
    report = scan("pro101_bad.py")
    by_message = {f.message for f in report.new_findings}
    assert any("SilentStrategy" in m and "always_poll" in m for m in by_message)
    assert any(
        "HalfStrategy" in m and "next_activity_cycle" in m for m in by_message
    )
    # HalfStrategy *did* declare always_poll — only the override is missing.
    assert not any("HalfStrategy" in m and "always_poll" in m for m in by_message)


def test_pro102_flags_global_and_constant_writes():
    messages = [f.message for f in scan("pro102_bad.py").new_findings]
    assert any("rebinds global" in m for m in messages)
    assert any("EVENT_LOG" in m for m in messages)


def test_pro103_reports_missing_slots_and_stale_entry():
    report = scan("pro103_bad.py")
    messages = [f.message for f in report.new_findings]
    assert any("HotEvent" in m and "__slots__" in m for m in messages)
    assert any("GoneClass" in m and "stale" in m for m in messages)
    # The unlisted helper class is not the manifest's business.
    assert not any("ColdHelper" in m for m in messages)


def test_pro104_flags_clock_env_global_and_mutable_reads():
    report = scan("pro104_bad.py")
    messages = [f.message for f in report.new_findings]
    assert any("imports wall-clock/entropy source time" in m for m in messages)
    assert any("imports from wall-clock/entropy source random" in m for m in messages)
    assert any("os.environ" in m for m in messages)
    assert any("rebinds module global" in m and "_replay_cache" in m for m in messages)
    assert any(
        "reads mutable module global _replay_cache" in m for m in messages
    )
    # ALL_CAPS constants and local shadows stay clean (see the good twin).


def test_batchstep_shaped_fixture_flags_slots_and_purity():
    """The batch-stepper contract, end to end: a SoA lane scheduler must be
    slotted (PRO103) and its module simulation-pure (PRO104)."""
    report = scan("batchstep_bad.py")
    findings = report.new_findings
    assert any(
        f.rule_id == "PRO103" and "LaneScheduler" in f.message for f in findings
    )
    pro104 = [f.message for f in findings if f.rule_id == "PRO104"]
    assert any("imports wall-clock/entropy source time" in m for m in pro104)
    assert any("os.environ" in m for m in pro104)
    assert any("_lane_cache" in m for m in pro104)


def test_batchstep_shaped_fixture_clean_twin_passes():
    report = scan("batchstep_good.py")
    assert not any(
        f.rule_id in ("PRO103", "PRO104") for f in report.new_findings
    )


def test_pro104_only_applies_to_pure_modules():
    # No pragma, not in PURE_MODULES: the same sins go unflagged by PRO104.
    report = scan("pro102_bad.py")
    assert not any(f.rule_id == "PRO104" for f in report.new_findings)


def test_scenariocompile_shaped_fixture_flags_purity():
    """The scenario-compiler contract: a pure-module pragma'd compiler with
    ambient inputs trips PRO104 on every sin the real module must avoid."""
    report = scan("scenariocompile_bad.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "PRO104"]
    assert any("imports wall-clock/entropy source time" in m for m in messages)
    assert any("imports wall-clock/entropy source random" in m for m in messages)
    assert any("os.environ" in m for m in messages)
    assert any("_compile_cache" in m for m in messages)


def test_scenariocompile_shaped_fixture_clean_twin_passes():
    report = scan("scenariocompile_good.py")
    assert not any(f.rule_id == "PRO104" for f in report.new_findings)


def test_pure_modules_pin_the_scenario_compiler():
    from repro.analysis.rules.protocol import PURE_MODULES

    assert "repro.scenario.compile" in PURE_MODULES


def _det002_scan(module_name: str, text: str):
    from repro.analysis.rules import ModuleSource
    from repro.analysis.rules.determinism import UnseededRandomRule

    source = ModuleSource(
        FIXTURES / "in_memory.py", "in_memory.py", module_name, text
    )
    return list(UnseededRandomRule().check(source))


def test_det002_allows_seeded_rng_in_generator_modules():
    from repro.analysis.rules.determinism import SEEDED_RNG_MODULES

    assert "repro.scenario.generate" in SEEDED_RNG_MODULES
    text = "import random\nrng = random.Random(7)\n"
    for module in SEEDED_RNG_MODULES:
        assert _det002_scan(module, text) == []


def test_det002_contains_seeded_rng_to_generator_modules():
    # A seeded constructor in an arbitrary repro module is still a finding:
    # simulation code must draw through the generator modules.
    text = "import random\nrng = random.Random(7)\n"
    findings = _det002_scan("repro.cpu.core", text)
    assert len(findings) == 1
    assert "outside the seeded-RNG generator modules" in findings[0].message

    np_text = "import numpy as np\nrng = np.random.default_rng(7)\n"
    findings = _det002_scan("repro.faults.harness", np_text)
    assert len(findings) == 1
    assert "numpy.random.default_rng" in findings[0].message


def test_det002_containment_exempts_bare_stem_fixtures():
    # Files outside a repro package root keep seeded constructions legal
    # (det002_good.py relies on this via the real scanner too).
    text = "import random\nrng = random.Random(7)\n"
    assert _det002_scan("det002_good", text) == []


def test_real_scenario_modules_scan_clean():
    # The genuine generator + compiler files, scanned with their real
    # dotted names through the full engine: allowlisted and pure.
    repo_root = Path(__file__).resolve().parents[2]
    report = run_rules(
        [
            repo_root / "src" / "repro" / "scenario" / "generate.py",
            repo_root / "src" / "repro" / "scenario" / "compile.py",
        ]
    )
    assert report.ok
    assert report.new_findings == []


def test_sta201_names_the_uncovered_field():
    report = scan("sta201_bad.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "STA201"]
    assert any("spill_mask" in m and "MiniCore" in m for m in messages)
    # Covered fields stay out of the report.
    assert not any("fetch_pc" in m for m in messages)


def test_sta201_flags_stale_exemptions():
    # An exemption naming a field that no longer exists is itself a finding:
    # the manifest must shrink with the model.
    report = scan("sta201_stale_exempt.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "STA201"]
    assert any("stale exemption" in m and "gone_field" in m for m in messages)


def test_sta202_catches_note_skipped_regression_shape():
    """The PR-8 bug shape: deferred work parked in a field the activity
    surface (``next_activity_cycle``/``note_skipped``) never consults, so a
    multi-cycle skip can jump straight past a due wakeup."""
    report = scan("sta202_bad.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "STA202"]
    assert any("deferred_wakeups" in m and "LoopCore" in m for m in messages)
    # The heap itself is consulted by the horizon proof: not a finding.
    assert not any("ready_heap" in m for m in messages)


def test_sta202_catches_stale_lane_mirror():
    report = scan("sta202_bad.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "STA202"]
    assert any("rob_occ" in m and "lane_snapshot" in m for m in messages)
    # fetch_pc is refreshed through a subscript store — must stay clean.
    assert not any("fetch_pc" in m for m in messages)


def test_sta203_names_the_dropped_field_per_direction():
    report = scan("sta203_bad.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "STA203"]
    assert any("vector" in m and "to_json" in m for m in messages)
    assert any("vector" in m and "from_json" in m for m in messages)
    assert not any("period" in m for m in messages)


def test_sta204_message_names_module_and_class():
    report = scan("sta204_bad.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "STA204"]
    assert any("halted" in m and "ProbeCore" in m for m in messages)


def test_sta205_message_names_the_owner():
    report = scan("sta205_bad.py")
    messages = [f.message for f in report.new_findings if f.rule_id == "STA205"]
    assert any(
        "cycle" in m and "EngineCore" in m and "engine.cpu" in m
        for m in messages
    )


def test_sta205_write_grant_is_package_scoped():
    # The same granted write from a module *outside* the granted package is
    # still a finding: grants name interception points, not open season.
    report = scan("sta205_wrong_pkg.py")
    assert any(f.rule_id == "STA205" for f in report.new_findings)


def test_findings_are_totally_ordered():
    report = scan("det002_bad.py")
    keys = [f.sort_key() for f in report.new_findings]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)


def test_fixture_module_names_never_match_repro_layers():
    # det004_bad would be exempt if the fixture resolved into a config
    # layer; the bare-stem module name guarantees it does not.
    report = scan("det004_bad.py")
    assert any(f.rule_id == "DET004" for f in report.new_findings)
