"""The whole-program state model: extraction semantics, the derived slots
manifest, the schema-versioned JSON artifact, and its committed copy.

The golden-file tests pin two artifacts:

* ``fixtures/statemodel_golden.json`` — the model extracted from a fixed
  pair of fixture modules, byte-for-byte.  Catches accidental schema or
  ordering drift in the dump.
* ``STATEMODEL.json`` at the repo root — the model of the real engine.
  Catches engine-state changes that were not re-reviewed: regenerate with
  ``python -m repro lint --statemodel-out STATEMODEL.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import default_scan_root, run_rules
from repro.analysis.lint import main
from repro.analysis.rules import ModuleSource
from repro.analysis.statemodel import (
    STATE_CLASSES,
    STATE_SCHEMA_VERSION,
    derive_slots_manifest,
    extract_state_model,
    state_model_to_json,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_PAIR = [FIXTURES / "sta201_good.py", FIXTURES / "sta205_good.py"]


def _source(module: str, text: str) -> ModuleSource:
    return ModuleSource(FIXTURES / "in_memory.py", "in_memory.py", module, text)


# ---------------------------------------------------------------------------
# Extraction semantics


def test_mutability_classification():
    text = (
        "# detlint: state-class[Widget owner=engine.cpu]\n"
        "class Widget:\n"
        "    __slots__ = ('a', 'b', 'c', 'd')\n"
        "    def __init__(self):\n"
        "        self.a = 0\n"
        "        self.b = 0\n"
        "        self.c = []\n"
        "        self.d = 0\n"
        "    def tick(self):\n"
        "        self.b += 1\n"         # AugAssign outside __init__
        "        self.c[0] = 1\n"       # subscript store still writes c
        "    def _reset(self):\n"
        "        self.d = 0\n"          # plain rebind outside __init__
    )
    model = extract_state_model([_source("widget_mod", text)])
    (cls,) = model.classes
    assert cls.name == "Widget"
    by_name = {f.name: f.mutable for f in cls.fields}
    assert by_name == {"a": False, "b": True, "c": True, "d": True}


def test_external_write_marks_field_mutable_and_records_writer():
    decl = (
        "# detlint: state-class[Widget owner=engine.cpu]\n"
        "class Widget:\n"
        "    __slots__ = ('a',)\n"
        "    def __init__(self):\n"
        "        self.a = 0\n"
    )
    writer = "def poke(widget):\n    widget.a = 9\n"
    model = extract_state_model(
        [_source("widget_mod", decl), _source("poker_mod", writer)]
    )
    (cls,) = model.classes
    field = cls.field("a")
    assert field.mutable
    assert "poker_mod:2" in field.writers


def test_writes_to_local_nonmodel_classes_are_not_attributed():
    # A module's own helper class sharing a field name with a modeled class
    # must not pollute the model (the LintReport.program incident).
    decl = (
        "# detlint: state-class[Widget owner=engine.cpu]\n"
        "class Widget:\n"
        "    __slots__ = ('payload',)\n"
        "    def __init__(self):\n"
        "        self.payload = None\n"
    )
    other = (
        "class Report:\n"
        "    def __init__(self):\n"
        "        self.payload = None\n"
        "def fill(report):\n"
        "    report.payload = 1\n"
    )
    model = extract_state_model(
        [_source("widget_mod", decl), _source("report_mod", other)]
    )
    (cls,) = model.classes
    assert not cls.field("payload").mutable


# ---------------------------------------------------------------------------
# Derived slots manifest


def test_slots_manifest_is_derived_from_state_classes():
    from repro.analysis.rules.protocol import SLOTS_MANIFEST

    assert SLOTS_MANIFEST == derive_slots_manifest()


def test_slots_manifest_pins_hot_path_modules():
    manifest = derive_slots_manifest()
    assert "Core" in manifest["repro.cpu.core"]
    assert "BatchScheduler" in manifest["repro.cpu.batchstep"]
    # Every hot-path spec lands in the manifest, and nothing else does.
    hot = {(s.module, s.name) for s in STATE_CLASSES if s.hot_path}
    listed = {(m, n) for m, names in manifest.items() for n in names}
    assert listed == hot


def test_exactly_one_core_state_class():
    cores = [s for s in STATE_CLASSES if s.core_state]
    assert [(s.module, s.name) for s in cores] == [("repro.cpu.core", "Core")]


# ---------------------------------------------------------------------------
# JSON artifact


def test_json_dump_matches_golden_fixture():
    report = run_rules(GOLDEN_PAIR)
    text = state_model_to_json(report.program.state_model)
    golden = (FIXTURES / "statemodel_golden.json").read_text()
    assert text == golden


def test_json_dump_is_deterministic_and_schema_versioned():
    texts = []
    for _ in range(2):
        report = run_rules(GOLDEN_PAIR)
        texts.append(state_model_to_json(report.program.state_model))
    assert texts[0] == texts[1]
    assert texts[0].endswith("\n")
    payload = json.loads(texts[0])
    assert payload["schema"] == STATE_SCHEMA_VERSION == 1
    modules = [c["module"] for c in payload["classes"]]
    assert modules == sorted(modules)
    for cls in payload["classes"]:
        names = [f["name"] for f in cls["fields"]]
        assert names == sorted(names)


def test_committed_statemodel_matches_tree():
    report = run_rules([default_scan_root()])
    text = state_model_to_json(report.program.state_model)
    committed = (REPO_ROOT / "STATEMODEL.json").read_text()
    assert text == committed, (
        "STATEMODEL.json is stale — regenerate with "
        "`python -m repro lint --statemodel-out STATEMODEL.json` and review "
        "the diff"
    )


def test_real_tree_core_is_modeled():
    report = run_rules([default_scan_root()])
    model = report.program.state_model
    (core,) = model.core_classes()
    assert core.name == "Core" and core.module == "repro.cpu.core"
    assert core.field("cycle").mutable
    assert core.field("halted").mutable


# ---------------------------------------------------------------------------
# CLI


def test_statemodel_out_flag_writes_artifact(tmp_path, capsys):
    out = tmp_path / "model.json"
    assert main([str(p) for p in GOLDEN_PAIR] + ["--statemodel-out", str(out)]) == 0
    assert "wrote state model" in capsys.readouterr().err
    payload = json.loads(out.read_text())
    assert payload["schema"] == STATE_SCHEMA_VERSION
    assert {c["class"] for c in payload["classes"]} == {"MiniCore", "EngineCore"}
