"""xUI feature façade: safepoint mode, timer arming, forwarding setup."""

import pytest

from tests.conftest import COUNTER_ADDR, build_spin_receiver, build_count_to

from repro.common.errors import ConfigError, ProtocolError
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.xui import (
    arm_oneshot_timer,
    arm_periodic_timer,
    disable_safepoint_mode,
    enable_safepoint_mode,
    setup_device_forwarding,
)


class TestSafepointMode:
    def test_requires_tracking(self):
        system = MultiCoreSystem([build_spin_receiver()], [FlushStrategy()])
        with pytest.raises(ConfigError):
            enable_safepoint_mode(system.cores[0])

    def test_enable_disable(self):
        system = MultiCoreSystem([build_spin_receiver()], [TrackedStrategy()])
        core = system.cores[0]
        enable_safepoint_mode(core)
        assert core.uintr.safepoint_mode
        disable_safepoint_mode(core)
        assert not core.uintr.safepoint_mode


class TestTimerHelpers:
    def test_arm_periodic_delivers(self):
        system = MultiCoreSystem([build_count_to(30_000)], [TrackedStrategy()])
        arm_periodic_timer(system, 0, period_cycles=5000)
        system.run(2_000_000, until_halted=[0])
        assert system.cores[0].stats.interrupts_delivered >= 3

    def test_arm_periodic_validates_period(self):
        system = MultiCoreSystem([build_count_to(100)], [TrackedStrategy()])
        with pytest.raises(ConfigError):
            arm_periodic_timer(system, 0, period_cycles=0)

    def test_arm_oneshot_delivers_once(self):
        system = MultiCoreSystem([build_count_to(30_000)], [TrackedStrategy()])
        arm_oneshot_timer(system, 0, deadline_cycle=4000)
        system.run(2_000_000, until_halted=[0])
        assert system.cores[0].stats.interrupts_delivered == 1

    def test_arm_oneshot_past_deadline_rejected(self):
        system = MultiCoreSystem([build_count_to(100)], [TrackedStrategy()])
        system.run(50)
        with pytest.raises(ProtocolError):
            arm_oneshot_timer(system, 0, deadline_cycle=0)


class TestForwardingHelper:
    def test_device_interrupts_reach_handler(self):
        system = MultiCoreSystem([build_spin_receiver()], [TrackedStrategy()])
        setup_device_forwarding(system, 0, vector=40, user_vector=3)
        for i in range(4):
            system.raise_device_interrupt(0, 40, delay=1000 + 1500 * i)
        system.run(20_000)
        core = system.cores[0]
        assert core.stats.interrupts_delivered == 4
        assert system.shared.read(COUNTER_ADDR) == 4
        assert system.apics[0].forwarded_fast == 4

    def test_forwarded_device_cheaper_than_uipi(self):
        """Forwarded interrupts skip notification processing (§4.5): no
        UPID reads appear in the trace."""
        system = MultiCoreSystem([build_spin_receiver()], [TrackedStrategy()], trace=True)
        setup_device_forwarding(system, 0, vector=40, user_vector=3)
        system.raise_device_interrupt(0, 40, delay=500)
        system.run(10_000)
        assert system.cores[0].stats.interrupts_delivered == 1
        assert system.trace.first("notif_clear_on") is None  # no UPID path
        assert system.trace.first("delivery_done") is not None
