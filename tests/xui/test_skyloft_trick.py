"""The Skyloft UINV-overload trick (§7 "Hacking around UIPI limitations").

Skyloft gets timer interrupts at user level on *unmodified* UIPI hardware:

1. set UINV (the vector the core treats as a UIPI notification) to the
   local APIC timer's vector, so timer interrupts enter the user path;
2. set the SN bit in the thread's own UPID and ``senduipi`` to *itself* —
   with SN set, the PIR bit is posted but no IPI is sent;
3. when the APIC timer fires, notification processing finds the posted PIR
   and delivers; the handler repeats the self-senduipi before returning.

The paper lists the costs: the kernel loses its APIC timer, and all other
user-interrupt use is disabled.  These tests reproduce the trick and its
limitations on the cycle tier — the motivation for the KB timer (§4.3).
"""

import pytest

from tests.conftest import COUNTER_ADDR

from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.uintr.upid import UPID

APIC_TIMER_VECTOR = 0x20


def skyloft_program(iterations=40_000):
    """Work loop; the handler re-posts the self-UIPI before every uiret."""
    builder = ProgramBuilder("skyloft")
    builder.emit(isa.senduipi(0))  # initial self-post (SN set: PIR only)
    builder.emit(isa.movi(1, 0))
    builder.emit(isa.movi(2, iterations))
    builder.label("loop")
    builder.emit(isa.addi(1, 1, 1))
    builder.emit(isa.blt(1, 2, "loop"))
    builder.emit(isa.halt())
    # Custom handler: count, re-arm the PIR via self-senduipi, return.
    builder.label("handler")
    builder.handler("handler")
    builder.emit(isa.movi(12, COUNTER_ADDR))
    builder.emit(isa.load(11, 12, 0))
    builder.emit(isa.addi(11, 11, 1))
    builder.emit(isa.store(11, 12, 0))
    builder.emit(isa.senduipi(0))  # the per-interrupt re-post
    builder.emit(isa.uiret())
    return builder.build()


def build_skyloft_system(iterations=40_000, period=6000):
    system = MultiCoreSystem([skyloft_program(iterations)], [FlushStrategy()])
    core = system.cores[0]
    # Route the thread's senduipi index 0 at its *own* UPID.
    upid_addr = system.register_handler(0)
    system.register_sender(0, upid_addr, user_vector=1)
    upid = UPID(system.shared, upid_addr)
    # Step 1: overload UINV onto the APIC timer vector.
    core.apic.uipi_notification_vector = APIC_TIMER_VECTOR
    upid.set_notification_vector(APIC_TIMER_VECTOR)
    # Step 2: SN so the self-senduipi posts without notifying.
    upid.set_suppressed(True)
    # Arm the kernel's APIC timer.
    core.apic_timer.enabled = True
    core.apic_timer.vector = APIC_TIMER_VECTOR
    core.apic_timer.arm_periodic(period, now=0)
    return system, upid


class TestSkyloftTrick:
    def test_timer_interrupts_reach_user_handler(self):
        system, _ = build_skyloft_system()
        system.run(3_000_000, until_halted=[0])
        core = system.cores[0]
        assert core.halted
        expected = system.cycle // 6000
        assert core.stats.interrupts_delivered >= expected - 2
        assert system.shared.read(COUNTER_ADDR) == core.stats.interrupts_delivered

    def test_without_self_post_the_first_tick_is_lost(self):
        """Limitation: the PIR must be pre-posted; a timer tick that finds
        an empty PIR delivers a spurious vector-less interrupt."""
        builder = ProgramBuilder("no_post")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 20_000))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        system = MultiCoreSystem([builder.build()], [FlushStrategy()])
        core = system.cores[0]
        upid_addr = system.register_handler(0)
        upid = UPID(system.shared, upid_addr)
        core.apic.uipi_notification_vector = APIC_TIMER_VECTOR
        upid.set_notification_vector(APIC_TIMER_VECTOR)
        upid.set_suppressed(True)
        core.apic_timer.enabled = True
        core.apic_timer.vector = APIC_TIMER_VECTOR
        core.apic_timer.arm_periodic(6000, now=0)
        system.run(2_000_000, until_halted=[0])
        # Interrupts still fire (the handler runs) but the UIRR never held
        # a posted vector — the discriminating information is lost.
        assert core.uintr.uirr == 0

    def test_normal_apic_timer_goes_to_kernel(self):
        """Without the trick, APIC-timer ticks are kernel interrupts: the
        user handler never runs (this is the limitation xUI lifts)."""
        builder = ProgramBuilder("plain")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, 20_000))
        builder.label("loop")
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
        system = MultiCoreSystem([builder.build()], [FlushStrategy()])
        core = system.cores[0]
        system.register_handler(0)
        core.apic_timer.enabled = True
        core.apic_timer.vector = APIC_TIMER_VECTOR  # UINV untouched (0xEC)
        core.apic_timer.arm_periodic(5000, now=0)
        system.run(2_000_000, until_halted=[0])
        assert core.stats.interrupts_delivered == 0
        assert len(core.apic.kernel_queue) > 0

    def test_trick_disables_other_uipis(self):
        """Limitation: with SN permanently set, a remote sender's UIPIs are
        posted but never notified — regular user IPIs stop working."""
        system, upid = build_skyloft_system(iterations=30_000)
        # A second core tries to send a normal UIPI at the Skyloft thread.
        sender = ProgramBuilder("remote")
        sender.emit(isa.senduipi(0))
        sender.emit(isa.halt())
        system2 = MultiCoreSystem(
            [skyloft_program(30_000), sender.build()], [FlushStrategy(), FlushStrategy()]
        )
        core = system2.cores[0]
        upid_addr = system2.register_handler(0)
        system2.register_sender(0, upid_addr, user_vector=1)  # self route
        system2.register_sender(1, upid_addr, user_vector=2)  # remote route
        upid2 = UPID(system2.shared, upid_addr)
        core.apic.uipi_notification_vector = APIC_TIMER_VECTOR
        upid2.set_notification_vector(APIC_TIMER_VECTOR)
        upid2.set_suppressed(True)
        system2.run(400_000, until_halted=[0, 1])
        # The remote vector was posted into the PIR but no IPI was sent.
        assert system2.apics[0].accepted == 0
