"""Calibration: the cycle tier reproduces the paper's measured constants.

Bands are deliberately loose (the model is not the silicon) but tight enough
that a regression in the microcode or pipeline timing trips them.
"""

import pytest

from repro.experiments import characterize as ch


@pytest.fixture(scope="module")
def timeline():
    return ch.run_fig2_timeline()


class TestFig2Timeline:
    def test_send_to_interrupt_near_380(self, timeline):
        assert 250 <= timeline["send_to_interrupt"] <= 500

    def test_gap_to_first_notif_event_near_424(self, timeline):
        assert 300 <= timeline["interrupt_to_first_notif_event"] <= 560

    def test_notification_and_delivery_order_of_262(self, timeline):
        assert 120 <= timeline["notification_and_delivery"] <= 400

    def test_uiret_near_10(self, timeline):
        assert 2 <= timeline["uiret"] <= 30

    def test_end_to_end_order_of_1360(self, timeline):
        assert 700 <= timeline["end_to_end"] <= 1800

    def test_ordering_of_events(self, timeline):
        assert timeline["icr_write_offset"] < timeline["send_to_interrupt"]
        assert timeline["handler_entry_offset"] < timeline["deliver_done_offset"]


class TestSenderCosts:
    def test_senduipi_near_383(self):
        cost = ch.measure_senduipi_cost(count=30)
        assert cost == pytest.approx(383, rel=0.15)

    def test_clui_stui_costs(self):
        clui = ch._unit_cost_loop(__import__("repro.cpu.isa", fromlist=["isa"]).clui, 60)
        stui = ch._unit_cost_loop(__import__("repro.cpu.isa", fromlist=["isa"]).stui, 60)
        assert clui <= 4  # paper: 2 cycles
        assert 20 <= stui <= 45  # paper: 32 cycles


class TestSection35:
    def test_flush_latency_independent_of_footprint(self):
        results = ch.run_flush_vs_drain(footprints_kb=[16, 256], samples=3)
        flush = results["flush"]
        assert max(flush.values()) - min(flush.values()) <= 0.25 * max(flush.values())

    def test_drain_latency_grows_with_footprint(self):
        results = ch.run_flush_vs_drain(footprints_kb=[16, 256], samples=3)
        drain = results["drain"]
        assert drain[256] > drain[16]
        # And drain is far slower than flush on big footprints.
        assert drain[256] > results["flush"][256] * 3

    def test_flushed_uops_linear_in_interrupts(self):
        results = ch.run_flushed_uops_linearity(interrupt_counts=[2, 4])
        counts = sorted(results)
        assert len(counts) >= 2
        per_interrupt = [results[c] / c for c in counts]
        assert per_interrupt[0] == pytest.approx(per_interrupt[-1], rel=0.2)
        assert per_interrupt[0] > 50  # flushing throws away real work


class TestMaxLatency:
    def test_tracking_pathological_case(self):
        results = ch.run_max_latency(chain_lengths=[50], interval=8000)
        tracked = results["tracked"][50]
        flush = results["flush"][50]
        # Paper: ~7000 cycles worst case for tracking; flush an order of
        # magnitude less (§6.1).
        assert tracked > 4000
        assert flush < tracked / 5

    def test_latency_scales_with_chain_length(self):
        results = ch.run_max_latency(chain_lengths=[10, 50], interval=8000)
        assert results["tracked"][50] > results["tracked"][10] * 2
