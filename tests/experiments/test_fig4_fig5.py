"""Figure 4 and Figure 5 runners at reduced scale: shape assertions."""

import pytest

from repro.apps import microbench as mb
from repro.experiments import cycletier
from repro.experiments.fig4_overheads import (
    CONFIGURATIONS,
    run_configuration,
    run_fig4,
    summarize_per_event,
)
from repro.experiments.fig5_safepoints import run_fig5


@pytest.fixture(scope="module")
def fig4_results():
    # One benchmark at reduced scale keeps this affordable in CI.
    benchmarks = {"count": lambda: mb.make_count_loop(14_000)}
    return run_fig4(benchmarks=benchmarks)


class TestFig4:
    def test_all_configurations_present(self, fig4_results):
        assert set(fig4_results["count"]) == set(CONFIGURATIONS)

    def test_per_event_ordering_matches_paper(self, fig4_results):
        cells = fig4_results["count"]
        flush = cells["uipi_sw_timer"]["per_event_cycles"]
        tracked = cells["xui_sw_timer_tracking"]["per_event_cycles"]
        kb = cells["xui_kb_timer_tracking"]["per_event_cycles"]
        assert flush > tracked > kb  # 645 > 231 > 105

    def test_per_event_magnitudes_in_band(self, fig4_results):
        cells = fig4_results["count"]
        assert 400 <= cells["uipi_sw_timer"]["per_event_cycles"] <= 900
        assert 140 <= cells["xui_sw_timer_tracking"]["per_event_cycles"] <= 350
        assert 50 <= cells["xui_kb_timer_tracking"]["per_event_cycles"] <= 180

    def test_headline_ratio_roughly_6_9x(self, fig4_results):
        cells = fig4_results["count"]
        ratio = (
            cells["uipi_sw_timer"]["per_event_cycles"]
            / cells["xui_kb_timer_tracking"]["per_event_cycles"]
        )
        assert 3.5 <= ratio <= 12.0

    def test_overhead_percent_consistent(self, fig4_results):
        cells = fig4_results["count"]
        for name, cell in cells.items():
            expected = 100.0 * cell["per_event_cycles"] * cell["interrupts"] / cell["baseline_cycles"]
            assert cell["overhead_percent"] == pytest.approx(expected, rel=0.01)

    def test_summarize_averages(self, fig4_results):
        summary = summarize_per_event(fig4_results)
        assert set(summary) == set(CONFIGURATIONS)

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            run_configuration(lambda: mb.make_count_loop(1000), "bogus")


class TestFig5:
    @pytest.fixture(scope="class")
    def results(self):
        programs = {
            "base64": lambda instrument=None: mb.make_base64(
                iterations=2500, instrument=instrument
            )
        }
        return run_fig5(quanta=[10_000], programs=programs)

    def test_safepoints_cheapest(self, results):
        row = results["base64"]
        assert row["hw_safepoints"][10_000] < row["uipi"][10_000]
        assert row["hw_safepoints"][10_000] < row["polling"][10_000]

    def test_safepoint_overhead_near_paper_band(self, results):
        # Paper: 1.2-1.5% at 5 us.
        assert results["base64"]["hw_safepoints"][10_000] <= 3.5

    def test_polling_significantly_more_expensive(self, results):
        row = results["base64"]
        assert row["polling"][10_000] >= 3 * row["hw_safepoints"][10_000]
