"""Figures 6-9 runners at reduced scale: the paper's shapes hold."""

import pytest

from repro.experiments.fig6_timer_cost import (
    kb_timer_core_savings,
    run_fig6,
    timer_core_utilization,
)
from repro.experiments.fig7_rocksdb import max_throughput_under_slo, run_fig7, run_point
from repro.experiments.fig8_l3fwd import run_point as fig8_point
from repro.experiments.fig9_dsa import run_point as fig9_point
from repro.notify.mechanisms import Mechanism


class TestFig6:
    def test_xui_needs_no_timer_core(self):
        assert timer_core_utilization("xui_kb_timer", 8, 10_000.0) == 0.0

    def test_os_interfaces_grow_with_receivers(self):
        few = timer_core_utilization("setitimer", 1, 10_000.0)
        many = timer_core_utilization("setitimer", 16, 10_000.0)
        assert many > few

    def test_os_interfaces_grow_with_rate(self):
        slow = timer_core_utilization("setitimer", 4, 2_000_000.0)  # 1 ms
        fast = timer_core_utilization("setitimer", 4, 10_000.0)  # 5 us
        assert fast > slow * 5

    def test_setitimer_costs_more_than_nanosleep(self):
        signal = timer_core_utilization("setitimer", 4, 50_000.0)
        sleep = timer_core_utilization("nanosleep", 4, 50_000.0)
        assert signal > sleep

    def test_rdtsc_spin_burns_whole_core(self):
        assert timer_core_utilization("rdtsc_spin", 1, 10_000.0) == pytest.approx(1.0)

    def test_saturation_at_fine_intervals(self):
        # setitimer per-event cost exceeds a 5 us interval per §2.
        assert timer_core_utilization("setitimer", 22, 10_000.0) == 1.0

    def test_grid_runner_shape(self):
        grid = run_fig6(core_counts=[1, 4], intervals=[10_000.0, 200_000.0])
        assert set(grid) == {"setitimer", "nanosleep", "rdtsc_spin", "xui_kb_timer"}
        assert set(grid["setitimer"]) == {10_000.0, 200_000.0}

    def test_capacity_arithmetic_matches_paper(self):
        """§6.1: ~22 workers per spin core at 5 us; 1-in-22 is ~4.5%."""
        savings = kb_timer_core_savings(22, 10_000.0)
        assert savings["workers_per_timer_core"] == 22
        assert savings["timer_cores_needed"] == 1
        assert savings["throughput_gain_fraction"] == pytest.approx(1 / 22)

    def test_unknown_interface_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            timer_core_utilization("sundial", 1, 10_000.0)


class TestFig7:
    @pytest.fixture(scope="class")
    def points(self):
        return {
            cfg: run_point(cfg, 100_000, duration_seconds=0.03)
            for cfg in ("no_preempt", "uipi", "xui")
        }

    def test_no_preempt_has_terrible_get_tail(self, points):
        # Hundreds of microseconds even at moderate load (§6.2.1).
        assert points["no_preempt"].get_p999_us > 300

    def test_preemption_rescues_get_tail(self, points):
        assert points["uipi"].get_p999_us < 100
        assert points["xui"].get_p999_us < 100

    def test_xui_tail_no_worse_than_uipi(self, points):
        assert points["xui"].get_p999_us <= points["uipi"].get_p999_us * 1.1

    def test_scan_tail_elevated_by_preemption(self, points):
        assert points["xui"].scan_p999_us > points["no_preempt"].scan_p999_us * 0.8

    def test_uipi_burns_a_timer_core(self, points):
        assert points["uipi"].timer_core_busy_fraction == pytest.approx(1.0, abs=0.05)
        assert points["xui"].timer_core_busy_fraction == 0.0

    def test_throughput_tracks_offered_below_saturation(self, points):
        for point in points.values():
            assert point.achieved_rps == pytest.approx(100_000, rel=0.05)

    def test_slo_helper(self, points):
        assert max_throughput_under_slo([points["xui"]], slo_us=1000.0) > 0
        assert max_throughput_under_slo([points["no_preempt"]], slo_us=100.0) == 0.0


class TestFig7MultiWorker:
    def test_scaling_to_four_workers(self):
        """The work-stealing runtime scales the sustainable load ~linearly
        (the multi-core variant the paper's Aspen supports, §5.3)."""
        single = run_point("xui", 200_000, duration_seconds=0.02, num_workers=1)
        quad = run_point("xui", 700_000, duration_seconds=0.02, num_workers=4)
        assert quad.achieved_rps == pytest.approx(700_000, rel=0.08)
        assert quad.get_p999_us < 200
        assert single.achieved_rps == pytest.approx(200_000, rel=0.08)

    def test_uipi_timer_core_capacity_shared(self):
        """One UIPI timer core serves several workers (within the §6.1 cap)."""
        point = run_point("uipi", 500_000, duration_seconds=0.02, num_workers=4)
        assert point.achieved_rps == pytest.approx(500_000, rel=0.08)
        assert point.timer_core_busy_fraction == pytest.approx(1.0, abs=0.05)


class TestFig8:
    def test_polling_never_free(self):
        point = fig8_point(Mechanism.POLLING, 1, 0.4, duration_seconds=0.004)
        assert point.free_fraction == 0.0

    def test_xui_free_at_zero_load_is_total(self):
        point = fig8_point(Mechanism.XUI_DEVICE, 1, 0.0, duration_seconds=0.004)
        assert point.free_fraction == 1.0

    def test_paper_anchor_45_percent_free_at_40_load(self):
        point = fig8_point(Mechanism.XUI_DEVICE, 1, 0.4, duration_seconds=0.01)
        assert 0.35 <= point.free_fraction <= 0.58

    def test_throughput_parity_with_polling(self):
        poll = fig8_point(Mechanism.POLLING, 1, 0.6, duration_seconds=0.01)
        xui = fig8_point(Mechanism.XUI_DEVICE, 1, 0.6, duration_seconds=0.01)
        assert xui.achieved_pps == pytest.approx(poll.achieved_pps, rel=0.02)

    def test_functional_lpm_routes_packets(self):
        """With use_lpm the router actually consults the 16k-route trie."""
        point = fig8_point(
            Mechanism.XUI_DEVICE, 1, 0.3, duration_seconds=0.002, use_lpm=True
        )
        assert point.achieved_pps > 0

    def test_more_nics_cost_more_interrupt_overhead(self):
        one = fig8_point(Mechanism.XUI_DEVICE, 1, 0.4, duration_seconds=0.008)
        eight = fig8_point(Mechanism.XUI_DEVICE, 8, 0.4, duration_seconds=0.008)
        assert eight.p95_latency_us > one.p95_latency_us


class TestFig9:
    def test_busy_spin_minimizes_latency_burns_core(self):
        point = fig9_point("busy_spin", 20.0, 0.0, duration_seconds=0.005)
        assert point.free_fraction == 0.0
        assert point.mean_notification_lag_us < 0.1

    def test_xui_lag_constant_under_noise(self):
        quiet = fig9_point("xui", 20.0, 0.0, duration_seconds=0.005)
        noisy = fig9_point("xui", 20.0, 1.0, duration_seconds=0.005)
        assert abs(noisy.mean_notification_lag_us - quiet.mean_notification_lag_us) < 0.05
        # Within ~0.2 us of busy-spin (§6.2.3).
        assert noisy.mean_notification_lag_us <= 0.2

    def test_periodic_poll_degrades_with_noise_for_long_requests(self):
        quiet = fig9_point("periodic_poll", 20.0, 0.0, duration_seconds=0.005)
        noisy = fig9_point("periodic_poll", 20.0, 1.0, duration_seconds=0.005)
        assert noisy.mean_notification_lag_us > quiet.mean_notification_lag_us + 1.0

    def test_xui_frees_most_of_the_core(self):
        short = fig9_point("xui", 2.0, 0.0, duration_seconds=0.005)
        long = fig9_point("xui", 20.0, 0.0, duration_seconds=0.005)
        assert short.free_fraction >= 0.7  # paper: ~75% for 2 us requests
        assert long.free_fraction >= 0.9

    def test_50k_ipos_anchor(self):
        """§6.2.3: at 50K IOPS (20 us requests) xUI keeps spin-level
        responsiveness with negligible CPU use."""
        point = fig9_point("xui", 20.0, 0.0, duration_seconds=0.01)
        assert point.ipos == pytest.approx(48_000, rel=0.08)
        assert point.free_fraction > 0.9
