"""The fault-matrix suite: fault plan x delivery strategy x engine.

The acceptance bar from the robustness issue: at least 3 fault kinds x the
three delivery strategies x both engines, with byte-identical simulated
stats between the naive stepper and the cycle-skipping engine, and the
invariant checker holding throughout.  ``drop_send`` exercises the message
interceptor, ``timer_drift`` the timeline-scheduled KB-timer faults, and
``misspec_storm`` predictor scrambling (the tracked re-injection stressor);
the remaining kinds are covered by the broader ``repro faultsweep`` CLI.
"""

import pytest

from repro.faults import plan_for_kind, run_fault_cell
from repro.faults.harness import STRATEGIES, simulated_view

MATRIX_KINDS = ("drop_send", "timer_drift", "misspec_storm")

CELLS = [
    pytest.param(kind, strategy, id=f"{kind}-{strategy}")
    for kind in MATRIX_KINDS
    for strategy in STRATEGIES
]


@pytest.mark.parametrize("kind,strategy", CELLS)
def test_engines_agree_under_faults(kind, strategy):
    plan = plan_for_kind(kind, seed=0, count=2, horizon=3_000)
    naive = run_fault_cell(plan, strategy, engine="naive")
    fast = run_fault_cell(plan, strategy, engine="fast")
    assert simulated_view(fast) == simulated_view(naive)
    # The cell is not vacuous: the plan actually did something.
    assert sum(fast["faults"].values()) > 0
    assert fast["accounting"] == naive["accounting"]


def test_dropped_sends_accounted_as_dropped():
    plan = plan_for_kind("drop_send", seed=0, count=2, horizon=3_000)
    result = run_fault_cell(plan, "flush", engine="fast")
    assert result["faults"]["dropped"] == 2
    # The drops are visible in the conservation audit (never queued), and
    # conservation holds for everything that *was* queued.
    acct = result["accounting"]
    assert acct["dropped"] == 2
    assert acct["queued"] == (
        acct["delivered"] + acct["waiting"] + acct["staged"] + acct["inflight"]
    )


def test_duplicated_sends_increase_queued():
    plan = plan_for_kind("dup_send", seed=0, count=2, horizon=3_000)
    result = run_fault_cell(plan, "flush", engine="fast")
    assert result["faults"]["duplicated"] == 2
    # Conservation held with the duplicates included.
    acct = result["accounting"]
    assert acct["queued"] == (
        acct["delivered"] + acct["waiting"] + acct["staged"] + acct["inflight"]
    )


def test_delayed_sends_are_redelivered():
    plan = plan_for_kind("delay_send", seed=0, count=2, horizon=3_000)
    result = run_fault_cell(plan, "drain", engine="fast")
    assert result["faults"]["delayed"] >= 1
    assert result["faults"]["redelivered"] == result["faults"]["delayed"]


def test_fault_cell_rejects_ctx_switch_in_cycle_tier():
    from repro.common.errors import ConfigError
    from repro.faults.plan import Fault, FaultPlan

    plan = FaultPlan(seed=0, faults=(Fault(kind="ctx_switch", at=100, delay=10),))
    with pytest.raises(ConfigError):
        run_fault_cell(plan, "flush", engine="fast")


def test_same_plan_same_results():
    """A fixed seed reproduces byte-identically — the replay guarantee."""
    plan = plan_for_kind("spurious_uintr", seed=123, count=2, horizon=3_000)
    a = run_fault_cell(plan, "tracked", engine="fast")
    b = run_fault_cell(plan, "tracked", engine="fast")
    assert simulated_view(a) == simulated_view(b)
    assert a["accounting"] == b["accounting"]
