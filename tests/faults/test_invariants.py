"""Invariant checker: clean runs pass, induced violations replay exactly."""

import pytest

from repro.common.errors import InvariantViolation
from repro.faults import FaultPlan, plan_for_kind
from repro.faults.harness import build_cell, run_fault_cell


class TestCleanRuns:
    def test_unfaulted_run_passes_all_checks(self):
        plan = FaultPlan(seed=0)  # empty schedule: injector is a no-op
        result = run_fault_cell(plan, "flush", engine="fast")
        acct = result["accounting"]
        assert acct["checks_run"] > 0
        assert acct["probes_fired"] > 0
        assert acct["queued"] == acct["delivered"] + acct["waiting"] + acct[
            "staged"
        ] + acct["inflight"]

    def test_checker_is_invisible_to_simulation(self):
        """A checked run produces byte-identical results to an unchecked
        one — probes only read."""
        plan = plan_for_kind("dup_send", seed=4, count=2, horizon=3_000)
        checked = run_fault_cell(plan, "tracked", engine="fast")
        unchecked = run_fault_cell(
            plan, "tracked", engine="fast", check_invariants=False
        )
        for key in ("cycles", "stats", "trace"):
            assert checked[key] == unchecked[key]
        assert unchecked["accounting"] is None

    def test_double_install_rejected(self):
        plan = FaultPlan(seed=0)
        system, _injector, checker = build_cell(plan, "flush")
        with pytest.raises(InvariantViolation):
            checker.install(system)


def _violate_conservation(plan):
    """Run a cell whose pending queue is corrupted behind the APIC's back —
    a genuine conservation violation the checker must catch."""
    system, _injector, checker = build_cell(plan, "drain")

    def vandalise() -> None:
        # Discard any queued interrupt without going through take():
        # accounting says it was queued, nobody delivered or holds it.
        system.cores[0].apic._pending.clear()

    # Late enough that something is usually in flight; harmless if empty —
    # the guaranteed violation comes from a direct phantom-queue bump below.
    system.schedule(500, vandalise)
    system.cores[0].apic.user_queued += 1  # a queued interrupt that never existed
    system.run(200_000, until_halted=[0])
    checker.finish(system)


class TestInducedViolations:
    def test_conservation_violation_raises(self):
        plan = plan_for_kind("drop_send", seed=7, count=2, horizon=3_000)
        with pytest.raises(InvariantViolation) as excinfo:
            _violate_conservation(plan)
        assert "conservation" in str(excinfo.value)

    def test_violation_carries_replayable_plan(self):
        plan = plan_for_kind("drop_send", seed=7, count=2, horizon=3_000)
        with pytest.raises(InvariantViolation) as excinfo:
            _violate_conservation(plan)
        dump = excinfo.value.plan_dump
        assert dump is not None
        assert FaultPlan.loads(dump) == plan
        assert dump in str(excinfo.value)

    def test_violation_reproduces_byte_identically(self):
        """Two runs from the same seed fail with identical messages, and the
        dumped plan rebuilds the exact schedule — the replay guarantee."""
        plan = plan_for_kind("drop_send", seed=7, count=2, horizon=3_000)
        messages = []
        for _ in range(2):
            with pytest.raises(InvariantViolation) as excinfo:
                _violate_conservation(plan)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        replayed = FaultPlan.loads(excinfo.value.plan_dump)
        with pytest.raises(InvariantViolation) as excinfo2:
            _violate_conservation(replayed)
        assert str(excinfo2.value) == messages[0]

    def test_uiret_state_violation_detected(self):
        """Force a uiret probe with no delivery in flight."""
        plan = FaultPlan(seed=0)
        system, _injector, checker = build_cell(plan, "flush")
        core = system.cores[0]
        with pytest.raises(InvariantViolation) as excinfo:
            checker.probe("uiret", core)
        assert "uiret" in str(excinfo.value)

    def test_clock_monotonicity_violation_detected(self):
        plan = FaultPlan(seed=0)
        system, _injector, checker = build_cell(plan, "flush")
        core = system.cores[0]
        core.cycle = 100
        checker.probe("flush", core)  # empty ROB: passes, records cycle=100
        core.cycle = 50
        with pytest.raises(InvariantViolation) as excinfo:
            checker.probe("flush", core)
        assert "backwards" in str(excinfo.value)

    def test_rob_consistency_violation_detected(self):
        plan = FaultPlan(seed=0)
        system, _injector, checker = build_cell(plan, "flush")
        core = system.cores[0]
        core.iq_count = 5  # phantom issue-queue entries with an empty ROB
        with pytest.raises(InvariantViolation) as excinfo:
            checker.probe("squash", core)
        assert "census" in str(excinfo.value)


class TestSafepointInvariant:
    def test_safepoint_mode_injection_checked(self):
        """In safepoint mode a tracked injection at a non-safepoint PC is a
        violation; the checker sees it at the inject probe."""
        plan = FaultPlan(seed=0)
        system, _injector, checker = build_cell(
            plan, "tracked", safepoint=True
        )
        core = system.cores[0]
        # Fabricate an in-flight delivery resumed at pc=0 (no safepoint
        # prefix in the count-loop workload).
        from repro.uintr.apic import InterruptKind, PendingInterrupt

        core.delivery_state = "inflight"
        core.current_interrupt = PendingInterrupt(2, InterruptKind.TIMER, 0.0)
        core.uintr.ui_return_pc = 0
        with pytest.raises(InvariantViolation) as excinfo:
            checker.probe("inject", core)
        assert "safepoint" in str(excinfo.value)
