"""FaultPlan determinism and byte-stable serialisation."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.faults.plan import (
    CYCLE_TIER_KINDS,
    FAULT_KINDS,
    MAX_CYCLE_VALUE,
    Fault,
    FaultPlan,
    merge_plans,
    plan_for_kind,
)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Fault(kind="cosmic_ray")

    def test_negative_fields_rejected(self):
        with pytest.raises(ConfigError):
            Fault(kind="upid_stall", at=-1)
        with pytest.raises(ConfigError):
            Fault(kind="upid_stall", core=-1)

    def test_message_fault_needs_index(self):
        with pytest.raises(ConfigError):
            Fault(kind="drop_send", index=0)

    def test_delay_kinds_need_positive_delay(self):
        with pytest.raises(ConfigError):
            Fault(kind="delay_send", index=1, delay=0)
        with pytest.raises(ConfigError):
            Fault(kind="timer_drift", at=10, delay=0)

    def test_valid_faults_construct(self):
        Fault(kind="drop_send", index=1)
        Fault(kind="timer_drift", at=100, delay=50)
        Fault(kind="ctx_switch", at=100)


class TestSeededDeterminism:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(7, cores=2, horizon=50_000, count=16)
        b = FaultPlan.random(7, cores=2, horizon=50_000, count=16)
        assert a == b
        assert a.dumps() == b.dumps()

    def test_different_seeds_differ(self):
        a = FaultPlan.random(1, count=16)
        b = FaultPlan.random(2, count=16)
        assert a != b

    def test_random_respects_kind_filter(self):
        plan = FaultPlan.random(3, count=32, kinds=("drop_send", "upid_stall"))
        assert set(plan.kinds()) <= {"drop_send", "upid_stall"}

    def test_random_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            FaultPlan.random(0, kinds=("bit_rot",))

    def test_plan_for_kind_deterministic(self):
        for kind in FAULT_KINDS:
            assert plan_for_kind(kind, seed=5) == plan_for_kind(kind, seed=5)
            assert all(f.kind == kind for f in plan_for_kind(kind, seed=5).faults)

    def test_plan_for_kind_unique_message_indices(self):
        plan = plan_for_kind("drop_send", seed=11, count=6)
        indices = [f.index for f in plan.faults]
        assert len(indices) == len(set(indices))


class TestSerialisation:
    def test_round_trip_identity(self):
        plan = FaultPlan.random(42, cores=4, count=20, kinds=FAULT_KINDS)
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_dumps_byte_stable(self):
        plan = FaultPlan.random(9, count=12)
        dump = plan.dumps()
        assert dump == FaultPlan.loads(dump).dumps()
        # Canonical JSON: sorted keys, compact separators.
        assert " " not in dump
        assert json.loads(dump)["seed"] == 9

    def test_hand_built_plan_round_trips(self):
        plan = FaultPlan(
            seed=0,
            faults=(
                Fault(kind="drop_send", core=1, index=3),
                Fault(kind="timer_drift", at=500, delay=99),
            ),
        )
        assert FaultPlan.loads(plan.dumps()) == plan


class TestStrictRoundTrip:
    """Construction-time validation parity with the scenario DSL: a plan
    JSON that drifted (extra keys, absurd cycle values, wrong shapes) fails
    loudly at load, never deep inside a replay."""

    def _dump(self, **overrides):
        plan = FaultPlan(seed=3, faults=(Fault(kind="upid_stall", at=10),))
        obj = json.loads(plan.dumps())
        obj.update(overrides)
        return json.dumps(obj)

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            FaultPlan.loads(self._dump(flavor="extra"))

    def test_unknown_fault_key_rejected(self):
        obj = json.loads(self._dump())
        obj["faults"][0]["oops"] = 1
        with pytest.raises(ConfigError, match="unknown"):
            FaultPlan.loads(json.dumps(obj))

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.loads(json.dumps({"seed": 1}))
        with pytest.raises(ConfigError):
            FaultPlan.loads(json.dumps({"faults": []}))

    def test_faults_must_be_a_list(self):
        with pytest.raises(ConfigError):
            FaultPlan.loads(json.dumps({"seed": 1, "faults": {"0": {}}}))

    def test_malformed_json_raises_config_error(self):
        with pytest.raises(ConfigError):
            FaultPlan.loads("{not json")

    def test_out_of_range_cycle_values_rejected(self):
        obj = json.loads(self._dump())
        obj["faults"][0]["at"] = MAX_CYCLE_VALUE + 1
        with pytest.raises(ConfigError):
            FaultPlan.loads(json.dumps(obj))
        with pytest.raises(ConfigError):
            Fault(kind="upid_stall", at=MAX_CYCLE_VALUE + 1)
        # The boundary itself is legal.
        Fault(kind="upid_stall", at=MAX_CYCLE_VALUE)

    def test_bool_and_non_int_fields_rejected(self):
        obj = json.loads(self._dump())
        obj["faults"][0]["at"] = True
        with pytest.raises(ConfigError):
            FaultPlan.loads(json.dumps(obj))
        obj["faults"][0]["at"] = "10"
        with pytest.raises(ConfigError):
            FaultPlan.loads(json.dumps(obj))

    def test_fault_kind_must_be_string(self):
        obj = json.loads(self._dump())
        obj["faults"][0]["kind"] = 7
        with pytest.raises(ConfigError):
            FaultPlan.loads(json.dumps(obj))


class TestHelpers:
    def test_for_core_filters(self):
        plan = FaultPlan(
            seed=0,
            faults=(
                Fault(kind="upid_stall", core=0, at=10),
                Fault(kind="upid_stall", core=1, at=20),
            ),
        )
        assert all(f.core == 1 for f in plan.for_core(1))
        assert len(plan.for_core(0)) == 1

    def test_merge_plans_sorted(self):
        merged = merge_plans(
            99,
            [
                FaultPlan(seed=1, faults=(Fault(kind="upid_stall", at=500),)),
                FaultPlan(seed=2, faults=(Fault(kind="upid_stall", at=100),)),
            ],
        )
        assert merged.seed == 99
        assert [f.at for f in merged.faults] == [100, 500]

    def test_cycle_tier_kinds_exclude_ctx_switch(self):
        assert "ctx_switch" not in CYCLE_TIER_KINDS
        assert set(CYCLE_TIER_KINDS) < set(FAULT_KINDS)
