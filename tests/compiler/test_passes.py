"""IR instrumentation passes: site coverage and non-mutation."""

from repro.compiler.instrument import DEFAULT_POLL_FLAG_ADDR
from repro.compiler.ir import Block, CallFn, Function, Loop, Module, PollCheck, RawOp, Safepoint
from repro.compiler.passes import insert_polling_checks, insert_safepoints
from repro.cpu import isa


def sample_module():
    module = Module()
    inner = Loop(counter_reg=2, count=3, body=[RawOp(isa.addi(3, 3, 1))])
    module.add(
        Function("main", [Loop(counter_reg=1, count=4, body=[Block([inner])]), CallFn("leaf")])
    )
    module.add(Function("leaf", [RawOp(isa.addi(4, 4, 1))]))
    return module


def count_nodes(nodes, kind):
    total = 0
    for node in nodes:
        if isinstance(node, kind):
            total += 1
        if isinstance(node, (Loop, Block)):
            total += count_nodes(node.body, kind)
    return total


class TestPollingPass:
    def test_every_function_entry_checked(self):
        instrumented = insert_polling_checks(sample_module())
        for function in instrumented.functions.values():
            assert isinstance(function.body[0], PollCheck)

    def test_every_loop_backedge_checked(self):
        instrumented = insert_polling_checks(sample_module())
        main = instrumented.functions["main"]
        # 2 loops (outer + inner) -> a check at the tail of each body.
        checks = count_nodes(main.body, PollCheck)
        assert checks == 1 + 2  # entry + two back-edges

    def test_flag_address_propagated(self):
        instrumented = insert_polling_checks(sample_module(), flag_addr=0x1234)
        check = instrumented.functions["main"].body[0]
        assert check.flag_addr == 0x1234

    def test_original_module_untouched(self):
        module = sample_module()
        insert_polling_checks(module)
        assert count_nodes(module.functions["main"].body, PollCheck) == 0


class TestSafepointPass:
    def test_function_entries_get_safepoints(self):
        instrumented = insert_safepoints(sample_module())
        for function in instrumented.functions.values():
            assert isinstance(function.body[0], Safepoint)

    def test_backedges_folded_into_branch(self):
        """Safepoints on back-edges are prefix bits, not extra nodes (§4.4)."""
        instrumented = insert_safepoints(sample_module())
        main = instrumented.functions["main"]

        def all_loops(nodes):
            for node in nodes:
                if isinstance(node, Loop):
                    yield node
                    yield from all_loops(node.body)
                elif isinstance(node, Block):
                    yield from all_loops(node.body)

        loops = list(all_loops(main.body))
        assert loops and all(loop.safepoint_backedge for loop in loops)
        # No Safepoint *nodes* added inside loop bodies for the back-edge.
        for loop in loops:
            assert count_nodes(loop.body, Safepoint) == 0

    def test_default_flag_addr_constant(self):
        assert DEFAULT_POLL_FLAG_ADDR == 0x60_0000
