"""The mini-IR and its lowering to the µ-ISA."""

import pytest

from repro.common.errors import ConfigError
from repro.compiler.ir import (
    Block,
    CallFn,
    Function,
    Loop,
    Module,
    RawOp,
    Safepoint,
    lower_module,
)
from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem


def run(program, max_cycles=300_000):
    system = MultiCoreSystem([program], [FlushStrategy()])
    system.run(max_cycles, until_halted=[0])
    assert system.cores[0].halted
    return system.cores[0]


class TestLowering:
    def test_entry_function_runs_and_halts(self):
        module = Module()
        module.add(Function("main", [RawOp(isa.movi(1, 42))]))
        core = run(lower_module(module))
        assert core.arch_regs[1] == 42

    def test_loop_iterates(self):
        module = Module()
        module.add(
            Function("main", [Loop(counter_reg=1, count=25, body=[RawOp(isa.addi(2, 2, 2))])])
        )
        core = run(lower_module(module))
        assert core.arch_regs[2] == 50
        assert core.arch_regs[1] == 25

    def test_nested_loops(self):
        module = Module()
        inner = Loop(counter_reg=2, count=4, body=[RawOp(isa.addi(3, 3, 1))])
        module.add(Function("main", [Loop(counter_reg=1, count=5, body=[inner])]))
        core = run(lower_module(module))
        assert core.arch_regs[3] == 20

    def test_function_calls(self):
        module = Module()
        module.add(Function("main", [CallFn("helper"), CallFn("helper")]))
        module.add(Function("helper", [RawOp(isa.addi(4, 4, 7))]))
        core = run(lower_module(module))
        assert core.arch_regs[4] == 14

    def test_block_flattens(self):
        module = Module()
        module.add(
            Function(
                "main",
                [Block([RawOp(isa.movi(1, 1)), Block([RawOp(isa.movi(2, 2))])])],
            )
        )
        core = run(lower_module(module))
        assert (core.arch_regs[1], core.arch_regs[2]) == (1, 2)

    def test_safepoint_marker_lowered(self):
        module = Module()
        module.add(Function("main", [Safepoint(), RawOp(isa.movi(1, 1))]))
        program = lower_module(module)
        assert any(i.safepoint for i in program.instructions)

    def test_safepoint_backedge_flag(self):
        module = Module()
        loop = Loop(counter_reg=1, count=3, body=[RawOp(isa.nop())], safepoint_backedge=True)
        module.add(Function("main", [loop]))
        program = lower_module(module)
        branches = [i for i in program.instructions if i.is_cond_branch]
        assert any(b.safepoint for b in branches)


class TestValidation:
    def test_empty_module_rejected(self):
        with pytest.raises(ConfigError):
            lower_module(Module())

    def test_duplicate_function_rejected(self):
        module = Module()
        module.add(Function("f"))
        with pytest.raises(ConfigError):
            module.add(Function("f"))

    def test_call_to_unknown_function_rejected(self):
        module = Module()
        module.add(Function("main", [CallFn("ghost")]))
        with pytest.raises(ConfigError):
            lower_module(module)

    def test_negative_loop_count_rejected(self):
        with pytest.raises(ConfigError):
            Loop(counter_reg=1, count=-1)
