"""Instrumentation hooks: polling checks and safepoint prefixes."""

import pytest

from repro.compiler.instrument import (
    NullInstrumenter,
    PollingInstrumenter,
    SafepointInstrumenter,
)
from repro.cpu import isa
from repro.cpu.isa import Op
from repro.cpu.program import ProgramBuilder


def emit_instrumented_loop(instrument, iterations=10):
    builder = ProgramBuilder("t")
    instrument.setup(builder)
    builder.emit(isa.movi(1, 0))
    builder.emit(isa.movi(2, iterations))
    builder.label("loop")
    builder.emit(isa.addi(1, 1, 1))
    instrument.at_loop_backedge(builder)
    builder.emit(instrument.wrap_backedge(isa.blt(1, 2, "loop")))
    builder.emit(isa.halt())
    instrument.finalize(builder)
    builder.emit_default_handler()
    return builder.build()


class TestNullInstrumenter:
    def test_adds_nothing(self):
        plain = emit_instrumented_loop(NullInstrumenter())
        ops = [i.op for i in plain.instructions]
        assert Op.LOAD not in ops[:5]  # no poll load before the loop body
        assert not any(i.safepoint for i in plain.instructions)


class TestSafepointInstrumenter:
    def test_backedge_carries_prefix_no_extra_instructions(self):
        plain = emit_instrumented_loop(NullInstrumenter())
        instrumented = emit_instrumented_loop(SafepointInstrumenter())
        assert len(instrumented) == len(plain)  # zero added instructions
        branch = [i for i in instrumented.instructions if i.is_cond_branch][0]
        assert branch.safepoint

    def test_function_entry_emits_safepoint_nop(self):
        builder = ProgramBuilder("t")
        instrument = SafepointInstrumenter()
        instrument.at_function_entry(builder)
        builder.emit(isa.halt())
        program = builder.build()
        assert program.instructions[0].safepoint
        assert program.instructions[0].op is Op.NOP


class TestPollingInstrumenter:
    def test_hot_path_is_load_plus_branch(self):
        program = emit_instrumented_loop(PollingInstrumenter())
        # Find the poll load: it targets the flag register base.
        ops = [i.op for i in program.instructions]
        assert Op.LOAD in ops
        # The check branch jumps *out of line* (trampoline), so the fall
        # through (hot) path has no CALL.
        loop_body = program.instructions[3:7]
        assert not any(i.op is Op.CALL for i in loop_body)

    def test_trampolines_emitted_out_of_line(self):
        program = emit_instrumented_loop(PollingInstrumenter())
        calls = [i for i in program.instructions if i.op is Op.CALL]
        assert calls  # trampoline calls the shared yield stub

    def test_yield_stub_clears_flag(self):
        """Executing with the flag set must take the yield path and clear it."""
        from repro.cpu.delivery import FlushStrategy
        from repro.cpu.multicore import MultiCoreSystem

        instrument = PollingInstrumenter(flag_addr=0x60_0000, yield_counter_addr=0x61_0000)
        program = emit_instrumented_loop(instrument, iterations=50)
        system = MultiCoreSystem([program], [FlushStrategy()])
        system.shared.write(0x60_0000, 1)  # preemption requested pre-start
        system.run(200_000, until_halted=[0])
        assert system.cores[0].halted
        assert system.shared.read(0x60_0000) == 0  # flag cleared by yield
        assert system.shared.read(0x61_0000) >= 1  # yield counted

    def test_sites_get_unique_labels(self):
        instrument = PollingInstrumenter()
        builder = ProgramBuilder("t")
        instrument.setup(builder)
        instrument.at_loop_backedge(builder)
        instrument.at_loop_backedge(builder)
        builder.emit(isa.halt())
        instrument.finalize(builder)
        builder.build()  # no duplicate-label errors
