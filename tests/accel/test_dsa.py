"""The simulated streaming accelerator (§5.4)."""

import pytest

from repro.accel.dsa import DsaConfig, LatencyModel, OffloadRequest, SimulatedDSA
from repro.accel.rings import CompletionRing, SubmissionRing
from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.common.units import us_to_cycles
from repro.sim.simulator import Simulator


class TestLatencyModel:
    def test_no_noise_is_deterministic(self):
        model = LatencyModel(mean_us=2.0)
        assert model.sample() == us_to_cycles(2.0)

    def test_noise_bounds(self):
        model = LatencyModel(mean_us=2.0, noise_fraction=0.5, rng=RngStreams(1))
        mean = us_to_cycles(2.0)
        for _ in range(500):
            sample = model.sample()
            assert 0.5 * mean <= sample <= 1.5 * mean

    def test_floor_at_ten_percent(self):
        model = LatencyModel(mean_us=2.0, noise_fraction=5.0, rng=RngStreams(2))
        mean = us_to_cycles(2.0)
        assert all(model.sample() >= 0.1 * mean for _ in range(500))

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            LatencyModel(mean_us=0)
        with pytest.raises(ConfigError):
            LatencyModel(mean_us=1, noise_fraction=-0.1)


class TestRings:
    def test_fifo(self):
        ring = SubmissionRing(capacity=4)
        ring.push("a")
        ring.push("b")
        assert ring.pop() == "a"
        assert ring.pop() == "b"
        assert ring.pop() is None

    def test_capacity_rejects(self):
        ring = SubmissionRing(capacity=1)
        assert ring.push("a")
        assert not ring.push("b")
        assert ring.rejected == 1

    def test_completion_arm_requires_empty(self):
        ring = CompletionRing()
        ring.push("done")
        assert ring.arm() is False
        ring.pop()
        assert ring.arm() is True


class TestDevice:
    def test_completion_after_latency(self):
        sim = Simulator()
        dsa = SimulatedDSA(sim, LatencyModel(mean_us=2.0))
        request = OffloadRequest(submit_time=sim.now)
        assert dsa.submit(request)
        sim.run()
        assert request.complete_time == pytest.approx(
            us_to_cycles(2.0) + dsa.config.fabric_latency
        )
        assert dsa.completion_ring.pop() is request

    def test_completions_in_submission_order(self):
        sim = Simulator()
        dsa = SimulatedDSA(sim, LatencyModel(mean_us=2.0, noise_fraction=1.0, rng=RngStreams(3)))
        requests = [OffloadRequest(submit_time=0.0) for _ in range(10)]
        for request in requests:
            dsa.submit(request)
        sim.run()
        order = []
        while True:
            done = dsa.completion_ring.pop()
            if done is None:
                break
            order.append(done.rid)
        assert order == [r.rid for r in requests]

    def test_interrupt_on_empty_armed_ring(self):
        sim = Simulator()
        fired = []
        dsa = SimulatedDSA(sim, LatencyModel(mean_us=2.0), on_interrupt=lambda: fired.append(sim.now))
        dsa.completion_ring.arm()
        dsa.submit(OffloadRequest(submit_time=0.0))
        sim.run()
        assert len(fired) == 1

    def test_no_interrupt_when_disarmed(self):
        sim = Simulator()
        fired = []
        dsa = SimulatedDSA(sim, LatencyModel(mean_us=2.0), on_interrupt=lambda: fired.append(1))
        dsa.submit(OffloadRequest(submit_time=0.0))
        sim.run()
        assert fired == []

    def test_notification_lag_accounting(self):
        request = OffloadRequest(submit_time=0.0)
        request.complete_time = 100.0
        request.handled_time = 150.0
        assert request.notification_lag == 50.0
        assert request.device_latency == 100.0

    def test_lag_requires_handling(self):
        with pytest.raises(ConfigError):
            OffloadRequest(submit_time=0.0).notification_lag
