"""The Aspen-like runtime: preemption, rotation, stealing, accounting."""

import pytest

from repro.common.errors import ConfigError
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism
from repro.runtime.aspen import AspenRuntime, RuntimeConfig
from repro.runtime.uthread import UThread
from repro.sim.simulator import Simulator


def make_runtime(quantum=10_000.0, mechanism=Mechanism.XUI_KB_TIMER, workers=1, **kw):
    sim = Simulator()
    config = RuntimeConfig(num_workers=workers, quantum=quantum, mechanism=mechanism, **kw)
    return sim, AspenRuntime(sim, config)


class TestConfigValidation:
    def test_preemption_requires_mechanism(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(quantum=10_000.0, mechanism=None)

    def test_no_preemption_allows_no_mechanism(self):
        config = RuntimeConfig(quantum=None, mechanism=None)
        assert config.quantum is None

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(quantum=-5.0)

    def test_timer_core_capacity_enforced(self):
        """§6.1: >22 workers at 5 us cannot share one rdtsc-spin timer core."""
        sim = Simulator()
        config = RuntimeConfig(num_workers=23, quantum=10_000.0, mechanism=Mechanism.UIPI)
        with pytest.raises(ConfigError):
            AspenRuntime(sim, config)

    def test_kb_timer_has_no_worker_bound(self):
        sim = Simulator()
        config = RuntimeConfig(num_workers=23, quantum=10_000.0, mechanism=Mechanism.XUI_KB_TIMER)
        runtime = AspenRuntime(sim, config)
        assert runtime.timer_core is None


class TestExecution:
    def test_single_thread_runs_to_completion(self):
        sim, runtime = make_runtime(quantum=None, mechanism=None)
        thread = UThread(service_cycles=5000.0, arrival_time=0.0)
        runtime.spawn(thread)
        sim.run()
        assert thread.finished
        assert thread.completion_time == pytest.approx(5000.0)

    def test_fifo_without_preemption_blocks_short_behind_long(self):
        sim, runtime = make_runtime(quantum=None, mechanism=None)
        long_thread = UThread(service_cycles=1_000_000.0, kind="scan")
        short_thread = UThread(service_cycles=2_000.0, kind="get")
        runtime.spawn(long_thread)
        runtime.spawn(short_thread)
        sim.run()
        # Head-of-line blocking: the GET waits out the whole SCAN.
        assert short_thread.completion_time > 1_000_000.0

    def test_preemption_lets_short_jobs_through(self):
        sim, runtime = make_runtime(quantum=10_000.0)
        long_thread = UThread(service_cycles=1_000_000.0, kind="scan")
        short_thread = UThread(service_cycles=2_000.0, kind="get")
        runtime.spawn(long_thread)
        runtime.spawn(short_thread)
        sim.run(until=3_000_000.0)
        assert short_thread.completion_time < 50_000.0
        assert long_thread.preemptions > 10

    def test_preemption_overhead_charged_per_tick(self):
        sim, runtime = make_runtime(quantum=10_000.0, mechanism=Mechanism.UIPI)
        runtime.spawn(UThread(service_cycles=100_000.0))
        sim.run(until=100_000.0)
        worker = runtime.workers[0]
        expected_ticks = 10
        assert worker.ticks == pytest.approx(expected_ticks, abs=1)
        costs = CostModel()
        assert worker.account.busy["preempt_notify"] == pytest.approx(
            worker.ticks * costs.uipi_receive_flush
        )

    def test_xui_overhead_lower_than_uipi(self):
        def total_overhead(mechanism):
            sim, runtime = make_runtime(quantum=10_000.0, mechanism=mechanism)
            runtime.spawn(UThread(service_cycles=200_000.0))
            sim.run(until=200_000.0)
            return runtime.workers[0].account.busy["preempt_notify"]

        assert total_overhead(Mechanism.XUI_KB_TIMER) < total_overhead(Mechanism.UIPI) / 4

    def test_completion_through_many_preemptions(self):
        sim, runtime = make_runtime(quantum=10_000.0)
        threads = [UThread(service_cycles=50_000.0) for _ in range(3)]
        for thread in threads:
            runtime.spawn(thread)
        sim.run(until=1_000_000.0)
        assert all(t.finished for t in threads)
        assert len(runtime.completed) == 3
        # stop() ends the periodic machinery; an unbounded run now drains.
        runtime.stop()
        sim.run()


class TestWorkStealing:
    def test_idle_worker_steals(self):
        sim, runtime = make_runtime(quantum=10_000.0, workers=2)
        # Both land on worker 0 via direct enqueue.
        a = UThread(service_cycles=200_000.0)
        b = UThread(service_cycles=200_000.0)
        runtime.workers[0].enqueue(a)
        runtime.workers[0].enqueue(b)
        sim.run(until=500_000.0)
        assert b.steals >= 1  # worker 1 stole the queued thread
        assert a.finished and b.finished

    def test_stealing_disabled_respected(self):
        sim, runtime = make_runtime(quantum=10_000.0, workers=2, work_stealing=False)
        a = UThread(service_cycles=50_000.0)
        b = UThread(service_cycles=50_000.0)
        runtime.workers[0].enqueue(a)
        runtime.workers[0].enqueue(b)
        sim.run(until=1_000_000.0)
        assert a.steals == 0 and b.steals == 0

    def test_spawn_round_robins(self):
        sim, runtime = make_runtime(quantum=None, mechanism=None, workers=3)
        for _ in range(6):
            runtime.spawn(UThread(service_cycles=1000.0))
        pushes = [w.queue.pushes for w in runtime.workers]
        assert pushes == [2, 2, 2]


class TestTimerCoreAccounting:
    def test_uipi_allocates_timer_core(self):
        _, runtime = make_runtime(mechanism=Mechanism.UIPI)
        assert runtime.timer_core is not None

    def test_timer_core_fully_busy(self):
        sim, runtime = make_runtime(mechanism=Mechanism.UIPI)
        runtime.spawn(UThread(service_cycles=100_000.0))
        sim.run(until=100_000.0)
        # The rdtsc-spin core burns everything: spin + senduipi ~= wall time.
        assert runtime.timer_core.busy_fraction(100_000.0) == pytest.approx(1.0, abs=0.05)

    def test_response_times_by_kind(self):
        sim, runtime = make_runtime(quantum=None, mechanism=None)
        runtime.spawn(UThread(service_cycles=1000.0, kind="get"))
        runtime.spawn(UThread(service_cycles=2000.0, kind="scan"))
        sim.run()
        assert len(runtime.response_times("get")) == 1
        assert len(runtime.response_times("scan")) == 1
        assert len(runtime.response_times()) == 2
