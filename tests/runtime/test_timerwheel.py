"""Software timers multiplexed on one hardware timer (§2, §4.3)."""

import pytest

from repro.common.errors import ConfigError
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism
from repro.runtime.timerwheel import SoftwareTimerService, TimerMode
from repro.sim.simulator import Simulator


def make_service(**kw):
    sim = Simulator()
    return sim, SoftwareTimerService(sim, **kw)


class TestOneShotMode:
    def test_fires_at_deadline(self):
        sim, service = make_service()
        fired = []
        service.schedule(1000.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1000.0]

    def test_many_timeouts_fire_in_order(self):
        sim, service = make_service()
        fired = []
        for delay in (5000.0, 1000.0, 3000.0, 2000.0, 4000.0):
            service.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == [1000.0, 2000.0, 3000.0, 4000.0, 5000.0]

    def test_rearm_when_earlier_deadline_appears(self):
        sim, service = make_service()
        fired = []
        service.schedule(10_000.0, lambda: fired.append("late"))
        service.schedule(1000.0, lambda: fired.append("early"))
        sim.run(until=2000.0)
        assert fired == ["early"]
        sim.run()
        assert fired == ["early", "late"]

    def test_same_deadline_fifo(self):
        sim, service = make_service()
        fired = []
        service.schedule(1000.0, lambda: fired.append("a"))
        service.schedule(1000.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b"]

    def test_coincident_deadlines_share_one_hardware_fire(self):
        sim, service = make_service()
        for _ in range(5):
            service.schedule(1000.0, lambda: None)
        sim.run()
        assert service.timeouts_fired == 5
        assert service.hardware_fires == 1

    def test_cancellation(self):
        sim, service = make_service()
        fired = []
        handle = service.schedule(1000.0, lambda: fired.append(1))
        assert handle.cancel() is True
        sim.run()
        assert fired == []
        assert handle.cancel() is False  # second cancel is a no-op

    def test_cancel_after_fire_fails(self):
        sim, service = make_service()
        handle = service.schedule(100.0, lambda: None)
        sim.run()
        assert handle.cancel() is False

    def test_pending_counts_live_only(self):
        sim, service = make_service()
        service.schedule(1000.0, lambda: None)
        handle = service.schedule(2000.0, lambda: None)
        handle.cancel()
        assert service.pending() == 1

    def test_timeout_scheduled_from_callback(self):
        sim, service = make_service()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                service.schedule(500.0, chain)

        service.schedule(500.0, chain)
        sim.run()
        assert fired == [500.0, 1000.0, 1500.0]

    def test_negative_delay_rejected(self):
        _, service = make_service()
        with pytest.raises(ConfigError):
            service.schedule(-1.0, lambda: None)


class TestPeriodicMode:
    def test_expiry_quantized_to_resolution(self):
        sim, service = make_service(mode=TimerMode.PERIODIC, resolution=4000.0)
        fired = []
        service.schedule(1000.0, lambda: fired.append(sim.now))
        sim.run(until=20_000.0)
        assert fired == [4000.0]  # waited for the tick

    def test_tick_rate_independent_of_timeout_count(self):
        sim, service = make_service(mode=TimerMode.PERIODIC, resolution=4000.0)
        for i in range(50):
            service.schedule(100.0 * i, lambda: None)
        sim.run(until=40_000.0)
        assert service.hardware_fires == 10  # one per tick, not per timeout
        assert service.timeouts_fired == 50


class TestMechanismCosts:
    def test_kb_timer_cheaper_than_os_timer(self):
        def total_cost(mechanism):
            sim, service = make_service(mechanism=mechanism)
            for i in range(20):
                service.schedule(1000.0 * (i + 1), lambda: None)
            sim.run()
            return service.account.total_busy()

        kb = total_cost(Mechanism.XUI_KB_TIMER)
        os_timer = total_cost(Mechanism.PERIODIC_POLL)
        assert kb * 5 < os_timer

    def test_os_timer_respects_resolution_floor(self):
        _, service = make_service(
            mechanism=Mechanism.PERIODIC_POLL, mode=TimerMode.PERIODIC, resolution=100.0
        )
        assert service.resolution >= CostModel().os_timer_min_period

    def test_unsupported_mechanism_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            SoftwareTimerService(sim, mechanism=Mechanism.UIPI)

    def test_kb_timer_precision_vs_os_floor(self):
        """The §6.2.3-style precision gap: sub-2 µs deadlines are exact with
        the KB timer, quantized by the OS interval timer."""
        sim_kb = Simulator()
        kb = SoftwareTimerService(sim_kb, mechanism=Mechanism.XUI_KB_TIMER)
        fired_kb = []
        kb.schedule(1000.0, lambda: fired_kb.append(sim_kb.now))
        sim_kb.run()

        sim_os = Simulator()
        os_service = SoftwareTimerService(
            sim_os, mechanism=Mechanism.PERIODIC_POLL, mode=TimerMode.PERIODIC, resolution=100.0
        )
        fired_os = []
        os_service.schedule(1000.0, lambda: fired_os.append(sim_os.now))
        sim_os.run(until=50_000.0)
        assert fired_kb == [1000.0]
        assert fired_os and fired_os[0] >= CostModel().os_timer_min_period
