"""Work-stealing queues."""

from repro.runtime.uthread import UThread
from repro.runtime.workqueue import WorkQueue


def thread(n):
    return UThread(service_cycles=float(n))


class TestQueueDiscipline:
    def test_owner_pop_is_fifo(self):
        queue = WorkQueue(0)
        a, b = thread(1), thread(2)
        queue.push(a)
        queue.push(b)
        assert queue.pop() is a
        assert queue.pop() is b
        assert queue.pop() is None

    def test_push_front_for_preempted(self):
        queue = WorkQueue(0)
        a, b = thread(1), thread(2)
        queue.push(a)
        queue.push_front(b)
        assert queue.pop() is b

    def test_steal_takes_oldest(self):
        queue = WorkQueue(0)
        a, b = thread(1), thread(2)
        queue.push(a)
        queue.push(b)
        assert queue.steal() is a
        assert queue.steals_suffered == 1

    def test_steal_empty_returns_none(self):
        queue = WorkQueue(0)
        assert queue.steal() is None
        assert queue.steals_suffered == 0

    def test_len(self):
        queue = WorkQueue(0)
        queue.push(thread(1))
        queue.push(thread(2))
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
