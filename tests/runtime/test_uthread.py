"""User-level threads: work accounting and lifecycle."""

import pytest

from repro.common.errors import ConfigError
from repro.runtime.uthread import WORK_EPSILON, UThread


class TestLifecycle:
    def test_requires_positive_service(self):
        with pytest.raises(ConfigError):
            UThread(service_cycles=0)

    def test_run_for_partial(self):
        thread = UThread(service_cycles=100.0)
        used = thread.run_for(30.0)
        assert used == 30.0
        assert thread.remaining == 70.0
        assert not thread.finished

    def test_run_for_overshoot_clamped(self):
        thread = UThread(service_cycles=100.0)
        used = thread.run_for(500.0)
        assert used == 100.0
        assert thread.finished

    def test_epsilon_residue_counts_as_finished(self):
        thread = UThread(service_cycles=100.0)
        thread.run_for(100.0 - WORK_EPSILON / 2)
        assert thread.finished  # sub-epsilon residue is rounding noise

    def test_response_time(self):
        thread = UThread(service_cycles=10.0, arrival_time=5.0)
        thread.completion_time = 25.0
        assert thread.response_time == 20.0

    def test_response_time_before_completion_rejected(self):
        with pytest.raises(ConfigError):
            UThread(service_cycles=10.0).response_time

    def test_unique_ids_and_names(self):
        a, b = UThread(service_cycles=1.0), UThread(service_cycles=1.0)
        assert a.uid != b.uid
        assert a.name != b.name
