"""The parallel sweep engine: job resolution, fallback, and equivalence."""

import pytest

from repro.common.errors import ConfigError
from repro.perf.engine import JOBS_ENV, SweepRunner, resolve_jobs, run_sweep


def _square(x):
    return x * x


def _stringify(x):
    return f"<{x}>"


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_zero_means_cpu_count(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-2)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        with pytest.raises(ConfigError):
            resolve_jobs(None)


class TestSweepRunner:
    def test_serial_map(self):
        runner = SweepRunner(jobs=1)
        assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert runner.last_mode == "serial"

    def test_parallel_matches_serial(self):
        points = list(range(12))
        serial = SweepRunner(jobs=1).map(_square, points)
        runner = SweepRunner(jobs=2)
        assert runner.map(_square, points) == serial

    def test_parallel_preserves_point_order(self):
        points = [5, 1, 9, 3]
        assert SweepRunner(jobs=2).map(_stringify, points) == [
            "<5>",
            "<1>",
            "<9>",
            "<3>",
        ]

    def test_lambda_falls_back_to_serial(self):
        runner = SweepRunner(jobs=4)
        assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert runner.last_mode == "serial"

    def test_unpicklable_point_falls_back_to_serial(self):
        runner = SweepRunner(jobs=4)
        results = runner.map(_stringify, [lambda: None, lambda: None])
        assert len(results) == 2
        assert runner.last_mode == "serial"

    def test_single_point_stays_serial(self):
        runner = SweepRunner(jobs=4)
        assert runner.map(_square, [7]) == [49]
        assert runner.last_mode == "serial"

    def test_empty_points(self):
        assert SweepRunner(jobs=4).map(_square, []) == []

    def test_run_sweep_convenience(self):
        assert run_sweep(_square, [2, 4], jobs=1) == [4, 16]
