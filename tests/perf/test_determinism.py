"""Determinism regression: parallel and cached runs replay the serial tables."""

from functools import partial

import pytest

from repro.apps import microbench as mb
from repro.experiments.fig4_overheads import run_fig4
from repro.perf.cache import ENV_CACHE_DIR, ENV_CACHE_ENABLED

ITERATIONS = 5_000
INTERVAL = 2_000


def _reduced_fig4(jobs):
    benchmarks = {"count_loop": partial(mb.make_count_loop, ITERATIONS)}
    return run_fig4(interval=INTERVAL, benchmarks=benchmarks, jobs=jobs)


@pytest.fixture(scope="module")
def serial_reference():
    return _reduced_fig4(jobs=1)


class TestDeterminism:
    def test_parallel_table_identical(self, serial_reference, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_ENABLED, "0")
        assert _reduced_fig4(jobs=4) == serial_reference

    def test_cache_hit_rerun_identical(self, serial_reference, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_ENABLED, "1")
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "cache"))
        cold = _reduced_fig4(jobs=1)
        warm = _reduced_fig4(jobs=1)
        assert cold == serial_reference
        assert warm == serial_reference
        # The rerun actually hit the cache: entries exist on disk.
        assert list((tmp_path / "cache").glob("*/*.json"))

    def test_serial_rerun_identical(self, serial_reference, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_ENABLED, "0")
        assert _reduced_fig4(jobs=1) == serial_reference
