"""The persistent result cache: keys, invalidation, and corruption handling."""

import dataclasses
import json
import logging

import pytest

from repro.common.errors import ConfigError
from repro.cpu.config import CoreParams, SystemConfig
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.perf.cache import ResultCache, canonical, model_version_salt


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(None) is None
        assert canonical(True) is True
        assert canonical(42) == 42
        assert canonical("x") == "x"

    def test_floats_exact(self):
        assert canonical(0.1) == ["float", "0.1"]

    def test_dict_order_insensitive(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_dataclasses_by_fields(self):
        params = CoreParams.sapphire_rapids_like()
        assert canonical(params) == canonical(CoreParams.sapphire_rapids_like())
        mutated = dataclasses.replace(params, rob_size=params.rob_size + 1)
        assert canonical(params) != canonical(mutated)

    def test_strategies_by_fingerprint(self):
        assert canonical(FlushStrategy()) == canonical(FlushStrategy())
        assert canonical(FlushStrategy()) != canonical(TrackedStrategy())
        assert canonical(DrainStrategy(extra_pad=0)) != canonical(
            DrainStrategy(extra_pad=13)
        )

    def test_local_callables_rejected(self):
        with pytest.raises(ConfigError):
            canonical(lambda: None)


class TestInvalidation:
    def test_core_params_mutation_misses(self, cache):
        config = SystemConfig.sapphire_rapids_like()
        key = cache.key_for({"config": config})
        cache.put(key, {"cycles": 123})
        mutated = dataclasses.replace(
            config, core=dataclasses.replace(config.core, rob_size=64)
        )
        other_key = cache.key_for({"config": mutated})
        assert other_key != key
        assert cache.get(other_key) is None

    def test_fake_model_salt_misses(self, tmp_path):
        payload = {"kind": "x", "value": 7}
        real = ResultCache(root=tmp_path / "c")
        key = real.key_for(payload)
        real.put(key, {"cycles": 9})
        fake = ResultCache(root=tmp_path / "c", salt="deadbeef")
        assert fake.key_for(payload) != key
        assert fake.get(fake.key_for(payload)) is None

    def test_salt_defaults_to_model_sources(self, tmp_path):
        assert ResultCache(root=tmp_path).salt == model_version_salt()
        assert len(model_version_salt()) == 64

    def test_salt_is_content_hash_of_model_sources(self):
        """The salt is exactly a hash over the ``repro.cpu``/``repro.uintr``
        source bytes: any model edit (e.g. a change to the cycle engine)
        yields a different salt and so invalidates every older entry."""
        import hashlib
        from pathlib import Path

        import repro
        from repro.perf.cache import CACHE_FORMAT_VERSION, _MODEL_PACKAGES

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        digest.update(f"format={CACHE_FORMAT_VERSION}".encode())
        for package in _MODEL_PACKAGES:
            for path in sorted((root / package).glob("*.py")):
                digest.update(path.name.encode())
                digest.update(path.read_bytes())
        assert model_version_salt() == digest.hexdigest()


class TestStore:
    def test_roundtrip(self, cache):
        key = cache.key_for({"a": 1})
        assert cache.get(key) is None
        cache.put(key, {"cycles": 5, "stats": {"x": 1}})
        assert cache.get(key) == {"cycles": 5, "stats": {"x": 1}}
        assert cache.hits == 1 and cache.misses == 1

    def test_memoize_computes_once(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"cycles": 11}

        assert cache.memoize({"p": 1}, compute) == {"cycles": 11}
        assert cache.memoize({"p": 1}, compute) == {"cycles": 11}
        assert len(calls) == 1

    def test_disabled_cache_always_computes(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        calls = []

        def compute():
            calls.append(1)
            return {"cycles": 3}

        cache.memoize({"p": 1}, compute)
        cache.memoize({"p": 1}, compute)
        assert len(calls) == 2
        assert not any(tmp_path.glob("*/*.json"))

    def test_corrupt_entry_falls_back_with_warning(self, cache, caplog):
        key = cache.key_for({"p": 2})
        cache.put(key, {"cycles": 8})
        path = cache._path(key)
        path.write_text("{ not json !!")
        with caplog.at_level(logging.WARNING, logger="repro.perf.cache"):
            assert cache.get(key) is None
        assert any("corrupt" in record.message for record in caplog.records)
        # The corrupt file was dropped; memoize re-simulates and heals it.
        assert cache.memoize({"p": 2}, lambda: {"cycles": 8}) == {"cycles": 8}
        assert json.loads(path.read_text()) == {"cycles": 8}

    def test_non_object_entry_is_corrupt(self, cache, caplog):
        key = cache.key_for({"p": 3})
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        with caplog.at_level(logging.WARNING, logger="repro.perf.cache"):
            assert cache.get(key) is None

    def test_clear(self, cache):
        for n in range(3):
            cache.put(cache.key_for({"n": n}), {"cycles": n})
        assert cache.clear() == 3
        assert cache.get(cache.key_for({"n": 0})) is None
