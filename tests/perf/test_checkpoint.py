"""Hardened sweep engine: checkpoint resume, salvage, retry, watchdog."""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.common.counters import GLOBAL_COUNTERS
from repro.common.errors import ConfigError
from repro.perf.engine import (
    CHECKPOINT_ENV,
    RETRIES_ENV,
    SweepRunner,
    _checkpoint_for,
)


def _square(x):
    return x * x


def _crash_in_worker(x):
    """Kill the hosting process — but only when it is a pool worker, so the
    salvage path is exercised without taking pytest down."""
    if x == 7 and multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * x


def _hang_until_flag(point):
    """Stall in a pool worker until the test drops a flag file — a hung
    point the watchdog must route around (the parent re-runs it instantly,
    since the stall is worker-only)."""
    x, flag = point
    if x == 3 and multiprocessing.parent_process() is not None:
        import time

        for _ in range(1200):
            if os.path.exists(flag):
                break
            time.sleep(0.25)
    return x * x


class _FlakyOnce:
    """Fails each point once, succeeds on retry (serial path only)."""

    def __init__(self):
        self.failed = set()

    def __call__(self, x):
        if x not in self.failed:
            self.failed.add(x)
            raise RuntimeError(f"transient failure at {x}")
        return x * x


class TestCheckpointResume:
    def test_checkpoint_written_and_removed_on_success(self, tmp_path):
        runner = SweepRunner(jobs=1, checkpoint_dir=str(tmp_path))
        assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]
        # A completed sweep leaves no checkpoint behind.
        assert list(tmp_path.glob("sweep-*.jsonl")) == []

    def test_killed_sweep_resumes_from_checkpoint(self, tmp_path):
        points = [1, 2, 3, 4, 5]
        # Simulate a sweep killed after three points: write the partial
        # checkpoint exactly as a dying run would have left it.
        ckpt = _checkpoint_for(str(tmp_path), _square, points)
        for i in (0, 1, 2):
            ckpt.record(i, points[i] ** 2)
        assert ckpt.path.exists()

        executed = []

        def spy(x):
            executed.append(x)
            return x * x

        spy.__module__ = _square.__module__
        spy.__qualname__ = _square.__qualname__  # same checkpoint identity
        before = GLOBAL_COUNTERS.sweep_points_resumed
        runner = SweepRunner(jobs=1, checkpoint_dir=str(tmp_path))
        assert runner.map(spy, points) == [1, 4, 9, 16, 25]
        # Only the incomplete points re-ran.
        assert executed == [4, 5]
        assert GLOBAL_COUNTERS.sweep_points_resumed - before == 3
        assert not ckpt.path.exists()

    def test_worker_death_mid_write_salvages_intact_prefix(self, tmp_path):
        """A worker killed mid-``record`` leaves the final JSONL line
        truncated at an arbitrary byte.  Resume must salvage every intact
        line and re-run only the torn point (plus the never-run tail)."""
        points = [1, 2, 3, 4, 5]
        ckpt = _checkpoint_for(str(tmp_path), _square, points)
        for i in (0, 1, 2):
            ckpt.record(i, points[i] ** 2)
        # The dying worker got partway through point 3's line: append the
        # record, then chop the file mid-payload (no trailing newline).
        ckpt.record(3, points[3] ** 2)
        raw = ckpt.path.read_bytes()
        assert raw.endswith(b"\n")
        ckpt.path.write_bytes(raw[: len(raw) - 9])

        loaded = ckpt.load(len(points))
        assert loaded == {0: 1, 1: 4, 2: 9}

        executed = []

        def spy(x):
            executed.append(x)
            return x * x

        spy.__module__ = _square.__module__
        spy.__qualname__ = _square.__qualname__  # same checkpoint identity
        before = GLOBAL_COUNTERS.sweep_points_resumed
        runner = SweepRunner(jobs=1, checkpoint_dir=str(tmp_path))
        assert runner.map(spy, points) == [1, 4, 9, 16, 25]
        assert executed == [4, 5]
        assert GLOBAL_COUNTERS.sweep_points_resumed - before == 3
        assert not ckpt.path.exists()

    def test_truncation_at_every_byte_never_loses_intact_lines(self, tmp_path):
        """Sweep the tear point across the whole file: wherever the kill
        landed, load() returns exactly the records whose lines survived."""
        points = [1, 2, 3]
        ckpt = _checkpoint_for(str(tmp_path), _square, points)
        for i in range(len(points)):
            ckpt.record(i, points[i] ** 2)
        raw = ckpt.path.read_bytes()
        line_ends = [i + 1 for i, b in enumerate(raw) if b == ord("\n")]
        expected_full = {0: 1, 1: 4, 2: 9}
        for cut in range(len(raw) + 1):
            ckpt.path.write_bytes(raw[:cut])
            survived = sum(1 for end in line_ends if end <= cut)
            loaded = ckpt.load(len(points))
            # Every value is right, every newline-terminated line is kept,
            # and at most the torn final line is salvaged beyond those
            # (a cut landing exactly at a line's closing brace still parses).
            assert all(loaded[i] == expected_full[i] for i in loaded), cut
            assert set(range(survived)) <= set(loaded), cut
            assert len(loaded) <= survived + 1, cut

    def test_corrupt_checkpoint_lines_skipped(self, tmp_path):
        points = [1, 2, 3]
        ckpt = _checkpoint_for(str(tmp_path), _square, points)
        ckpt.record(0, 1)
        with ckpt.path.open("a") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"i": 99, "r": pickle.dumps(0).hex()}) + "\n")
            fh.write(json.dumps({"i": 1, "r": "zz-not-hex"}) + "\n")
        loaded = ckpt.load(len(points))
        assert loaded == {0: 1}
        runner = SweepRunner(jobs=1, checkpoint_dir=str(tmp_path))
        assert runner.map(_square, points) == [1, 4, 9]

    def test_distinct_sweeps_use_distinct_checkpoints(self, tmp_path):
        a = _checkpoint_for(str(tmp_path), _square, [1, 2])
        b = _checkpoint_for(str(tmp_path), _square, [1, 2, 3])
        c = _checkpoint_for(str(tmp_path), _crash_in_worker, [1, 2])
        assert len({a.path, b.path, c.path}) == 3

    def test_unstable_inputs_disable_checkpointing(self, tmp_path):
        class Opaque:
            pass

        assert _checkpoint_for(str(tmp_path), _square, [Opaque()]) is None
        # The sweep itself still runs (serially, uncheckpointed).
        runner = SweepRunner(jobs=1, checkpoint_dir=str(tmp_path))
        assert runner.map(lambda o: 42, [Opaque()]) == [42]

    def test_env_var_enables_checkpointing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_ENV, str(tmp_path))
        runner = SweepRunner(jobs=1)
        assert runner.checkpoint_dir == str(tmp_path)

    def test_parallel_sweep_checkpoints_too(self, tmp_path):
        points = list(range(6))
        runner = SweepRunner(jobs=2, checkpoint_dir=str(tmp_path))
        assert runner.map(_square, points) == [x * x for x in points]
        assert runner.last_mode == "parallel"
        assert list(tmp_path.glob("sweep-*.jsonl")) == []


class TestSalvage:
    def test_broken_pool_salvages_completed_points(self, tmp_path):
        points = list(range(12))
        before = GLOBAL_COUNTERS.sweep_points_salvaged
        runner = SweepRunner(jobs=2, checkpoint_dir=str(tmp_path))
        results = runner.map(_crash_in_worker, points)
        # Results are exactly the serial reference despite the dead pool.
        assert results == [x * x for x in points]
        assert runner.last_mode == "salvaged"
        assert GLOBAL_COUNTERS.sweep_points_salvaged >= before
        # Checkpoint was still cleaned up after the salvaged completion.
        assert list(tmp_path.glob("sweep-*.jsonl")) == []

    def test_watchdog_abandons_stalled_pool(self, tmp_path):
        flag = tmp_path / "unstick"
        points = [(x, str(flag)) for x in range(6)]
        runner = SweepRunner(jobs=2, point_timeout=2.0)
        try:
            results = runner.map(_hang_until_flag, points)
        finally:
            flag.touch()  # release the stuck worker so pytest exits cleanly
        assert results == [x * x for x, _ in points]
        assert runner.last_mode == "salvaged"


class TestRetries:
    def test_serial_retry_recovers_transient_failures(self):
        before = GLOBAL_COUNTERS.sweep_points_retried
        runner = SweepRunner(jobs=1, point_retries=1, retry_backoff=0.0)
        assert runner.map(_FlakyOnce(), [1, 2, 3]) == [1, 4, 9]
        assert GLOBAL_COUNTERS.sweep_points_retried - before == 3

    def test_exhausted_retries_propagate(self):
        def always_fails(x):
            raise RuntimeError("deterministic bug")

        runner = SweepRunner(jobs=1, point_retries=2, retry_backoff=0.0)
        with pytest.raises(RuntimeError, match="deterministic bug"):
            runner.map(always_fails, [1])

    def test_zero_retries_is_default(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        runner = SweepRunner(jobs=1)
        with pytest.raises(ZeroDivisionError):
            runner.map(lambda x: 1 // x, [0])

    def test_env_retries_respected(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "3")
        runner = SweepRunner(jobs=1, retry_backoff=0.0)
        assert runner.point_retries == 3

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(jobs=1, point_retries=-1)
        with pytest.raises(ConfigError):
            SweepRunner(jobs=1, retry_backoff=-0.5)
        with pytest.raises(ConfigError):
            SweepRunner(jobs=1, point_timeout=-1.0)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "many")
        with pytest.raises(ConfigError):
            SweepRunner(jobs=1)


def _oversized_shard_result():
    """A cluster shard result whose pickled payload exceeds the JSONL line
    budget — the dense-histogram case that motivated chunked checkpoints."""
    from repro.cluster.shard import ShardResult

    buckets = {str(i): 1 for i in range(120_000)}
    state = {
        "sub_bits": 12,
        "count": 120_000,
        "sum": 1.0,
        "min": 0.0,
        "max": 1.0,
        "counts": buckets,
    }
    return ShardResult(
        shard_index=0,
        host=0,
        strategy="flush",
        tenants=1,
        offered=1,
        completed=1,
        in_window=1,
        scans=0,
        preemptions_total=0,
        hist_state=state,
    )


def _big_point(x):
    return (x, _oversized_shard_result())


class TestOversizedPayloads:
    """Payloads over the line budget compress, then chunk — and resume."""

    def test_compressible_payload_takes_one_z_line(self, tmp_path):
        from repro.perf.engine import _Checkpoint

        ckpt = _Checkpoint(tmp_path / "c.jsonl", line_budget=128)
        value = [0] * 1000  # pickles big, compresses tiny
        assert len(pickle.dumps(value).hex()) > 128
        ckpt.record(4, value)
        lines = ckpt.path.read_text().splitlines()
        assert len(lines) == 1 and '"z"' in lines[0] and '"of"' not in lines[0]
        assert ckpt.load(10) == {4: value}

    def test_incompressible_payload_chunks_and_reloads(self, tmp_path):
        import hashlib

        from repro.perf.engine import _Checkpoint

        ckpt = _Checkpoint(tmp_path / "c.jsonl", line_budget=128)
        value = b"".join(hashlib.sha256(bytes([i])).digest() for i in range(64))
        ckpt.record(2, value)
        lines = ckpt.path.read_text().splitlines()
        assert len(lines) > 1
        assert all('"of"' in line for line in lines)
        # Chunking bounds every line: budget + JSON envelope.
        assert max(len(line) for line in lines) <= 128 + 100
        assert ckpt.load(10) == {2: value}

    def test_incomplete_chunk_set_drops_only_that_point(self, tmp_path):
        import hashlib

        from repro.perf.engine import _Checkpoint

        ckpt = _Checkpoint(tmp_path / "c.jsonl", line_budget=128)
        ckpt.record(0, 111)
        big = b"".join(hashlib.sha256(bytes([i])).digest() for i in range(64))
        ckpt.record(1, big)
        # Tear the file inside the last chunk line: the chunked point is
        # incomplete and re-runs; the small point before it survives.
        raw = ckpt.path.read_bytes()
        ckpt.path.write_bytes(raw[: len(raw) - 40])
        assert ckpt.load(10) == {0: 111}

    def test_mixed_formats_in_one_file(self, tmp_path):
        from repro.perf.engine import _Checkpoint

        ckpt = _Checkpoint(tmp_path / "c.jsonl", line_budget=256)
        ckpt.record(0, "small")
        ckpt.record(1, [0] * 2000)
        assert ckpt.load(10) == {0: "small", 1: [0] * 2000}

    def test_oversized_shard_result_resumes_from_checkpoint(self, tmp_path):
        """Regression: a shard result bigger than the line budget survives
        the checkpoint round trip and is *not* re-executed on resume."""
        from repro.perf.engine import CHECKPOINT_LINE_BUDGET

        points = [0, 1]
        big = _big_point(0)
        assert len(pickle.dumps(big).hex()) > CHECKPOINT_LINE_BUDGET
        ckpt = _checkpoint_for(str(tmp_path), _big_point, points)
        ckpt.record(0, big)

        executed = []

        def spy(x):
            executed.append(x)
            return _big_point(x)

        spy.__module__ = _big_point.__module__
        spy.__qualname__ = _big_point.__qualname__  # same checkpoint identity
        before = GLOBAL_COUNTERS.sweep_points_resumed
        runner = SweepRunner(jobs=1, checkpoint_dir=str(tmp_path))
        results = runner.map(spy, points)
        assert executed == [1]
        assert GLOBAL_COUNTERS.sweep_points_resumed - before == 1
        assert results[0] == big and results[1] == _big_point(1)
        assert not ckpt.path.exists()
