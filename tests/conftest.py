"""Shared fixtures for the test suite.

Cycle-tier tests use the full Sapphire-Rapids-like configuration unless they
specifically exercise capacity limits (then ``small_config``).  Fixtures
build the common two-core UIPI setup so individual tests stay focused on
behaviour.
"""

from __future__ import annotations

import os

import pytest

from repro.cpu import isa
from repro.cpu.config import SystemConfig
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import Program, ProgramBuilder
from repro.perf.cache import ENV_CACHE_DIR


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent result cache at a per-session temp dir.

    Keeps test runs hermetic: no reads from (or writes to) the developer's
    ``~/.cache/repro-xui``, while still exercising the cache code paths.
    """
    saved = os.environ.get(ENV_CACHE_DIR)
    os.environ[ENV_CACHE_DIR] = str(tmp_path_factory.mktemp("repro-result-cache"))
    yield
    if saved is None:
        os.environ.pop(ENV_CACHE_DIR, None)
    else:
        os.environ[ENV_CACHE_DIR] = saved

#: Memory word the default test handler increments.
COUNTER_ADDR = 0x20_0000


def build_spin_receiver(handler_body: int = 4) -> Program:
    """An infinite counting loop with the default interrupt handler."""
    builder = ProgramBuilder("spin_receiver")
    builder.label("loop")
    builder.emit(isa.addi(1, 1, 1))
    builder.emit(isa.jmp("loop"))
    builder.emit_default_handler(body_instructions=handler_body, counter_addr=COUNTER_ADDR)
    return builder.build()


def build_count_to(iterations: int, with_handler: bool = True) -> Program:
    """Count to ``iterations`` then halt (optionally with a handler)."""
    builder = ProgramBuilder("count_to")
    builder.emit(isa.movi(1, 0))
    builder.emit(isa.movi(2, iterations))
    builder.label("loop")
    builder.emit(isa.addi(1, 1, 1))
    builder.emit(isa.blt(1, 2, "loop"))
    builder.emit(isa.halt())
    if with_handler:
        builder.emit_default_handler(counter_addr=COUNTER_ADDR)
    return builder.build()


def build_sender(num_sends: int, gap_iterations: int = 50) -> Program:
    """Send ``num_sends`` UIPIs via UITT index 0, spaced by a busy loop."""
    builder = ProgramBuilder("sender")
    for index in range(num_sends):
        builder.emit(isa.senduipi(0))
        builder.emit(isa.movi(6, 0))
        builder.label(f"gap{index}")
        builder.emit(isa.addi(6, 6, 1))
        builder.emit(isa.blti(6, gap_iterations, f"gap{index}"))
    builder.emit(isa.halt())
    return builder.build()


@pytest.fixture
def uipi_pair():
    """(system, sender_core, receiver_core): 3 UIPIs into a spin loop."""
    system = MultiCoreSystem(
        [build_sender(3), build_spin_receiver()],
        [FlushStrategy(), FlushStrategy()],
        trace=True,
    )
    system.connect_uipi(sender_core_id=0, receiver_core_id=1, user_vector=1)
    return system, system.cores[0], system.cores[1]


@pytest.fixture
def tracked_pair():
    """Same as uipi_pair but with tracking on the receiver."""
    system = MultiCoreSystem(
        [build_sender(3), build_spin_receiver()],
        [FlushStrategy(), TrackedStrategy()],
        trace=True,
    )
    system.connect_uipi(sender_core_id=0, receiver_core_id=1, user_vector=1)
    return system, system.cores[0], system.cores[1]


@pytest.fixture
def small_config() -> SystemConfig:
    return SystemConfig.small()
