"""UPID (Table 1): field packing and posting protocol."""

import pytest

from repro.cpu.cache import SharedMemory
from repro.uintr.upid import UPID, UPID_BYTES


@pytest.fixture
def upid():
    return UPID(SharedMemory(), addr=0x1000)


class TestFields:
    def test_initially_clear(self, upid):
        assert not upid.outstanding
        assert not upid.suppressed
        assert upid.notification_vector == 0
        assert upid.notification_destination == 0
        assert upid.pir == 0

    def test_on_bit(self, upid):
        upid.set_outstanding(True)
        assert upid.outstanding
        upid.set_outstanding(False)
        assert not upid.outstanding

    def test_sn_bit_independent_of_on(self, upid):
        upid.set_outstanding(True)
        upid.set_suppressed(True)
        assert upid.outstanding and upid.suppressed
        upid.set_suppressed(False)
        assert upid.outstanding

    def test_notification_vector_bits_16_23(self, upid):
        upid.set_notification_vector(0xEC)
        assert upid.notification_vector == 0xEC
        # Raw layout check against Table 1.
        assert (upid.memory.read(0x1000) >> 16) & 0xFF == 0xEC

    def test_ndst_bits_32_63(self, upid):
        upid.set_notification_destination(27)
        assert upid.notification_destination == 27
        assert (upid.memory.read(0x1000) >> 32) == 27

    def test_fields_do_not_clobber_each_other(self, upid):
        upid.set_notification_vector(0xEC)
        upid.set_notification_destination(5)
        upid.set_outstanding(True)
        upid.set_suppressed(True)
        assert upid.notification_vector == 0xEC
        assert upid.notification_destination == 5
        assert upid.outstanding and upid.suppressed


class TestPosting:
    def test_post_vector_sets_pir_and_on(self, upid):
        upid.post_vector(5)
        assert upid.pir == 1 << 5
        assert upid.outstanding

    def test_post_multiple_vectors_accumulate(self, upid):
        upid.post_vector(1)
        upid.post_vector(9)
        assert upid.pir == (1 << 1) | (1 << 9)

    def test_post_rejects_wide_vector(self, upid):
        with pytest.raises(ValueError):
            upid.post_vector(64)

    def test_take_pir_clears(self, upid):
        upid.post_vector(3)
        assert upid.take_pir() == 1 << 3
        assert upid.pir == 0

    def test_clear_resets_everything(self, upid):
        upid.post_vector(3)
        upid.set_suppressed(True)
        upid.clear()
        assert upid.pir == 0 and not upid.outstanding and not upid.suppressed

    def test_pir_lives_in_second_word(self, upid):
        upid.post_vector(0)
        assert upid.memory.read(0x1000 + 8) == 1
        assert UPID_BYTES == 16

    def test_writer_core_recorded_for_coherence(self):
        memory = SharedMemory()
        upid = UPID(memory, 0x2000)
        upid.post_vector(1, core_id=3)
        assert memory.last_writer(0x2008) == 3
