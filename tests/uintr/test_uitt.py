"""UITT: the per-process send-permission table (§3.1)."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu.cache import SharedMemory
from repro.uintr.uitt import UITT, UITT_ENTRY_BYTES, UITTEntry


class TestEntries:
    def test_entry_validates_vector(self):
        with pytest.raises(ConfigError):
            UITTEntry(upid_addr=0x1000, user_vector=64)

    def test_append_and_read(self):
        uitt = UITT(SharedMemory(), base_addr=0x4000)
        index = uitt.append(0x1000, 5)
        entry = uitt.read(index)
        assert entry.upid_addr == 0x1000
        assert entry.user_vector == 5

    def test_indices_sequential(self):
        uitt = UITT(SharedMemory(), base_addr=0x4000)
        assert uitt.append(0x1000, 1) == 0
        assert uitt.append(0x2000, 2) == 1
        assert len(uitt) == 2

    def test_memory_layout(self):
        memory = SharedMemory()
        uitt = UITT(memory, base_addr=0x4000)
        uitt.append(0x1000, 1)
        uitt.append(0x2000, 2)
        assert memory.read(0x4000) == 0x1000
        assert memory.read(0x4000 + 8) == 1
        assert memory.read(0x4000 + UITT_ENTRY_BYTES) == 0x2000

    def test_capacity_enforced(self):
        uitt = UITT(SharedMemory(), base_addr=0x4000, capacity=2)
        uitt.append(0x1000, 1)
        uitt.append(0x2000, 2)
        with pytest.raises(ConfigError):
            uitt.append(0x3000, 3)

    def test_read_unregistered_index_rejected(self):
        uitt = UITT(SharedMemory(), base_addr=0x4000)
        with pytest.raises(ConfigError):
            uitt.read(0)

    def test_entry_addr_bounds(self):
        uitt = UITT(SharedMemory(), base_addr=0x4000, capacity=4)
        with pytest.raises(ConfigError):
            uitt.entry_addr(4)
