"""Local APIC and bus: classification, forwarding (§4.5), wire latency."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.sim.simulator import Simulator
from repro.uintr.apic import ApicBus, InterruptKind, LocalApic


class TestClassification:
    def test_uinv_vector_is_uipi(self):
        apic = LocalApic(0, uipi_notification_vector=0xEC)
        apic.accept(0xEC, time=0.0)
        assert apic.has_pending()
        assert apic.peek().kind is InterruptKind.UIPI

    def test_other_vector_without_forwarding_goes_to_kernel(self):
        apic = LocalApic(0)
        apic.accept(0x40, time=0.0)
        assert not apic.has_pending()
        assert len(apic.kernel_queue) == 1

    def test_take_order_fifo(self):
        apic = LocalApic(0)
        apic.accept(0xEC, time=1.0)
        apic.raise_timer(2, time=2.0)
        assert apic.take().kind is InterruptKind.UIPI
        assert apic.take().kind is InterruptKind.TIMER

    def test_take_empty_raises(self):
        with pytest.raises(SimulationError):
            LocalApic(0).take()

    def test_timer_carries_user_vector(self):
        apic = LocalApic(0)
        apic.raise_timer(7, time=0.0)
        assert apic.take().user_vector == 7


class TestForwarding:
    def test_fast_path_when_active(self):
        apic = LocalApic(0)
        apic.enable_forwarding(40, user_vector=3)
        apic.set_active_vectors(apic.forwarding_enabled)
        apic.accept(40, time=0.0, kind=InterruptKind.DEVICE)
        pending = apic.take()
        assert pending.kind is InterruptKind.DEVICE
        assert pending.user_vector == 3
        assert apic.forwarded_fast == 1

    def test_slow_path_when_thread_not_running(self):
        apic = LocalApic(0)
        apic.enable_forwarding(40, user_vector=3)
        apic.set_active_vectors(0)  # destination thread descheduled
        apic.accept(40, time=0.0, kind=InterruptKind.DEVICE)
        assert not apic.has_pending()
        assert len(apic.slow_path_queue) == 1
        assert apic.forwarded_slow == 1

    def test_disable_forwarding(self):
        apic = LocalApic(0)
        apic.enable_forwarding(40, user_vector=3)
        apic.disable_forwarding(40)
        apic.accept(40, time=0.0, kind=InterruptKind.DEVICE)
        assert len(apic.kernel_queue) == 1

    def test_unmapped_vector_not_forwarded(self):
        apic = LocalApic(0)
        apic.enable_forwarding(40, user_vector=3)
        apic.set_active_vectors(apic.forwarding_enabled)
        apic.accept(41, time=0.0, kind=InterruptKind.DEVICE)
        assert len(apic.kernel_queue) == 1

    def test_vector_range_checked(self):
        with pytest.raises(ConfigError):
            LocalApic(0).enable_forwarding(256, user_vector=1)

    def test_256_bit_register_width(self):
        apic = LocalApic(0)
        apic.enable_forwarding(255, user_vector=1)
        assert apic.forwarding_enabled >> 255 == 1


class TestExtendedMessageFormat:
    """§4.5 future work: repurposed clusterID bits lift the vector limit."""

    def test_many_channels_on_one_vector(self):
        apic = LocalApic(0)
        for sub in range(512):  # well past the 256-vector ceiling
            apic.enable_extended_forwarding(40, subchannel=sub, user_vector=sub % 64)
        assert apic.extended_channel_count == 512

    def test_extended_fast_path(self):
        apic = LocalApic(0)
        apic.enable_extended_forwarding(40, subchannel=7, user_vector=3)
        apic.set_active_vectors(apic.forwarding_enabled)
        apic.accept_extended(40, subchannel=7, time=1.0)
        pending = apic.take()
        assert pending.kind is InterruptKind.DEVICE
        assert pending.user_vector == 3

    def test_extended_slow_path_when_inactive(self):
        apic = LocalApic(0)
        apic.enable_extended_forwarding(40, subchannel=7, user_vector=3)
        apic.set_active_vectors(0)
        apic.accept_extended(40, subchannel=7, time=1.0)
        assert not apic.has_pending()
        assert len(apic.slow_path_queue) == 1

    def test_unmapped_subchannel_goes_to_kernel(self):
        apic = LocalApic(0)
        apic.enable_extended_forwarding(40, subchannel=1, user_vector=3)
        apic.accept_extended(40, subchannel=2, time=1.0)
        assert len(apic.kernel_queue) == 1

    def test_subchannel_range_checked(self):
        apic = LocalApic(0)
        with pytest.raises(ConfigError):
            apic.enable_extended_forwarding(40, subchannel=1 << 16, user_vector=1)

    def test_channels_are_distinct(self):
        apic = LocalApic(0)
        apic.enable_extended_forwarding(40, 1, user_vector=5)
        apic.enable_extended_forwarding(40, 2, user_vector=9)
        apic.set_active_vectors(apic.forwarding_enabled)
        apic.accept_extended(40, 2, time=0.0)
        assert apic.take().user_vector == 9


class TestBus:
    def make_bus(self, wire=100.0):
        sim = Simulator()
        bus = ApicBus(
            scheduler=lambda delay, cb: sim.schedule(delay, cb),
            wire_latency=wire,
            clock=lambda: sim.now,
        )
        return sim, bus

    def test_ipi_arrives_after_wire_latency(self):
        sim, bus = self.make_bus(wire=140.0)
        apic = LocalApic(1)
        bus.attach(apic)
        bus.send_ipi(1, 0xEC)
        sim.run()
        assert apic.has_pending()
        assert apic.peek().arrival_time == 140.0

    def test_unknown_destination_rejected(self):
        _, bus = self.make_bus()
        with pytest.raises(SimulationError):
            bus.send_ipi(9, 0xEC)

    def test_duplicate_apic_id_rejected(self):
        _, bus = self.make_bus()
        bus.attach(LocalApic(0))
        with pytest.raises(ConfigError):
            bus.attach(LocalApic(0))

    def test_device_interrupt_with_delay(self):
        sim, bus = self.make_bus(wire=50.0)
        apic = LocalApic(2)
        apic.enable_forwarding(40, user_vector=1)
        apic.set_active_vectors(apic.forwarding_enabled)
        bus.attach(apic)
        bus.send_device_interrupt(2, 40, delay=25.0)
        sim.run()
        assert apic.peek().arrival_time == 75.0

    def test_message_count(self):
        sim, bus = self.make_bus()
        bus.attach(LocalApic(0))
        bus.send_ipi(0, 0xEC)
        bus.send_ipi(0, 0xEC)
        assert bus.messages_sent == 2
