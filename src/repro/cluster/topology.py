"""Cluster topology: tenants -> shards -> hosts, validated and canonical.

A :class:`ClusterTopology` is the whole experiment's identity: how many
tenants, how they partition into shards, which hosts the shards land on,
what workload template each tenant runs and which notification strategies
are swept.  It follows the scenario-DSL idiom — frozen slotted dataclasses,
``__post_init__`` validation raising :class:`ConfigError`, strict
``from_json`` that rejects unknown keys, and a byte-stable ``dumps`` whose
hash (:meth:`ClusterTopology.topology_id`) keys checkpoints and reports.

Shard independence is what makes the fan-out exact: tenants never share
queues or cores across shards, every shard derives its own RNG seed via
:func:`~repro.common.rng.derive_seed`, and — deliberately — the *same*
shard seed is used for every strategy (common random numbers), so the
flush/tracked/timer comparison sees identical arrival processes and the
ordering verdict is never an artifact of sampling noise.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.notify.mechanisms import Mechanism
from repro.scenario.dsl import _reject_unknown, _require_int
from repro.scenario.tenants import TENANT_TEMPLATES

#: Strategy names swept by the cluster layer, in Figure-7 p999 order
#: (worst first): UIPI with full state flush, xUI tracked-state IPI, and
#: the xUI kernel-bypass timer.
CLUSTER_STRATEGIES: Tuple[str, ...] = ("flush", "tracked", "timer")

#: Strategy -> event-tier preemption mechanism (drives both the runtime's
#: per-quantum preemption cost and the per-event delivery cost).
STRATEGY_MECHANISMS = {
    "flush": Mechanism.UIPI,
    "tracked": Mechanism.XUI_TRACKED_IPI,
    "timer": Mechanism.XUI_KB_TIMER,
}

#: Histogram resolution for cluster latency: 256 sub-buckets per octave
#: (~0.4% quantization error).  The flush-vs-tracked p999 gap is a few
#: hundred cycles on ~10k-cycle tails (~4%), so the default ~6% resolution
#: could collapse the ordering into one bucket; 8 bits cannot.
CLUSTER_SUB_BITS = 8

#: Timer-core capacity bound: UIPI-style mechanisms multiplex one sender
#: core across workers (see ``CostModel.timer_core_capacity``); 22 workers
#: is the 5-us-quantum capacity, so larger shards would be rejected by the
#: runtime anyway.
MAX_CORES_PER_SHARD = 22

MAX_TENANTS = 1_000_000_000
MAX_SHARDS = 65_536


def _require_number(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{what} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """A homogeneous group of tenants: template, head-count, per-tenant rate."""

    template: str
    count: int
    rps: float

    def __post_init__(self) -> None:
        if self.template not in TENANT_TEMPLATES:
            known = ", ".join(sorted(TENANT_TEMPLATES))
            raise ConfigError(
                f"tenant template must be one of [{known}], got {self.template!r}"
            )
        _require_int(self.count, "tenant count")
        if not 1 <= self.count <= MAX_TENANTS:
            raise ConfigError(f"tenant count must be in [1, {MAX_TENANTS}], got {self.count}")
        rps = _require_number(self.rps, "tenant rps")
        if not 0 < rps <= 1_000_000:
            raise ConfigError(f"tenant rps must be in (0, 1e6], got {self.rps!r}")

    def to_json(self) -> dict:
        return {"template": self.template, "count": self.count, "rps": self.rps}

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "TenantSpec":
        _reject_unknown(obj, ("template", "count", "rps"), "tenant spec")
        return cls(
            template=obj.get("template", "rocksdb"),
            count=_require_int(obj.get("count", 1), "tenant count"),
            rps=_require_number(obj.get("rps", 1.0), "tenant rps"),
        )


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One shard's placement and sizing (derived from the topology)."""

    index: int
    host: int
    tenants: int
    workers: int
    scenario: str
    seed: int

    def __post_init__(self) -> None:
        _require_int(self.index, "shard index")
        _require_int(self.host, "shard host")
        _require_int(self.tenants, "shard tenants")
        _require_int(self.workers, "shard workers")
        _require_int(self.seed, "shard seed")
        if self.index < 0 or self.host < 0:
            raise ConfigError(f"shard index/host must be >= 0, got {self.index}/{self.host}")
        if self.tenants < 0:
            raise ConfigError(f"shard tenants must be >= 0, got {self.tenants}")
        if not 1 <= self.workers <= MAX_CORES_PER_SHARD:
            raise ConfigError(
                f"shard workers must be in [1, {MAX_CORES_PER_SHARD}], got {self.workers}"
            )
        if self.scenario not in TENANT_TEMPLATES:
            raise ConfigError(f"unknown shard scenario {self.scenario!r}")

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "host": self.host,
            "tenants": self.tenants,
            "workers": self.workers,
            "scenario": self.scenario,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "ShardSpec":
        _reject_unknown(
            obj, ("index", "host", "tenants", "workers", "scenario", "seed"), "shard spec"
        )
        return cls(
            index=_require_int(obj.get("index", 0), "shard index"),
            host=_require_int(obj.get("host", 0), "shard host"),
            tenants=_require_int(obj.get("tenants", 0), "shard tenants"),
            workers=_require_int(obj.get("workers", 1), "shard workers"),
            scenario=obj.get("scenario", "rocksdb"),
            seed=_require_int(obj.get("seed", 0), "shard seed"),
        )


@dataclass(frozen=True, slots=True)
class ClusterTopology:
    """The validated, canonical identity of one cluster experiment."""

    name: str = "cluster"
    tenants: int = 4096
    shards: int = 16
    hosts: int = 4
    cores_per_shard: int = 1
    scenario: str = "rocksdb"
    strategies: Tuple[str, ...] = CLUSTER_STRATEGIES
    tenant_rps: float = 50.0
    duration_ms: float = 20.0
    seed: int = 0
    sub_bits: int = CLUSTER_SUB_BITS

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(f"topology name must be a non-empty string, got {self.name!r}")
        _require_int(self.tenants, "tenants")
        _require_int(self.shards, "shards")
        _require_int(self.hosts, "hosts")
        _require_int(self.cores_per_shard, "cores_per_shard")
        _require_int(self.seed, "seed")
        _require_int(self.sub_bits, "sub_bits")
        if not 1 <= self.tenants <= MAX_TENANTS:
            raise ConfigError(f"tenants must be in [1, {MAX_TENANTS}], got {self.tenants}")
        if not 1 <= self.shards <= MAX_SHARDS:
            raise ConfigError(f"shards must be in [1, {MAX_SHARDS}], got {self.shards}")
        if self.tenants < self.shards:
            raise ConfigError(
                f"need at least one tenant per shard: {self.tenants} tenants < "
                f"{self.shards} shards"
            )
        if not 1 <= self.hosts <= self.shards:
            raise ConfigError(f"hosts must be in [1, shards], got {self.hosts}")
        if not 1 <= self.cores_per_shard <= MAX_CORES_PER_SHARD:
            raise ConfigError(
                f"cores_per_shard must be in [1, {MAX_CORES_PER_SHARD}], "
                f"got {self.cores_per_shard}"
            )
        if self.scenario not in TENANT_TEMPLATES:
            known = ", ".join(sorted(TENANT_TEMPLATES))
            raise ConfigError(f"scenario must be one of [{known}], got {self.scenario!r}")
        if not isinstance(self.strategies, tuple) or not self.strategies:
            raise ConfigError("strategies must be a non-empty tuple")
        seen = []
        for strategy in self.strategies:
            if strategy not in STRATEGY_MECHANISMS:
                raise ConfigError(
                    f"strategy must be one of {CLUSTER_STRATEGIES}, got {strategy!r}"
                )
            if strategy in seen:
                raise ConfigError(f"duplicate strategy {strategy!r}")
            seen.append(strategy)
        rps = _require_number(self.tenant_rps, "tenant_rps")
        if not 0 < rps <= 1_000_000:
            raise ConfigError(f"tenant_rps must be in (0, 1e6], got {self.tenant_rps!r}")
        duration = _require_number(self.duration_ms, "duration_ms")
        if not 1.0 <= duration <= 10_000.0:
            raise ConfigError(f"duration_ms must be in [1, 10000], got {self.duration_ms!r}")
        if not 1 <= self.sub_bits <= 12:
            raise ConfigError(f"sub_bits must be in [1, 12], got {self.sub_bits}")

    # -- derived placement ---------------------------------------------------

    def tenants_for_shard(self, index: int) -> int:
        """Balanced partition: the first ``tenants % shards`` shards get one extra."""
        if not 0 <= index < self.shards:
            raise ConfigError(f"shard index must be in [0, {self.shards}), got {index}")
        base, extra = divmod(self.tenants, self.shards)
        return base + (1 if index < extra else 0)

    def host_for_shard(self, index: int) -> int:
        """Round-robin shard placement across hosts."""
        return index % self.hosts

    def seed_for_shard(self, index: int) -> int:
        """Stable per-shard child seed.  Strategy is deliberately *not* part
        of the derivation: every strategy replays the same arrivals on a
        shard (common random numbers), so the ordering verdict compares
        mechanisms, not noise."""
        return derive_seed(self.seed, "cluster-shard", index)

    def shard_specs(self) -> Tuple[ShardSpec, ...]:
        return tuple(
            ShardSpec(
                index=index,
                host=self.host_for_shard(index),
                tenants=self.tenants_for_shard(index),
                workers=self.cores_per_shard,
                scenario=self.scenario,
                seed=self.seed_for_shard(index),
            )
            for index in range(self.shards)
        )

    def tenant_spec_for_shard(self, index: int) -> TenantSpec:
        return TenantSpec(
            template=self.scenario, count=self.tenants_for_shard(index), rps=self.tenant_rps
        )

    # -- canonical form ------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "tenants": self.tenants,
            "shards": self.shards,
            "hosts": self.hosts,
            "cores_per_shard": self.cores_per_shard,
            "scenario": self.scenario,
            "strategies": list(self.strategies),
            "tenant_rps": self.tenant_rps,
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            "sub_bits": self.sub_bits,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "ClusterTopology":
        _reject_unknown(
            obj,
            (
                "name",
                "tenants",
                "shards",
                "hosts",
                "cores_per_shard",
                "scenario",
                "strategies",
                "tenant_rps",
                "duration_ms",
                "seed",
                "sub_bits",
            ),
            "cluster topology",
        )
        strategies = obj.get("strategies", list(CLUSTER_STRATEGIES))
        if not isinstance(strategies, (list, tuple)):
            raise ConfigError(f"strategies must be a list, got {strategies!r}")
        return cls(
            name=obj.get("name", "cluster"),
            tenants=_require_int(obj.get("tenants", 4096), "tenants"),
            shards=_require_int(obj.get("shards", 16), "shards"),
            hosts=_require_int(obj.get("hosts", 4), "hosts"),
            cores_per_shard=_require_int(obj.get("cores_per_shard", 1), "cores_per_shard"),
            scenario=obj.get("scenario", "rocksdb"),
            strategies=tuple(strategies),
            tenant_rps=_require_number(obj.get("tenant_rps", 50.0), "tenant_rps"),
            duration_ms=_require_number(obj.get("duration_ms", 20.0), "duration_ms"),
            seed=_require_int(obj.get("seed", 0), "seed"),
            sub_bits=_require_int(obj.get("sub_bits", CLUSTER_SUB_BITS), "sub_bits"),
        )

    def dumps(self) -> str:
        """Byte-stable canonical form: equal topologies dump identically."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def topology_id(self) -> str:
        """Content hash of the canonical dump (experiment identity)."""
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()[:12]
