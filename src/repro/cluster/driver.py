"""The cluster driver: fan (shard x strategy) jobs over the sweep engine.

One :class:`ClusterDriver` expands a topology into its (strategy, shard)
grid of :class:`~repro.cluster.shard.ShardJob`\\ s, runs them through
:class:`~repro.perf.engine.SweepRunner` (process pool, salvage, retries,
JSONL checkpoint/resume keyed by the job list's canonical hash), and
aggregates the per-shard results into a :class:`ClusterReport`.

Restartability falls out of the sweep engine: with ``checkpoint_dir`` set,
a killed million-tenant run re-executes only the shards that had not
completed, and — because every job is a pure function of its own fields —
the resumed report is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from typing import List, Optional

from repro.notify.costs import CostModel
from repro.obs.registry import MetricsRegistry
from repro.perf.engine import SweepRunner
from repro.cluster.aggregate import aggregate_strategy, ordering_verdict
from repro.cluster.report import ClusterReport
from repro.cluster.shard import ShardJob, ShardResult, run_shard_job
from repro.cluster.topology import ClusterTopology


class ClusterDriver:
    """Runs one topology end to end; see the module docstring."""

    def __init__(
        self,
        topology: ClusterTopology,
        jobs: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        costs: Optional[CostModel] = None,
    ) -> None:
        self.topology = topology
        self.costs = costs or CostModel.paper_defaults()
        self.runner = SweepRunner(jobs, checkpoint_dir=checkpoint_dir)

    @property
    def last_mode(self) -> str:
        """How the most recent run executed (serial/parallel/salvaged)."""
        return self.runner.last_mode

    def shard_jobs(self) -> List[ShardJob]:
        """The full (strategy-major, then shard-index) job grid."""
        topology = self.topology
        jobs: List[ShardJob] = []
        for strategy in topology.strategies:
            for spec in topology.shard_specs():
                jobs.append(
                    ShardJob(
                        shard_index=spec.index,
                        host=spec.host,
                        strategy=strategy,
                        workers=spec.workers,
                        groups=(topology.tenant_spec_for_shard(spec.index),),
                        duration_ms=topology.duration_ms,
                        seed=spec.seed,
                        sub_bits=topology.sub_bits,
                        costs=self.costs,
                    )
                )
        return jobs

    def run(self) -> ClusterReport:
        """Execute every shard job and aggregate into the cluster report."""
        jobs = self.shard_jobs()
        results: List[ShardResult] = self.runner.map(run_shard_job, jobs)
        per_strategy = len(self.topology.shard_specs())
        aggregates = tuple(
            aggregate_strategy(
                strategy, results[i * per_strategy : (i + 1) * per_strategy]
            )
            for i, strategy in enumerate(self.topology.strategies)
        )
        return ClusterReport(
            topology=self.topology,
            aggregates=aggregates,
            verdict=ordering_verdict(aggregates),
        )


def report_to_metrics(report: ClusterReport, registry: MetricsRegistry) -> None:
    """Publish a cluster report under the ``cluster.`` metrics namespace.

    Counters and gauges land at ``cluster.<strategy>.*``; each strategy's
    merged latency distribution folds into ``cluster.<strategy>.latency``
    via the registry's histogram merge path.
    """
    registry.gauge("cluster.scale_factor", report.scale_factor)
    registry.set_counter("cluster.tenants", report.topology.tenants)
    registry.set_counter("cluster.shards", report.topology.shards)
    for agg in report.aggregates:
        prefix = f"cluster.{agg.strategy}"
        registry.set_counter(f"{prefix}.offered", agg.offered)
        registry.set_counter(f"{prefix}.completed", agg.completed)
        registry.set_counter(f"{prefix}.in_window", agg.in_window)
        registry.set_counter(f"{prefix}.preemptions_total", agg.preemptions_total)
        registry.merge_histogram(f"{prefix}.latency", agg.histogram())
