"""Sharded event-tier datacenter simulation for million-tenant workloads.

The cluster layer composes thousands of independent event-tier runtime
simulations ("shards") into one experiment: :mod:`.topology` maps tenants
onto shards and hosts, :mod:`.shard` runs one (shard, strategy) cell as a
pure picklable job, :mod:`.driver` fans the cells over the process-pool
:class:`~repro.perf.engine.SweepRunner` with checkpoint/resume, and
:mod:`.aggregate` / :mod:`.report` merge per-shard latency histograms into
cluster-wide percentiles and a Figure-7 ordering verdict.
"""

from repro.cluster.aggregate import OrderingVerdict, StrategyAggregate
from repro.cluster.driver import ClusterDriver
from repro.cluster.report import ClusterReport
from repro.cluster.shard import ShardJob, ShardResult, run_shard_job
from repro.cluster.topology import (
    CLUSTER_STRATEGIES,
    ClusterTopology,
    ShardSpec,
    TenantSpec,
)

__all__ = [
    "CLUSTER_STRATEGIES",
    "ClusterDriver",
    "ClusterReport",
    "ClusterTopology",
    "OrderingVerdict",
    "ShardJob",
    "ShardResult",
    "ShardSpec",
    "StrategyAggregate",
    "TenantSpec",
    "run_shard_job",
]
