"""Arrival generation for tenant groups inside one shard.

Compiles a :class:`~repro.scenario.tenants.TenantTemplate` plus a
:class:`~repro.cluster.topology.TenantSpec` head-count into concrete
arrival events on a shard's simulator, spawning one
:class:`~repro.runtime.uthread.UThread` per request/notification.

All randomness flows through the shard's named :class:`RngStreams`, so the
arrival process is a pure function of the shard seed — and because the
shard seed excludes the strategy, every strategy replays byte-identical
arrivals (common random numbers).  ``delivery_cycles`` is the per-event
notification-receive cost for templates whose events *are* notifications
(timers, fan-out); it is the only template input that differs across
strategies.
"""

from __future__ import annotations

from repro.apps.loadgen import PoissonLoadGenerator
from repro.apps.rocksdb import BimodalServiceModel
from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.common.units import us_to_cycles
from repro.runtime.aspen import AspenRuntime
from repro.runtime.uthread import UThread
from repro.scenario.tenants import TenantTemplate, tenant_template
from repro.sim.simulator import Simulator

#: Simulated clock rate (paper's 2 GHz server), cycles per second.
CLOCK_HZ = 2e9


def schedule_group(
    sim: Simulator,
    runtime: AspenRuntime,
    template: TenantTemplate,
    count: int,
    rps: float,
    rng: RngStreams,
    duration_cycles: float,
    delivery_cycles: float,
) -> int:
    """Pre-schedule one tenant group's arrivals; returns the offered count."""
    if count < 1:
        raise ConfigError(f"tenant group count must be >= 1, got {count}")
    if duration_cycles <= 0:
        raise ConfigError(f"duration_cycles must be > 0, got {duration_cycles}")
    if delivery_cycles < 0:
        raise ConfigError(f"delivery_cycles must be >= 0, got {delivery_cycles}")
    extra = delivery_cycles if template.delivery_cost else 0.0
    if template.kind == "bimodal_poisson":
        return _schedule_bimodal(sim, runtime, template, count * rps, rng, duration_cycles)
    if template.kind == "periodic_timer":
        return _schedule_timers(
            sim, runtime, template, count, rps, rng, duration_cycles, extra
        )
    if template.kind == "burst_poisson":
        return _schedule_bursts(
            sim, runtime, template, count * rps, rng, duration_cycles, extra
        )
    raise ConfigError(f"unknown template kind {template.kind!r}")  # pragma: no cover


def schedule_scenario(
    sim: Simulator,
    runtime: AspenRuntime,
    scenario: str,
    count: int,
    rps: float,
    rng: RngStreams,
    duration_cycles: float,
    delivery_cycles: float,
) -> int:
    """:func:`schedule_group` with the template looked up by scenario name."""
    return schedule_group(
        sim, runtime, tenant_template(scenario), count, rps, rng, duration_cycles,
        delivery_cycles,
    )


def _spawn(sim: Simulator, runtime: AspenRuntime, service_cycles: float, kind: str) -> None:
    runtime.spawn(
        UThread(service_cycles=service_cycles, kind=kind, arrival_time=sim.now)
    )


def _schedule_bimodal(
    sim: Simulator,
    runtime: AspenRuntime,
    template: TenantTemplate,
    rate_per_second: float,
    rng: RngStreams,
    duration_cycles: float,
) -> int:
    service_model = BimodalServiceModel(
        rng=rng,
        get_mean_us=template.get_us,
        scan_mean_us=template.scan_us,
        scan_fraction=template.scan_fraction,
    )
    generator = PoissonLoadGenerator(
        rate_per_second, service_model=service_model, rng=rng, clock_hz=CLOCK_HZ
    )

    def on_arrival(arrival) -> None:
        _spawn(sim, runtime, arrival.spec.service_cycles, arrival.spec.kind)

    return generator.schedule_into(sim, duration_cycles, on_arrival)


def _schedule_timers(
    sim: Simulator,
    runtime: AspenRuntime,
    template: TenantTemplate,
    count: int,
    rps: float,
    rng: RngStreams,
    duration_cycles: float,
    delivery_cycles: float,
) -> int:
    """Per-tenant periodic timers with random phase.

    Each tenant fires every ``1/rps`` seconds; the handler runs
    ``handler_us`` plus the strategy's receive cost.  Phases are drawn per
    tenant so the shard's firings interleave rather than beat in lockstep.
    """
    period = CLOCK_HZ / rps
    service = us_to_cycles(template.handler_us) + delivery_cycles
    offered = 0
    for _tenant in range(count):
        when = rng.uniform("timer_phase", 0.0, period)
        while when < duration_cycles:
            sim.schedule_at(
                when,
                lambda: _spawn(sim, runtime, service, "timer"),
                name="tenant-timer",
            )
            offered += 1
            when += period
    return offered


def _schedule_bursts(
    sim: Simulator,
    runtime: AspenRuntime,
    template: TenantTemplate,
    base_rate_per_second: float,
    rng: RngStreams,
    duration_cycles: float,
    delivery_cycles: float,
) -> int:
    """Open-loop Poisson events whose rate spikes inside burst windows.

    The rate is piecewise-constant: ``base * burst_factor`` when
    ``t mod burst_period < burst_len``, ``base`` otherwise.  Gaps are drawn
    at the rate in effect at the previous arrival — a deterministic,
    slightly-smoothed approximation of the inhomogeneous process that keeps
    every draw attributable to one named RNG stream.
    """
    burst_period = us_to_cycles(template.burst_period_ms * 1000.0)
    burst_len = us_to_cycles(template.burst_len_ms * 1000.0)
    service = us_to_cycles(template.handler_us) + delivery_cycles
    offered = 0
    now = 0.0
    while True:
        in_burst = (now % burst_period) < burst_len
        rate = base_rate_per_second * (template.burst_factor if in_burst else 1.0)
        now += rng.exponential("fanout_arrivals", CLOCK_HZ / rate)
        if now >= duration_cycles:
            return offered
        sim.schedule_at(
            now,
            lambda: _spawn(sim, runtime, service, "event"),
            name="fanout-event",
        )
        offered += 1
