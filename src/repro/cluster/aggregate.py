"""Cross-shard aggregation: merged histograms, percentiles, verdict.

Per-shard histograms carry exact bucket state
(:meth:`LatencyHistogram.to_state`), so merging them with
:meth:`LatencyHistogram.merge_many` yields the *same* distribution a
single giant histogram over every tenant would — shard boundaries are
invisible in the cluster-wide percentiles.  The ordering verdict then
checks the paper's Figure-7 claim at cluster scale: p999(flush) >
p999(tracked) > p999(timer), strictly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.obs.hist import LatencyHistogram
from repro.scenario.dsl import _reject_unknown, _require_int
from repro.cluster.shard import ShardResult
from repro.cluster.topology import CLUSTER_STRATEGIES


@dataclass(frozen=True, slots=True)
class StrategyAggregate:
    """Cluster-wide totals and tail percentiles for one strategy."""

    strategy: str
    shards: int
    tenants: int
    offered: int
    completed: int
    in_window: int
    scans: int
    preemptions_total: int
    count: int
    mean: Optional[float]
    p50: Optional[float]
    p99: Optional[float]
    p999: Optional[float]
    hist_state: Dict[str, Any]

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "shards": self.shards,
            "tenants": self.tenants,
            "offered": self.offered,
            "completed": self.completed,
            "in_window": self.in_window,
            "scans": self.scans,
            "preemptions_total": self.preemptions_total,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "hist_state": self.hist_state,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "StrategyAggregate":
        _reject_unknown(
            obj,
            (
                "strategy",
                "shards",
                "tenants",
                "offered",
                "completed",
                "in_window",
                "scans",
                "preemptions_total",
                "count",
                "mean",
                "p50",
                "p99",
                "p999",
                "hist_state",
            ),
            "strategy aggregate",
        )
        hist_state = obj.get("hist_state", {})
        LatencyHistogram.from_state(hist_state)  # validate eagerly
        return cls(
            strategy=obj.get("strategy", "flush"),
            shards=_require_int(obj.get("shards", 0), "shards"),
            tenants=_require_int(obj.get("tenants", 0), "tenants"),
            offered=_require_int(obj.get("offered", 0), "offered"),
            completed=_require_int(obj.get("completed", 0), "completed"),
            in_window=_require_int(obj.get("in_window", 0), "in_window"),
            scans=_require_int(obj.get("scans", 0), "scans"),
            preemptions_total=_require_int(obj.get("preemptions_total", 0), "preemptions_total"),
            count=_require_int(obj.get("count", 0), "count"),
            mean=obj.get("mean"),
            p50=obj.get("p50"),
            p99=obj.get("p99"),
            p999=obj.get("p999"),
            hist_state=dict(hist_state),
        )

    def histogram(self) -> LatencyHistogram:
        return LatencyHistogram.from_state(self.hist_state)


@dataclass(frozen=True, slots=True)
class OrderingVerdict:
    """The Figure-7 check: is p999 strictly ordered flush > tracked > timer?

    ``applicable`` is False when the topology swept a strict subset of the
    three strategies or a strategy produced no samples — the check is then
    skipped, not failed.
    """

    applicable: bool
    ok: bool
    expected: Tuple[str, ...]
    p999: Dict[str, Optional[float]]

    def to_json(self) -> dict:
        return {
            "applicable": self.applicable,
            "ok": self.ok,
            "expected": list(self.expected),
            "p999": dict(self.p999),
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "OrderingVerdict":
        _reject_unknown(obj, ("applicable", "ok", "expected", "p999"), "ordering verdict")
        expected = obj.get("expected", list(CLUSTER_STRATEGIES))
        p999 = obj.get("p999", {})
        if not isinstance(p999, Mapping):
            raise ConfigError("verdict p999 must be an object")
        return cls(
            applicable=bool(obj.get("applicable", False)),
            ok=bool(obj.get("ok", False)),
            expected=tuple(expected),
            p999=dict(p999),
        )


def aggregate_strategy(strategy: str, results: Sequence[ShardResult]) -> StrategyAggregate:
    """Merge one strategy's shard results into cluster-wide numbers."""
    for result in results:
        if result.strategy != strategy:
            raise ConfigError(
                f"shard {result.shard_index} carries strategy {result.strategy!r}, "
                f"expected {strategy!r}"
            )
    merged = LatencyHistogram.merge_many(
        (result.histogram() for result in results),
    )
    return StrategyAggregate(
        strategy=strategy,
        shards=len(results),
        tenants=sum(r.tenants for r in results),
        offered=sum(r.offered for r in results),
        completed=sum(r.completed for r in results),
        in_window=sum(r.in_window for r in results),
        scans=sum(r.scans for r in results),
        preemptions_total=sum(r.preemptions_total for r in results),
        count=merged.count,
        mean=merged.mean,
        p50=merged.percentile(50.0),
        p99=merged.percentile(99.0),
        p999=merged.percentile(99.9),
        hist_state=merged.to_state(),
    )


def ordering_verdict(aggregates: Sequence[StrategyAggregate]) -> OrderingVerdict:
    """The Figure-7 ordering check over a set of strategy aggregates."""
    p999_by_strategy: Dict[str, Optional[float]] = {
        agg.strategy: agg.p999 for agg in aggregates
    }
    have_all = all(name in p999_by_strategy for name in CLUSTER_STRATEGIES)
    values = [p999_by_strategy.get(name) for name in CLUSTER_STRATEGIES]
    applicable = have_all and all(v is not None for v in values)
    ok = False
    if applicable:
        flush, tracked, timer = values
        assert flush is not None and tracked is not None and timer is not None
        ok = flush > tracked > timer
    return OrderingVerdict(
        applicable=applicable,
        ok=ok,
        expected=CLUSTER_STRATEGIES,
        p999=p999_by_strategy,
    )
