"""One shard of the cluster: a pure, picklable event-tier simulation job.

A :class:`ShardJob` is everything one (shard, strategy) cell needs —
placement, tenant groups, seed, duration, and the calibrated
:class:`~repro.notify.costs.CostModel` — as a frozen dataclass so
:func:`~repro.perf.cache.canonical` gives it a stable identity for
checkpoint keys and :mod:`pickle` moves it to a pool worker.
:func:`run_shard_job` is the module-level point function handed to
:class:`~repro.perf.engine.SweepRunner`: it builds a fresh simulator,
Aspen runtime, and RNG from the job alone, so serial and parallel
execution produce bit-identical :class:`ShardResult`\\ s.

The strategy enters in exactly two places: the runtime's preemption
mechanism (each quantum tick charges ``costs.preemption_cost(mechanism)``)
and the per-event delivery cost for notification-shaped templates.  The
arrival process itself is strategy-independent (common random numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.notify.costs import CostModel
from repro.obs.hist import LatencyHistogram
from repro.runtime.aspen import AspenRuntime, RuntimeConfig
from repro.runtime.uthread import UThread
from repro.scenario.dsl import _reject_unknown, _require_int
from repro.sim.simulator import Simulator
from repro.cluster.tenant import schedule_scenario
from repro.cluster.topology import STRATEGY_MECHANISMS, TenantSpec

#: The paper's preemption quantum: 5 us at 2 GHz.
QUANTUM_CYCLES = 10_000.0

#: Simulated clock rate, cycles per second.
CLOCK_HZ = 2e9

#: Request kinds whose response times feed the shard's latency histogram,
#: per scenario.  RocksDB measures GETs (Figure 7's y-axis); SCANs are
#: counted separately so they can block GETs without polluting the tail.
MEASURED_KINDS = {
    "rocksdb": ("get",),
    "timers": ("timer",),
    "fanout": ("event",),
}


@dataclass(frozen=True, slots=True)
class ShardJob:
    """One (shard, strategy) sweep point — pure input, stable identity."""

    shard_index: int
    host: int
    strategy: str
    workers: int
    groups: Tuple[TenantSpec, ...]
    duration_ms: float
    seed: int
    sub_bits: int
    costs: CostModel

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGY_MECHANISMS:
            raise ConfigError(f"unknown strategy {self.strategy!r}")
        if not isinstance(self.groups, tuple) or not self.groups:
            raise ConfigError("shard job needs a non-empty tuple of tenant groups")
        if self.shard_index < 0 or self.host < 0:
            raise ConfigError("shard index/host must be >= 0")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if not self.duration_ms > 0:
            raise ConfigError(f"duration_ms must be > 0, got {self.duration_ms}")
        if not 1 <= self.sub_bits <= 12:
            raise ConfigError(f"sub_bits must be in [1, 12], got {self.sub_bits}")

    @property
    def tenants(self) -> int:
        return sum(group.count for group in self.groups)

    def to_json(self) -> dict:
        return {
            "shard_index": self.shard_index,
            "host": self.host,
            "strategy": self.strategy,
            "workers": self.workers,
            "groups": [group.to_json() for group in self.groups],
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            "sub_bits": self.sub_bits,
            "costs": dict(sorted(vars(self.costs).items())),
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "ShardJob":
        _reject_unknown(
            obj,
            (
                "shard_index",
                "host",
                "strategy",
                "workers",
                "groups",
                "duration_ms",
                "seed",
                "sub_bits",
                "costs",
            ),
            "shard job",
        )
        groups = obj.get("groups", [])
        if not isinstance(groups, (list, tuple)):
            raise ConfigError("shard job groups must be a list")
        costs = obj.get("costs", {})
        if not isinstance(costs, Mapping):
            raise ConfigError("shard job costs must be an object")
        return cls(
            shard_index=_require_int(obj.get("shard_index", 0), "shard_index"),
            host=_require_int(obj.get("host", 0), "host"),
            strategy=obj.get("strategy", "flush"),
            workers=_require_int(obj.get("workers", 1), "workers"),
            groups=tuple(TenantSpec.from_json(group) for group in groups),
            duration_ms=float(obj.get("duration_ms", 20.0)),
            seed=_require_int(obj.get("seed", 0), "seed"),
            sub_bits=_require_int(obj.get("sub_bits", 8), "sub_bits"),
            costs=CostModel(**costs),
        )


@dataclass(frozen=True, slots=True)
class ShardResult:
    """One shard's measured outcome (exact histogram state rides along)."""

    shard_index: int
    host: int
    strategy: str
    tenants: int
    offered: int
    completed: int
    in_window: int
    scans: int
    preemptions_total: int
    hist_state: Dict[str, Any]

    def to_json(self) -> dict:
        return {
            "shard_index": self.shard_index,
            "host": self.host,
            "strategy": self.strategy,
            "tenants": self.tenants,
            "offered": self.offered,
            "completed": self.completed,
            "in_window": self.in_window,
            "scans": self.scans,
            "preemptions_total": self.preemptions_total,
            "hist_state": self.hist_state,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "ShardResult":
        _reject_unknown(
            obj,
            (
                "shard_index",
                "host",
                "strategy",
                "tenants",
                "offered",
                "completed",
                "in_window",
                "scans",
                "preemptions_total",
                "hist_state",
            ),
            "shard result",
        )
        hist_state = obj.get("hist_state", {})
        LatencyHistogram.from_state(hist_state)  # validate eagerly
        return cls(
            shard_index=_require_int(obj.get("shard_index", 0), "shard_index"),
            host=_require_int(obj.get("host", 0), "host"),
            strategy=obj.get("strategy", "flush"),
            tenants=_require_int(obj.get("tenants", 0), "tenants"),
            offered=_require_int(obj.get("offered", 0), "offered"),
            completed=_require_int(obj.get("completed", 0), "completed"),
            in_window=_require_int(obj.get("in_window", 0), "in_window"),
            scans=_require_int(obj.get("scans", 0), "scans"),
            preemptions_total=_require_int(obj.get("preemptions_total", 0), "preemptions_total"),
            hist_state=dict(hist_state),
        )

    def histogram(self) -> LatencyHistogram:
        return LatencyHistogram.from_state(self.hist_state)


def run_shard_job(job: ShardJob) -> ShardResult:
    """Simulate one shard under one strategy (pure: job -> result).

    This is the ``SweepRunner`` point function — module-level and
    deterministic, so pool workers, the serial fallback, and a checkpoint
    resume all compute identical bits.
    """
    mechanism = STRATEGY_MECHANISMS[job.strategy]
    sim = Simulator()
    rng = RngStreams(seed=job.seed)
    runtime = AspenRuntime(
        sim,
        RuntimeConfig(
            num_workers=job.workers, quantum=QUANTUM_CYCLES, mechanism=mechanism
        ),
        costs=job.costs,
        rng=rng,
    )
    duration_cycles = job.duration_ms * 1e-3 * CLOCK_HZ
    delivery_cycles = job.costs.preemption_cost(mechanism)

    offered = 0
    measured_kinds: Tuple[str, ...] = ()
    for group in job.groups:
        measured_kinds = measured_kinds + MEASURED_KINDS[group.template]
        offered += schedule_scenario(
            sim,
            runtime,
            group.template,
            group.count,
            group.rps,
            rng,
            duration_cycles,
            delivery_cycles,
        )
    # Run past the arrival window so queued work drains (bounded).
    sim.run(until=duration_cycles * 1.5)

    hist = LatencyHistogram(job.sub_bits)
    scans = 0
    in_window = 0
    for thread in runtime.completed:
        if thread.completion_time <= duration_cycles:
            in_window += 1
        if thread.kind == "scan":
            scans += 1
        if thread.kind in measured_kinds:
            hist.record(_response_cycles(thread))
    return ShardResult(
        shard_index=job.shard_index,
        host=job.host,
        strategy=job.strategy,
        tenants=job.tenants,
        offered=offered,
        completed=len(runtime.completed),
        in_window=in_window,
        scans=scans,
        preemptions_total=sum(w.preemption_events for w in runtime.workers),
        hist_state=hist.to_state(),
    )


def _response_cycles(thread: UThread) -> float:
    response = thread.completion_time - thread.arrival_time
    return response if response > 0 else 0.0
