"""The cluster report: byte-stable JSON consumable by bench-gate.

A :class:`ClusterReport` is a pure function of the topology (no wall
clock, no hostnames, no execution mode), so re-running the same topology
and seed reproduces the report byte for byte — the property the CI
determinism check and the checkpoint-resume tests assert.  The ``checks``
list mirrors the bench-gate shape (``{"bench", "check", "ok", "note"}``)
so the same blocking-CI reader consumes both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from repro.common.errors import ConfigError
from repro.common.units import cycles_to_us
from repro.scenario.dsl import _reject_unknown
from repro.cluster.aggregate import OrderingVerdict, StrategyAggregate
from repro.cluster.topology import ClusterTopology

#: Report schema identifier (bump on incompatible change).
REPORT_SCHEMA = "repro.cluster.report/v1"

#: The paper's evaluation scale: Figure 7 drives O(10^3) open RocksDB
#: connections at one server, so "1000x paper scale" means >= one million
#: tenants across the cluster.
PAPER_SCALE_TENANTS = 1_000


@dataclass(frozen=True, slots=True)
class ClusterReport:
    """Everything one cluster run produced, in canonical form."""

    topology: ClusterTopology
    aggregates: Tuple[StrategyAggregate, ...]
    verdict: OrderingVerdict

    def __post_init__(self) -> None:
        if not isinstance(self.aggregates, tuple) or not self.aggregates:
            raise ConfigError("cluster report needs a non-empty tuple of aggregates")
        names = [agg.strategy for agg in self.aggregates]
        if sorted(names) != sorted(self.topology.strategies):
            raise ConfigError(
                f"aggregate strategies {sorted(names)} do not match topology "
                f"strategies {sorted(self.topology.strategies)}"
            )

    @property
    def scale_factor(self) -> float:
        return self.topology.tenants / PAPER_SCALE_TENANTS

    def checks(self) -> list:
        """Bench-gate-shaped pass/fail checks for CI blocking."""
        bench = f"cluster/{self.topology.name}"
        out = [
            {
                "bench": bench,
                "check": "samples_recorded",
                "ok": all(agg.count > 0 for agg in self.aggregates),
                "note": "every strategy recorded at least one latency sample",
            }
        ]
        if self.verdict.applicable:
            p999_us = {
                name: (None if value is None else round(cycles_to_us(value), 3))
                for name, value in sorted(self.verdict.p999.items())
            }
            out.append(
                {
                    "bench": bench,
                    "check": "ordering_p999",
                    "ok": self.verdict.ok,
                    "note": f"expect p999 flush > tracked > timer; got (us) {p999_us}",
                }
            )
        return out

    def to_json(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "topology": self.topology.to_json(),
            "aggregates": [agg.to_json() for agg in self.aggregates],
            "verdict": self.verdict.to_json(),
            "scale": {
                "tenants": self.topology.tenants,
                "paper_tenants": PAPER_SCALE_TENANTS,
                "factor": self.scale_factor,
            },
            "checks": self.checks(),
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "ClusterReport":
        _reject_unknown(
            obj,
            ("schema", "topology", "aggregates", "verdict", "scale", "checks"),
            "cluster report",
        )
        schema = obj.get("schema", REPORT_SCHEMA)
        if schema != REPORT_SCHEMA:
            raise ConfigError(f"unsupported cluster report schema {schema!r}")
        aggregates = obj.get("aggregates", [])
        if not isinstance(aggregates, (list, tuple)):
            raise ConfigError("report aggregates must be a list")
        return cls(
            topology=ClusterTopology.from_json(obj.get("topology", {})),
            aggregates=tuple(StrategyAggregate.from_json(a) for a in aggregates),
            verdict=OrderingVerdict.from_json(obj.get("verdict", {})),
        )

    def dumps(self) -> str:
        """Byte-stable canonical dump (the re-run determinism contract)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":")) + "\n"
