"""Open-loop load generation (§5.3: Caladan's load generator).

Open-loop means arrivals follow the configured process regardless of whether
the server keeps up — the property that exposes head-of-line blocking in
Figure 7.  Inter-arrival times are exponential (Poisson arrivals); the
packet generator variant used by Figure 8 also lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.apps.rocksdb import BimodalServiceModel, RequestSpec


@dataclass(frozen=True)
class Arrival:
    """One generated arrival."""

    time: float
    spec: RequestSpec


class PoissonLoadGenerator:
    """Open-loop Poisson arrivals of requests drawn from a service model."""

    def __init__(
        self,
        rate_per_second: float,
        service_model: Optional[BimodalServiceModel] = None,
        rng: Optional[RngStreams] = None,
        clock_hz: float = 2e9,
    ) -> None:
        if rate_per_second <= 0:
            raise ConfigError(f"rate must be positive, got {rate_per_second}")
        self.rng = rng or RngStreams(seed=0)
        self.service_model = service_model or BimodalServiceModel(rng=self.rng)
        self.rate = rate_per_second
        #: Mean inter-arrival gap in cycles.
        self.mean_gap = clock_hz / rate_per_second

    def arrivals(self, duration_cycles: float, start: float = 0.0) -> Iterator[Arrival]:
        """Yield arrivals in ``[start, start + duration_cycles)``."""
        if duration_cycles <= 0:
            raise ConfigError("duration must be positive")
        now = start
        while True:
            now += self.rng.exponential("arrivals", self.mean_gap)
            if now >= start + duration_cycles:
                return
            yield Arrival(time=now, spec=self.service_model.sample())

    def schedule_into(
        self,
        sim,
        duration_cycles: float,
        on_arrival: Callable[[Arrival], None],
    ) -> int:
        """Pre-schedule all arrivals into ``sim``; returns the count."""
        count = 0
        for arrival in self.arrivals(duration_cycles, start=sim.now):
            sim.schedule_at(
                arrival.time, lambda a=arrival: on_arrival(a), name="arrival"
            )
            count += 1
        return count
