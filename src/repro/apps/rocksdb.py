"""A RocksDB-like ordered key-value store and its service-time model (§5.3).

Two layers:

- :class:`SkipListStore` — a functional in-memory ordered store (skip list)
  with GET/PUT/SCAN, used by the examples and tests.  This is the data
  structure RocksDB's memtable uses.
- :class:`BimodalServiceModel` — the Figure 7 workload's service times:
  99.5% GET at 1.2 us and 0.5% SCAN at 580 us (cycles at 2 GHz), with a
  small lognormal-ish spread so requests are not perfectly deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.common.units import us_to_cycles

GET_MEAN_US = 1.2
SCAN_MEAN_US = 580.0
SCAN_FRACTION = 0.005


class _SkipNode:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key, value, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_SkipNode"]] = [None] * level


class SkipListStore:
    """An ordered key-value store backed by a skip list.

    Supports ``put``, ``get``, ``delete``, and ordered ``scan`` — the
    operation mix of the Figure 7 workload.
    """

    MAX_LEVEL = 16
    P = 0.5

    def __init__(self, seed: int = 0) -> None:
        self._head = _SkipNode(None, None, self.MAX_LEVEL)
        self._level = 1
        self._rng = np.random.default_rng(seed)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _random_level(self) -> int:
        level = 1
        while level < self.MAX_LEVEL and self._rng.random() < self.P:
            level += 1
        return level

    def _find_predecessors(self, key) -> List[_SkipNode]:
        update = [self._head] * self.MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < key:
                node = node.forward[lvl]
            update[lvl] = node
        return update

    def put(self, key, value) -> None:
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _SkipNode(key, value, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._size += 1

    def get(self, key):
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < key:
                node = node.forward[lvl]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return None

    def delete(self, key) -> bool:
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for lvl in range(len(node.forward)):
            if update[lvl].forward[lvl] is node:
                update[lvl].forward[lvl] = node.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def scan(self, start_key, count: int) -> List[Tuple[object, object]]:
        """Return up to ``count`` (key, value) pairs with key >= start_key."""
        if count < 0:
            raise ConfigError("scan count must be non-negative")
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < start_key:
                node = node.forward[lvl]
        node = node.forward[0]
        result: List[Tuple[object, object]] = []
        while node is not None and len(result) < count:
            result.append((node.key, node.value))
            node = node.forward[0]
        return result

    def items(self) -> Iterator[Tuple[object, object]]:
        node = self._head.forward[0]
        while node is not None:
            yield (node.key, node.value)
            node = node.forward[0]


@dataclass(frozen=True)
class RequestSpec:
    """One generated request: its kind and service demand."""

    kind: str  # "get" | "scan"
    service_cycles: float


class BimodalServiceModel:
    """The Figure 7 request mix: 99.5% GET (1.2 us), 0.5% SCAN (580 us)."""

    def __init__(
        self,
        rng: Optional[RngStreams] = None,
        get_mean_us: float = GET_MEAN_US,
        scan_mean_us: float = SCAN_MEAN_US,
        scan_fraction: float = SCAN_FRACTION,
        spread: float = 0.05,
    ) -> None:
        if not 0.0 <= scan_fraction <= 1.0:
            raise ConfigError("scan_fraction must be in [0, 1]")
        if spread < 0:
            raise ConfigError("spread must be non-negative")
        self.rng = rng or RngStreams(seed=0)
        self.get_mean = us_to_cycles(get_mean_us)
        self.scan_mean = us_to_cycles(scan_mean_us)
        self.scan_fraction = scan_fraction
        self.spread = spread

    @property
    def mean_service_cycles(self) -> float:
        return (
            (1.0 - self.scan_fraction) * self.get_mean
            + self.scan_fraction * self.scan_mean
        )

    def max_throughput_rps(self) -> float:
        """Offered load (req/s) that saturates one 2 GHz core."""
        return 2e9 / self.mean_service_cycles

    def sample(self) -> RequestSpec:
        stream = self.rng.stream("rocksdb_mix")
        if stream.random() < self.scan_fraction:
            mean = self.scan_mean
            kind = "scan"
        else:
            mean = self.get_mean
            kind = "get"
        factor = 1.0 + self.spread * float(stream.standard_normal())
        return RequestSpec(kind=kind, service_cycles=max(mean * 0.2, mean * factor))
