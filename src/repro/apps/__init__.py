"""Workloads: µ-ISA microbenchmarks, the RocksDB-like store, load generators.

- :mod:`repro.apps.microbench` — the cycle-tier benchmark programs the paper
  measures receiver overheads on (fib, linpack, memops, matmul, base64,
  pointer chasing, polling loops).
- :mod:`repro.apps.rocksdb` — an in-memory ordered key-value store whose
  GET/SCAN service times follow the paper's bimodal RocksDB workload.
- :mod:`repro.apps.loadgen` — the open-loop Poisson load generator
  (Caladan-style) used by the Figure 7 experiment.
"""

from repro.apps.microbench import (
    Workload,
    make_fib,
    make_linpack,
    make_memops,
    make_matmul,
    make_base64,
    make_count_loop,
    make_pointer_chase,
    make_quicksort,
    make_fnv_hash,
    make_sp_dependence_chain,
    make_uipi_timer_core,
    make_poll_timer_core,
    make_idle,
)

__all__ = [
    "Workload",
    "make_fib",
    "make_linpack",
    "make_memops",
    "make_matmul",
    "make_base64",
    "make_count_loop",
    "make_pointer_chase",
    "make_quicksort",
    "make_fnv_hash",
    "make_sp_dependence_chain",
    "make_uipi_timer_core",
    "make_poll_timer_core",
    "make_idle",
]
