"""µ-ISA microbenchmarks — the programs the cycle-tier experiments run.

These are structural stand-ins for the paper's benchmarks: *fib* (recursive,
call/branch heavy), *linpack* (FP inner loop), *memops* (memory streaming),
*matmul* (nested FP loops), *base64* (table lookups and bit twiddling), and
the pointer-chasing kernels of §3.5 and §6.1.  Register conventions:

- r1-r9: benchmark state
- r10/r11: reserved for instrumentation (poll flag base / scratch)
- r12/r13: reserved for the interrupt handler
- r14: link register, r15: stack pointer
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.compiler.instrument import Instrumenter, NullInstrumenter
from repro.cpu import isa
from repro.cpu.cache import SharedMemory
from repro.cpu.program import Program, ProgramBuilder

#: Data-segment addresses used by the benchmarks (shared memory).
ARRAY_A_BASE = 0x30_0000
ARRAY_B_BASE = 0x38_0000
TABLE_BASE = 0x3C_0000
CHASE_BASE = 0x40_0000
MATRIX_BASE = 0x50_0000
#: Memory word incremented by the default interrupt handler.
HANDLER_COUNTER_ADDR = 0x20_0000


@dataclass
class Workload:
    """A runnable cycle-tier workload: the program plus its memory image."""

    name: str
    program: Program
    init_memory: Optional[Callable[[SharedMemory], None]] = None

    def install(self, memory: SharedMemory) -> None:
        if self.init_memory is not None:
            self.init_memory(memory)


def _finish(
    builder: ProgramBuilder,
    instrument: Instrumenter,
    handler_body: int,
    handler_counter: Optional[int],
    name: str,
    init_memory: Optional[Callable[[SharedMemory], None]] = None,
) -> Workload:
    """Emit the yield stub and default handler, then build the workload."""
    instrument.finalize(builder)
    builder.emit_default_handler(
        body_instructions=handler_body, counter_addr=handler_counter
    )
    return Workload(name=name, program=builder.build(), init_memory=init_memory)


def _backedge(
    builder: ProgramBuilder, instrument: Instrumenter, branch: isa.Instruction
) -> None:
    """Instrument and emit one loop back-edge."""
    instrument.at_loop_backedge(builder)
    builder.emit(instrument.wrap_backedge(branch))


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def make_count_loop(
    iterations: int,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """The simplest workload: a dependent counting loop, then halt."""
    instrument = instrument or NullInstrumenter()
    b = ProgramBuilder("count_loop")
    instrument.setup(b)
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, iterations))
    b.label("loop")
    b.emit(isa.addi(1, 1, 1))
    _backedge(b, instrument, isa.blt(1, 2, "loop"))
    b.emit(isa.halt())
    return _finish(b, instrument, handler_body, handler_counter, "count_loop")


def make_fib(
    n: int = 18,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """Recursive Fibonacci — call/return and branch heavy (short functions).

    This is the shape that makes per-function-entry polling expensive (§2:
    "tight loops or short functions").
    """
    if n < 1:
        raise ConfigError("fib requires n >= 1")
    instrument = instrument or NullInstrumenter()
    b = ProgramBuilder("fib")
    instrument.setup(b)
    b.emit(isa.movi(1, n))
    b.emit(isa.call("fib"))
    b.emit(isa.halt())

    b.label("fib")
    # Prologue first so the instrumentation stub may safely use CALL.
    b.emit(isa.subi(15, 15, 16))
    b.emit(isa.store(14, 15, 0))  # save LR
    b.emit(isa.store(1, 15, 8))  # save n
    instrument.at_function_entry(b)
    b.emit(isa.blti(1, 2, "fib_base"))
    b.emit(isa.subi(1, 1, 1))
    b.emit(isa.call("fib"))
    b.emit(isa.load(1, 15, 8))  # reload n
    b.emit(isa.store(2, 15, 8))  # save fib(n-1)
    b.emit(isa.subi(1, 1, 2))
    b.emit(isa.call("fib"))
    b.emit(isa.load(3, 15, 8))  # fib(n-1)
    b.emit(isa.add(2, 2, 3))
    b.emit(isa.jmp("fib_ret"))
    b.label("fib_base")
    b.emit(isa.mov(2, 1))  # fib(0)=0, fib(1)=1
    b.label("fib_ret")
    b.emit(isa.load(14, 15, 0))
    b.emit(isa.addi(15, 15, 16))
    b.emit(isa.ret())
    return _finish(b, instrument, handler_body, handler_counter, "fib")


def make_linpack(
    iterations: int = 4000,
    vector_len: int = 512,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """A daxpy-style FP inner loop over L1-resident vectors (linpack2)."""
    instrument = instrument or NullInstrumenter()
    mask = vector_len - 1
    if vector_len & mask:
        raise ConfigError("vector_len must be a power of two")
    b = ProgramBuilder("linpack")
    instrument.setup(b)
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, iterations))
    b.emit(isa.movi(3, ARRAY_A_BASE))
    b.emit(isa.movi(4, ARRAY_B_BASE))
    b.emit(isa.movi(5, 3))  # alpha
    b.label("loop")
    b.emit(isa.andi(6, 1, mask))
    b.emit(isa.shli(6, 6, 3))
    b.emit(isa.add(7, 3, 6))
    b.emit(isa.add(8, 4, 6))
    b.emit(isa.load(9, 7, 0))  # a[i]
    b.emit(isa.fmul(9, 9, 5))  # alpha * a[i]
    b.emit(isa.load(6, 8, 0))  # b[i]
    b.emit(isa.fadd(9, 9, 6))
    b.emit(isa.store(9, 8, 0))  # b[i] = alpha*a[i] + b[i]
    b.emit(isa.addi(1, 1, 1))
    _backedge(b, instrument, isa.blt(1, 2, "loop"))
    b.emit(isa.halt())

    def init(memory: SharedMemory) -> None:
        for i in range(vector_len):
            memory.write(ARRAY_A_BASE + 8 * i, i + 1)
            memory.write(ARRAY_B_BASE + 8 * i, 2 * i + 1)

    return _finish(b, instrument, handler_body, handler_counter, "linpack", init)


def make_memops(
    iterations: int = 4000,
    footprint_kb: int = 256,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """A streaming copy loop with a footprint well past the L1 (memops)."""
    instrument = instrument or NullInstrumenter()
    words = footprint_kb * 1024 // 8
    mask = words - 1
    if words & mask:
        raise ConfigError("footprint_kb * 1024 / 8 must be a power of two")
    b = ProgramBuilder("memops")
    instrument.setup(b)
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, iterations))
    b.emit(isa.movi(3, ARRAY_A_BASE))
    b.emit(isa.movi(4, ARRAY_B_BASE + footprint_kb * 1024))
    b.label("loop")
    b.emit(isa.andi(6, 1, mask))
    b.emit(isa.shli(6, 6, 3))
    b.emit(isa.add(7, 3, 6))
    b.emit(isa.load(8, 7, 0))
    b.emit(isa.add(9, 4, 6))
    b.emit(isa.store(8, 9, 0))
    b.emit(isa.addi(1, 1, 1))
    _backedge(b, instrument, isa.blt(1, 2, "loop"))
    b.emit(isa.halt())
    return _finish(b, instrument, handler_body, handler_counter, "memops")


def make_matmul(
    size: int = 12,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """Dense ``size x size`` matrix multiply — nested FP loops (matmul)."""
    instrument = instrument or NullInstrumenter()
    a_base = MATRIX_BASE
    b_base = MATRIX_BASE + size * size * 8
    c_base = MATRIX_BASE + 2 * size * size * 8
    b = ProgramBuilder("matmul")
    instrument.setup(b)
    b.emit(isa.movi(1, 0))  # i
    b.label("i_loop")
    b.emit(isa.movi(2, 0))  # j
    b.label("j_loop")
    b.emit(isa.movi(3, 0))  # k
    b.emit(isa.movi(9, 0))  # acc
    b.label("k_loop")
    # a[i][k]
    b.emit(isa.movi(4, size))
    b.emit(isa.mul(5, 1, 4))
    b.emit(isa.add(5, 5, 3))
    b.emit(isa.shli(5, 5, 3))
    b.emit(isa.addi(5, 5, a_base & 0x7FFFFFFF))
    b.emit(isa.load(6, 5, 0))
    # b[k][j]
    b.emit(isa.mul(7, 3, 4))
    b.emit(isa.add(7, 7, 2))
    b.emit(isa.shli(7, 7, 3))
    b.emit(isa.addi(7, 7, b_base & 0x7FFFFFFF))
    b.emit(isa.load(8, 7, 0))
    b.emit(isa.fmul(6, 6, 8))
    b.emit(isa.fadd(9, 9, 6))
    b.emit(isa.addi(3, 3, 1))
    _backedge(b, instrument, isa.blti(3, size, "k_loop"))
    # c[i][j] = acc
    b.emit(isa.mul(5, 1, 4))
    b.emit(isa.add(5, 5, 2))
    b.emit(isa.shli(5, 5, 3))
    b.emit(isa.addi(5, 5, c_base & 0x7FFFFFFF))
    b.emit(isa.store(9, 5, 0))
    b.emit(isa.addi(2, 2, 1))
    _backedge(b, instrument, isa.blti(2, size, "j_loop"))
    b.emit(isa.addi(1, 1, 1))
    _backedge(b, instrument, isa.blti(1, size, "i_loop"))
    b.emit(isa.halt())

    def init(memory: SharedMemory) -> None:
        for i in range(size * size):
            memory.write(a_base + 8 * i, (i % 7) + 1)
            memory.write(b_base + 8 * i, (i % 5) + 1)

    return _finish(b, instrument, handler_body, handler_counter, "matmul", init)


def make_base64(
    iterations: int = 3000,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """Base64-style encoding: table lookups plus shifts/masks per word."""
    instrument = instrument or NullInstrumenter()
    b = ProgramBuilder("base64")
    instrument.setup(b)
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, iterations))
    b.emit(isa.movi(3, ARRAY_A_BASE))
    b.emit(isa.movi(4, ARRAY_B_BASE))
    b.emit(isa.movi(5, TABLE_BASE))
    b.label("loop")
    b.emit(isa.andi(6, 1, 1023))
    b.emit(isa.shli(6, 6, 3))
    b.emit(isa.add(7, 3, 6))
    b.emit(isa.load(8, 7, 0))  # input word
    # Two independent 6-bit groups -> parallel table lookups (the tight,
    # high-IPC loop shape that makes per-iteration polling checks visible).
    b.emit(isa.andi(7, 8, 63))
    b.emit(isa.shli(7, 7, 3))
    b.emit(isa.add(7, 5, 7))
    b.emit(isa.load(7, 7, 0))
    b.emit(isa.shri(9, 8, 6))
    b.emit(isa.andi(9, 9, 63))
    b.emit(isa.shli(9, 9, 3))
    b.emit(isa.add(9, 5, 9))
    b.emit(isa.load(9, 9, 0))
    b.emit(isa.shli(9, 9, 8))
    b.emit(isa.bxor(9, 9, 7))
    b.emit(isa.add(7, 4, 6))
    b.emit(isa.store(9, 7, 0))
    b.emit(isa.addi(1, 1, 1))
    _backedge(b, instrument, isa.blt(1, 2, "loop"))
    b.emit(isa.halt())

    def init(memory: SharedMemory) -> None:
        for i in range(64):
            memory.write(TABLE_BASE + 8 * i, 0x41 + i)
        for i in range(1024):
            memory.write(ARRAY_A_BASE + 8 * i, i * 2654435761 % (1 << 30))

    return _finish(b, instrument, handler_body, handler_counter, "base64", init)


def make_pointer_chase(
    num_nodes: int,
    stride: int = 64,
    iterations: int = 2000,
    feed_stack_pointer: bool = False,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
    unroll: int = 1,
) -> Workload:
    """Pointer chasing over a ``num_nodes``-node cyclic list (§3.5, §6.1).

    The footprint (``num_nodes * stride``) controls the cache-miss rate of
    the chain.  With ``feed_stack_pointer``, every chased value updates the
    stack pointer (restored from a saved copy at the end) — the §6.1
    pathological case where the interrupt-delivery push depends on the whole
    in-flight chain.

    ``unroll`` emits that many serially-dependent ``p = *p`` hops per loop
    iteration (``iterations * unroll`` hops total).  The loads stay one
    dependence chain — no overlap between hops — so a larger ``unroll``
    amortizes the loop-control bookkeeping over more full-latency memory
    stalls: the loop body goes almost entirely quiescent, the shape the
    cycle-skipping and batch-stepper engines are benchmarked against.
    """
    if num_nodes < 2:
        raise ConfigError("pointer chase needs at least 2 nodes")
    if unroll < 1:
        raise ConfigError("unroll must be >= 1")
    b = ProgramBuilder("pointer_chase")
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, iterations))
    b.emit(isa.movi(3, CHASE_BASE))
    if feed_stack_pointer:
        b.emit(isa.mov(9, 15))  # save real SP
    b.label("loop")
    for _ in range(unroll):
        b.emit(isa.load(3, 3, 0))  # p = *p
    if feed_stack_pointer:
        # Make SP depend on the chain (then keep chasing from it).
        b.emit(isa.mov(15, 3))
        b.emit(isa.mov(3, 15))
    b.emit(isa.addi(1, 1, 1))
    b.emit(isa.blt(1, 2, "loop"))
    if feed_stack_pointer:
        b.emit(isa.mov(15, 9))  # restore SP
    b.emit(isa.halt())

    def init(memory: SharedMemory) -> None:
        for i in range(num_nodes):
            here = CHASE_BASE + i * stride
            nxt = CHASE_BASE + ((i + 1) % num_nodes) * stride
            memory.write(here, nxt)

    return _finish(
        b, NullInstrumenter(), handler_body, handler_counter, "pointer_chase", init
    )


def make_quicksort(
    n: int = 128,
    seed: int = 1,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """Iterative quicksort (Lomuto partition, explicit range stack).

    Branch-heavy with data-dependent control flow — the hardest case for
    the predictor and a strong correctness exercise of the memory system.
    Sorts ``n`` pseudo-random words in place at ``ARRAY_A_BASE``.
    """
    if n < 2:
        raise ConfigError("quicksort needs at least 2 elements")
    instrument = instrument or NullInstrumenter()
    range_stack = ARRAY_B_BASE  # the explicit (lo, hi) range stack
    b = ProgramBuilder("quicksort")
    instrument.setup(b)
    b.emit(isa.movi(9, ARRAY_A_BASE))
    b.emit(isa.movi(3, range_stack))
    # push (0, n-1)
    b.emit(isa.movi(7, 0))
    b.emit(isa.store(7, 3, 0))
    b.emit(isa.movi(7, n - 1))
    b.emit(isa.store(7, 3, 8))
    b.emit(isa.addi(3, 3, 16))
    b.label("loop")
    instrument.at_loop_backedge(b)
    b.emit(isa.beqi(3, range_stack, "done"))
    b.emit(isa.subi(3, 3, 16))
    b.emit(isa.load(1, 3, 0))  # lo
    b.emit(isa.load(2, 3, 8))  # hi
    b.emit(isa.bge(1, 2, "loop"))  # trivial range
    # pivot = a[hi]
    b.emit(isa.shli(7, 2, 3))
    b.emit(isa.add(7, 9, 7))
    b.emit(isa.load(6, 7, 0))
    # i = lo - 1 ; j = lo
    b.emit(isa.subi(4, 1, 1))
    b.emit(isa.mov(5, 1))
    b.label("part")
    b.emit(isa.bge(5, 2, "part_done"))
    b.emit(isa.shli(7, 5, 3))
    b.emit(isa.add(7, 9, 7))
    b.emit(isa.load(8, 7, 0))  # a[j]
    b.emit(isa.blt(6, 8, "no_swap"))  # pivot < a[j]: skip
    b.emit(isa.addi(4, 4, 1))
    # swap a[i] <-> a[j]
    b.emit(isa.shli(11, 4, 3))
    b.emit(isa.add(11, 9, 11))
    b.emit(isa.load(12, 11, 0))
    b.emit(isa.store(8, 11, 0))
    b.emit(isa.store(12, 7, 0))
    b.label("no_swap")
    b.emit(isa.addi(5, 5, 1))
    b.emit(isa.jmp("part"))
    b.label("part_done")
    # swap a[i+1] <-> a[hi]; p = i+1
    b.emit(isa.addi(4, 4, 1))
    b.emit(isa.shli(11, 4, 3))
    b.emit(isa.add(11, 9, 11))
    b.emit(isa.load(12, 11, 0))
    b.emit(isa.shli(7, 2, 3))
    b.emit(isa.add(7, 9, 7))
    b.emit(isa.load(8, 7, 0))
    b.emit(isa.store(8, 11, 0))
    b.emit(isa.store(12, 7, 0))
    # push (lo, p-1)
    b.emit(isa.store(1, 3, 0))
    b.emit(isa.subi(7, 4, 1))
    b.emit(isa.store(7, 3, 8))
    b.emit(isa.addi(3, 3, 16))
    # push (p+1, hi)
    b.emit(isa.addi(7, 4, 1))
    b.emit(isa.store(7, 3, 0))
    b.emit(isa.store(2, 3, 8))
    b.emit(isa.addi(3, 3, 16))
    b.emit(isa.jmp("loop"))
    b.label("done")
    b.emit(isa.halt())

    def init(memory: SharedMemory) -> None:
        state = seed or 1
        for i in range(n):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            memory.write(ARRAY_A_BASE + 8 * i, (state >> 33) % 100_000)

    return _finish(b, instrument, handler_body, handler_counter, "quicksort", init)


def make_fnv_hash(
    iterations: int = 4000,
    buffer_words: int = 1024,
    instrument: Optional[Instrumenter] = None,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """FNV-1a hashing over a buffer — serial multiply/xor chain per word
    (the shape of checksum/dedup kernels in the 'datacenter tax' [40])."""
    if buffer_words & (buffer_words - 1):
        raise ConfigError("buffer_words must be a power of two")
    instrument = instrument or NullInstrumenter()
    b = ProgramBuilder("fnv_hash")
    instrument.setup(b)
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, iterations))
    b.emit(isa.movi(3, ARRAY_A_BASE))
    b.emit(isa.movi(4, 0x811C9DC5))  # FNV offset basis (32-bit variant)
    b.emit(isa.movi(5, 0x01000193))  # FNV prime
    b.label("loop")
    b.emit(isa.andi(6, 1, buffer_words - 1))
    b.emit(isa.shli(6, 6, 3))
    b.emit(isa.add(6, 3, 6))
    b.emit(isa.load(7, 6, 0))
    b.emit(isa.bxor(4, 4, 7))
    b.emit(isa.mul(4, 4, 5))
    b.emit(isa.addi(1, 1, 1))
    _backedge(b, instrument, isa.blt(1, 2, "loop"))
    # Publish the digest so tests can check it.
    b.emit(isa.movi(6, ARRAY_B_BASE))
    b.emit(isa.store(4, 6, 0))
    b.emit(isa.halt())

    def init(memory: SharedMemory) -> None:
        for i in range(buffer_words):
            memory.write(ARRAY_A_BASE + 8 * i, (i * 2654435761) % (1 << 32))

    return _finish(b, instrument, handler_body, handler_counter, "fnv_hash", init)


def make_sp_dependence_chain(
    chain_length: int = 50,
    iterations: int = 60,
    stride: int = 4096,
    num_nodes: int = 4096,
    filler: int = 40,
    handler_body: int = 4,
    handler_counter: Optional[int] = HANDLER_COUNTER_ADDR,
) -> Workload:
    """The §6.1 pathological case: a chain of ``chain_length`` dependent
    long-latency loads whose final value becomes the stack pointer.

    A tracked interrupt arriving mid-chain cannot execute its delivery
    pushes (they read SP) until the whole chain resolves — the worst case
    for tracking; a flush simply squashes the chain.
    """
    if chain_length < 1:
        raise ConfigError("chain_length must be >= 1")
    if num_nodes < 2:
        raise ConfigError("num_nodes must be >= 2")
    if num_nodes & (num_nodes - 1):
        raise ConfigError("num_nodes must be a power of two")
    stride_shift = stride.bit_length() - 1
    if (1 << stride_shift) != stride:
        raise ConfigError("stride must be a power of two")
    b = ProgramBuilder("sp_chain")
    b.emit(isa.movi(1, 0))
    b.emit(isa.movi(2, iterations))
    b.emit(isa.movi(8, CHASE_BASE))
    b.emit(isa.mov(9, 15))  # save the real SP
    b.label("loop")
    # Restart the chain at a fresh node each iteration so the dependence
    # depth seen by an arriving interrupt is exactly `chain_length`.
    b.emit(isa.movi(5, chain_length))
    b.emit(isa.mul(3, 1, 5))
    b.emit(isa.andi(3, 3, num_nodes - 1))
    b.emit(isa.shli(3, 3, stride_shift))
    b.emit(isa.add(3, 8, 3))
    for _ in range(chain_length):
        b.emit(isa.load(3, 3, 0))  # p = *p (misses: stride exceeds lines)
    # The chained value becomes the stack pointer (§6.1).
    b.emit(isa.mov(15, 3))
    for _ in range(filler):
        b.emit(isa.addi(4, 4, 1))
    b.emit(isa.mov(15, 9))  # restore SP
    b.emit(isa.addi(1, 1, 1))
    b.emit(isa.blt(1, 2, "loop"))
    b.emit(isa.mov(15, 9))
    b.emit(isa.halt())

    def init(memory: SharedMemory) -> None:
        for i in range(num_nodes):
            here = CHASE_BASE + i * stride
            nxt = CHASE_BASE + ((i + 1) % num_nodes) * stride
            memory.write(here, nxt)

    return _finish(
        b, NullInstrumenter(), handler_body, handler_counter, "sp_chain", init
    )


# ---------------------------------------------------------------------------
# Timer/sender cores
# ---------------------------------------------------------------------------


def make_uipi_timer_core(interval_cycles: int, count: int, uitt_index: int = 0) -> Workload:
    """A dedicated timer core: rdtsc-spin, then ``senduipi`` each interval.

    This is the "UIPI SW Timer" configuration of Figures 4/7 — the timer
    core burns its own cycles spinning on the high-precision counter (§2).
    """
    if interval_cycles <= 0:
        raise ConfigError("interval must be positive")
    b = ProgramBuilder("uipi_timer_core")
    b.emit(isa.rdtsc(1))
    b.emit(isa.movi(2, interval_cycles))
    b.emit(isa.add(3, 1, 2))  # next deadline
    b.emit(isa.movi(4, count))
    b.emit(isa.movi(5, 0))
    b.label("outer")
    b.label("wait")
    b.emit(isa.rdtsc(6))
    b.emit(isa.blt(6, 3, "wait"))
    b.emit(isa.senduipi(uitt_index))
    b.emit(isa.add(3, 3, 2))
    b.emit(isa.addi(5, 5, 1))
    b.emit(isa.blt(5, 4, "outer"))
    b.emit(isa.halt())
    return Workload(name="uipi_timer_core", program=b.build())


def make_poll_timer_core(interval_cycles: int, count: int, flag_addr: int) -> Workload:
    """A timer core that sets a shared preemption flag each interval
    (the notification source for Concord-style polling preemption)."""
    if interval_cycles <= 0:
        raise ConfigError("interval must be positive")
    b = ProgramBuilder("poll_timer_core")
    b.emit(isa.rdtsc(1))
    b.emit(isa.movi(2, interval_cycles))
    b.emit(isa.add(3, 1, 2))
    b.emit(isa.movi(4, count))
    b.emit(isa.movi(5, 0))
    b.emit(isa.movi(7, flag_addr))
    b.emit(isa.movi(8, 1))
    b.label("outer")
    b.label("wait")
    b.emit(isa.rdtsc(6))
    b.emit(isa.blt(6, 3, "wait"))
    b.emit(isa.store(8, 7, 0))
    b.emit(isa.add(3, 3, 2))
    b.emit(isa.addi(5, 5, 1))
    b.emit(isa.blt(5, 4, "outer"))
    b.emit(isa.halt())
    return Workload(name="poll_timer_core", program=b.build())


def make_idle() -> Workload:
    """A core that halts immediately."""
    b = ProgramBuilder("idle")
    b.emit(isa.halt())
    return Workload(name="idle", program=b.build())
