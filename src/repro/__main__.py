"""``python -m repro`` — the experiment CLI (see :mod:`repro.cli`)."""

from repro.cli import main

raise SystemExit(main())
