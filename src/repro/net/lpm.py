"""Longest-prefix-match routing (§5.4: LPM with a 16,000-entry table).

A binary-trie LPM over IPv4 prefixes.  The l3fwd event model charges a
calibrated per-packet cycle cost; this table provides the functional routing
(and the brute-force cross-check used by the property tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError


class _TrieNode:
    __slots__ = ("children", "next_hop")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.next_hop: Optional[int] = None


class LPMTable:
    """Binary-trie longest-prefix-match over IPv4 addresses."""

    def __init__(self, default_next_hop: Optional[int] = None) -> None:
        self._root = _TrieNode()
        self.default_next_hop = default_next_hop
        self._routes: Dict[Tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._routes)

    @staticmethod
    def _validate(prefix: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise ConfigError(f"prefix length must be 0..32, got {length}")
        if not 0 <= prefix < (1 << 32):
            raise ConfigError(f"prefix out of range: {prefix:#x}")
        host_bits = 32 - length
        if host_bits and prefix & ((1 << host_bits) - 1):
            raise ConfigError(
                f"prefix {prefix:#x}/{length} has bits set below the mask"
            )

    def add_route(self, prefix: int, length: int, next_hop: int) -> None:
        self._validate(prefix, length)
        node = self._root
        for bit_index in range(length):
            bit = (prefix >> (31 - bit_index)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.next_hop = next_hop
        self._routes[(prefix, length)] = next_hop

    def lookup(self, addr: int) -> Optional[int]:
        """Next hop for ``addr`` under longest-prefix-match semantics."""
        if not 0 <= addr < (1 << 32):
            raise ConfigError(f"address out of range: {addr:#x}")
        node = self._root
        best = self._root.next_hop if self._root.next_hop is not None else self.default_next_hop
        for bit_index in range(32):
            bit = (addr >> (31 - bit_index)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.next_hop is not None:
                best = node.next_hop
        return best

    def lookup_brute_force(self, addr: int) -> Optional[int]:
        """Reference implementation: scan all routes (for verification)."""
        best_len = -1
        best_hop = self.default_next_hop
        for (prefix, length), next_hop in self._routes.items():
            host_bits = 32 - length
            if (addr >> host_bits) == (prefix >> host_bits) and length > best_len:
                best_len = length
                best_hop = next_hop
        return best_hop

    def routes(self) -> Dict[Tuple[int, int], int]:
        return dict(self._routes)


class RouteTableGenerator:
    """Generates the experiment's 16,000-entry route table (§5.4)."""

    def __init__(self, seed: int = 0, num_ports: int = 8) -> None:
        if num_ports <= 0:
            raise ConfigError("num_ports must be positive")
        self.rng = np.random.default_rng(seed)
        self.num_ports = num_ports

    def generate(self, num_routes: int = 16_000) -> LPMTable:
        """A table of random /16-/28 prefixes plus a default route."""
        table = LPMTable(default_next_hop=0)
        added = 0
        while added < num_routes:
            length = int(self.rng.integers(16, 29))
            prefix = int(self.rng.integers(0, 1 << 32)) & ~((1 << (32 - length)) - 1)
            if (prefix, length) in table._routes:
                continue
            table.add_route(prefix, length, int(self.rng.integers(0, self.num_ports)))
            added += 1
        return table

    def random_addresses(self, count: int) -> List[int]:
        return [int(a) for a in self.rng.integers(0, 1 << 32, size=count)]
