"""DPDK-style networking substrate (§5.4): NICs, LPM routing, l3fwd.

The Figure 8 experiment compares busy-polling against xUI device interrupts
(tracked + forwarding) for a layer-3 router.  :mod:`repro.net.lpm` is a real
longest-prefix-match table (binary trie, 16k routes); the event-tier router
charges a calibrated per-packet cost that the LPM lookup is part of.
"""

from repro.net.packet import Packet
from repro.net.lpm import LPMTable, RouteTableGenerator
from repro.net.nic import NIC
from repro.net.pktgen import PacketGenerator
from repro.net.l3fwd import L3Forwarder, L3fwdConfig

__all__ = [
    "Packet",
    "LPMTable",
    "RouteTableGenerator",
    "NIC",
    "PacketGenerator",
    "L3Forwarder",
    "L3fwdConfig",
]
