"""Open-loop packet generation with exponential inter-arrivals (§5.4).

The paper modified gem5-dpdk's generator to use exponential inter-packet
gaps "to more accurately model the burstiness of real network traffic";
this generator does the same, spreading a target aggregate rate across the
configured NICs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.net.nic import NIC
from repro.net.packet import Packet
from repro.sim.simulator import Simulator


class PacketGenerator:
    """Drives packets into one or more NICs inside an event simulation."""

    def __init__(
        self,
        sim: Simulator,
        nics: List[NIC],
        rate_pps: float,
        rng: Optional[RngStreams] = None,
        clock_hz: float = 2e9,
        address_pool: Optional[List[int]] = None,
    ) -> None:
        if not nics:
            raise ConfigError("at least one NIC is required")
        if rate_pps <= 0:
            raise ConfigError(f"rate must be positive, got {rate_pps}")
        self.sim = sim
        self.nics = nics
        self.rng = rng or RngStreams(seed=0)
        #: Mean gap between packets on *each* NIC (load split evenly).
        self.per_nic_gap = clock_hz / (rate_pps / len(nics))
        self.address_pool = address_pool or [0x0A000001]
        self.generated = 0
        self._stopped = False

    def start(self) -> None:
        for nic in self.nics:
            self._schedule_next(nic)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, nic: NIC) -> None:
        gap = self.rng.exponential(f"pktgen{nic.nic_id}", self.per_nic_gap)
        self.sim.schedule(gap, lambda: self._emit(nic), name=f"pkt:nic{nic.nic_id}")

    def _emit(self, nic: NIC) -> None:
        if self._stopped:
            return
        pool = self.address_pool
        addr = pool[self.rng.choice_index("pkt_addr", len(pool))]
        packet = Packet(dst_ip=addr, arrival_time=self.sim.now, nic_id=nic.nic_id)
        nic.receive(packet)
        self.generated += 1
        self._schedule_next(nic)
