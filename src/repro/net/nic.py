"""NIC model: an RX descriptor ring with optional interrupt signalling.

In polling mode the driver reads the ring directly.  In interrupt mode the
NIC raises an interrupt when a packet lands in an *armed, empty* ring —
NAPI-style moderation: the driver disarms on entry to its service loop and
re-arms when it has drained the ring, so a burst costs one interrupt (§6.2.2
"the interrupt handler polls the network queue again before returning").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.net.packet import Packet


class NIC:
    """One NIC with a single RX queue (the experiments use one queue/NIC)."""

    def __init__(
        self,
        nic_id: int,
        ring_size: int = 1024,
        on_interrupt: Optional[Callable[["NIC"], None]] = None,
        on_rx: Optional[Callable[["NIC", Packet], None]] = None,
    ) -> None:
        if ring_size <= 0:
            raise ConfigError("ring size must be positive")
        self.nic_id = nic_id
        self.ring_size = ring_size
        self.rx_ring: Deque[Packet] = deque()
        self.on_interrupt = on_interrupt
        #: Observer invoked on every successfully enqueued packet (used by
        #: the polling-mode driver to model its discovery of new work).
        self.on_rx = on_rx
        self.interrupts_armed = False
        self.rx_count = 0
        self.dropped = 0
        self.interrupts_raised = 0
        self.tx_count = 0

    # -- device side -------------------------------------------------------

    def receive(self, packet: Packet) -> bool:
        """A packet arrives from the wire; False if the ring overflowed."""
        if len(self.rx_ring) >= self.ring_size:
            self.dropped += 1
            return False
        packet.nic_id = self.nic_id
        self.rx_ring.append(packet)
        self.rx_count += 1
        if self.on_rx is not None:
            self.on_rx(self, packet)
        if self.interrupts_armed and len(self.rx_ring) == 1:
            # Empty -> non-empty with interrupts armed: raise one interrupt.
            self.interrupts_armed = False
            self.interrupts_raised += 1
            if self.on_interrupt is None:
                raise SimulationError(f"NIC {self.nic_id} armed with no interrupt sink")
            self.on_interrupt(self)
        return True

    # -- driver side ----------------------------------------------------------

    def poll(self) -> Optional[Packet]:
        """Driver poll: pop the oldest packet, or None."""
        if self.rx_ring:
            return self.rx_ring.popleft()
        return None

    def pending(self) -> int:
        return len(self.rx_ring)

    def arm_interrupts(self) -> bool:
        """Re-arm; returns False (and stays disarmed) if packets raced in —
        the driver must drain again before idling to avoid a lost wakeup."""
        if self.rx_ring:
            return False
        self.interrupts_armed = True
        return True

    def transmit(self, packet: Packet, now: float, out_port: int) -> None:
        """Send a routed packet back out (we only count it)."""
        packet.departure_time = now
        packet.out_port = out_port
        self.tx_count += 1
