"""The layer-3 forwarding application (§5.4, §6.2.2).

One core services 1-8 NIC RX rings.  Two notification modes:

- ``POLLING`` (DPDK as deployed): the core spins, round-robining over the
  rings — every cycle is spent either forwarding ("networking cycles") or
  polling; nothing is ever free.  A packet that lands while the core is
  mid-rotation waits, on average, half a rotation to be discovered.
- ``XUI_DEVICE`` (tracked interrupts + interrupt forwarding): the core
  idles; the first packet into an empty, armed ring raises a forwarded
  device interrupt (105-cycle delivery).  The handler drains *all* rings
  before re-arming and returning, so bursts cost one interrupt (§6.2.2:
  "the interrupt handler polls the network queue again before returning").

The router is a work-conserving single server: per-packet service time is a
calibrated constant covering RX descriptor handling, the LPM lookup, and TX.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import RngStreams
from repro.net.lpm import LPMTable
from repro.net.nic import NIC
from repro.net.packet import Packet
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism
from repro.sim.account import CycleAccount
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class L3fwdConfig:
    """Configuration of the router core."""

    mechanism: Mechanism = Mechanism.POLLING
    num_nics: int = 1
    #: Cycles to receive, route (LPM), and transmit one 64-byte packet.
    per_packet_cost: float = 600.0
    #: Cycles to check one (empty) RX ring.
    poll_queue_cost: float = 25.0
    #: Device-to-APIC wire latency for a forwarded interrupt.
    device_wire_latency: float = 100.0
    #: Handler epilogue per interrupt burst: re-arming the NIC interrupt is
    #: an MMIO write (plus uiret and prologue/epilogue work).
    rearm_cost: float = 300.0

    #: mwait exit latency (C-state wake; microsecond-ish on real parts).
    mwait_wake_latency: float = 2000.0

    def __post_init__(self) -> None:
        supported = (Mechanism.POLLING, Mechanism.XUI_DEVICE, Mechanism.MWAIT)
        if self.mechanism not in supported:
            raise ConfigError(
                f"l3fwd supports polling, mwait, or xUI device interrupts, not {self.mechanism}"
            )
        if self.num_nics <= 0:
            raise ConfigError("num_nics must be positive")
        if self.per_packet_cost <= 0:
            raise ConfigError("per_packet_cost must be positive")

    @property
    def rotation_cost(self) -> float:
        """One full polling rotation over all (empty) rings."""
        return self.num_nics * self.poll_queue_cost


class L3Forwarder:
    """The router core: attach to NICs, then feed packets via a generator."""

    def __init__(
        self,
        sim: Simulator,
        nics: List[NIC],
        config: L3fwdConfig,
        lpm: Optional[LPMTable] = None,
        costs: Optional[CostModel] = None,
        rng: Optional[RngStreams] = None,
    ) -> None:
        if len(nics) != config.num_nics:
            raise ConfigError(f"expected {config.num_nics} NICs, got {len(nics)}")
        self.sim = sim
        self.nics = nics
        self.config = config
        self.lpm = lpm
        self.costs = costs or CostModel.paper_defaults()
        self.rng = rng or RngStreams(seed=0)
        self.account = CycleAccount(name="l3fwd")
        self.latencies: List[float] = []
        self.forwarded = 0
        self.interrupts_taken = 0
        #: The server is busy until this time (work-conserving queue).
        self.busy_until = 0.0
        self._drain_scheduled = False
        self._started_at = sim.now

        if config.mechanism is Mechanism.POLLING:
            for nic in nics:
                nic.on_rx = self._polling_rx
        elif config.mechanism is Mechanism.MWAIT:
            for nic in nics:
                nic.on_rx = self._mwait_rx
        else:
            for nic in nics:
                nic.on_interrupt = self._device_interrupt
                nic.arm_interrupts()

    # ------------------------------------------------------------------
    # Polling mode
    # ------------------------------------------------------------------

    def _polling_rx(self, nic: NIC, packet: Packet) -> None:
        """A packet landed; the spinning core discovers it mid-rotation."""
        now = self.sim.now
        if self.busy_until <= now:
            # Core is in its poll rotation: uniform position in the round.
            discovery = self.rng.uniform("poll_discovery", 0.0, self.config.rotation_cost)
            self.busy_until = now + discovery
        self._schedule_drain()

    # ------------------------------------------------------------------
    # mwait mode (§2's single-queue limitation)
    # ------------------------------------------------------------------

    def _mwait_rx(self, nic: NIC, packet: Packet) -> None:
        """The parked core monitors *only* ring 0's cache line.

        A packet into ring 0 wakes the core (mwait exit latency); packets
        into any other ring sit unnoticed until something else wakes the
        core — exactly why mwait cannot replace polling for multi-queue
        data planes (§2, HyperPlane [47]).
        """
        now = self.sim.now
        if self.busy_until > now:
            # Awake and draining: the drain loop will pick this packet up.
            self._schedule_drain()
            return
        if nic.nic_id != 0:
            return  # unmonitored ring: no wakeup
        self.account.charge("mwait_wake", self.config.mwait_wake_latency)
        self.busy_until = now + self.config.mwait_wake_latency
        self._schedule_drain()

    # ------------------------------------------------------------------
    # xUI device-interrupt mode
    # ------------------------------------------------------------------

    def _device_interrupt(self, nic: NIC) -> None:
        """Forwarded device interrupt: wire latency + tracked delivery."""
        now = self.sim.now
        self.interrupts_taken += 1
        entry = (
            self.config.device_wire_latency + self.costs.timer_receive_tracked
        )
        self.account.charge("interrupt_delivery", self.costs.timer_receive_tracked)
        if self.busy_until <= now:
            self.busy_until = now + entry
        else:
            # Interrupt taken after the current drain finishes (UIF is
            # cleared inside the handler).
            self.busy_until += self.costs.timer_receive_tracked
        self._schedule_drain()

    # ------------------------------------------------------------------
    # Shared drain machinery
    # ------------------------------------------------------------------

    def _schedule_drain(self) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        delay = max(0.0, self.busy_until - self.sim.now)
        self.sim.schedule(delay, self._drain_step, name="l3fwd_drain")

    def _drain_step(self) -> None:
        """Process one packet (the head of the fullest ring), then continue."""
        self._drain_scheduled = False
        nic = max(self.nics, key=lambda n: n.pending())
        packet = nic.poll()
        if packet is None:
            # Rings drained: in interrupt mode, scan once more and re-arm.
            if self.config.mechanism is Mechanism.XUI_DEVICE:
                scan = self.config.rotation_cost + self.config.rearm_cost
                self.account.charge("handler_scan", scan)
                self.busy_until = max(self.busy_until, self.sim.now) + scan
                for n in self.nics:
                    if not n.arm_interrupts():
                        # A packet raced in during the final scan: keep going.
                        self._schedule_drain()
                        return
            return
        service = self.config.per_packet_cost
        start = max(self.busy_until, self.sim.now)
        self.busy_until = start + service
        self.account.charge("networking", service)
        if self.lpm is not None:
            out_port = self.lpm.lookup(packet.dst_ip)
        else:
            out_port = packet.nic_id
        done = self.busy_until

        def finish(p: Packet = packet, port: int = out_port or 0, n: NIC = nic) -> None:
            n.transmit(p, self.sim.now, port)
            self.latencies.append(p.latency)
            self.forwarded += 1

        self.sim.schedule(done - self.sim.now, finish, name="l3fwd_tx")
        self.sim.schedule(done - self.sim.now, self._schedule_drain, name="l3fwd_next")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        return self.sim.now - self._started_at

    def free_fraction(self) -> float:
        """Fraction of core cycles left for other work (§6.2.2).

        Polling never has free cycles: whatever is not networking is burnt
        polling.  With xUI, unaccounted time is genuinely free.
        """
        elapsed = self.elapsed()
        if elapsed <= 0:
            raise SimulationError("no simulated time has elapsed")
        if self.config.mechanism is Mechanism.POLLING:
            return 0.0
        return self.account.free_fraction(elapsed)

    def networking_fraction(self) -> float:
        return self.account.category_fraction("networking", self.elapsed())

    def polling_fraction(self) -> float:
        """Cycles spent polling (polling mode: everything not networking)."""
        if self.config.mechanism is Mechanism.POLLING:
            return max(0.0, 1.0 - self.networking_fraction())
        return self.account.category_fraction("handler_scan", self.elapsed())
