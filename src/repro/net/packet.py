"""Packets: 64-byte IPv4/UDP frames with latency bookkeeping (§5.4)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError

_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """One packet moving through the router."""

    dst_ip: int
    arrival_time: float
    size_bytes: int = 64
    nic_id: int = 0
    pid: int = field(default_factory=lambda: next(_packet_ids))
    #: Filled by the router.
    departure_time: Optional[float] = None
    out_port: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.dst_ip < (1 << 32):
            raise ConfigError(f"dst_ip out of range: {self.dst_ip}")
        if self.size_bytes <= 0:
            raise ConfigError("packet size must be positive")

    @property
    def latency(self) -> float:
        if self.departure_time is None:
            raise ConfigError(f"packet {self.pid} has not departed")
        return self.departure_time - self.arrival_time
