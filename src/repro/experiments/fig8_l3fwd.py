"""Figure 8: l3fwd efficiency — polling vs. xUI device interrupts (§6.2.2).

The router core serves 1/2/4/8 NICs under an exponential-arrival packet
stream at a sweep of offered loads.  Polling burns every cycle (networking
plus poll spin); xUI leaves the unused fraction genuinely free while
matching throughput (within ~0.1%) and p95 latency (within a few percent
for 1-4 NICs; +65% at 8 NICs in the paper).

Paper anchors: at 0% load xUI frees 100% of cycles; at 40% load with one
queue it frees ~45%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.common.stats import percentile
from repro.common.units import cycles_to_us
from repro.net.l3fwd import L3Forwarder, L3fwdConfig
from repro.net.lpm import RouteTableGenerator
from repro.net.nic import NIC
from repro.net.pktgen import PacketGenerator
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism
from repro.perf import SweepRunner
from repro.sim.simulator import Simulator

MECHANISMS = (Mechanism.POLLING, Mechanism.XUI_DEVICE)


@dataclass
class Fig8Point:
    """One (mechanism, NIC count, load) measurement."""

    mechanism: str
    num_nics: int
    offered_load: float
    offered_pps: float
    achieved_pps: float
    free_fraction: float
    networking_fraction: float
    p95_latency_us: float
    interrupts: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "offered_load": self.offered_load,
            "offered_pps": self.offered_pps,
            "achieved_pps": self.achieved_pps,
            "free_fraction": self.free_fraction,
            "networking_fraction": self.networking_fraction,
            "p95_latency_us": self.p95_latency_us,
            "interrupts": float(self.interrupts),
        }


def capacity_pps(config: L3fwdConfig, clock_hz: float = 2e9) -> float:
    """Packets/second that saturate the router core."""
    return clock_hz / config.per_packet_cost


def run_point(
    mechanism: Mechanism,
    num_nics: int,
    load_fraction: float,
    duration_seconds: float = 0.02,
    seed: int = 1,
    use_lpm: bool = False,
    costs: Optional[CostModel] = None,
) -> Fig8Point:
    """Simulate the router at ``load_fraction`` of core capacity."""
    if not 0.0 <= load_fraction <= 1.2:
        raise ConfigError("load_fraction should be within [0, 1.2]")
    sim = Simulator()
    rng = RngStreams(seed=seed)
    config = L3fwdConfig(mechanism=mechanism, num_nics=num_nics)
    nics = [NIC(i) for i in range(num_nics)]
    lpm = None
    address_pool = None
    if use_lpm:
        table_gen = RouteTableGenerator(seed=seed)
        lpm = table_gen.generate(16_000)
        address_pool = table_gen.random_addresses(256)
    forwarder = L3Forwarder(sim, nics, config, lpm=lpm, costs=costs, rng=rng)
    duration_cycles = duration_seconds * 2e9
    rate = load_fraction * capacity_pps(config)
    generator = None
    if rate > 0:
        generator = PacketGenerator(sim, nics, rate, rng=rng, address_pool=address_pool)
        generator.start()
    sim.run(until=duration_cycles)
    if generator is not None:
        generator.stop()
    latencies = forwarder.latencies
    achieved = forwarder.forwarded / duration_seconds
    return Fig8Point(
        mechanism=mechanism.value,
        num_nics=num_nics,
        offered_load=load_fraction,
        offered_pps=rate,
        achieved_pps=achieved,
        free_fraction=forwarder.free_fraction(),
        networking_fraction=forwarder.networking_fraction(),
        p95_latency_us=cycles_to_us(percentile(latencies, 95)) if latencies else float("nan"),
        interrupts=forwarder.interrupts_taken,
    )


@dataclass(frozen=True)
class _SweepPoint:
    """One picklable (mechanism, NIC count, load) sweep point.

    ``run_point`` builds its own :class:`RngStreams` from ``seed``, so
    worker processes draw exactly the variates the serial path would.
    """

    mechanism: Mechanism
    num_nics: int
    load_fraction: float
    duration_seconds: float
    seed: int


def _run_sweep_point(point: _SweepPoint) -> Fig8Point:
    return run_point(
        point.mechanism,
        point.num_nics,
        point.load_fraction,
        duration_seconds=point.duration_seconds,
        seed=point.seed,
    )


def run_fig8(
    nic_counts: Optional[List[int]] = None,
    load_fractions: Optional[List[float]] = None,
    duration_seconds: float = 0.02,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[int, List[Fig8Point]]]:
    """mechanism -> nic count -> load sweep (the Figure 8 panels)."""
    nic_counts = nic_counts or [1, 2, 4, 8]
    load_fractions = load_fractions or [0.0, 0.2, 0.4, 0.6, 0.8]
    points = [
        _SweepPoint(mechanism, nics, load, duration_seconds, seed)
        for mechanism in MECHANISMS
        for nics in nic_counts
        for load in load_fractions
    ]
    sweep = SweepRunner(jobs).map(_run_sweep_point, points)
    results: Dict[str, Dict[int, List[Fig8Point]]] = {}
    for point, measured in zip(points, sweep):
        results.setdefault(point.mechanism.value, {}).setdefault(
            point.num_nics, []
        ).append(measured)
    return results
