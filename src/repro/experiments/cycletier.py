"""Shared harness for cycle-tier experiments.

Builds multi-core systems around a measured workload, runs them to
completion, and computes per-interrupt receiver overheads the way the
paper's Figure 4 experiment does: run the benchmark with and without
periodic interrupts and divide the extra cycles by the number delivered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.apps.microbench import Workload, make_uipi_timer_core
from repro.cpu.config import SystemConfig
from repro.cpu.delivery import DeliveryStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem

#: Default interrupt interval: 5 us at 2 GHz (the paper's headline quantum).
DEFAULT_INTERVAL = 10_000
#: Safety bound on simulated cycles.
MAX_CYCLES = 50_000_000


@dataclass
class RunResult:
    """Outcome of one cycle-tier run."""

    cycles: int
    interrupts_delivered: int
    committed_instructions: int
    system: MultiCoreSystem

    @property
    def core(self):
        return self.system.cores[0]


def run_baseline(
    workload: Workload,
    config: Optional[SystemConfig] = None,
    max_cycles: int = MAX_CYCLES,
) -> RunResult:
    """Run the workload alone (no interrupts) to completion."""
    system = MultiCoreSystem([workload.program], [FlushStrategy()], config=config)
    workload.install(system.shared)
    system.run(max_cycles, until_halted=[0])
    core = system.cores[0]
    if not core.halted:
        raise SimulationError(
            f"workload {workload.name!r} did not halt within {max_cycles} cycles"
        )
    return RunResult(
        cycles=system.cycle,
        interrupts_delivered=0,
        committed_instructions=core.stats.committed_instructions,
        system=system,
    )


def run_with_uipi_timer(
    workload: Workload,
    strategy: DeliveryStrategy,
    interval: int = DEFAULT_INTERVAL,
    config: Optional[SystemConfig] = None,
    expected_cycles: Optional[int] = None,
    max_cycles: int = MAX_CYCLES,
    trace: bool = False,
) -> RunResult:
    """Run the workload on core 0 with a dedicated UIPI timer core (core 1)."""
    baseline = expected_cycles or run_baseline(workload, config).cycles
    count = baseline // interval + 16
    sender = make_uipi_timer_core(interval, count)
    system = MultiCoreSystem(
        [workload.program, sender.program],
        [strategy, FlushStrategy()],
        config=config,
        trace=trace,
    )
    workload.install(system.shared)
    system.connect_uipi(sender_core_id=1, receiver_core_id=0, user_vector=1)
    system.run(max_cycles, until_halted=[0])
    core = system.cores[0]
    if not core.halted:
        raise SimulationError(f"workload {workload.name!r} wedged under interrupts")
    return RunResult(
        cycles=system.cycle,
        interrupts_delivered=core.stats.interrupts_delivered,
        committed_instructions=core.stats.committed_instructions,
        system=system,
    )


def run_with_kb_timer(
    workload: Workload,
    interval: int = DEFAULT_INTERVAL,
    config: Optional[SystemConfig] = None,
    strategy_factory: Callable[[], DeliveryStrategy] = TrackedStrategy,
    max_cycles: int = MAX_CYCLES,
    trace: bool = False,
) -> RunResult:
    """Run the workload with its core's own KB timer firing each interval."""
    system = MultiCoreSystem(
        [workload.program], [strategy_factory()], config=config, trace=trace
    )
    workload.install(system.shared)
    system.enable_kb_timer(0)
    system.cores[0].uintr.kb_timer.arm_periodic(interval, now=0)
    system.run(max_cycles, until_halted=[0])
    core = system.cores[0]
    if not core.halted:
        raise SimulationError(f"workload {workload.name!r} wedged under KB timer")
    return RunResult(
        cycles=system.cycle,
        interrupts_delivered=core.stats.interrupts_delivered,
        committed_instructions=core.stats.committed_instructions,
        system=system,
    )


def per_event_overhead(base_cycles: int, loaded: RunResult) -> float:
    """Receiver-side cycles per interrupt (the Figure 4 metric)."""
    if loaded.interrupts_delivered == 0:
        raise SimulationError("no interrupts were delivered")
    return (loaded.cycles - base_cycles) / loaded.interrupts_delivered


def slowdown_percent(base_cycles: int, loaded_cycles: int) -> float:
    """Runtime increase in percent."""
    return 100.0 * (loaded_cycles - base_cycles) / base_cycles
