"""Shared harness for cycle-tier experiments.

Builds multi-core systems around a measured workload, runs them to
completion, and computes per-interrupt receiver overheads the way the
paper's Figure 4 experiment does: run the benchmark with and without
periodic interrupts and divide the extra cycles by the number delivered.

Every entry point here is memoized through the persistent result cache
(``repro.perf.cache``): the cycle tier is deterministic, so an outcome is a
pure function of (program bytes, memory image, config, delivery strategy,
interrupt schedule) and can be replayed from disk.  Cache hits return a
:class:`RunResult` carrying the recorded counters but no live ``system``;
``trace=True`` runs bypass the cache because callers need the live trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.apps.microbench import Workload, make_uipi_timer_core
from repro.cpu.cache import SharedMemory
from repro.cpu.config import SystemConfig
from repro.cpu.core import CoreStats
from repro.cpu.delivery import DeliveryStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.perf.cache import ResultCache, default_cache

#: Default interrupt interval: 5 us at 2 GHz (the paper's headline quantum).
DEFAULT_INTERVAL = 10_000
#: Safety bound on simulated cycles.
MAX_CYCLES = 50_000_000


@dataclass
class RunResult:
    """Outcome of one cycle-tier run.

    ``stats`` is always populated (a snapshot on live runs, reconstructed
    counters on cache hits); ``system`` is only present for live runs.
    """

    cycles: int
    interrupts_delivered: int
    committed_instructions: int
    system: Optional[MultiCoreSystem] = None
    stats: Optional[CoreStats] = None

    @property
    def core(self):
        if self.system is None:
            raise SimulationError(
                "this RunResult was replayed from the result cache and has no "
                "live system; disable the cache (REPRO_CACHE=0) to inspect cores"
            )
        return self.system.cores[0]


def memory_image(workload: Workload):
    """The workload's initial memory image, for content-addressed cache keys.

    ``init_memory`` is an opaque callable; hashing its *effect* (the words it
    writes into a fresh :class:`SharedMemory`) is both stable and exact.
    """
    staging = SharedMemory()
    workload.install(staging)
    return staging.snapshot_words()


def _result_from_cached(value: Dict[str, Any]) -> RunResult:
    return RunResult(
        cycles=value["cycles"],
        interrupts_delivered=value["interrupts_delivered"],
        committed_instructions=value["committed_instructions"],
        system=None,
        stats=CoreStats(**value["stats"]),
    )


def _result_to_cached(result: RunResult) -> Dict[str, Any]:
    return {
        "cycles": result.cycles,
        "interrupts_delivered": result.interrupts_delivered,
        "committed_instructions": result.committed_instructions,
        "stats": dict(result.stats.__dict__),
    }


def _cached_run(
    cache: Optional[ResultCache],
    payload: Dict[str, Any],
    live: Callable[[], RunResult],
) -> RunResult:
    if cache is None:
        cache = default_cache()
    if not cache.enabled:
        return live()
    try:
        key = cache.key_for(payload)
    except ConfigError:
        # An input we cannot hash stably (e.g. an ad-hoc strategy closure
        # from a test) is simply not cacheable; simulate it live.
        return live()
    hit = cache.get(key)
    if hit is not None:
        return _result_from_cached(hit)
    result = live()
    cache.put(key, _result_to_cached(result))
    return result


def run_baseline(
    workload: Workload,
    config: Optional[SystemConfig] = None,
    max_cycles: int = MAX_CYCLES,
    cache: Optional[ResultCache] = None,
) -> RunResult:
    """Run the workload alone (no interrupts) to completion."""
    resolved = config or SystemConfig.sapphire_rapids_like()

    def live() -> RunResult:
        system = MultiCoreSystem([workload.program], [FlushStrategy()], config=resolved)
        workload.install(system.shared)
        system.run(max_cycles, until_halted=[0])
        core = system.cores[0]
        if not core.halted:
            raise SimulationError(
                f"workload {workload.name!r} did not halt within {max_cycles} cycles"
            )
        return RunResult(
            cycles=system.cycle,
            interrupts_delivered=0,
            committed_instructions=core.stats.committed_instructions,
            system=system,
            stats=core.stats.snapshot(),
        )

    payload = {
        "kind": "baseline",
        "program": workload.program,
        "memory": memory_image(workload),
        "config": resolved,
        "max_cycles": max_cycles,
    }
    return _cached_run(cache, payload, live)


def run_with_uipi_timer(
    workload: Workload,
    strategy: DeliveryStrategy,
    interval: int = DEFAULT_INTERVAL,
    config: Optional[SystemConfig] = None,
    expected_cycles: Optional[int] = None,
    max_cycles: int = MAX_CYCLES,
    trace: bool = False,
    cache: Optional[ResultCache] = None,
) -> RunResult:
    """Run the workload on core 0 with a dedicated UIPI timer core (core 1)."""
    resolved = config or SystemConfig.sapphire_rapids_like()
    baseline = (
        expected_cycles
        or run_baseline(workload, resolved, max_cycles=max_cycles, cache=cache).cycles
    )
    count = baseline // interval + 16
    sender = make_uipi_timer_core(interval, count)

    def live() -> RunResult:
        system = MultiCoreSystem(
            [workload.program, sender.program],
            [strategy, FlushStrategy()],
            config=resolved,
            trace=trace,
        )
        workload.install(system.shared)
        system.connect_uipi(sender_core_id=1, receiver_core_id=0, user_vector=1)
        system.run(max_cycles, until_halted=[0])
        core = system.cores[0]
        if not core.halted:
            raise SimulationError(f"workload {workload.name!r} wedged under interrupts")
        return RunResult(
            cycles=system.cycle,
            interrupts_delivered=core.stats.interrupts_delivered,
            committed_instructions=core.stats.committed_instructions,
            system=system,
            stats=core.stats.snapshot(),
        )

    if trace:
        return live()
    payload = {
        "kind": "uipi_timer",
        "program": workload.program,
        "sender_program": sender.program,
        "memory": memory_image(workload),
        "strategy": strategy,
        "schedule": {"interval": interval, "count": count},
        "config": resolved,
        "max_cycles": max_cycles,
    }
    return _cached_run(cache, payload, live)


def run_with_kb_timer(
    workload: Workload,
    interval: int = DEFAULT_INTERVAL,
    config: Optional[SystemConfig] = None,
    strategy_factory: Callable[[], DeliveryStrategy] = TrackedStrategy,
    max_cycles: int = MAX_CYCLES,
    trace: bool = False,
    cache: Optional[ResultCache] = None,
) -> RunResult:
    """Run the workload with its core's own KB timer firing each interval."""
    resolved = config or SystemConfig.sapphire_rapids_like()
    strategy = strategy_factory()

    def live() -> RunResult:
        system = MultiCoreSystem(
            [workload.program], [strategy], config=resolved, trace=trace
        )
        workload.install(system.shared)
        system.enable_kb_timer(0)
        system.cores[0].uintr.kb_timer.arm_periodic(interval, now=0)
        system.run(max_cycles, until_halted=[0])
        core = system.cores[0]
        if not core.halted:
            raise SimulationError(f"workload {workload.name!r} wedged under KB timer")
        return RunResult(
            cycles=system.cycle,
            interrupts_delivered=core.stats.interrupts_delivered,
            committed_instructions=core.stats.committed_instructions,
            system=system,
            stats=core.stats.snapshot(),
        )

    if trace:
        return live()
    payload = {
        "kind": "kb_timer",
        "program": workload.program,
        "memory": memory_image(workload),
        "strategy": strategy,
        "schedule": {"kb_interval": interval},
        "config": resolved,
        "max_cycles": max_cycles,
    }
    return _cached_run(cache, payload, live)


def per_event_overhead(base_cycles: int, loaded: RunResult) -> float:
    """Receiver-side cycles per interrupt (the Figure 4 metric)."""
    if loaded.interrupts_delivered == 0:
        raise SimulationError("no interrupts were delivered")
    return (loaded.cycles - base_cycles) / loaded.interrupts_delivered


def slowdown_percent(base_cycles: int, loaded_cycles: int) -> float:
    """Runtime increase in percent."""
    return 100.0 * (loaded_cycles - base_cycles) / base_cycles
