"""Figure 7: RocksDB tail latency/throughput under preemptive scheduling.

An Aspen runtime serves the bimodal RocksDB mix (99.5% GET at 1.2 us,
0.5% SCAN at 580 us) from an open-loop Poisson load generator.  Three
configurations (§6.2.1):

- ``no_preempt``: run-to-completion — a SCAN blocks GETs for 580 us, so
  GET tail latency is hundreds of microseconds even at trivial load.
- ``uipi``: 5 us quantum via UIPI from a dedicated timer core (flush-based
  receive, ~645 cycles/preemption + thread switch).
- ``xui``: 5 us quantum via the KB timer + tracking (~105 cycles/event);
  the paper reports ~10% more GET throughput than UIPI and one core saved.

Reported per offered load: achieved throughput and p99.9 GET/SCAN latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.common.stats import percentile
from repro.common.units import cycles_to_us
from repro.apps.loadgen import PoissonLoadGenerator
from repro.apps.rocksdb import BimodalServiceModel
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism
from repro.runtime.aspen import AspenRuntime, RuntimeConfig
from repro.runtime.uthread import UThread
from repro.sim.simulator import Simulator

CONFIGURATIONS = ("no_preempt", "uipi", "xui")
#: The paper's preemption quantum: 5 us at 2 GHz.
QUANTUM_CYCLES = 10_000.0


@dataclass
class Fig7Point:
    """One (configuration, offered load) measurement."""

    configuration: str
    offered_rps: float
    achieved_rps: float
    completed: int
    get_p999_us: float
    scan_p999_us: float
    get_mean_us: float
    preemptions: int
    timer_core_busy_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "get_p999_us": self.get_p999_us,
            "scan_p999_us": self.scan_p999_us,
            "get_mean_us": self.get_mean_us,
            "preemptions": float(self.preemptions),
            "timer_core_busy_fraction": self.timer_core_busy_fraction,
        }


def _runtime_config(configuration: str, num_workers: int = 1) -> RuntimeConfig:
    if configuration == "no_preempt":
        return RuntimeConfig(num_workers=num_workers, quantum=None, mechanism=None)
    if configuration == "uipi":
        return RuntimeConfig(
            num_workers=num_workers, quantum=QUANTUM_CYCLES, mechanism=Mechanism.UIPI
        )
    if configuration == "xui":
        return RuntimeConfig(
            num_workers=num_workers, quantum=QUANTUM_CYCLES, mechanism=Mechanism.XUI_KB_TIMER
        )
    raise ConfigError(f"unknown configuration {configuration!r}")


def run_point(
    configuration: str,
    offered_rps: float,
    duration_seconds: float = 0.25,
    seed: int = 1,
    costs: Optional[CostModel] = None,
    num_workers: int = 1,
) -> Fig7Point:
    """Simulate one configuration at one offered load.

    The paper pins one worker core (§5.3); ``num_workers`` scales the
    runtime out with work stealing for the multi-core variant.
    """
    sim = Simulator()
    rng = RngStreams(seed=seed)
    costs = costs or CostModel.paper_defaults()
    runtime = AspenRuntime(
        sim, _runtime_config(configuration, num_workers), costs=costs, rng=rng
    )
    service_model = BimodalServiceModel(rng=rng)
    generator = PoissonLoadGenerator(offered_rps, service_model=service_model, rng=rng)
    duration_cycles = duration_seconds * 2e9

    def on_arrival(arrival) -> None:
        runtime.spawn(
            UThread(
                service_cycles=arrival.spec.service_cycles,
                kind=arrival.spec.kind,
                arrival_time=sim.now,
            )
        )

    generator.schedule_into(sim, duration_cycles, on_arrival)
    # Run past the arrival window to let queued work drain (bounded).
    sim.run(until=duration_cycles * 1.5)

    gets = runtime.response_times(kind="get")
    scans = runtime.response_times(kind="scan")
    completed = len(runtime.completed)
    # Throughput = completions inside the arrival window; the drain tail
    # afterwards finishes queued work but is not sustained capacity.
    in_window = sum(
        1 for t in runtime.completed if t.completion_time <= duration_cycles
    )
    achieved = in_window / duration_seconds
    timer_busy = 0.0
    if runtime.timer_core is not None:
        timer_busy = runtime.timer_core.busy_fraction(sim.now)
    return Fig7Point(
        configuration=configuration,
        offered_rps=offered_rps,
        achieved_rps=achieved,
        completed=completed,
        get_p999_us=cycles_to_us(percentile(gets, 99.9)) if gets else float("nan"),
        scan_p999_us=cycles_to_us(percentile(scans, 99.9)) if scans else float("nan"),
        get_mean_us=cycles_to_us(sum(gets) / len(gets)) if gets else float("nan"),
        preemptions=sum(w.preemption_events for w in runtime.workers),
        timer_core_busy_fraction=timer_busy,
    )


def run_fig7(
    loads_rps: Optional[List[float]] = None,
    configurations: Optional[List[str]] = None,
    duration_seconds: float = 0.25,
    seed: int = 1,
) -> Dict[str, List[Fig7Point]]:
    """configuration -> list of load points (the Figure 7 curves)."""
    loads_rps = loads_rps or [
        20_000,
        60_000,
        100_000,
        140_000,
        180_000,
        200_000,
        215_000,
        230_000,
    ]
    configurations = configurations or list(CONFIGURATIONS)
    results: Dict[str, List[Fig7Point]] = {}
    for configuration in configurations:
        results[configuration] = [
            run_point(configuration, load, duration_seconds=duration_seconds, seed=seed)
            for load in loads_rps
        ]
    return results


def max_throughput_under_slo(
    points: List[Fig7Point], slo_us: float = 1000.0
) -> float:
    """Highest achieved GET throughput whose p99.9 GET latency meets the SLO
    (the paper's 1 ms tail-latency target)."""
    eligible = [p.achieved_rps for p in points if p.get_p999_us <= slo_us]
    return max(eligible) if eligible else 0.0
