"""Figure 5: preemption with hardware safepoints vs. polling vs. UIPI.

Two programs (matmul, base64) are preempted at a sweep of quanta with three
mechanisms:

- ``polling``: Concord-style compiler instrumentation — a shared-flag check
  at every function entry and loop back-edge; a timer core sets the flag
  each quantum.  Precise, but the checks tax every iteration (paper:
  8.5-11% at a 5 us quantum, up to 10x worse than the others).
- ``uipi``: plain UIPI preemption (imprecise) from a timer core.
- ``hw_safepoints``: xUI tracking + KB timer with safepoint mode on; the
  compiler emits safepoint prefixes at the same sites as polling.  Precise
  *and* near zero cost (paper: 1.2-1.5% at 5 us).

Overhead is percent slowdown against the uninstrumented, un-preempted run.

The (program, mechanism, quantum) grid executes through
:class:`repro.perf.SweepRunner` as independent picklable points, and the
polling/safepoint system builds are memoized in the persistent result cache
like the ``cycletier`` entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.apps import microbench as mb
from repro.compiler.instrument import (
    DEFAULT_POLL_FLAG_ADDR,
    PollingInstrumenter,
    SafepointInstrumenter,
)
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.experiments import cycletier
from repro.perf import SweepRunner
from repro.perf.cache import default_cache
from repro.xui.features import enable_safepoint_mode

MECHANISMS = ("polling", "uipi", "hw_safepoints")

#: Paper reference at the 5 us quantum (percent slowdown).
PAPER_AT_5US = {"polling": (8.5, 11.0), "hw_safepoints": (1.2, 1.5)}


def default_programs(scale: float = 1.0) -> Dict[str, Callable[..., mb.Workload]]:
    """Figure 5's two programs, parameterized by instrumenter.

    ``functools.partial`` factories keep the sweep points picklable.
    """
    return {
        # Sized so baselines span several preemption quanta (tens of
        # thousands of cycles) at the default 5 us interval.
        "matmul": partial(mb.make_matmul, size=max(10, int(20 * scale ** (1 / 3)))),
        "base64": partial(mb.make_base64, iterations=max(1000, int(6000 * scale))),
    }


def _run_polling(factory, quantum: int, baseline_cycles: int) -> int:
    """Instrumented program + a timer core setting the poll flag."""
    workload = factory(instrument=PollingInstrumenter())
    # Instrumentation slows the program; budget generously for flag count.
    count = int(baseline_cycles * 1.6) // quantum + 16
    timer = mb.make_poll_timer_core(quantum, count, DEFAULT_POLL_FLAG_ADDR)

    def live() -> Dict[str, int]:
        system = MultiCoreSystem(
            [workload.program, timer.program], [FlushStrategy(), FlushStrategy()]
        )
        workload.install(system.shared)
        system.run(cycletier.MAX_CYCLES, until_halted=[0])
        return {"cycles": system.cycle}

    payload = {
        "kind": "fig5_polling",
        "program": workload.program,
        "timer_program": timer.program,
        "memory": cycletier.memory_image(workload),
        "schedule": {"quantum": quantum, "count": count},
        "max_cycles": cycletier.MAX_CYCLES,
    }
    return default_cache().memoize(payload, live)["cycles"]


def _run_uipi(factory, quantum: int, baseline_cycles: int) -> int:
    workload = factory(instrument=None)
    run = cycletier.run_with_uipi_timer(
        workload, FlushStrategy(), interval=quantum, expected_cycles=baseline_cycles
    )
    return run.cycles


def _run_safepoints(factory, quantum: int) -> int:
    """Safepoint-instrumented program, KB timer, tracking, safepoint mode."""
    workload = factory(instrument=SafepointInstrumenter())

    def live() -> Dict[str, int]:
        system = MultiCoreSystem([workload.program], [TrackedStrategy()])
        workload.install(system.shared)
        system.enable_kb_timer(0)
        core = system.cores[0]
        enable_safepoint_mode(core)
        core.uintr.kb_timer.arm_periodic(quantum, now=0)
        system.run(cycletier.MAX_CYCLES, until_halted=[0])
        if not core.halted:
            raise RuntimeError(f"{workload.name} wedged under safepoint preemption")
        return {"cycles": system.cycle}

    payload = {
        "kind": "fig5_safepoints",
        "program": workload.program,
        "memory": cycletier.memory_image(workload),
        "strategy": TrackedStrategy(),
        "schedule": {"kb_interval": quantum, "safepoint_mode": True},
        "max_cycles": cycletier.MAX_CYCLES,
    }
    return default_cache().memoize(payload, live)["cycles"]


@dataclass(frozen=True)
class _Point:
    """One picklable (program, mechanism, quantum) sweep point."""

    program: str
    mechanism: str
    quantum: int
    factory: Callable[..., mb.Workload]
    baseline_cycles: int


def _baseline_point(factory: Callable[..., mb.Workload]) -> int:
    return cycletier.run_baseline(factory(instrument=None)).cycles


def _run_point(point: _Point) -> int:
    if point.mechanism == "polling":
        return _run_polling(point.factory, point.quantum, point.baseline_cycles)
    if point.mechanism == "uipi":
        return _run_uipi(point.factory, point.quantum, point.baseline_cycles)
    if point.mechanism == "hw_safepoints":
        return _run_safepoints(point.factory, point.quantum)
    raise ValueError(f"unknown mechanism {point.mechanism!r}")


def run_fig5(
    quanta: Optional[List[int]] = None,
    programs: Optional[Dict[str, Callable[..., mb.Workload]]] = None,
    mechanisms: Optional[List[str]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """program -> mechanism -> quantum -> overhead percent."""
    quanta = quanta or [10_000, 20_000, 50_000]  # 5/10/25 us
    programs = programs or default_programs()
    mechanisms = mechanisms or list(MECHANISMS)
    for mechanism in mechanisms:
        if mechanism not in MECHANISMS:
            raise ValueError(f"unknown mechanism {mechanism!r}")
    runner = SweepRunner(jobs)
    program_items = list(programs.items())
    baselines = runner.map(_baseline_point, [f for _, f in program_items])
    points = [
        _Point(name, mechanism, quantum, factory, base)
        for (name, factory), base in zip(program_items, baselines)
        for mechanism in mechanisms
        for quantum in quanta
    ]
    cycles_per_point = runner.map(_run_point, points)
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for point, cycles in zip(points, cycles_per_point):
        results.setdefault(point.program, {}).setdefault(point.mechanism, {})[
            point.quantum
        ] = cycletier.slowdown_percent(point.baseline_cycles, cycles)
    return results
