"""Figure 5: preemption with hardware safepoints vs. polling vs. UIPI.

Two programs (matmul, base64) are preempted at a sweep of quanta with three
mechanisms:

- ``polling``: Concord-style compiler instrumentation — a shared-flag check
  at every function entry and loop back-edge; a timer core sets the flag
  each quantum.  Precise, but the checks tax every iteration (paper:
  8.5-11% at a 5 us quantum, up to 10x worse than the others).
- ``uipi``: plain UIPI preemption (imprecise) from a timer core.
- ``hw_safepoints``: xUI tracking + KB timer with safepoint mode on; the
  compiler emits safepoint prefixes at the same sites as polling.  Precise
  *and* near zero cost (paper: 1.2-1.5% at 5 us).

Overhead is percent slowdown against the uninstrumented, un-preempted run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.apps import microbench as mb
from repro.compiler.instrument import (
    DEFAULT_POLL_FLAG_ADDR,
    PollingInstrumenter,
    SafepointInstrumenter,
)
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.experiments import cycletier

MECHANISMS = ("polling", "uipi", "hw_safepoints")

#: Paper reference at the 5 us quantum (percent slowdown).
PAPER_AT_5US = {"polling": (8.5, 11.0), "hw_safepoints": (1.2, 1.5)}


def default_programs(scale: float = 1.0) -> Dict[str, Callable[..., mb.Workload]]:
    """Figure 5's two programs, parameterized by instrumenter."""
    return {
        # Sized so baselines span several preemption quanta (tens of
        # thousands of cycles) at the default 5 us interval.
        "matmul": lambda instrument=None: mb.make_matmul(
            size=max(10, int(20 * scale ** (1 / 3))), instrument=instrument
        ),
        "base64": lambda instrument=None: mb.make_base64(
            iterations=max(1000, int(6000 * scale)), instrument=instrument
        ),
    }


def _run_polling(factory, quantum: int, baseline_cycles: int) -> int:
    """Instrumented program + a timer core setting the poll flag."""
    workload = factory(instrument=PollingInstrumenter())
    # Instrumentation slows the program; budget generously for flag count.
    count = int(baseline_cycles * 1.6) // quantum + 16
    timer = mb.make_poll_timer_core(quantum, count, DEFAULT_POLL_FLAG_ADDR)
    system = MultiCoreSystem(
        [workload.program, timer.program], [FlushStrategy(), FlushStrategy()]
    )
    workload.install(system.shared)
    system.run(cycletier.MAX_CYCLES, until_halted=[0])
    return system.cycle


def _run_uipi(factory, quantum: int, baseline_cycles: int) -> int:
    workload = factory(instrument=None)
    run = cycletier.run_with_uipi_timer(
        workload, FlushStrategy(), interval=quantum, expected_cycles=baseline_cycles
    )
    return run.cycles


def _run_safepoints(factory, quantum: int) -> int:
    """Safepoint-instrumented program, KB timer, tracking, safepoint mode."""
    workload = factory(instrument=SafepointInstrumenter())
    system = MultiCoreSystem([workload.program], [TrackedStrategy()])
    workload.install(system.shared)
    system.enable_kb_timer(0)
    core = system.cores[0]
    core.uintr.safepoint_mode = True
    core.uintr.kb_timer.arm_periodic(quantum, now=0)
    system.run(cycletier.MAX_CYCLES, until_halted=[0])
    if not core.halted:
        raise RuntimeError(f"{workload.name} wedged under safepoint preemption")
    return system.cycle


def run_fig5(
    quanta: Optional[List[int]] = None,
    programs: Optional[Dict[str, Callable[..., mb.Workload]]] = None,
    mechanisms: Optional[List[str]] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """program -> mechanism -> quantum -> overhead percent."""
    quanta = quanta or [10_000, 20_000, 50_000]  # 5/10/25 us
    programs = programs or default_programs()
    mechanisms = mechanisms or list(MECHANISMS)
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name, factory in programs.items():
        baseline = cycletier.run_baseline(factory(instrument=None)).cycles
        results[name] = {}
        for mechanism in mechanisms:
            results[name][mechanism] = {}
            for quantum in quanta:
                if mechanism == "polling":
                    cycles = _run_polling(factory, quantum, baseline)
                elif mechanism == "uipi":
                    cycles = _run_uipi(factory, quantum, baseline)
                elif mechanism == "hw_safepoints":
                    cycles = _run_safepoints(factory, quantum)
                else:
                    raise ValueError(f"unknown mechanism {mechanism!r}")
                results[name][mechanism][quantum] = cycletier.slowdown_percent(
                    baseline, cycles
                )
    return results
