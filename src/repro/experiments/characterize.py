"""Cycle-tier characterization: Table 2, Figure 2, §3.5, and §6.1 worst case.

These are the reproduction of the paper's reverse-engineering study — run
against our simulated core instead of a Sapphire Rapids part, with the
paper's measured values as the calibration targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.apps import microbench as mb
from repro.cpu import isa
from repro.cpu.config import SystemConfig
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.experiments import cycletier
from repro.obs.latency import pair_latencies
from repro.perf import SweepRunner
from repro.perf.cache import default_cache
from repro.uintr.upid import UPID

#: Strategy constructors for sweep points, resolved by label so points stay
#: picklable plain data.
STRATEGY_FACTORIES = {
    "flush": FlushStrategy,
    "drain": partial(DrainStrategy, extra_pad=0),
    "tracked": TrackedStrategy,
}

#: Paper values these measurements are calibrated against.
PAPER_TABLE2 = {
    "uipi_end_to_end": 1360.0,
    "uipi_receive_flush": 720.0,
    "senduipi": 383.0,
    "clui": 2.0,
    "stui": 32.0,
}
PAPER_FIG4_PER_EVENT = {
    "uipi_receive_flush": 645.0,
    "uipi_receive_tracked": 231.0,
    "timer_receive_tracked": 105.0,
}


def _unit_cost_loop(instruction_factory, count: int) -> float:
    """Average cycles per instruction over a straight-line repetition."""
    builder = ProgramBuilder("unit_cost")
    for _ in range(count):
        builder.emit(instruction_factory())
    builder.emit(isa.halt())
    program = builder.build()

    def live() -> Dict[str, int]:
        system = MultiCoreSystem([program], [FlushStrategy()])
        system.run(cycletier.MAX_CYCLES, until_halted=[0])
        return {"cycles": system.cycle}

    payload = {"kind": "unit_cost_loop", "program": program, "count": count}
    return default_cache().memoize(payload, live)["cycles"] / count


def measure_senduipi_cost(count: int = 50) -> float:
    """Sender-side senduipi cost, receiver suppressed (SN set) so no
    delivery perturbs the measurement (§3.5 methodology)."""
    sender = ProgramBuilder("send_loop")
    for _ in range(count):
        sender.emit(isa.senduipi(0))
    sender.emit(isa.halt())
    receiver = ProgramBuilder("spin")
    receiver.label("loop")
    receiver.emit(isa.addi(1, 1, 1))
    receiver.emit(isa.jmp("loop"))
    receiver.emit_default_handler()
    sender_program = sender.build()
    receiver_program = receiver.build()

    def live() -> Dict[str, int]:
        system = MultiCoreSystem(
            [sender_program, receiver_program], [FlushStrategy(), FlushStrategy()]
        )
        upid_addr = system.register_handler(1)
        system.register_sender(0, upid_addr, 1)
        UPID(system.shared, upid_addr).set_suppressed(True)
        system.run(cycletier.MAX_CYCLES, until_halted=[0])
        return {"cycles": system.cycle}

    payload = {
        "kind": "senduipi_cost",
        "programs": [sender_program, receiver_program],
        "count": count,
    }
    return default_cache().memoize(payload, live)["cycles"] / count


def measure_end_to_end_latency(samples: int = 10, gap: int = 4000) -> float:
    """senduipi issue to handler entry on the receiver (Table 2 e2e)."""
    sender = ProgramBuilder("e2e_sender")
    sender.emit(isa.movi(6, 0))
    for i in range(samples):
        sender.emit(isa.senduipi(0))
        sender.emit(isa.movi(7, 0))
        sender.label(f"gap{i}")
        sender.emit(isa.addi(7, 7, 1))
        sender.emit(isa.blti(7, gap // 2, f"gap{i}"))
    sender.emit(isa.halt())
    receiver = ProgramBuilder("e2e_receiver")
    receiver.label("loop")
    receiver.emit(isa.addi(1, 1, 1))
    receiver.emit(isa.jmp("loop"))
    receiver.emit_default_handler()
    sender_program = sender.build()
    receiver_program = receiver.build()

    def live() -> Dict[str, float]:
        # The measurement needs the live trace, but the *derived* latency is
        # deterministic, so the scalar itself is cacheable.
        system = MultiCoreSystem(
            [sender_program, receiver_program],
            [FlushStrategy(), FlushStrategy()],
            trace=True,
        )
        system.connect_uipi(0, 1, user_vector=1)
        system.run(cycletier.MAX_CYCLES, until_halted=[0])
        system.run(8000)
        sends = [e.time for e in system.trace.events if e.kind == "senduipi_start" and e.detail.get("core") == 0]
        entries = [e.time for e in system.trace.events if e.kind == "handler_fetch" and e.detail.get("core") == 1]
        if not sends or not entries:
            raise SimulationError("end-to-end measurement saw no deliveries")
        latencies = _pair_latencies(sends, entries)
        if not latencies:
            raise SimulationError("could not pair sends with handler entries")
        return {"latency": sum(latencies) / len(latencies)}

    payload = {
        "kind": "e2e_latency",
        "programs": [sender_program, receiver_program],
        "samples": samples,
        "gap": gap,
    }
    return default_cache().memoize(payload, live)["latency"]


def measure_interrupt_costs(quick: bool = True) -> Dict[str, float]:
    """Re-measure the CostModel constants on the cycle tier (Fig 4 method)."""
    iters = 12_000 if quick else 60_000
    interval = cycletier.DEFAULT_INTERVAL

    def workload():
        return mb.make_count_loop(iters)

    base = cycletier.run_baseline(workload()).cycles
    flush = cycletier.run_with_uipi_timer(
        workload(), FlushStrategy(), interval=interval, expected_cycles=base
    )
    tracked = cycletier.run_with_uipi_timer(
        workload(), TrackedStrategy(), interval=interval, expected_cycles=base
    )
    kb = cycletier.run_with_kb_timer(workload(), interval=interval)
    return {
        "uipi_receive_flush": cycletier.per_event_overhead(base, flush),
        "uipi_receive_tracked": cycletier.per_event_overhead(base, tracked),
        "timer_receive_tracked": cycletier.per_event_overhead(base, kb),
        "uipi_end_to_end": measure_end_to_end_latency(samples=4 if quick else 12),
        "senduipi": measure_senduipi_cost(count=30 if quick else 100),
        "clui": _unit_cost_loop(isa.clui, 60),
        "stui": _unit_cost_loop(isa.stui, 60),
    }


def run_table2(quick: bool = True) -> Dict[str, Dict[str, float]]:
    """Table 2: key UIPI performance metrics, measured vs. paper."""
    measured = measure_interrupt_costs(quick=quick)
    rows: Dict[str, Dict[str, float]] = {}
    for key, paper_value in PAPER_TABLE2.items():
        model_key = key
        rows[key] = {"paper": paper_value, "measured": measured[model_key]}
    return rows


# ---------------------------------------------------------------------------
# Figure 2: the UIPI latency timeline
# ---------------------------------------------------------------------------


def run_fig2_timeline() -> Dict[str, float]:
    """Reconstruct the Figure 2 timeline from trace events of one delivery.

    Paper reference points: senduipi issues at 0, the receiver is
    interrupted at ~380, the first observable notification event lands
    ~424 cycles later, notification+delivery take ~262, uiret ~10.
    """
    # Three spaced sends; the measurement uses the *last* (steady state —
    # the first pays cold-cache costs for the UITT/UPID lines the paper's
    # 400K-iteration averages never see).
    sender = ProgramBuilder("timeline_sender")
    for index in range(3):
        sender.emit(isa.senduipi(0))
        sender.emit(isa.movi(7, 0))
        sender.label(f"gap{index}")
        sender.emit(isa.addi(7, 7, 1))
        sender.emit(isa.blti(7, 2000, f"gap{index}"))
    sender.emit(isa.halt())
    receiver = ProgramBuilder("timeline_receiver")
    receiver.label("loop")
    receiver.emit(isa.addi(1, 1, 1))
    receiver.emit(isa.jmp("loop"))
    receiver.emit_default_handler()
    system = MultiCoreSystem(
        [sender.build(), receiver.build()],
        [FlushStrategy(), FlushStrategy()],
        trace=True,
    )
    system.connect_uipi(0, 1, user_vector=1)
    system.run(80_000, until_halted=[0])
    system.run(8_000)
    trace = system.trace

    def last_time(kind: str, core: Optional[int] = None) -> float:
        event = None
        for candidate in trace.events:
            if candidate.kind == kind and (core is None or candidate.detail.get("core") == core):
                event = candidate
        if event is None:
            raise SimulationError(f"trace event {kind!r} not found")
        return event.time

    t_send = last_time("senduipi_start", core=0)
    t_icr = last_time("icr_write", core=0)
    t_arrival = last_time("ipi_arrival", core=1)
    t_flush = last_time("flush_start", core=1)
    t_notif = last_time("notif_clear_on", core=1)
    t_deliver = last_time("uif_clear", core=1)
    t_handler = last_time("handler_fetch", core=1)
    t_uiret_exec = last_time("uiret_exec", core=1)
    t_resume = last_time("resume_fetch", core=1)
    t_delivery_done = last_time("delivery_done", core=1)
    frontend_depth = system.config.core.frontend_depth
    return {
        "send_to_interrupt": t_arrival - t_send,
        "icr_write_offset": t_icr - t_send,
        "interrupt_to_first_notif_event": t_notif - t_arrival,
        "notification_and_delivery": t_delivery_done - t_notif,
        "handler_entry_offset": t_handler - t_send,
        # uiret cost: redirect to the return address plus front-end refill.
        "uiret": (t_resume - t_uiret_exec) + frontend_depth,
        "end_to_end": t_delivery_done - t_send,
        "flush_to_notif": t_notif - t_flush,
        "deliver_done_offset": t_delivery_done - t_send,
    }


# ---------------------------------------------------------------------------
# §3.5: flush-vs-drain detection experiments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FlushDrainPoint:
    """One picklable (strategy label, footprint) point of the §3.5 sweep."""

    label: str
    footprint_kb: int
    samples: int
    interval: int


def _run_flush_drain_point(point: _FlushDrainPoint) -> float:
    num_nodes = point.footprint_kb * 1024 // 64
    # Size the run generously: large footprints run at DRAM speed.
    workload = mb.make_pointer_chase(
        num_nodes=num_nodes,
        stride=64,
        iterations=max(2000, point.samples * point.interval // 12),
    )

    def live() -> Dict[str, float]:
        run = cycletier.run_with_uipi_timer(
            workload,
            STRATEGY_FACTORIES[point.label](),
            interval=point.interval,
            trace=True,
            expected_cycles=point.samples * point.interval + 20_000,
        )
        trace = run.system.trace
        arrivals = [e.time for e in trace.events if e.kind == "ipi_arrival"]
        handlers = [
            e.time
            for e in trace.events
            if e.kind == "handler_fetch" and e.detail.get("core") == 0
        ]
        latencies = _pair_latencies(arrivals, handlers)
        if latencies:
            return {"latency": sum(latencies) / len(latencies)}
        return {"latency": float("nan")}

    payload = {
        "kind": "flush_vs_drain",
        "program": workload.program,
        "memory": cycletier.memory_image(workload),
        "strategy": STRATEGY_FACTORIES[point.label](),
        "schedule": {"interval": point.interval, "samples": point.samples},
    }
    return default_cache().memoize(payload, live)["latency"]


def run_flush_vs_drain(
    footprints_kb: Optional[List[int]] = None,
    samples: int = 6,
    interval: int = 6000,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Experiment 1 of §3.5: e2e latency vs. pointer-chase footprint.

    Under a *flush* strategy the latency is independent of in-flight work;
    under *drain* it grows with the time to resolve the in-flight chain.
    Returns mean delivery latencies keyed by strategy then footprint (KB).
    """
    footprints_kb = footprints_kb or [16, 64, 256, 1024]
    points = [
        _FlushDrainPoint(label, footprint, samples, interval)
        for label in ("flush", "drain")
        for footprint in footprints_kb
    ]
    latencies = SweepRunner(jobs).map(_run_flush_drain_point, points)
    results: Dict[str, Dict[int, float]] = {"flush": {}, "drain": {}}
    for point, latency in zip(points, latencies):
        results[point.label][point.footprint_kb] = latency
    return results


def run_flushed_uops_linearity(
    interrupt_counts: Optional[List[int]] = None, interval: int = 5000
) -> Dict[int, int]:
    """Experiment 2 of §3.5: flushed micro-ops grow linearly with the number
    of interrupts received (the flush-strategy fingerprint)."""
    interrupt_counts = interrupt_counts or [2, 4, 8]
    results: Dict[int, int] = {}
    for count in interrupt_counts:
        # The counting loop retires ~1.3 iterations/cycle; size the run so
        # all `count` interrupts land before the program halts.
        iterations = int(count * interval * 1.5) + 4000
        workload = mb.make_count_loop(iterations)
        base = cycletier.run_baseline(workload)
        base_squashed = base.stats.squashed_uops
        sender = mb.make_uipi_timer_core(interval, count)

        def live() -> Dict[str, int]:
            system = MultiCoreSystem(
                [mb.make_count_loop(iterations).program, sender.program],
                [FlushStrategy(), FlushStrategy()],
            )
            system.connect_uipi(1, 0, user_vector=1)
            system.run(cycletier.MAX_CYCLES, until_halted=[0])
            core = system.cores[0]
            return {
                "interrupts": core.stats.interrupts_delivered,
                "squashed": core.stats.squashed_uops,
            }

        payload = {
            "kind": "flushed_uops_linearity",
            "programs": [workload.program, sender.program],
            "schedule": {"interval": interval, "count": count},
        }
        loaded = default_cache().memoize(payload, live)
        results[loaded["interrupts"]] = loaded["squashed"] - base_squashed
    return results


# ---------------------------------------------------------------------------
# §6.1: maximum interrupt latency (the pathological SP chain)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _MaxLatencyPoint:
    """One picklable (strategy label, chain length) point of the §6.1 sweep."""

    label: str
    chain_length: int
    interval: int


def _run_max_latency_point(point: _MaxLatencyPoint) -> float:
    workload = mb.make_sp_dependence_chain(
        chain_length=point.chain_length, iterations=40, stride=4096
    )

    def live() -> Dict[str, float]:
        run = cycletier.run_with_uipi_timer(
            workload,
            STRATEGY_FACTORIES[point.label](),
            interval=point.interval,
            trace=True,
            expected_cycles=40 * point.chain_length * 220 + 40_000,
        )
        trace = run.system.trace
        arrivals = [e.time for e in trace.events if e.kind == "ipi_arrival"]
        # Delivery completion (not handler fetch): with tracking, the
        # delivery micro-ops can be fetched immediately yet stall on the
        # stack-pointer dependence until the chain resolves.
        done = [
            e.time
            for e in trace.events
            if e.kind == "delivery_done" and e.detail.get("core") == 0
        ]
        latencies = _pair_latencies(arrivals, done)
        return {"latency": max(latencies) if latencies else float("nan")}

    payload = {
        "kind": "max_latency",
        "program": workload.program,
        "memory": cycletier.memory_image(workload),
        "strategy": STRATEGY_FACTORIES[point.label](),
        "schedule": {"interval": point.interval},
    }
    return default_cache().memoize(payload, live)["latency"]


def run_max_latency(
    chain_lengths: Optional[List[int]] = None,
    interval: int = 8000,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Worst-case delivery latency with a miss chain feeding the stack
    pointer (§6.1): tracked delivery is delayed by the dependence (up to
    thousands of cycles); flush squashes the chain and stays an order of
    magnitude lower."""
    chain_lengths = chain_lengths or [10, 50]
    points = [
        _MaxLatencyPoint(label, chain, interval)
        for label in ("tracked", "flush")
        for chain in chain_lengths
    ]
    latencies = SweepRunner(jobs).map(_run_max_latency_point, points)
    results: Dict[str, Dict[int, float]] = {"tracked": {}, "flush": {}}
    for point, latency in zip(points, latencies):
        results[point.label][point.chain_length] = latency
    return results


def _pair_latencies(starts: List[float], ends: List[float]) -> List[float]:
    """Pair each start with the first later end (one outstanding at a time).

    The canonical implementation lives in :mod:`repro.obs.latency`, where
    the delivery-stage histograms use it too.
    """
    return pair_latencies(starts, ends)
