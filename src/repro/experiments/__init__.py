"""Experiment runners — one per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function returning plain dict/list results
(so benchmarks, examples, and tests share one implementation) and the
benchmarks under ``benchmarks/`` print them in the paper's shape.

Index (see DESIGN.md §4 for the full mapping):

- :mod:`characterize` — Table 2, Figure 2, §3.5 flush-vs-drain, §6.1 worst case
- :mod:`fig4_overheads` — Figure 4 receiver-side overheads
- :mod:`fig5_safepoints` — Figure 5 preemption mechanisms
- :mod:`fig6_timer_cost` — Figure 6 timer-core cost
- :mod:`fig7_rocksdb` — Figure 7 RocksDB tail latency/throughput
- :mod:`fig8_l3fwd` — Figure 8 l3fwd efficiency
- :mod:`fig9_dsa` — Figure 9 DSA response delivery
- :mod:`sec2_costs` — §2 mechanism unit costs
"""
