"""Figure 6: the cost of a timer core (§6.1).

A dedicated timer core gets time from the OS (``setitimer`` signals or a
``nanosleep`` loop) or by spinning on rdtsc, and notifies N application
cores each preemption interval with senduipi.  We report the timer core's
CPU utilization as N and the interval vary.

Paper shape: OS interfaces cost a noticeable fraction even at low rates and
approach 100% at fine intervals; senduipi costs grow linearly in receiver
count (an rdtsc-spin core tops out at ~22 workers at 5 us); xUI eliminates
the core entirely (utilization 0) because every core has its own KB timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.kernel.timers import NanosleepTimer, OSIntervalTimer
from repro.notify.costs import CostModel
from repro.perf import SweepRunner
from repro.sim.account import CycleAccount
from repro.sim.simulator import Simulator

INTERFACES = ("setitimer", "nanosleep", "rdtsc_spin", "xui_kb_timer")


def timer_core_utilization(
    interface: str,
    num_app_cores: int,
    interval_cycles: float,
    costs: Optional[CostModel] = None,
    duration_cycles: float = 40_000_000.0,
) -> float:
    """Simulate a timer core for ``duration_cycles``; return its busy fraction."""
    costs = costs or CostModel.paper_defaults()
    if num_app_cores < 0:
        raise ConfigError("num_app_cores must be non-negative")
    if interface == "xui_kb_timer":
        # No timer core exists: every app core has its own KB timer (§4.3).
        return 0.0
    sim = Simulator()
    account = CycleAccount(name="timer_core")
    send_cost = (costs.senduipi + costs.timer_core_loop_overhead) * num_app_cores

    def notify_workers() -> None:
        account.charge("senduipi", send_cost)

    if interface == "setitimer":
        timer = OSIntervalTimer(sim, account, interval_cycles, notify_workers, costs=costs)
        timer.start()
        sim.run(until=duration_cycles)
    elif interface == "nanosleep":
        timer = NanosleepTimer(sim, account, interval_cycles, notify_workers, costs=costs)
        timer.start()
        sim.run(until=duration_cycles)
    elif interface == "rdtsc_spin":
        # The spinning core is always busy; its *useful* capacity question is
        # whether the senduipi work fits in the interval at all.
        ticks = duration_cycles / interval_cycles
        account.charge("senduipi", send_cost * ticks)
        account.charge("spin", max(0.0, duration_cycles - send_cost * ticks))
        sim.run(until=duration_cycles)
    else:
        raise ConfigError(f"unknown timer interface {interface!r}")
    return account.busy_fraction(duration_cycles)


@dataclass(frozen=True)
class _Point:
    """One picklable (interface, interval, core-count) sweep point."""

    interface: str
    interval: float
    cores: int
    costs: Optional[CostModel]


def _run_point(point: _Point) -> float:
    return timer_core_utilization(
        point.interface, point.cores, point.interval, costs=point.costs
    )


def run_fig6(
    interfaces: Optional[List[str]] = None,
    core_counts: Optional[List[int]] = None,
    intervals: Optional[List[float]] = None,
    costs: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[float, Dict[int, float]]]:
    """interface -> interval -> num_app_cores -> timer-core utilization."""
    interfaces = interfaces or list(INTERFACES)
    core_counts = core_counts or [1, 2, 4, 8, 16, 22, 27]
    intervals = intervals or [10_000.0, 50_000.0, 200_000.0, 2_000_000.0]  # 5us..1ms
    points = [
        _Point(interface, interval, cores, costs)
        for interface in interfaces
        for interval in intervals
        for cores in core_counts
    ]
    utilizations = SweepRunner(jobs).map(_run_point, points)
    results: Dict[str, Dict[float, Dict[int, float]]] = {}
    for point, utilization in zip(points, utilizations):
        results.setdefault(point.interface, {}).setdefault(point.interval, {})[
            point.cores
        ] = utilization
    return results


def kb_timer_core_savings(
    num_workers: int, interval_cycles: float, costs: Optional[CostModel] = None
) -> Dict[str, float]:
    """§6.1's capacity arithmetic: one spin core serves ~22 workers at 5 us,
    so the KB timer saves 1 core per 22 (a 4.5% throughput gain at the
    margin, or 2x with two cores)."""
    costs = costs or CostModel.paper_defaults()
    capacity = costs.timer_core_capacity(interval_cycles)
    timer_cores_needed = max(1, -(-num_workers // capacity))
    return {
        "workers_per_timer_core": float(capacity),
        "timer_cores_needed": float(timer_cores_needed),
        "throughput_gain_fraction": timer_cores_needed / num_workers,
    }
