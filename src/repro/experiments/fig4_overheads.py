"""Figure 4: receiver-side overheads of periodic interrupts.

Three benchmarks (fib, linpack, memops) receive periodic interrupts and we
measure how much longer they take — reported both as per-event cycles and as
percent slowdown.  Three configurations isolate xUI's mechanisms (§6.1):

- ``uipi_sw_timer``: UIPI as shipped — flush-based receive, a dedicated
  timer core sending the IPIs.
- ``xui_sw_timer_tracking``: tracked interrupts, still IPI-sourced.
- ``xui_kb_timer_tracking``: tracked interrupts from the core's own KB
  timer (no UPID access, no timer core).

Paper shape: per-event cost 645 -> 231 -> 105 cycles; at a 5 us interval
total overhead drops ~6.9x (6.86% -> 1.06%).

The grid is declared as picklable point lists and executed through
:class:`repro.perf.SweepRunner`: one baseline per benchmark, then every
(benchmark, configuration) cell as an independent point.  With ``jobs > 1``
cells fan out over worker processes; every cell is deterministic, so the
table is bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.apps import microbench as mb
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.experiments import cycletier
from repro.perf import SweepRunner

#: Paper reference values (per-event receiver cycles, Figure 4 averages).
PAPER_PER_EVENT = {
    "uipi_sw_timer": 645.0,
    "xui_sw_timer_tracking": 231.0,
    "xui_kb_timer_tracking": 105.0,
}

CONFIGURATIONS = ("uipi_sw_timer", "xui_sw_timer_tracking", "xui_kb_timer_tracking")


def default_benchmarks(scale: float = 1.0) -> Dict[str, Callable[[], mb.Workload]]:
    """The Figure 4 benchmark set, scaled for runtime.

    Factories are ``functools.partial`` objects over module-level builders,
    so the sweep engine can ship them to worker processes.
    """
    return {
        "fib": partial(mb.make_fib, n=max(10, int(17 + (scale - 1) * 2))),
        "linpack": partial(mb.make_linpack, iterations=int(8000 * scale)),
        "memops": partial(mb.make_memops, iterations=int(8000 * scale)),
    }


def run_configuration(
    workload_factory: Callable[[], mb.Workload],
    configuration: str,
    interval: int = cycletier.DEFAULT_INTERVAL,
    baseline_cycles: Optional[int] = None,
) -> Dict[str, float]:
    """Run one benchmark x configuration cell; returns its metrics.

    ``baseline_cycles`` lets sweep drivers share one baseline run per
    benchmark across all of its cells.
    """
    if configuration not in CONFIGURATIONS:
        raise ValueError(f"unknown configuration {configuration!r}")
    if baseline_cycles is None:
        baseline_cycles = cycletier.run_baseline(workload_factory()).cycles
    if configuration == "uipi_sw_timer":
        loaded = cycletier.run_with_uipi_timer(
            workload_factory(), FlushStrategy(), interval=interval,
            expected_cycles=baseline_cycles,
        )
    elif configuration == "xui_sw_timer_tracking":
        loaded = cycletier.run_with_uipi_timer(
            workload_factory(), TrackedStrategy(), interval=interval,
            expected_cycles=baseline_cycles,
        )
    else:  # xui_kb_timer_tracking
        loaded = cycletier.run_with_kb_timer(workload_factory(), interval=interval)
    return {
        "baseline_cycles": float(baseline_cycles),
        "loaded_cycles": float(loaded.cycles),
        "interrupts": float(loaded.interrupts_delivered),
        "per_event_cycles": cycletier.per_event_overhead(baseline_cycles, loaded),
        "overhead_percent": cycletier.slowdown_percent(baseline_cycles, loaded.cycles),
    }


@dataclass(frozen=True)
class _Cell:
    """One picklable (benchmark, configuration) sweep point."""

    bench: str
    configuration: str
    interval: int
    factory: Callable[[], mb.Workload]
    baseline_cycles: Optional[int] = None


def _baseline_point(factory: Callable[[], mb.Workload]) -> int:
    return cycletier.run_baseline(factory()).cycles


def _run_cell(cell: _Cell) -> Dict[str, float]:
    return run_configuration(
        cell.factory,
        cell.configuration,
        interval=cell.interval,
        baseline_cycles=cell.baseline_cycles,
    )


def run_fig4(
    interval: int = cycletier.DEFAULT_INTERVAL,
    benchmarks: Optional[Dict[str, Callable[[], mb.Workload]]] = None,
    configurations: Optional[List[str]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """The full Figure 4 grid: benchmark -> configuration -> metrics."""
    benchmarks = benchmarks or default_benchmarks()
    configurations = configurations or list(CONFIGURATIONS)
    runner = SweepRunner(jobs)
    bench_items = list(benchmarks.items())
    baselines = runner.map(_baseline_point, [f for _, f in bench_items])
    cells = [
        _Cell(bench, configuration, interval, factory, base)
        for (bench, factory), base in zip(bench_items, baselines)
        for configuration in configurations
    ]
    metrics = runner.map(_run_cell, cells)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cell, cell_metrics in zip(cells, metrics):
        results.setdefault(cell.bench, {})[cell.configuration] = cell_metrics
    return results


def run_interval_sweep(
    workload_factory: Callable[[], mb.Workload],
    intervals: Optional[List[int]] = None,
    configurations: Optional[List[str]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Total overhead (%) vs. interrupt interval — the Figure 4 x-axis.

    Per-event costs are interval-independent; total overhead scales with
    the delivery rate (the paper's 6.86% -> 1.06% headline is at 5 us).
    """
    intervals = intervals or [5_000, 10_000, 20_000, 40_000]
    configurations = configurations or list(CONFIGURATIONS)
    runner = SweepRunner(jobs)
    baseline = _baseline_point(workload_factory)
    cells = [
        _Cell("sweep", configuration, interval, workload_factory, baseline)
        for interval in intervals
        for configuration in configurations
    ]
    metrics = runner.map(_run_cell, cells)
    results: Dict[str, Dict[int, float]] = {c: {} for c in configurations}
    for cell, cell_metrics in zip(cells, metrics):
        results[cell.configuration][cell.interval] = cell_metrics["overhead_percent"]
    return results


def summarize_per_event(results: Dict[str, Dict[str, Dict[str, float]]]) -> Dict[str, float]:
    """Average per-event cost across benchmarks for each configuration."""
    summary: Dict[str, float] = {}
    for configuration in CONFIGURATIONS:
        values = [
            bench[configuration]["per_event_cycles"]
            for bench in results.values()
            if configuration in bench
        ]
        if values:
            summary[configuration] = sum(values) / len(values)
    return summary
