"""Figure 4: receiver-side overheads of periodic interrupts.

Three benchmarks (fib, linpack, memops) receive periodic interrupts and we
measure how much longer they take — reported both as per-event cycles and as
percent slowdown.  Three configurations isolate xUI's mechanisms (§6.1):

- ``uipi_sw_timer``: UIPI as shipped — flush-based receive, a dedicated
  timer core sending the IPIs.
- ``xui_sw_timer_tracking``: tracked interrupts, still IPI-sourced.
- ``xui_kb_timer_tracking``: tracked interrupts from the core's own KB
  timer (no UPID access, no timer core).

Paper shape: per-event cost 645 -> 231 -> 105 cycles; at a 5 us interval
total overhead drops ~6.9x (6.86% -> 1.06%).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.apps import microbench as mb
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.experiments import cycletier

#: Paper reference values (per-event receiver cycles, Figure 4 averages).
PAPER_PER_EVENT = {
    "uipi_sw_timer": 645.0,
    "xui_sw_timer_tracking": 231.0,
    "xui_kb_timer_tracking": 105.0,
}

CONFIGURATIONS = ("uipi_sw_timer", "xui_sw_timer_tracking", "xui_kb_timer_tracking")


def default_benchmarks(scale: float = 1.0) -> Dict[str, Callable[[], mb.Workload]]:
    """The Figure 4 benchmark set, scaled for runtime."""
    return {
        "fib": lambda: mb.make_fib(n=max(10, int(17 + (scale - 1) * 2))),
        "linpack": lambda: mb.make_linpack(iterations=int(8000 * scale)),
        "memops": lambda: mb.make_memops(iterations=int(8000 * scale)),
    }


def run_configuration(
    workload_factory: Callable[[], mb.Workload],
    configuration: str,
    interval: int = cycletier.DEFAULT_INTERVAL,
) -> Dict[str, float]:
    """Run one benchmark x configuration cell; returns its metrics."""
    base = cycletier.run_baseline(workload_factory())
    if configuration == "uipi_sw_timer":
        loaded = cycletier.run_with_uipi_timer(
            workload_factory(), FlushStrategy(), interval=interval, expected_cycles=base.cycles
        )
    elif configuration == "xui_sw_timer_tracking":
        loaded = cycletier.run_with_uipi_timer(
            workload_factory(), TrackedStrategy(), interval=interval, expected_cycles=base.cycles
        )
    elif configuration == "xui_kb_timer_tracking":
        loaded = cycletier.run_with_kb_timer(workload_factory(), interval=interval)
    else:
        raise ValueError(f"unknown configuration {configuration!r}")
    return {
        "baseline_cycles": float(base.cycles),
        "loaded_cycles": float(loaded.cycles),
        "interrupts": float(loaded.interrupts_delivered),
        "per_event_cycles": cycletier.per_event_overhead(base.cycles, loaded),
        "overhead_percent": cycletier.slowdown_percent(base.cycles, loaded.cycles),
    }


def run_fig4(
    interval: int = cycletier.DEFAULT_INTERVAL,
    benchmarks: Optional[Dict[str, Callable[[], mb.Workload]]] = None,
    configurations: Optional[List[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """The full Figure 4 grid: benchmark -> configuration -> metrics."""
    benchmarks = benchmarks or default_benchmarks()
    configurations = configurations or list(CONFIGURATIONS)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for bench_name, factory in benchmarks.items():
        results[bench_name] = {}
        for configuration in configurations:
            results[bench_name][configuration] = run_configuration(
                factory, configuration, interval=interval
            )
    return results


def run_interval_sweep(
    workload_factory: Callable[[], mb.Workload],
    intervals: Optional[List[int]] = None,
    configurations: Optional[List[str]] = None,
) -> Dict[str, Dict[int, float]]:
    """Total overhead (%) vs. interrupt interval — the Figure 4 x-axis.

    Per-event costs are interval-independent; total overhead scales with
    the delivery rate (the paper's 6.86% -> 1.06% headline is at 5 us).
    """
    intervals = intervals or [5_000, 10_000, 20_000, 40_000]
    configurations = configurations or list(CONFIGURATIONS)
    results: Dict[str, Dict[int, float]] = {c: {} for c in configurations}
    for interval in intervals:
        for configuration in configurations:
            cell = run_configuration(workload_factory, configuration, interval=interval)
            results[configuration][interval] = cell["overhead_percent"]
    return results


def summarize_per_event(results: Dict[str, Dict[str, Dict[str, float]]]) -> Dict[str, float]:
    """Average per-event cost across benchmarks for each configuration."""
    summary: Dict[str, float] = {}
    for configuration in CONFIGURATIONS:
        values = [
            bench[configuration]["per_event_cycles"]
            for bench in results.values()
            if configuration in bench
        ]
        if values:
            summary[configuration] = sum(values) / len(values)
    return summary
