"""§2/§4.4 mechanism unit costs: the numbers the motivation cites.

- signal delivery ~2.4 us (1.4 us of kernel context switching);
- UIPI receive 3-5x cheaper than signals, but 6-9x more than a ~100-cycle
  memory-based notification;
- clui+stui around a critical section costs ~34 cycles per pair — enough
  that guarding malloc() with them cost RocksDB ~7% throughput (§4.4).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps import microbench as mb
from repro.cpu import isa
from repro.cpu.delivery import FlushStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.program import ProgramBuilder
from repro.experiments import cycletier
from repro.experiments.characterize import measure_interrupt_costs
from repro.notify.costs import CostModel


def run_mechanism_costs(quick: bool = True, costs: Optional[CostModel] = None) -> Dict[str, Dict[str, float]]:
    """Unit costs per mechanism: cycle-tier measurements beside the paper's
    calibrated constants (signals are event-tier constants — the cycle tier
    has no kernel — so they appear as model values)."""
    costs = costs or CostModel.paper_defaults()
    measured = measure_interrupt_costs(quick=quick)
    return {
        "polling_check": {"paper": costs.poll_check, "measured": costs.poll_check},
        "polling_notify": {"paper": costs.poll_notify, "measured": costs.poll_notify},
        "uipi_receive": {"paper": 645.0, "measured": measured["uipi_receive_flush"]},
        "xui_tracked_ipi": {"paper": 231.0, "measured": measured["uipi_receive_tracked"]},
        "xui_timer_or_device": {"paper": 105.0, "measured": measured["timer_receive_tracked"]},
        "signal_delivery": {"paper": 4800.0, "measured": costs.signal_delivery},
        "signal_kernel_share": {"paper": 2800.0, "measured": costs.signal_kernel_share},
        "senduipi": {"paper": 383.0, "measured": measured["senduipi"]},
        "clui": {"paper": 2.0, "measured": measured["clui"]},
        "stui": {"paper": 32.0, "measured": measured["stui"]},
    }


def run_critical_section_penalty(iterations: int = 3_000) -> Dict[str, float]:
    """§4.4's motivating cost: a clui/stui pair per loop iteration (e.g.
    protecting malloc) vs. the same loop unguarded.  The paper saw ~7%
    RocksDB throughput loss; the loop body here is sized like one request's
    worth of work (a few hundred cycles) with one guarded allocation in it,
    so the ~30-cycle pair lands in the same single-digit-percent range."""
    def build(guarded: bool):
        builder = ProgramBuilder("critsec")
        builder.emit(isa.movi(1, 0))
        builder.emit(isa.movi(2, iterations))
        builder.label("loop")
        # The allocation fast path, guarded by clui/stui when requested.
        if guarded:
            builder.emit(isa.clui())
        builder.emit(isa.movi(3, mb.ARRAY_A_BASE))
        for i in range(6):
            builder.emit(isa.load(4, 3, 8 * i))
            builder.emit(isa.addi(4, 4, 1))
            builder.emit(isa.store(4, 3, 8 * i))
        if guarded:
            builder.emit(isa.stui())
        # The rest of the request's work around the allocation.
        for _ in range(360):
            builder.emit(isa.addi(5, 5, 7))
        builder.emit(isa.addi(1, 1, 1))
        builder.emit(isa.blt(1, 2, "loop"))
        builder.emit(isa.halt())
        builder.emit_default_handler()
        return mb.Workload(name="critsec", program=builder.build())

    base = cycletier.run_baseline(build(False)).cycles
    guarded = cycletier.run_baseline(build(True)).cycles
    return {
        "baseline_cycles": float(base),
        "guarded_cycles": float(guarded),
        "slowdown_percent": cycletier.slowdown_percent(base, guarded),
        "pair_cost_cycles": (guarded - base) / iterations,
    }
