"""Figure 9: latency and efficiency of DSA response delivery (§6.2.3).

A closed-loop client offloads operations to the simulated streaming
accelerator and receives completions three ways:

- ``busy_spin``: poll the completion ring continuously — minimum latency,
  zero free cycles.
- ``periodic_poll``: check on the OS interval timer (``setitimer``), with
  polls aligned to the expected completion time — frees cycles but the
  latency degrades as response-time noise grows (sharply for the 20 us
  class, §6.2.3).
- ``xui``: a forwarded device interrupt per completion (tracked delivery)
  — within ~0.2 us of busy-spin latency while freeing most of the core
  (e.g. ~75% free for noiseless 2 us requests).

The sweep variable is the noise magnitude added to the device response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import RngStreams
from repro.common.units import cycles_to_us
from repro.accel.dsa import (
    LONG_REQUEST_US,
    SHORT_REQUEST_US,
    DsaConfig,
    LatencyModel,
    OffloadRequest,
    SimulatedDSA,
)
from repro.notify.costs import CostModel
from repro.sim.account import CycleAccount
from repro.sim.simulator import Simulator

MECHANISMS = ("busy_spin", "periodic_poll", "xui")

#: Cycles to process one completion (check status, touch the buffer).
HANDLE_COST = 500.0
#: Busy-spin poll granularity (one ring check).
SPIN_POLL_GRANULARITY = 50.0
#: Forwarded-interrupt wire latency (device -> APIC).
DEVICE_WIRE_LATENCY = 100.0


@dataclass
class Fig9Point:
    """One (mechanism, request class, noise) measurement."""

    mechanism: str
    request_us: float
    noise_fraction: float
    requests_completed: int
    mean_notification_lag_us: float
    mean_total_latency_us: float
    free_fraction: float
    ipos: float  # I/O operations per second

    def as_dict(self) -> Dict[str, float]:
        return {
            "noise_fraction": self.noise_fraction,
            "requests_completed": float(self.requests_completed),
            "mean_notification_lag_us": self.mean_notification_lag_us,
            "mean_total_latency_us": self.mean_total_latency_us,
            "free_fraction": self.free_fraction,
            "ipos": self.ipos,
        }


class _ClosedLoopClient:
    """Submits one offload at a time; handling strategy varies by mechanism."""

    def __init__(
        self,
        sim: Simulator,
        mechanism: str,
        request_us: float,
        noise_fraction: float,
        costs: CostModel,
        rng: RngStreams,
    ) -> None:
        if mechanism not in MECHANISMS:
            raise ConfigError(f"unknown mechanism {mechanism!r}")
        self.sim = sim
        self.mechanism = mechanism
        self.costs = costs
        self.account = CycleAccount(name="dsa_client")
        self.latency_model = LatencyModel(request_us, noise_fraction, rng=rng)
        self.dsa = SimulatedDSA(
            sim,
            self.latency_model,
            DsaConfig(),
            on_interrupt=self._interrupt if mechanism == "xui" else None,
        )
        self.completed: List[OffloadRequest] = []
        self.expected_mean = self.latency_model.mean_cycles + self.dsa.config.fabric_latency
        self._outstanding: Optional[OffloadRequest] = None
        self._poll_period = max(
            costs.os_timer_min_period, 0.0
        )

    # -- submission ---------------------------------------------------------

    def submit_next(self) -> None:
        request = OffloadRequest(submit_time=self.sim.now)
        self._outstanding = request
        self.account.charge("submit", self.dsa.config.submit_cost)
        if not self.dsa.submit(request):
            raise SimulationError("submission ring full in closed-loop client")
        if self.mechanism == "busy_spin":
            # The whole wait burns the core; completion is noticed within
            # one poll-granularity.
            self._watch_busy_spin()
        elif self.mechanism == "periodic_poll":
            # First poll at the expected completion time, then every OS tick.
            self.sim.schedule(self.expected_mean, self._poll, name="dsa_poll")
        elif self.mechanism == "xui":
            self.dsa.completion_ring.arm()

    # -- busy spinning -----------------------------------------------------

    def _watch_busy_spin(self) -> None:
        request = self._outstanding

        def check() -> None:
            done = self.dsa.completion_ring.pop()
            if done is None:
                self.account.charge("spin", SPIN_POLL_GRANULARITY)
                self.sim.schedule(SPIN_POLL_GRANULARITY, check, name="dsa_spin")
                return
            self._handle(done)

        self.sim.schedule(SPIN_POLL_GRANULARITY, check, name="dsa_spin")

    # -- periodic polling -----------------------------------------------------

    def _poll(self) -> None:
        # A setitimer tick: full signal-delivery cost on the core.
        self.account.charge("setitimer", self.costs.setitimer_event)
        done = self.dsa.completion_ring.pop()
        if done is None:
            self.sim.schedule(self._poll_period, self._poll, name="dsa_poll")
            return
        self._handle(done)

    # -- xUI device interrupt ---------------------------------------------------

    def _interrupt(self) -> None:
        def deliver() -> None:
            self.account.charge("interrupt", self.costs.timer_receive_tracked)
            done = self.dsa.completion_ring.pop()
            if done is None:
                raise SimulationError("device interrupt with empty completion ring")
            self._handle(done)

        self.sim.schedule(
            DEVICE_WIRE_LATENCY + self.costs.timer_receive_tracked,
            deliver,
            name="dsa_intr",
        )

    # -- completion -----------------------------------------------------------

    def _handle(self, request: OffloadRequest) -> None:
        request.mark_handled(self.sim.now)
        self.account.charge("handle", HANDLE_COST)
        self.completed.append(request)
        self._outstanding = None
        self.sim.schedule(HANDLE_COST, self.submit_next, name="dsa_submit")


def run_point(
    mechanism: str,
    request_us: float,
    noise_fraction: float,
    duration_seconds: float = 0.02,
    seed: int = 1,
    costs: Optional[CostModel] = None,
) -> Fig9Point:
    sim = Simulator()
    rng = RngStreams(seed=seed)
    costs = costs or CostModel.paper_defaults()
    client = _ClosedLoopClient(sim, mechanism, request_us, noise_fraction, costs, rng)
    client.submit_next()
    duration_cycles = duration_seconds * 2e9
    sim.run(until=duration_cycles)
    completed = client.completed
    if not completed:
        raise SimulationError("no offloads completed")
    lags = [r.notification_lag for r in completed]
    totals = [r.handled_time - r.submit_time for r in completed]
    return Fig9Point(
        mechanism=mechanism,
        request_us=request_us,
        noise_fraction=noise_fraction,
        requests_completed=len(completed),
        mean_notification_lag_us=cycles_to_us(sum(lags) / len(lags)),
        mean_total_latency_us=cycles_to_us(sum(totals) / len(totals)),
        free_fraction=client.account.free_fraction(duration_cycles),
        ipos=len(completed) / duration_seconds,
    )


def run_fig9(
    request_classes_us: Optional[List[float]] = None,
    noise_fractions: Optional[List[float]] = None,
    mechanisms: Optional[List[str]] = None,
    duration_seconds: float = 0.02,
    seed: int = 1,
) -> Dict[float, Dict[str, List[Fig9Point]]]:
    """request class -> mechanism -> noise sweep (the Figure 9 panels)."""
    request_classes_us = request_classes_us or [SHORT_REQUEST_US, LONG_REQUEST_US]
    noise_fractions = noise_fractions or [0.0, 0.25, 0.5, 0.75, 1.0]
    mechanisms = mechanisms or list(MECHANISMS)
    results: Dict[float, Dict[str, List[Fig9Point]]] = {}
    for request_us in request_classes_us:
        results[request_us] = {}
        for mechanism in mechanisms:
            results[request_us][mechanism] = [
                run_point(
                    mechanism,
                    request_us,
                    noise,
                    duration_seconds=duration_seconds,
                    seed=seed,
                )
                for noise in noise_fractions
            ]
    return results
