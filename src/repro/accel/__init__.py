"""Simulated on-chip streaming accelerator (DSA-like, §5.4).

A PCIe-attached accelerator with an SPDK-style asynchronous submission /
completion interface and configurable offload-latency noise; the Figure 9
experiment compares busy-spinning, periodic polling, and xUI device
interrupts for completion notification.
"""

from repro.accel.dsa import SimulatedDSA, OffloadRequest, DsaConfig, LatencyModel
from repro.accel.rings import SubmissionRing, CompletionRing

__all__ = [
    "SimulatedDSA",
    "OffloadRequest",
    "DsaConfig",
    "LatencyModel",
    "SubmissionRing",
    "CompletionRing",
]
