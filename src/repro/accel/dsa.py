"""The simulated streaming accelerator (§5.4 "On-chip accelerators").

Modeled after Intel DSA: user code submits descriptors through a submission
ring; the device completes them after a latency drawn from a configurable
distribution and posts to a completion ring.  The paper models two request
classes — 2 us (one 16 KB copy / a batch of 8 x 2 KB copies) and 20 us (one
1 MB copy) — and sweeps the *magnitude of random noise* added to the
response time (Figure 9's x-axis).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import RngStreams
from repro.common.units import us_to_cycles
from repro.accel.rings import CompletionRing, SubmissionRing
from repro.sim.simulator import Simulator

_request_ids = itertools.count(1)

#: The paper's two request classes (mean offload latency, §5.4).
SHORT_REQUEST_US = 2.0
LONG_REQUEST_US = 20.0


@dataclass(slots=True)
class OffloadRequest:
    """One offloaded operation (e.g. a buffer copy)."""

    submit_time: float
    size_bytes: int = 16 * 1024
    rid: int = field(default_factory=lambda: next(_request_ids))
    complete_time: Optional[float] = None
    #: When the CPU actually observed / handled the completion.
    handled_time: Optional[float] = None

    @property
    def device_latency(self) -> float:
        if self.complete_time is None:
            raise ConfigError(f"request {self.rid} has not completed")
        return self.complete_time - self.submit_time

    @property
    def notification_lag(self) -> float:
        """Completion-to-handling delay — Figure 9's latency criterion."""
        if self.handled_time is None or self.complete_time is None:
            raise ConfigError(f"request {self.rid} has not been handled")
        return self.handled_time - self.complete_time

    def mark_handled(self, now: float) -> None:
        """Record when the CPU observed the completion — the owner-side
        mutation point for notification-lag accounting."""
        self.handled_time = now


class LatencyModel:
    """Offload response time: a mean plus bounded uniform noise.

    ``noise_fraction`` is the Figure 9 sweep variable: the response time is
    ``mean * (1 + U(-noise, +noise))``, floored at 10% of the mean so it
    stays physical.
    """

    def __init__(
        self,
        mean_us: float,
        noise_fraction: float = 0.0,
        rng: Optional[RngStreams] = None,
    ) -> None:
        if mean_us <= 0:
            raise ConfigError("mean latency must be positive")
        if noise_fraction < 0:
            raise ConfigError("noise fraction must be non-negative")
        self.mean_cycles = us_to_cycles(mean_us)
        self.noise_fraction = noise_fraction
        self.rng = rng or RngStreams(seed=0)

    def sample(self) -> float:
        if self.noise_fraction == 0.0:
            return self.mean_cycles
        noise = self.rng.uniform(
            "dsa_latency", -self.noise_fraction, self.noise_fraction
        )
        return max(0.1 * self.mean_cycles, self.mean_cycles * (1.0 + noise))


@dataclass(frozen=True)
class DsaConfig:
    """Device configuration."""

    #: Cycles for the CPU to build + submit one descriptor (ENQCMD-style).
    submit_cost: float = 150.0
    #: PCIe/fabric delay before the device starts (and after it completes).
    fabric_latency: float = 200.0
    ring_capacity: int = 256

    def __post_init__(self) -> None:
        if self.submit_cost < 0 or self.fabric_latency < 0:
            raise ConfigError("costs must be non-negative")


class SimulatedDSA:
    """The device: consumes submissions, posts completions after a delay."""

    def __init__(
        self,
        sim: Simulator,
        latency_model: LatencyModel,
        config: Optional[DsaConfig] = None,
        on_interrupt: Optional[Callable[[], None]] = None,
    ) -> None:
        self.sim = sim
        self.latency_model = latency_model
        self.config = config or DsaConfig()
        self.submission_ring = SubmissionRing(self.config.ring_capacity)
        self.completion_ring = CompletionRing(self.config.ring_capacity)
        self.on_interrupt = on_interrupt
        self.completed_count = 0
        self._engine_free_at = 0.0

    def submit(self, request: OffloadRequest) -> bool:
        """Submit a descriptor; completion is scheduled on acceptance.

        The device has a single execution engine, so completions are in
        submission order: a request cannot finish before its predecessor.
        """
        if not self.submission_ring.push(request):
            return False
        latency = self.config.fabric_latency + self.latency_model.sample()
        completion_at = max(self.sim.now + latency, self._engine_free_at)
        self._engine_free_at = completion_at
        latency = completion_at - self.sim.now

        def complete() -> None:
            popped = self.submission_ring.pop()
            if popped is not request:
                # Completions are in order for this device (single engine).
                raise SimulationError("out-of-order completion in simulated DSA")
            request.complete_time = self.sim.now
            self.completion_ring.push(request)
            self.completed_count += 1
            if self.completion_ring.interrupts_armed and len(self.completion_ring) == 1:
                self.completion_ring.interrupts_armed = False
                if self.on_interrupt is not None:
                    self.on_interrupt()

        self.sim.schedule(latency, complete, name=f"dsa_complete:{request.rid}")
        return True
