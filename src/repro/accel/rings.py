"""Submission and completion rings (the SPDK-style async interface, §5.4)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from repro.common.errors import ConfigError

T = TypeVar("T")


class _Ring(Generic[T]):
    """A bounded FIFO ring."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ConfigError("ring capacity must be positive")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.enqueued = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> bool:
        if self.full:
            self.rejected += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        return True

    def pop(self) -> Optional[T]:
        if self._items:
            return self._items.popleft()
        return None

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None


class SubmissionRing(_Ring):
    """Work descriptors from the CPU to the accelerator."""


class CompletionRing(_Ring):
    """Completion records from the accelerator back to the CPU.

    With xUI interrupt forwarding, the accelerator raises a device interrupt
    when a completion lands in an empty, armed ring (same moderation
    protocol as the NIC model).
    """

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity)
        self.interrupts_armed = False

    def arm(self) -> bool:
        """Re-arm completion interrupts; fails if completions are pending."""
        if len(self) > 0:
            return False
        self.interrupts_armed = True
        return True
