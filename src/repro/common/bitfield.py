"""Bit-field manipulation helpers.

UIPI's architectural state is a collection of packed in-memory descriptors
(the UPID of Table 1, the local APIC's 256-bit vector registers, the UIRR).
These helpers keep those packings explicit and testable.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


def get_bits(value: int, low: int, high: int) -> int:
    """Extract bits ``high:low`` (inclusive, Intel SDM bit-range notation)."""
    if low < 0 or high < low:
        raise ConfigError(f"invalid bit range {high}:{low}")
    width = high - low + 1
    return (value >> low) & ((1 << width) - 1)


def set_bits(value: int, low: int, high: int, field_value: int) -> int:
    """Return ``value`` with bits ``high:low`` replaced by ``field_value``."""
    if low < 0 or high < low:
        raise ConfigError(f"invalid bit range {high}:{low}")
    width = high - low + 1
    if field_value < 0 or field_value >= (1 << width):
        raise ConfigError(
            f"field value {field_value} does not fit in {width} bits ({high}:{low})"
        )
    mask = ((1 << width) - 1) << low
    return (value & ~mask) | (field_value << low)


def test_bit(value: int, index: int) -> bool:
    if index < 0:
        raise ConfigError(f"bit index must be non-negative, got {index}")
    return bool((value >> index) & 1)


def set_bit(value: int, index: int) -> int:
    if index < 0:
        raise ConfigError(f"bit index must be non-negative, got {index}")
    return value | (1 << index)


def clear_bit(value: int, index: int) -> int:
    if index < 0:
        raise ConfigError(f"bit index must be non-negative, got {index}")
    return value & ~(1 << index)


def lowest_set_bit(value: int) -> int:
    """Index of the lowest set bit, or -1 if ``value`` is zero.

    The UIPI delivery microcode scans the PIR/UIRR for the highest-priority
    pending vector; we use lowest-first order which matches vector priority
    for our single-vector experiments.
    """
    if value == 0:
        return -1
    return (value & -value).bit_length() - 1


def iter_set_bits(value: int):
    """Yield indices of set bits in ascending order."""
    index = 0
    while value:
        if value & 1:
            yield index
        value >>= 1
        index += 1
