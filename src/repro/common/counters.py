"""Process-global engine telemetry and the fast-engine switch.

The cycle-skipping core engine and the event-tier fast-forward path
(`REPRO_FAST`) change *how* the simulators advance time, never *what* they
compute.  The counters here record how much work each shortcut saved so
``python -m repro experiment <id> --verbose`` can report it; they are kept
out of :class:`repro.cpu.core.CoreStats` on purpose — simulated results
(including stats snapshots) must be byte-identical between the naive and
skipping engines, so engine telemetry cannot live next to model counters.

``REPRO_FAST=0`` (or ``off``/``false``/``no``) forces the naive cycle
stepper and the unbatched event loop; anything else (including unset)
enables the fast engine.  The flag is read per ``run()`` call so tests can
toggle it between runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Dict

ENV_FAST = "REPRO_FAST"
ENV_MACRO = "REPRO_MACRO"
ENV_BATCH = "REPRO_BATCH"
#: Sweep parallelism (owned by :mod:`repro.perf.engine`; named here so the
#: active-flag snapshot below covers every engine-shaping variable).
ENV_JOBS = "REPRO_JOBS"

_DISABLED_VALUES = {"0", "off", "false", "no"}


def fast_engine_enabled() -> bool:
    """Is the cycle-skipping / event fast-forward engine enabled?"""
    return os.environ.get(ENV_FAST, "1").strip().lower() not in _DISABLED_VALUES


def macro_engine_enabled() -> bool:
    """Is the macro-op trace tier enabled?  (Layered on the fast engine:
    ``REPRO_MACRO`` has no effect under ``REPRO_FAST=0``.)"""
    return os.environ.get(ENV_MACRO, "1").strip().lower() not in _DISABLED_VALUES


def batch_engine_enabled() -> bool:
    """Is the multi-core batch stepper enabled?  (Layered on the fast
    engine: ``REPRO_BATCH`` has no effect under ``REPRO_FAST=0``, and it
    falls back to the scalar fast loop when numpy is unavailable or the
    system has a single core.)"""
    return os.environ.get(ENV_BATCH, "1").strip().lower() not in _DISABLED_VALUES


def active_engine_flags() -> Dict[str, str]:
    """Snapshot the engine-shaping environment, resolved to effective values.

    The tier toggles come back as ``"1"``/``"0"`` (what the engines will
    actually do, not the raw string); ``REPRO_JOBS`` comes back verbatim
    (or ``""`` when unset).  Replay tooling embeds this snapshot in failure
    artifacts — e.g. the :class:`~repro.common.errors.InvariantViolation`
    plan dump — so a failure re-runs under the same tiers that produced it.
    """
    return {
        ENV_FAST: "1" if fast_engine_enabled() else "0",
        ENV_MACRO: "1" if macro_engine_enabled() else "0",
        ENV_BATCH: "1" if batch_engine_enabled() else "0",
        ENV_JOBS: os.environ.get(ENV_JOBS, ""),
    }


@dataclass
class EngineCounters:
    """How much work the fast engine avoided (process-wide accumulator)."""

    #: Core cycles actually stepped through the pipeline stages.
    cycles_stepped: int = 0
    #: Core cycles accounted in bulk because the pipeline was quiescent.
    cycles_skipped: int = 0
    #: Decoded-template hits / misses in the per-core micro-op caches.
    uop_cache_hits: int = 0
    uop_cache_misses: int = 0
    #: Event-tier callbacks fired.
    events_fired: int = 0
    #: Event-tier clock jumps (heap head strictly in the future).
    events_fast_forwarded: int = 0
    #: Result-cache entries found corrupt/unreadable and re-simulated.
    cache_corrupt_entries: int = 0
    #: Result-cache writes that failed (unwritable cache directory).
    cache_unwritable_writes: int = 0
    #: Stale ``*.tmp`` files (interrupted writes) swept on cache open.
    cache_stale_tmp_swept: int = 0
    #: Sweep points salvaged from completed futures after a pool crash.
    sweep_points_salvaged: int = 0
    #: Sweep point executions retried after a failure or timeout.
    sweep_points_retried: int = 0
    #: Sweep points restored from a JSONL checkpoint instead of re-running.
    sweep_points_resumed: int = 0
    #: Macro-op tier (``REPRO_MACRO``): steady-state loop templates formed.
    macro_formations: int = 0
    #: Formation attempts that aborted (state not sigma-periodic / unsafe).
    macro_form_aborts: int = 0
    #: Bulk replay sessions entered (one per formation that replayed >= 1
    #: period before bailing back to the interpreter).
    macro_replays: int = 0
    #: Loop periods applied in O(1) instead of being stepped.
    macro_replayed_periods: int = 0
    #: Core cycles covered by macro-op replay (neither stepped nor skipped).
    macro_replayed_cycles: int = 0
    #: Replay bails: a notification-visible event entered the window
    #: (pending interrupt, timer deadline, timeline/fault event).
    macro_bail_event: int = 0
    #: Replay bails: the loop left steady state (branch flip, memory
    #: latency mismatch, load/store aliasing).
    macro_bail_divergence: int = 0
    #: Replay bails: run horizon / watch boundary reached.
    macro_bail_horizon: int = 0
    #: Batch stepper (``REPRO_BATCH``): multi-core runs dispatched to it.
    batch_runs: int = 0
    #: Group clock jumps: every core idle, clock advanced in one hop.
    batch_group_jumps: int = 0
    #: Cycles covered by group jumps (accounted lazily via idle anchors).
    batch_cycles_jumped: int = 0
    #: Cores moved from the idle group back to the scalar run list because
    #: their quiescence horizon came due.
    batch_wakeups: int = 0
    #: Cores parked in the idle group (horizon strictly in the future).
    batch_idle_transitions: int = 0
    #: Timeline events whose core hint woke only the destination core.
    batch_targeted_invalidations: int = 0
    #: Hint-less timeline events (faults etc.) that woke every idle core.
    batch_full_invalidations: int = 0
    #: Idle transitions refused because the core's state diverged from the
    #: batchable fast path (pending uintr, armed fault interceptor, macro
    #: scan/arm in progress) — the core stays on scalar ``Core.step``.
    batch_divergence_blocks: int = 0
    #: Multi-core runs that wanted the batch stepper but fell back to the
    #: scalar fast loop (numpy unavailable).
    batch_scalar_fallbacks: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    @property
    def uop_hit_rate(self) -> float:
        total = self.uop_cache_hits + self.uop_cache_misses
        return self.uop_cache_hits / total if total else 0.0

    @property
    def skip_fraction(self) -> float:
        total = self.cycles_stepped + self.cycles_skipped
        return self.cycles_skipped / total if total else 0.0

    @property
    def macro_replayed_fraction(self) -> float:
        """Fraction of all accounted core cycles covered by macro replay."""
        total = self.cycles_stepped + self.cycles_skipped + self.macro_replayed_cycles
        return self.macro_replayed_cycles / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        out["uop_hit_rate"] = self.uop_hit_rate
        out["skip_fraction"] = self.skip_fraction
        out["macro_replayed_fraction"] = self.macro_replayed_fraction
        return out


#: The process-global accumulator.  ``Core.run`` / ``MultiCoreSystem.run`` /
#: ``Simulator.run`` add their per-run deltas here; parallel sweep workers
#: accumulate in their own processes, so with ``--jobs N`` only in-process
#: runs are visible.
GLOBAL_COUNTERS = EngineCounters()
