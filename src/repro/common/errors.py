"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent or impossible state."""


class InvariantViolation(SimulationError):
    """A model invariant failed under fault injection (see ``repro.faults``).

    Carries the replayable fault-plan dump that produced the violation, so a
    failure observed once can be reproduced byte-identically:
    ``FaultPlan.loads(exc.plan_dump)`` rebuilds the exact schedule.
    ``engine_flags`` records the engine tiers active when the violation
    fired (``REPRO_FAST``/``REPRO_MACRO``/``REPRO_BATCH``/``REPRO_JOBS``) —
    a dumped repro must re-run under the same tiers that produced it.
    """

    def __init__(
        self,
        message: str,
        plan_dump: "str | None" = None,
        engine_flags: "dict[str, str] | None" = None,
    ) -> None:
        if plan_dump is not None:
            message = f"{message}\nreplay fault plan: {plan_dump}"
        if engine_flags is not None:
            rendered = " ".join(f"{k}={v}" for k, v in sorted(engine_flags.items()))
            message = f"{message}\nengine flags: {rendered}"
        super().__init__(message)
        self.plan_dump = plan_dump
        self.engine_flags = dict(engine_flags) if engine_flags is not None else None


class ProtocolError(ReproError):
    """An architectural protocol was violated (e.g. uiret outside a handler)."""
