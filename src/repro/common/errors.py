"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent or impossible state."""


class ProtocolError(ReproError):
    """An architectural protocol was violated (e.g. uiret outside a handler)."""
