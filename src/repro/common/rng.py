"""Deterministic named random-number streams.

Every stochastic component (packet generator, load generator, offload-latency
noise, work stealing victim choice, ...) draws from its own named stream so
that adding randomness to one component never perturbs another.  Streams are
derived from a single root seed with :func:`numpy.random.SeedSequence.spawn`
semantics, keyed by name, so runs are reproducible end to end.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, *parts: object) -> int:
    """Derive a per-point child seed from ``root_seed`` and identity parts.

    Sweep points that run in worker processes each construct their own
    :class:`RngStreams` from a derived seed, so serial and parallel execution
    of the same sweep draw identical variates regardless of point order.
    The derivation hashes the textual identity of the parts, so it is stable
    across processes and sessions (unlike ``hash()``).
    """
    text = repr((int(root_seed),) + parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(text).digest()[:8], "little") % (2**63)


class RngStreams:
    """A factory of independent, deterministic :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically on first use."""
        generator = self._streams.get(name)
        if generator is None:
            # Key the child seed on the stream name so stream identity is
            # stable regardless of creation order.
            name_digest = int.from_bytes(name.encode("utf-8"), "little") % (2**63)
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_digest,))
            generator = np.random.default_rng(seq)
            self._streams[name] = generator
        return generator

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential variate with the given mean from stream ``name``."""
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def choice_index(self, name: str, length: int) -> int:
        """Draw a uniform index in ``[0, length)`` from stream ``name``."""
        return int(self.stream(name).integers(0, length))
