"""Time and frequency units.

The paper runs everything at 2 GHz with TurboBoost and frequency scaling
disabled (§5.1), so 1 cycle == 0.5 ns and 1 us == 2000 cycles.  All
cycle-denominated constants in this library assume that clock unless a
:class:`Frequency` is passed explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Cycles per microsecond at the paper's 2 GHz experimental clock.
CYCLES_PER_US_2GHZ = 2000


@dataclass(frozen=True)
class Frequency:
    """A CPU clock frequency with cycle/time conversion helpers."""

    hertz: float

    def __post_init__(self) -> None:
        if self.hertz <= 0:
            raise ConfigError(f"frequency must be positive, got {self.hertz}")

    @classmethod
    def ghz(cls, value: float) -> "Frequency":
        return cls(value * 1e9)

    @classmethod
    def mhz(cls, value: float) -> "Frequency":
        return cls(value * 1e6)

    @property
    def cycle_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return 1e9 / self.hertz

    def cycles_per_us(self) -> float:
        return self.hertz / 1e6

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns

    def cycles_to_us(self, cycles: float) -> float:
        return cycles * self.cycle_ns / 1e3

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.hertz

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.cycle_ns

    def us_to_cycles(self, us: float) -> float:
        return us * 1e3 / self.cycle_ns

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.hertz


#: The clock used throughout the paper's evaluation (§5.1).
PAPER_CLOCK = Frequency.ghz(2.0)


def cycles_to_ns(cycles: float, frequency: Frequency = PAPER_CLOCK) -> float:
    """Convert cycles to nanoseconds (defaults to the paper's 2 GHz clock)."""
    return frequency.cycles_to_ns(cycles)


def cycles_to_us(cycles: float, frequency: Frequency = PAPER_CLOCK) -> float:
    """Convert cycles to microseconds (defaults to the paper's 2 GHz clock)."""
    return frequency.cycles_to_us(cycles)


def ns_to_cycles(ns: float, frequency: Frequency = PAPER_CLOCK) -> float:
    """Convert nanoseconds to cycles (defaults to the paper's 2 GHz clock)."""
    return frequency.ns_to_cycles(ns)


def us_to_cycles(us: float, frequency: Frequency = PAPER_CLOCK) -> float:
    """Convert microseconds to cycles (defaults to the paper's 2 GHz clock)."""
    return frequency.us_to_cycles(us)
