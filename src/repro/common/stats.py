"""Small statistics helpers used by experiments and benchmarks.

The experiment runners report means, percentiles (p50/p95/p99/p99.9 tail
latency), and utilization breakdowns.  These helpers avoid per-sample numpy
overhead during simulation (samples accumulate in plain lists / running
moments) and only go to numpy when a summary is requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.common.errors import ConfigError


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``samples``.

    Raises :class:`ConfigError` for an empty sample set or out-of-range ``q``
    rather than silently returning NaN.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigError(f"percentile must be in [0, 100], got {q}")
    if len(samples) == 0:
        raise ConfigError("cannot take a percentile of an empty sample set")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Return a dict of the summary statistics the paper's figures report."""
    if len(samples) == 0:
        raise ConfigError("cannot summarize an empty sample set")
    arr = np.asarray(samples, dtype=float)
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "p999": float(np.percentile(arr, 99.9)),
    }


class RunningStats:
    """Streaming mean/variance/min/max (Welford), O(1) memory."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self.count == 0:
            raise ConfigError("no samples recorded")
        return self._min

    @property
    def maximum(self) -> float:
        if self.count == 0:
            raise ConfigError("no samples recorded")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStats(count={self.count}, mean={self.mean:.3f})"


@dataclass
class Histogram:
    """A fixed-width-bucket histogram with overflow tracking.

    Used by latency recorders where full sample retention would be too large
    (e.g. per-packet latencies at high load).
    """

    bucket_width: float
    num_buckets: int
    counts: List[int] = field(default_factory=list)
    overflow: int = 0
    total: int = 0
    _sum: float = 0.0

    def __post_init__(self) -> None:
        if self.bucket_width <= 0:
            raise ConfigError("bucket_width must be positive")
        if self.num_buckets <= 0:
            raise ConfigError("num_buckets must be positive")
        if not self.counts:
            self.counts = [0] * self.num_buckets

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigError(f"histogram values must be non-negative, got {value}")
        index = int(value / self.bucket_width)
        if index >= self.num_buckets:
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += 1
        self._sum += value

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile using bucket upper edges.

        Overflowed samples are treated as the top edge of the histogram, so a
        percentile that lands in the overflow region returns the histogram
        range as a lower bound.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if self.total == 0:
            raise ConfigError("cannot take a percentile of an empty histogram")
        target = q / 100.0 * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                return (index + 1) * self.bucket_width
        return self.num_buckets * self.bucket_width
