"""Shared utilities: units, RNG streams, statistics, bit fields, errors.

These helpers are deliberately small and dependency-free so that every other
subpackage (cycle tier and event tier alike) can rely on them without import
cycles.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    SimulationError,
    ProtocolError,
)
from repro.common.units import Frequency, CYCLES_PER_US_2GHZ, cycles_to_ns, ns_to_cycles
from repro.common.rng import RngStreams
from repro.common.stats import RunningStats, Histogram, percentile, summarize

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ProtocolError",
    "Frequency",
    "CYCLES_PER_US_2GHZ",
    "cycles_to_ns",
    "ns_to_cycles",
    "RngStreams",
    "RunningStats",
    "Histogram",
    "percentile",
    "summarize",
]
