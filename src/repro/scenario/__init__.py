"""Declarative scenario DSL + constrained-random differential fuzzing.

A :class:`~repro.scenario.dsl.Scenario` is a typed dataclass tree —
topology, per-core workloads and delivery strategies, KB-timer programs,
UIPI load profile, fault-plan spec, engine-flag matrix — that validates at
construction time, round-trips through canonical JSON byte-stably, and
compiles deterministically to a runnable :class:`MultiCoreSystem` plus a
:class:`~repro.faults.plan.FaultPlan`.

On top of the DSL sit:

- :class:`~repro.scenario.generate.ScenarioGenerator` — a seeded
  constrained-random generator (byte-stable per seed);
- :func:`~repro.scenario.fuzz.run_scenario` /
  :func:`~repro.scenario.fuzz.fuzz` — the differential fuzz driver that
  runs each scenario under the engine matrix (naive vs ``REPRO_FAST`` vs
  ``+MACRO`` vs ``+BATCH``) with the :class:`InvariantChecker` armed;
- :func:`~repro.scenario.shrink.shrink` — a greedy minimizer that shrinks
  a failing scenario while preserving its failure fingerprint;
- :mod:`~repro.scenario.corpus` — the ``.repro-fuzz/`` crash-corpus layout
  (scenario JSON + fingerprint + engine metadata, deduped by fingerprint).

``python -m repro fuzz`` drives all of it from the command line.
"""

from repro.scenario.dsl import (
    CoreSpec,
    ENGINE_LEG_NAMES,
    FaultSpec,
    Scenario,
    TimerSpec,
    UipiLink,
    WorkloadSpec,
)
from repro.scenario.compile import build_system, compile_plan, compile_workload
from repro.scenario.corpus import DEFAULT_CORPUS_DIR, CrashCorpus
from repro.scenario.generate import GeneratorBudget, ScenarioGenerator
from repro.scenario.fuzz import FuzzFinding, FuzzReport, fuzz, run_one, run_scenario
from repro.scenario.shrink import ShrinkResult, shrink

__all__ = [
    "CoreSpec",
    "CrashCorpus",
    "DEFAULT_CORPUS_DIR",
    "ENGINE_LEG_NAMES",
    "FaultSpec",
    "FuzzFinding",
    "FuzzReport",
    "GeneratorBudget",
    "Scenario",
    "ScenarioGenerator",
    "ShrinkResult",
    "TimerSpec",
    "UipiLink",
    "WorkloadSpec",
    "build_system",
    "compile_plan",
    "compile_workload",
    "fuzz",
    "run_one",
    "run_scenario",
    "shrink",
]
