"""The ``.repro-fuzz/`` crash corpus: findings as replayable artifacts.

One JSON file per failure *fingerprint* (dedup is by fingerprint, so a bug
that fires on fifty seeds is stored once, as its most-shrunk form).  An
artifact is self-contained: the canonical scenario, the oracle that fired,
the engine leg and its exact flag environment, the observed detail, and —
when the shrinker ran — the original scenario it was minimized from.
``repro fuzz repro <artifact>`` rebuilds the scenario and re-runs its
engine matrix, demanding the same fingerprint fire again.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.scenario.dsl import Scenario
from repro.scenario.fuzz import FINDING_KINDS, FuzzFinding
from repro.scenario.shrink import ShrinkResult

#: Default corpus directory, relative to the working directory.
DEFAULT_CORPUS_DIR = ".repro-fuzz"

#: Artifact schema version (bump on layout changes; loads are strict).
ARTIFACT_VERSION = 1

_ARTIFACT_KEYS: Tuple[str, ...] = (
    "version",
    "fingerprint",
    "kind",
    "leg",
    "engine_env",
    "detail",
    "scenario",
    "scenario_id",
    "shrunk",
)


class CrashCorpus:
    """A directory of fingerprint-keyed finding artifacts."""

    def __init__(self, root: "str | Path" = DEFAULT_CORPUS_DIR) -> None:
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def save(
        self, finding: FuzzFinding, shrink_result: Optional[ShrinkResult] = None
    ) -> Optional[Path]:
        """Persist a finding; returns the path, or None if the fingerprint
        is already in the corpus (dedup)."""
        path = self.path_for(finding.fingerprint)
        if path.exists():
            return None
        artifact = finding.to_json()
        artifact["version"] = ARTIFACT_VERSION
        if shrink_result is not None and shrink_result.shrank:
            artifact["shrunk"] = {
                "from_scenario_id": shrink_result.original.scenario_id(),
                "from_size_key": list(shrink_result.original.size_key()),
                "to_size_key": list(finding.scenario.size_key()),
                "steps_accepted": shrink_result.steps_accepted,
                "attempts": shrink_result.attempts,
            }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(artifact, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        tmp.replace(path)
        return path

    def fingerprints(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load(self, path: "str | Path") -> Dict[str, object]:
        """Read and validate one artifact (strict: unknown keys, missing
        fields, or a scenario that no longer parses are all errors)."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read artifact {path}: {exc}") from exc
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"artifact {path} is not valid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise ConfigError(f"artifact {path} must be a JSON object")
        unknown = sorted(set(obj) - set(_ARTIFACT_KEYS))
        if unknown:
            raise ConfigError(f"artifact {path} has unknown key(s) {unknown}")
        for key in ("version", "fingerprint", "kind", "leg", "scenario"):
            if key not in obj:
                raise ConfigError(f"artifact {path} is missing required key {key!r}")
        if obj["version"] != ARTIFACT_VERSION:
            raise ConfigError(
                f"artifact {path} has version {obj['version']!r}; this build "
                f"reads version {ARTIFACT_VERSION}"
            )
        if obj["kind"] not in FINDING_KINDS:
            raise ConfigError(
                f"artifact {path} has unknown finding kind {obj['kind']!r}"
            )
        # Re-validating through the DSL is the point: a corrupted artifact
        # fails loudly here, not deep inside a replay run.
        obj["scenario_obj"] = Scenario.from_json(obj["scenario"])
        return obj
