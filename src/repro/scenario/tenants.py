"""Tenant workload templates for the cluster layer.

A :class:`TenantTemplate` names one per-tenant load shape the sharded
datacenter simulation knows how to generate; :data:`TENANT_TEMPLATES` is
the registry the `repro cluster` CLI and :mod:`repro.cluster.topology`
validate against.  Three templates ship, matching the paper's evaluation
surfaces:

- ``rocksdb`` — open RocksDB connections with the Figure 7 bimodal service
  mix (99.5% GETs at 1.2 us, 0.5% SCANs at 580 us), open-loop Poisson
  arrivals.  Delivery cost enters only through the runtime's preemption
  ticks, exactly as in :mod:`repro.experiments.fig7_rocksdb`.
- ``timers`` — per-tenant kernel-bypass timers: each tenant fires a short
  handler at a fixed period (random phase), and every firing pays the
  notification *receive* cost of the strategy under test — the
  oversubscription case from §4.3.
- ``fanout`` — interrupt-forwarding fan-out under load spikes: open-loop
  Poisson events whose rate multiplies by ``burst_factor`` inside periodic
  burst windows, each event paying the per-strategy receive cost.

Templates are frozen and validated on construction, following the
scenario-DSL idiom (:mod:`repro.scenario.dsl`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ConfigError

#: Template kinds the shard runner can generate arrivals for.
TEMPLATE_KINDS: Tuple[str, ...] = ("bimodal_poisson", "periodic_timer", "burst_poisson")


@dataclass(frozen=True, slots=True)
class TenantTemplate:
    """One per-tenant load shape (validated, immutable).

    ``delivery_cost`` controls whether each generated event's service time
    includes the notification-receive cost of the strategy under test
    (timers and fan-out events *are* notifications; RocksDB requests pay
    delivery cost only via the runtime's preemption path).
    """

    name: str
    kind: str
    get_us: float = 1.2  # bimodal_poisson: GET service mean
    scan_us: float = 580.0  # bimodal_poisson: SCAN service mean
    scan_fraction: float = 0.005  # bimodal_poisson: SCAN share of requests
    handler_us: float = 0.5  # periodic_timer / burst_poisson: handler service
    burst_factor: float = 8.0  # burst_poisson: rate multiplier inside bursts
    burst_period_ms: float = 5.0  # burst_poisson: burst window spacing
    burst_len_ms: float = 0.5  # burst_poisson: burst window length
    delivery_cost: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(f"template name must be a non-empty string, got {self.name!r}")
        if self.kind not in TEMPLATE_KINDS:
            raise ConfigError(
                f"template kind must be one of {TEMPLATE_KINDS}, got {self.kind!r}"
            )
        for field_name in ("get_us", "scan_us", "handler_us"):
            value = getattr(self, field_name)
            if not value > 0:
                raise ConfigError(f"template {field_name} must be > 0, got {value!r}")
        if not 0.0 <= self.scan_fraction <= 1.0:
            raise ConfigError(
                f"template scan_fraction must be in [0, 1], got {self.scan_fraction!r}"
            )
        if not self.burst_factor >= 1.0:
            raise ConfigError(
                f"template burst_factor must be >= 1, got {self.burst_factor!r}"
            )
        if not 0 < self.burst_len_ms <= self.burst_period_ms:
            raise ConfigError(
                "template burst_len_ms must be in (0, burst_period_ms], got "
                f"{self.burst_len_ms!r} vs {self.burst_period_ms!r}"
            )


#: Registry of shipped templates, keyed by scenario name.
TENANT_TEMPLATES = {
    "rocksdb": TenantTemplate(name="rocksdb", kind="bimodal_poisson"),
    "timers": TenantTemplate(
        name="timers", kind="periodic_timer", handler_us=0.5, delivery_cost=True
    ),
    "fanout": TenantTemplate(
        name="fanout",
        kind="burst_poisson",
        handler_us=2.0,
        burst_factor=8.0,
        burst_period_ms=5.0,
        burst_len_ms=0.5,
        delivery_cost=True,
    ),
}


def tenant_template(name: str) -> TenantTemplate:
    """Look up a template by scenario name (raises ``ConfigError``)."""
    try:
        return TENANT_TEMPLATES[name]
    except KeyError:
        known = ", ".join(sorted(TENANT_TEMPLATES))
        raise ConfigError(f"unknown tenant template {name!r} (known: {known})") from None
