"""Greedy scenario minimization that preserves the failure fingerprint.

The shrinker repeatedly proposes strictly-smaller variants of a failing
scenario (by :meth:`Scenario.size_key` — cores, then faults, then timers,
then knob mass, then cycle budget) and keeps a variant only if re-running
its engine matrix reproduces a finding with the *same fingerprint*.
Because fingerprints normalize digit runs (see
:func:`repro.scenario.fuzz.fingerprint`), halving an interval or an
iteration count keeps the failure's identity while the scenario gets
smaller; a variant that fails *differently* (or not at all) is rejected.

Before shrinking, a seeded random :class:`FaultSpec` is materialized into
its explicit fault list (same schedule, via the compiler), so individual
fault entries become droppable.

Passes, in order — structure first, then magnitudes:

1. drop cores (highest index first; links/faults remapped, linkless
   senders cascade away)
2. drop explicit fault entries
3. drop KB timers
4. simplify workloads to a small ``count_loop``
5. halve workload knobs (toward each knob's schema minimum)
6. halve sender load (interval, count) and timer periods
7. halve ``max_cycles``

Each accepted step restarts the pass list, so shrinking is quadratic in
the worst case but bounded by ``max_attempts`` reproduction runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Set

from repro.scenario.compile import compile_plan
from repro.scenario.dsl import (
    MIN_MAX_CYCLES,
    MIN_SENDER_INTERVAL,
    MIN_TIMER_PERIOD,
    WORKLOAD_KNOBS,
    CoreSpec,
    FaultSpec,
    Scenario,
    UipiLink,
    WorkloadSpec,
)
from repro.scenario.fuzz import FuzzFinding, run_one

#: The workload every core simplifies toward: the cheapest kind, sized at
#: the generator's own minimum.
SIMPLEST_WORKLOAD = ("count_loop", (("iterations", 100),))


def _materialize_faults(scenario: Scenario) -> Scenario:
    """Turn a seeded random fault spec into the explicit schedule it
    compiles to, so the shrinker can drop entries one at a time."""
    spec = scenario.faults
    if spec.is_explicit or spec.count == 0:
        return scenario
    plan = compile_plan(spec, cores=len(scenario.cores))
    explicit = FaultSpec(seed=spec.seed, faults=plan.faults)
    return replace(scenario, faults=explicit)


def _try_scenario(**kwargs) -> Optional[Scenario]:
    """Build a candidate; invalid combinations are skipped, not raised."""
    try:
        return Scenario(**kwargs)
    except Exception:  # noqa: BLE001 - candidate validation is the filter
        return None


def _drop_cores(scenario: Scenario, drop: Set[int]) -> Optional[Scenario]:
    """Remove a set of cores, remapping links and faults.

    Cascades: a sender whose link died (its receiver was dropped) is
    dropped too, because the DSL requires every sender to have a link.
    """
    drop = set(drop)
    while True:
        live_links = [
            l
            for l in scenario.links
            if l.sender not in drop and l.receiver not in drop
        ]
        linked_senders = {l.sender for l in live_links}
        orphans = {
            i
            for i, c in enumerate(scenario.cores)
            if c.role == "uipi_sender" and i not in drop and i not in linked_senders
        }
        if not orphans:
            break
        drop |= orphans
    if len(drop) >= len(scenario.cores):
        return None
    remap = {}
    new_cores: List[CoreSpec] = []
    for i, core in enumerate(scenario.cores):
        if i in drop:
            continue
        remap[i] = len(new_cores)
        new_cores.append(core)
    new_links = tuple(
        UipiLink(sender=remap[l.sender], receiver=remap[l.receiver], vector=l.vector)
        for l in live_links
    )
    faults = scenario.faults
    if faults.is_explicit:
        kept = tuple(
            replace(f, core=remap[f.core]) for f in faults.faults if f.core not in drop
        )
        faults = FaultSpec(seed=faults.seed, faults=kept)
    return _try_scenario(
        name=scenario.name,
        cores=tuple(new_cores),
        links=new_links,
        faults=faults,
        engines=scenario.engines,
        max_cycles=scenario.max_cycles,
        seed=scenario.seed,
    )


def _replace_core(scenario: Scenario, index: int, core: CoreSpec) -> Optional[Scenario]:
    cores = list(scenario.cores)
    cores[index] = core
    return _try_scenario(
        name=scenario.name,
        cores=tuple(cores),
        links=scenario.links,
        faults=scenario.faults,
        engines=scenario.engines,
        max_cycles=scenario.max_cycles,
        seed=scenario.seed,
    )


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Every one-step shrink of ``scenario``, structure first."""
    # 1. drop cores, highest index first (dropping later cores never
    #    renumbers the earlier ones a fault might depend on).
    for i in reversed(range(len(scenario.cores))):
        candidate = _drop_cores(scenario, {i})
        if candidate is not None:
            yield candidate
    # 2. drop explicit fault entries.
    faults = scenario.faults
    if faults.is_explicit:
        for j in range(len(faults.faults)):
            kept = faults.faults[:j] + faults.faults[j + 1 :]
            yield replace(scenario, faults=FaultSpec(seed=faults.seed, faults=kept))
    # 3. drop KB timers.
    for i, core in enumerate(scenario.cores):
        if core.kb_timer is not None:
            candidate = _replace_core(scenario, i, replace(core, kb_timer=None))
            if candidate is not None:
                yield candidate
    # 4. simplify workloads to the cheapest kind.
    simple_kind, simple_knobs = SIMPLEST_WORKLOAD
    for i, core in enumerate(scenario.cores):
        if core.workload is not None and core.workload.kind != simple_kind:
            simple = WorkloadSpec(kind=simple_kind, knobs=simple_knobs)
            candidate = _replace_core(scenario, i, replace(core, workload=simple))
            if candidate is not None:
                yield candidate
    # 5. halve workload knobs toward their schema minimums.
    for i, core in enumerate(scenario.cores):
        if core.workload is None:
            continue
        schema = WORKLOAD_KNOBS[core.workload.kind]
        for name, value in core.workload.knobs:
            lo = schema[name][0]
            smaller = max(lo, value // 2)
            if smaller == value:
                continue
            knobs = tuple(
                (k, smaller if k == name else v) for k, v in core.workload.knobs
            )
            workload = WorkloadSpec(kind=core.workload.kind, knobs=knobs)
            candidate = _replace_core(scenario, i, replace(core, workload=workload))
            if candidate is not None:
                yield candidate
    # 6. halve sender load and timer periods.
    for i, core in enumerate(scenario.cores):
        if core.role == "uipi_sender":
            assert core.interval is not None and core.count is not None
            for patch in (
                {"interval": max(MIN_SENDER_INTERVAL, core.interval // 2)},
                {"count": max(1, core.count // 2)},
            ):
                patched = replace(core, **patch)
                if patched != core:
                    candidate = _replace_core(scenario, i, patched)
                    if candidate is not None:
                        yield candidate
        if core.kb_timer is not None:
            period = max(MIN_TIMER_PERIOD, core.kb_timer.period // 2)
            if period != core.kb_timer.period:
                patched = replace(core, kb_timer=replace(core.kb_timer, period=period))
                candidate = _replace_core(scenario, i, patched)
                if candidate is not None:
                    yield candidate
    # 7. halve the cycle budget.
    smaller_budget = max(MIN_MAX_CYCLES, scenario.max_cycles // 2)
    if smaller_budget != scenario.max_cycles:
        yield replace(scenario, max_cycles=smaller_budget)


def _reproduces(scenario: Scenario, target_fingerprint: str) -> Optional[FuzzFinding]:
    """Run the candidate's matrix; return its matching finding, if any."""
    for finding in run_one(scenario):
        if finding.fingerprint == target_fingerprint:
            return finding
    return None


@dataclass(slots=True)
class ShrinkResult:
    """The minimized finding plus how the search went."""

    finding: FuzzFinding
    original: Scenario
    steps_accepted: int
    attempts: int

    @property
    def shrank(self) -> bool:
        return self.finding.scenario.size_key() < self.original.size_key()


def shrink(finding: FuzzFinding, *, max_attempts: int = 150) -> ShrinkResult:
    """Greedily minimize ``finding.scenario`` preserving its fingerprint.

    Every acceptance is re-validated by a full engine-matrix run, so the
    result is always a *currently reproducing* finding — the returned
    detail text is the one observed on the minimized scenario.
    """
    original = finding.scenario
    target = finding.fingerprint
    attempts = 0
    accepted = 0

    materialized = _materialize_faults(original)
    if materialized is not original:
        attempts += 1
        reproduced = _reproduces(materialized, target)
        if reproduced is not None:
            finding = reproduced
    current = finding

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current.scenario):
            if attempts >= max_attempts:
                break
            if not candidate.size_key() < current.scenario.size_key():
                continue
            attempts += 1
            reproduced = _reproduces(candidate, target)
            if reproduced is not None:
                current = reproduced
                accepted += 1
                progress = True
                break
    return ShrinkResult(
        finding=current, original=original, steps_accepted=accepted, attempts=attempts
    )
