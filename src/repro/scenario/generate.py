"""Seeded constrained-random scenario generation.

``ScenarioGenerator`` turns ``(root_seed, index)`` into a valid
:class:`~repro.scenario.dsl.Scenario`, byte-stable per seed: the draw order
is fixed, every choice comes from one :class:`random.Random` seeded through
:func:`repro.common.rng.derive_seed`, and the result is a frozen dataclass
tree, so ``generate(i).dumps()`` is identical across processes, sessions,
and platforms.  This module is on detlint's DET002 seeded-RNG surface —
the *only* RNG construction allowed here is the derived-seed one below.

The generation ranges are deliberately tighter than the DSL's validation
ranges: the DSL bounds what a scenario may *be*, the budget bounds what the
fuzzer will *draw*, because every scenario runs under up to four engine
legs including the ~26k-cycles/second naive stepper.  A drawn scenario
targets a few thousand simulated cycles so a 200-seed fuzz run finishes in
minutes, not hours.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.faults.plan import CYCLE_TIER_KINDS, MESSAGE_KINDS, FaultPlan
from repro.scenario.dsl import (
    ENGINE_LEG_NAMES,
    MEMORY_WORKLOAD_KINDS,
    CoreSpec,
    FaultSpec,
    Scenario,
    TimerSpec,
    UipiLink,
    WorkloadSpec,
)

#: Per-kind knob *generation* ranges — a cheap sub-box of the DSL ranges.
#: name -> (lo, hi, power_of_two).  Chosen so a single workload finishes in
#: roughly 1k-12k simulated cycles.
GEN_KNOBS: Dict[str, Dict[str, Tuple[int, int, bool]]] = {
    "count_loop": {"iterations": (100, 800, False)},
    "fib": {"n": (4, 9, False)},
    "base64": {"iterations": (30, 250, False)},
    "fnv_hash": {"iterations": (20, 150, False), "buffer_words": (64, 256, True)},
    "memops": {"iterations": (20, 120, False), "footprint_kb": (1, 16, True)},
    "pointer_chase": {
        "num_nodes": (8, 48, False),
        "stride": (64, 256, True),
        "iterations": (20, 120, False),
        "unroll": (1, 2, False),
    },
    "matmul": {"size": (3, 8, False)},
    "quicksort": {"n": (8, 64, False), "seed": (0, 97, False)},
}

#: Default relative workload weights (count_loop over-weighted: it is the
#: cheapest and the best macro-replay candidate, so it probes the macro
#: tier's bail paths hardest).
DEFAULT_WEIGHTS: Dict[str, int] = {
    "count_loop": 3,
    "fib": 2,
    "base64": 2,
    "fnv_hash": 2,
    "memops": 2,
    "pointer_chase": 2,
    "matmul": 1,
    "quicksort": 2,
}

STRATEGY_CHOICES: Tuple[str, ...] = ("flush", "drain", "tracked")


@dataclass(frozen=True, slots=True)
class GeneratorBudget:
    """Size caps for drawn scenarios (distinct from DSL validation caps)."""

    max_workload_cores: int = 2
    max_sender_cores: int = 2
    max_idle_cores: int = 2
    max_faults: int = 4
    #: Sender load profile: interval x count bounds.
    sender_interval: Tuple[int, int] = (400, 1_200)
    sender_count: Tuple[int, int] = (3, 8)
    #: KB timer period bounds (kept well above the handler cost so
    #: interrupt storms cannot starve the workload into a fake timeout).
    timer_period: Tuple[int, int] = (512, 4_096)
    #: Cycle budget per leg: generous vs the ~1k-12k cycle workloads, so
    #: hitting it is a genuine liveness finding, not noise.
    max_cycles: int = 120_000

    def __post_init__(self) -> None:
        if self.max_workload_cores < 1:
            raise ConfigError("budget needs at least one workload core")
        if min(self.max_sender_cores, self.max_idle_cores, self.max_faults) < 0:
            raise ConfigError("budget caps must be non-negative")
        for lo, hi in (self.sender_interval, self.sender_count, self.timer_period):
            if lo > hi or lo < 1:
                raise ConfigError(f"bad budget range ({lo}, {hi})")


def _draw_knob(rng: random.Random, lo: int, hi: int, pow2: bool) -> int:
    if pow2:
        exps = [e for e in range(lo.bit_length() - 1, hi.bit_length()) if lo <= 2**e <= hi]
        return 2 ** rng.choice(exps)
    return rng.randint(lo, hi)


class ScenarioGenerator:
    """Draw valid scenarios from a seeded, weight-tunable distribution."""

    def __init__(
        self,
        root_seed: int = 0,
        *,
        budget: Optional[GeneratorBudget] = None,
        weights: Optional[Dict[str, int]] = None,
    ) -> None:
        self.root_seed = int(root_seed)
        self.budget = budget or GeneratorBudget()
        merged = dict(DEFAULT_WEIGHTS)
        if weights:
            unknown = sorted(set(weights) - set(DEFAULT_WEIGHTS))
            if unknown:
                raise ConfigError(
                    f"unknown workload kinds in weights: {unknown}; expected a "
                    f"subset of {sorted(DEFAULT_WEIGHTS)}"
                )
            merged.update(weights)
        if any(w < 0 for w in merged.values()) or not any(merged.values()):
            raise ConfigError("weights must be non-negative with at least one > 0")
        self.weights = merged
        # Stable draw order: kinds in schema order, each with its weight.
        self._kinds = [k for k in GEN_KNOBS if merged.get(k, 0) > 0]
        self._kind_weights = [merged[k] for k in self._kinds]

    def _draw_workload(
        self, rng: random.Random, *, register_only: bool
    ) -> WorkloadSpec:
        """Draw a kind (weighted), restricted to register-only kinds for
        every workload core after the first — the DSL allows at most one
        memory-image workload per scenario (data addresses would alias)."""
        if register_only:
            kinds = [k for k in self._kinds if k not in MEMORY_WORKLOAD_KINDS]
            weights = [self.weights[k] for k in kinds]
            if not kinds:  # all weight on memory kinds: fall back evenly
                kinds = [k for k in GEN_KNOBS if k not in MEMORY_WORKLOAD_KINDS]
                weights = [1] * len(kinds)
        else:
            kinds, weights = self._kinds, self._kind_weights
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        knobs = tuple(
            (name, _draw_knob(rng, lo, hi, pow2))
            for name, (lo, hi, pow2) in sorted(GEN_KNOBS[kind].items())
        )
        return WorkloadSpec(kind=kind, knobs=knobs)

    def _draw_workload_core(
        self, rng: random.Random, *, register_only: bool
    ) -> CoreSpec:
        b = self.budget
        kb_timer = None
        if rng.random() < 0.5:
            kb_timer = TimerSpec(period=rng.randint(*b.timer_period))
        return CoreSpec(
            role="workload",
            workload=self._draw_workload(rng, register_only=register_only),
            strategy=rng.choice(STRATEGY_CHOICES),
            safepoint=rng.random() < 0.25,
            kb_timer=kb_timer,
        )

    def _draw_faults(
        self,
        rng: random.Random,
        scenario_seed: int,
        *,
        cores: int,
        receivers: Tuple[int, ...],
    ) -> FaultSpec:
        """An explicit fault schedule respecting model preconditions.

        The draw goes through :meth:`FaultPlan.random` (byte-stable per
        seed), then ``spurious_uintr`` entries are retargeted onto UIPI
        receivers — the recognition microcode reads the target's UPID, and
        only link receivers have one — or dropped when there are none.
        Explicit (rather than count-form) faults also give the shrinker
        entries it can drop one at a time without redrawing the schedule.
        """
        count = rng.randint(0, self.budget.max_faults)
        fault_seed = derive_seed(scenario_seed, "faults")
        if count == 0:
            return FaultSpec(seed=fault_seed)
        plan = FaultPlan.random(
            fault_seed,
            cores=cores,
            # Faults must land inside the live window of these small
            # scenarios or they are dead weight in every draw.
            horizon=12_000,
            count=count,
            kinds=CYCLE_TIER_KINDS,
            max_index=8,
            max_delay=500,
        )
        kept = []
        message_slots = set()
        for fault in plan.faults:
            if fault.kind == "spurious_uintr" and fault.core not in receivers:
                if not receivers:
                    continue
                fault = replace(fault, core=receivers[fault.core % len(receivers)])
            if fault.kind in MESSAGE_KINDS:
                # One action per (core, accept-index) slot: the injector
                # (and the DSL) reject colliding message faults.
                slot = (fault.core, fault.index)
                if slot in message_slots:
                    continue
                message_slots.add(slot)
            kept.append(fault)
        return FaultSpec(seed=fault_seed, faults=tuple(kept))

    def generate(self, index: int) -> Scenario:
        """Scenario number ``index`` of this generator's stream."""
        b = self.budget
        seed = derive_seed(self.root_seed, "scenario", int(index))
        rng = random.Random(seed)

        n_workload = rng.randint(1, b.max_workload_cores)
        n_senders = rng.randint(0, min(b.max_sender_cores, n_workload))
        n_idle = rng.randint(0, b.max_idle_cores)

        cores: List[CoreSpec] = [
            self._draw_workload_core(rng, register_only=i > 0)
            for i in range(n_workload)
        ]
        links: List[UipiLink] = []
        # Senders pair off with distinct workload cores (one link per
        # receiver is a DSL invariant: connect_uipi registers the handler).
        receivers = rng.sample(range(n_workload), n_senders)
        for receiver in receivers:
            sender_id = len(cores)
            cores.append(
                CoreSpec(
                    role="uipi_sender",
                    interval=rng.randint(*b.sender_interval),
                    count=rng.randint(*b.sender_count),
                )
            )
            links.append(
                UipiLink(sender=sender_id, receiver=receiver, vector=rng.randint(1, 63))
            )
        cores.extend(CoreSpec(role="idle") for _ in range(n_idle))

        faults = self._draw_faults(
            rng, seed, cores=len(cores), receivers=tuple(sorted(receivers))
        )

        return Scenario(
            name=f"gen-{self.root_seed}-{index}",
            cores=tuple(cores),
            links=tuple(links),
            faults=faults,
            engines=ENGINE_LEG_NAMES,
            max_cycles=b.max_cycles,
            seed=seed,
        )
