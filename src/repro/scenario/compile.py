"""Scenario -> SystemConfig + FaultPlan: the deterministic compiler.

This module is pinned simulation-pure (detlint PRO104): compiling the same
scenario twice must build byte-identical systems, so nothing here may read
the wall clock, entropy, or ambient process state.  All randomness in a
compiled scenario flows through the scenario's own seeds
(:meth:`FaultPlan.random` for the fault schedule), and all configuration
through the validated dataclass tree.

``build_system`` returns the un-run pieces — the caller (the fuzz driver,
a test, the ``repro fuzz repro`` replayer) decides which engine flags to
run under and whether to arm the :class:`FaultInjector` /
:class:`InvariantChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps import microbench as mb
from repro.common.errors import ConfigError
from repro.cpu.config import SystemConfig
from repro.cpu.delivery import (
    DeliveryStrategy,
    DrainStrategy,
    FlushStrategy,
    TrackedStrategy,
)
from repro.cpu.multicore import MultiCoreSystem
from repro.faults.plan import FaultPlan
from repro.scenario.dsl import CoreSpec, FaultSpec, Scenario, WorkloadSpec

#: strategy name -> constructor (one fresh instance per core per build).
STRATEGY_FACTORIES = {
    "flush": FlushStrategy,
    "drain": DrainStrategy,
    "tracked": TrackedStrategy,
}


def compile_workload(
    spec: WorkloadSpec, *, handler_counter: int = mb.HANDLER_COUNTER_ADDR
) -> mb.Workload:
    """Build the microbenchmark a workload spec names.

    ``handler_counter`` is the address the default interrupt handler
    bumps; multi-core scenarios pass a per-core address so handlers on
    different cores never race on the same line.
    """
    knob = spec.knob
    if spec.kind == "count_loop":
        return mb.make_count_loop(
            knob("iterations", 1_000), handler_counter=handler_counter
        )
    if spec.kind == "fib":
        return mb.make_fib(knob("n", 9), handler_counter=handler_counter)
    if spec.kind == "base64":
        return mb.make_base64(
            iterations=knob("iterations", 500), handler_counter=handler_counter
        )
    if spec.kind == "fnv_hash":
        return mb.make_fnv_hash(
            iterations=knob("iterations", 500),
            buffer_words=knob("buffer_words", 256),
            handler_counter=handler_counter,
        )
    if spec.kind == "memops":
        return mb.make_memops(
            iterations=knob("iterations", 200),
            footprint_kb=knob("footprint_kb", 16),
            handler_counter=handler_counter,
        )
    if spec.kind == "pointer_chase":
        return mb.make_pointer_chase(
            knob("num_nodes", 32),
            stride=knob("stride", 64),
            iterations=knob("iterations", 100),
            unroll=knob("unroll", 1),
            handler_counter=handler_counter,
        )
    if spec.kind == "matmul":
        return mb.make_matmul(size=knob("size", 8), handler_counter=handler_counter)
    if spec.kind == "quicksort":
        return mb.make_quicksort(
            n=knob("n", 64), seed=knob("seed", 1), handler_counter=handler_counter
        )
    raise AssertionError(f"WorkloadSpec validated an unknown kind {spec.kind!r}")


def compile_core(spec: CoreSpec, core_id: int = 0) -> mb.Workload:
    """Build the program/memory image for one core spec."""
    if spec.role == "workload":
        assert spec.workload is not None  # CoreSpec validation guarantees it
        # One cache line per core: handler counters must never alias.
        counter = mb.HANDLER_COUNTER_ADDR + 64 * core_id
        return compile_workload(spec.workload, handler_counter=counter)
    if spec.role == "uipi_sender":
        assert spec.interval is not None and spec.count is not None
        return mb.make_uipi_timer_core(spec.interval, spec.count)
    return mb.make_idle()


def compile_plan(spec: FaultSpec, *, cores: int) -> FaultPlan:
    """Materialize the fault schedule a spec describes.

    Explicit faults win; otherwise the seeded random form draws through
    :meth:`FaultPlan.random`, which is byte-stable per seed.
    """
    if spec.is_explicit:
        return FaultPlan(seed=spec.seed, faults=spec.faults)
    if spec.count == 0:
        return FaultPlan(seed=spec.seed, faults=())
    return FaultPlan.random(
        spec.seed,
        cores=cores,
        horizon=spec.horizon,
        count=spec.count,
        kinds=spec.kinds,
        max_index=spec.max_index,
        max_delay=spec.max_delay,
    )


@dataclass(slots=True)
class BuiltScenario:
    """A compiled, un-run scenario: the system plus everything needed to
    arm injection, watch for halt, and label results."""

    scenario: Scenario
    system: MultiCoreSystem
    plan: FaultPlan
    #: Core ids whose halt ends the run (the workload cores).
    watch_cores: Tuple[int, ...]


def build_system(scenario: Scenario, *, trace: bool = True) -> BuiltScenario:
    """Compile a scenario into a fresh, deterministic system.

    Every call builds an independent system — callers run one system per
    engine leg so no state leaks between legs.
    """
    workloads: List[mb.Workload] = [
        compile_core(spec, core_id=i) for i, spec in enumerate(scenario.cores)
    ]
    strategies: List[DeliveryStrategy] = [
        STRATEGY_FACTORIES[spec.strategy]() for spec in scenario.cores
    ]
    system = MultiCoreSystem(
        [w.program for w in workloads],
        strategies,
        config=SystemConfig.sapphire_rapids_like(),
        trace=trace,
    )
    for workload in workloads:
        workload.install(system.shared)
    for link in scenario.links:
        system.connect_uipi(
            sender_core_id=link.sender,
            receiver_core_id=link.receiver,
            user_vector=link.vector,
        )
    for core_id, spec in enumerate(scenario.cores):
        if spec.role != "workload":
            continue
        core = system.cores[core_id]
        core.uintr.safepoint_mode = spec.safepoint
        if spec.kb_timer is not None:
            system.enable_kb_timer(core_id)
            core.uintr.kb_timer.arm_periodic(spec.kb_timer.period, now=0)
    plan = compile_plan(scenario.faults, cores=len(scenario.cores))
    receivers = {link.receiver for link in scenario.links}
    for fault in plan.faults:
        # The DSL checks explicit faults; a seeded random spec only
        # materializes here, so the same precondition is enforced again.
        if fault.kind == "spurious_uintr" and fault.core not in receivers:
            raise ConfigError(
                f"fault plan (seed {plan.seed}) schedules spurious_uintr on "
                f"core {fault.core}, which receives no UIPI link (no UPID); "
                f"use explicit faults targeting a receiver core"
            )
    watch = tuple(
        i for i, spec in enumerate(scenario.cores) if spec.role == "workload"
    )
    return BuiltScenario(scenario=scenario, system=system, plan=plan, watch_cores=watch)
