"""The differential fuzz driver: engine matrix x oracles x fingerprints.

Each scenario runs once per engine leg (naive, ``REPRO_FAST``, FAST+MACRO,
FAST+BATCH) with the :class:`InvariantChecker` armed.  Four oracles turn a
run into a finding:

``invariant``
    An :class:`InvariantViolation` fired during the run or the end-of-run
    conservation audit.
``crash``
    Any other exception escaped the simulator.
``timeout``
    A watched workload core had not halted when the scenario's cycle
    budget ran out.  This is *simulated* cycles, not wall clock, so the
    oracle is deterministic and the finding replays exactly.
``divergence``
    The leg's simulated view (halt states, final cycle, per-core stats,
    full trace) differs byte-for-byte from the first leg's.

Findings carry a *fingerprint*: a hash of (oracle, leg, detail) with runs
of digits collapsed, so the same bug class keeps the same fingerprint as
the shrinker makes the numbers smaller.  The corpus dedups on it.

``REPRO_FUZZ_TEST_DIVERGENCE=<leg>`` perturbs that leg's view by one cycle
— a test-only bug hook that proves, in CI and in the acceptance tests,
that the whole pipeline (oracle -> fingerprint -> shrink -> corpus ->
replay) actually fires.  It works in-process and across the CLI.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.counters import ENV_BATCH, ENV_FAST, ENV_MACRO
from repro.common.errors import ConfigError, InvariantViolation
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.scenario.compile import build_system
from repro.scenario.dsl import Scenario
from repro.scenario.generate import ScenarioGenerator

#: Leg name -> the engine environment that leg runs under.
ENGINE_LEGS: Dict[str, Dict[str, str]] = {
    "naive": {ENV_FAST: "0", ENV_MACRO: "0", ENV_BATCH: "0"},
    "fast": {ENV_FAST: "1", ENV_MACRO: "0", ENV_BATCH: "0"},
    "fast+macro": {ENV_FAST: "1", ENV_MACRO: "1", ENV_BATCH: "0"},
    "fast+batch": {ENV_FAST: "1", ENV_MACRO: "0", ENV_BATCH: "1"},
}

#: Test-only oracle hook: name a leg to perturb its view by one cycle.
ENV_TEST_DIVERGENCE = "REPRO_FUZZ_TEST_DIVERGENCE"

FINDING_KINDS: Tuple[str, ...] = ("invariant", "divergence", "crash", "timeout")

_DIGITS = re.compile(r"\d+")


@contextmanager
def _engine_env(leg: str) -> Iterator[None]:
    """Pin the engine flags for one leg, restoring the caller's environment.

    Intentional environment access (suppressed, not baselined): selecting
    the engine under test IS the fuzzer's job — the flags are read by
    repro.common.counters at run time, and the save/restore pair keeps the
    matrix invisible to the caller (same idiom as repro.faults.harness).
    """
    if leg not in ENGINE_LEGS:
        raise ConfigError(f"unknown engine leg {leg!r}; expected one of {tuple(ENGINE_LEGS)}")
    saved = {k: os.environ.get(k) for k in ENGINE_LEGS[leg]}  # detlint: ignore[DET004]
    os.environ.update(ENGINE_LEGS[leg])  # detlint: ignore[DET004]
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)  # detlint: ignore[DET004]
            else:
                os.environ[key] = value  # detlint: ignore[DET004]


def fingerprint(kind: str, leg: str, detail: str) -> str:
    """The failure identity: oracle x leg x digit-normalized detail.

    Collapsing digit runs to ``#`` is what lets the shrinker halve every
    number in a scenario without changing the fingerprint — a shrink step
    is accepted only if this value is preserved.
    """
    normalized = _DIGITS.sub("#", detail)
    text = f"{kind}|{leg}|{normalized}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True, slots=True)
class FuzzFinding:
    """One oracle firing on one scenario under one leg."""

    scenario: Scenario
    kind: str
    leg: str
    detail: str
    fingerprint: str

    def to_json(self) -> dict:
        return {
            "detail": self.detail,
            "engine_env": dict(ENGINE_LEGS[self.leg]),
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "leg": self.leg,
            "scenario": self.scenario.to_json(),
            "scenario_id": self.scenario.scenario_id(),
        }

    def with_scenario(self, scenario: Scenario) -> "FuzzFinding":
        return replace(self, scenario=scenario)


def _make_finding(scenario: Scenario, kind: str, leg: str, detail: str) -> FuzzFinding:
    return FuzzFinding(
        scenario=scenario,
        kind=kind,
        leg=leg,
        detail=detail,
        fingerprint=fingerprint(kind, leg, detail),
    )


def run_scenario(scenario: Scenario, leg: str) -> Dict[str, object]:
    """Run one scenario under one engine leg; return its simulated view.

    The view is the engine-comparable slice: watched halt states, final
    cycle, per-core stats snapshots, and the full trace.  Raises whatever
    the simulator raises — the caller classifies.
    """
    built = build_system(scenario)
    checker = InvariantChecker(built.plan).install(built.system)
    FaultInjector(built.plan).install(built.system)
    with _engine_env(leg):
        built.system.run(scenario.max_cycles, until_halted=list(built.watch_cores))
        checker.finish(built.system)
    system = built.system
    view: Dict[str, object] = {
        "halted": [system.cores[i].halted for i in built.watch_cores],
        "cycles": system.cycle,
        "stats": [dict(c.stats.snapshot().__dict__) for c in system.cores],
        "trace": [
            (event.time, event.kind, tuple(sorted(event.detail.items())))
            for event in system.trace.events
        ],
    }
    # Test-only bug hook: reading the environment here is deliberate — the
    # hook must also reach CLI subprocess replays, so it cannot be a
    # parameter (see module docstring).
    if os.environ.get(ENV_TEST_DIVERGENCE) == leg:  # detlint: ignore[DET004]
        view["cycles"] = int(view["cycles"]) + 1
    return view


def _diff_detail(
    base_leg: str,
    base: Dict[str, object],
    leg: str,
    view: Dict[str, object],
) -> str:
    """A short, digit-normalizable description of the first divergence."""
    for key in ("halted", "cycles"):
        if base[key] != view[key]:
            return f"{key}: {base_leg}={base[key]!r} vs {leg}={view[key]!r}"
    if base["stats"] != view["stats"]:
        for core_id, (b, v) in enumerate(zip(base["stats"], view["stats"])):
            for stat in sorted(set(b) | set(v)):
                if b.get(stat) != v.get(stat):
                    return (
                        f"stats[core {core_id}].{stat}: "
                        f"{base_leg}={b.get(stat)!r} vs {leg}={v.get(stat)!r}"
                    )
    if base["trace"] != view["trace"]:
        b_tr, v_tr = base["trace"], view["trace"]
        for i, (b, v) in enumerate(zip(b_tr, v_tr)):
            if b != v:
                return f"trace[{i}]: {base_leg}={b!r} vs {leg}={v!r}"
        return (
            f"trace length: {base_leg}={len(b_tr)} vs {leg}={len(v_tr)}"
        )
    return f"views differ between {base_leg} and {leg} (unlocated)"


def run_one(scenario: Scenario) -> List[FuzzFinding]:
    """Run a scenario's whole engine matrix and apply every oracle."""
    findings: List[FuzzFinding] = []
    views: Dict[str, Dict[str, object]] = {}
    for leg in scenario.engines:
        try:
            view = run_scenario(scenario, leg)
        except InvariantViolation as exc:
            findings.append(_make_finding(scenario, "invariant", leg, str(exc)))
            continue
        except Exception as exc:  # noqa: BLE001 - the crash oracle
            detail = f"{type(exc).__name__}: {exc}"
            findings.append(_make_finding(scenario, "crash", leg, detail))
            continue
        if not all(view["halted"]):
            stuck = [i for i, halted in enumerate(view["halted"]) if not halted]
            detail = (
                f"watched workload core(s) {stuck} not halted after "
                f"{scenario.max_cycles} cycles"
            )
            findings.append(_make_finding(scenario, "timeout", leg, detail))
            continue
        views[leg] = view
    if len(views) >= 2:
        legs = list(views)
        base_leg, base = legs[0], views[legs[0]]
        for leg in legs[1:]:
            if views[leg] != base:
                detail = _diff_detail(base_leg, base, leg, views[leg])
                findings.append(_make_finding(scenario, "divergence", leg, detail))
    return findings


@dataclass(slots=True)
class FuzzReport:
    """What a fuzz run did: coverage plus every finding."""

    scenarios_run: int
    findings: List[FuzzFinding]
    first_seed: int
    last_seed: Optional[int]
    elapsed_seconds: float
    stopped_on_budget: bool

    @property
    def clean(self) -> bool:
        return not self.findings

    def summary(self) -> Dict[str, object]:
        by_kind: Dict[str, int] = {}
        for finding in self.findings:
            by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
        return {
            "scenarios_run": self.scenarios_run,
            "findings": len(self.findings),
            "unique_fingerprints": len({f.fingerprint for f in self.findings}),
            "by_kind": by_kind,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "stopped_on_budget": self.stopped_on_budget,
        }


def fuzz(
    generator: ScenarioGenerator,
    *,
    seeds: int = 100,
    start: int = 0,
    time_budget: Optional[float] = None,
    progress: Optional[Callable[[int, Scenario, List[FuzzFinding]], None]] = None,
) -> FuzzReport:
    """Run generated scenarios ``start .. start+seeds-1`` through the matrix.

    ``time_budget`` (wall-clock seconds) stops *between* scenarios — a
    scenario in flight always finishes, so a budgeted run still reports
    only complete, replayable results.  The oracles themselves never read
    the clock; the budget only bounds how many seeds get examined.
    """
    if seeds < 0:
        raise ConfigError(f"seeds must be non-negative, got {seeds}")
    # Wall-clock use is intentional and suppressed (not baselined): the
    # time budget bounds the *driver loop*, never a simulated result.
    t0 = time.monotonic()  # detlint: ignore[DET001]
    deadline = None if time_budget is None else t0 + time_budget
    findings: List[FuzzFinding] = []
    scenarios_run = 0
    last_seed: Optional[int] = None
    stopped = False
    for index in range(start, start + seeds):
        if deadline is not None and time.monotonic() >= deadline:  # detlint: ignore[DET001]
            stopped = True
            break
        scenario = generator.generate(index)
        scenario_findings = run_one(scenario)
        findings.extend(scenario_findings)
        scenarios_run += 1
        last_seed = index
        if progress is not None:
            progress(index, scenario, scenario_findings)
    return FuzzReport(
        scenarios_run=scenarios_run,
        findings=findings,
        first_seed=start,
        last_seed=last_seed,
        elapsed_seconds=time.monotonic() - t0,  # detlint: ignore[DET001]
        stopped_on_budget=stopped,
    )
