"""The typed scenario DSL: dataclasses that validate at construction time.

Every scenario is a frozen dataclass tree.  Construction *is* validation —
an out-of-range knob, a dangling link endpoint, or a fault targeting a
nonexistent core raises :class:`~repro.common.errors.ConfigError`
immediately, so no invalid scenario can ever be serialized, generated, or
shrunk into existence.  The JSON codec is strict the same way:
``from_json`` rejects unknown keys and wrong types instead of silently
dropping them, and ``dumps()`` is byte-stable (sorted keys, compact
separators), so a scenario is a reproducible artifact: the dump alone
rebuilds the identical object anywhere.

Schema overview::

    Scenario
    ├── cores:   (CoreSpec, ...)      # topology + per-core assignment
    │   ├── role: workload | uipi_sender | idle
    │   ├── workload: WorkloadSpec    # kind + validated knobs
    │   ├── strategy: flush | drain | tracked
    │   ├── kb_timer: TimerSpec       # periodic KB timer program
    │   └── interval/count            # sender load profile
    ├── links:   (UipiLink, ...)      # sender core -> receiver core
    ├── faults:  FaultSpec            # explicit faults or a seeded spec
    ├── engines: ("naive", "fast", ...)  # the engine-flag matrix
    └── max_cycles / seed / name
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigError
from repro.faults.plan import CYCLE_TIER_KINDS, FAULT_KINDS, MESSAGE_KINDS, Fault

#: Delivery strategies a workload core may be assigned.
STRATEGY_NAMES: Tuple[str, ...] = ("flush", "drain", "tracked")

#: Core roles.  ``workload`` runs a microbenchmark with a registered
#: handler; ``uipi_sender`` is a dedicated rdtsc-spin timer core (§2);
#: ``idle`` halts immediately (populates batch-stepper idle lanes).
CORE_ROLES: Tuple[str, ...] = ("workload", "uipi_sender", "idle")

#: The engine-flag matrix legs (see :data:`repro.scenario.fuzz.ENGINE_LEGS`).
ENGINE_LEG_NAMES: Tuple[str, ...] = ("naive", "fast", "fast+macro", "fast+batch")

#: Workload kinds and their knob schema: name -> (min, max, power_of_two).
#: Ranges are deliberately small — fuzz scenarios must stay cheap enough
#: that hundreds of seeds run in minutes even on the naive stepper.
WORKLOAD_KNOBS: Dict[str, Dict[str, Tuple[int, int, bool]]] = {
    "count_loop": {"iterations": (1, 100_000, False)},
    "fib": {"n": (1, 14, False)},
    "base64": {"iterations": (1, 20_000, False)},
    "fnv_hash": {
        "iterations": (1, 20_000, False),
        "buffer_words": (64, 4096, True),
    },
    "memops": {
        "iterations": (1, 20_000, False),
        "footprint_kb": (1, 256, True),
    },
    "pointer_chase": {
        "num_nodes": (2, 512, False),
        "stride": (64, 4096, True),
        "iterations": (1, 20_000, False),
        "unroll": (1, 8, False),
    },
    "matmul": {"size": (2, 24, False)},
    "quicksort": {"n": (2, 512, False), "seed": (0, 2**31, False)},
}

#: Workload kinds whose programs bake absolute shared-memory data
#: addresses into their instructions (tables, arrays, chase lists).  Two
#: such workloads in one scenario would alias the same data and race —
#: the cycle tier shares one flat memory and models no coherence-ordering
#: guarantee between racing cores, so engine equivalence only holds for
#: race-free scenarios.  Register-only kinds (count_loop, fib — fib's
#: stack is per-core by construction) may replicate freely.
MEMORY_WORKLOAD_KINDS: Tuple[str, ...] = (
    "base64",
    "fnv_hash",
    "memops",
    "pointer_chase",
    "matmul",
    "quicksort",
)

MIN_MAX_CYCLES = 1_000
MAX_MAX_CYCLES = 5_000_000
MIN_TIMER_PERIOD = 64
MAX_TIMER_PERIOD = 1_000_000
MIN_SENDER_INTERVAL = 64
MAX_SENDER_INTERVAL = 100_000
MAX_SENDER_COUNT = 256
MAX_CORES = 8


def _require_int(value: Any, what: str) -> int:
    """An actual int — bools and floats are type errors, not coercions."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{what} must be an integer, got {value!r}")
    return value


def _reject_unknown(obj: Mapping[str, Any], allowed: Tuple[str, ...], what: str) -> None:
    if not isinstance(obj, Mapping):
        raise ConfigError(f"{what} must be a JSON object, got {type(obj).__name__}")
    unknown = sorted(set(obj) - set(allowed))
    if unknown:
        raise ConfigError(
            f"{what} has unknown key(s) {unknown}; expected a subset of {sorted(allowed)}"
        )


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """One microbenchmark kind plus its validated knobs.

    Knobs are stored as a sorted ``(name, value)`` tuple so the dataclass
    stays hashable and its JSON form canonical.
    """

    kind: str
    knobs: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KNOBS:
            raise ConfigError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{tuple(WORKLOAD_KNOBS)}"
            )
        schema = WORKLOAD_KNOBS[self.kind]
        knobs = tuple(sorted(dict(self.knobs).items()))
        object.__setattr__(self, "knobs", knobs)
        for name, value in knobs:
            if name not in schema:
                raise ConfigError(
                    f"workload {self.kind!r} has no knob {name!r}; expected a "
                    f"subset of {sorted(schema)}"
                )
            lo, hi, pow2 = schema[name]
            value = _require_int(value, f"{self.kind}.{name}")
            if not lo <= value <= hi:
                raise ConfigError(
                    f"{self.kind}.{name} must be in [{lo}, {hi}], got {value}"
                )
            if pow2 and value & (value - 1):
                raise ConfigError(
                    f"{self.kind}.{name} must be a power of two, got {value}"
                )

    def knob(self, name: str, default: int) -> int:
        return dict(self.knobs).get(name, default)

    def to_json(self) -> dict:
        return {"kind": self.kind, "knobs": {k: v for k, v in self.knobs}}

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "WorkloadSpec":
        _reject_unknown(obj, ("kind", "knobs"), "workload spec")
        if "kind" not in obj:
            raise ConfigError("workload spec is missing required key 'kind'")
        knobs = obj.get("knobs", {})
        if not isinstance(knobs, Mapping):
            raise ConfigError("workload knobs must be a JSON object")
        return cls(
            kind=obj["kind"],
            knobs=tuple(
                (str(k), _require_int(v, f"knob {k}")) for k, v in sorted(knobs.items())
            ),
        )


@dataclass(frozen=True, slots=True)
class TimerSpec:
    """A periodic KB timer program: the hardware timer of §4.3."""

    period: int

    def __post_init__(self) -> None:
        _require_int(self.period, "timer period")
        if not MIN_TIMER_PERIOD <= self.period <= MAX_TIMER_PERIOD:
            raise ConfigError(
                f"timer period must be in [{MIN_TIMER_PERIOD}, {MAX_TIMER_PERIOD}], "
                f"got {self.period}"
            )

    def to_json(self) -> dict:
        return {"period": self.period}

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "TimerSpec":
        _reject_unknown(obj, ("period",), "timer spec")
        if "period" not in obj:
            raise ConfigError("timer spec is missing required key 'period'")
        return cls(period=_require_int(obj["period"], "timer period"))


@dataclass(frozen=True, slots=True)
class CoreSpec:
    """One core: role, workload/strategy assignment, timer, load profile.

    - ``workload`` cores run ``workload`` under ``strategy`` (optionally in
      safepoint mode, optionally with a periodic KB timer).
    - ``uipi_sender`` cores spin on rdtsc and ``senduipi`` every
      ``interval`` cycles, ``count`` times — the load profile of the
      Figure 4/7 dedicated-timer-core pattern.
    - ``idle`` cores halt immediately.
    """

    role: str = "workload"
    workload: Optional[WorkloadSpec] = None
    strategy: str = "flush"
    safepoint: bool = False
    kb_timer: Optional[TimerSpec] = None
    interval: Optional[int] = None
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.role not in CORE_ROLES:
            raise ConfigError(
                f"unknown core role {self.role!r}; expected one of {CORE_ROLES}"
            )
        if self.strategy not in STRATEGY_NAMES:
            raise ConfigError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGY_NAMES}"
            )
        if not isinstance(self.safepoint, bool):
            raise ConfigError(f"safepoint must be a bool, got {self.safepoint!r}")
        if self.role == "workload":
            if self.workload is None:
                raise ConfigError("workload cores require a workload spec")
            if self.interval is not None or self.count is not None:
                raise ConfigError("interval/count are sender-only fields")
        elif self.role == "uipi_sender":
            if self.workload is not None or self.kb_timer is not None:
                raise ConfigError("sender cores take no workload or kb_timer")
            if self.interval is None or self.count is None:
                raise ConfigError("sender cores require interval and count")
            _require_int(self.interval, "sender interval")
            _require_int(self.count, "sender count")
            if not MIN_SENDER_INTERVAL <= self.interval <= MAX_SENDER_INTERVAL:
                raise ConfigError(
                    f"sender interval must be in [{MIN_SENDER_INTERVAL}, "
                    f"{MAX_SENDER_INTERVAL}], got {self.interval}"
                )
            if not 1 <= self.count <= MAX_SENDER_COUNT:
                raise ConfigError(
                    f"sender count must be in [1, {MAX_SENDER_COUNT}], got {self.count}"
                )
        else:  # idle
            if (
                self.workload is not None
                or self.kb_timer is not None
                or self.interval is not None
                or self.count is not None
            ):
                raise ConfigError("idle cores take no workload, timer, or load fields")

    def to_json(self) -> dict:
        out: Dict[str, Any] = {"role": self.role, "strategy": self.strategy}
        if self.workload is not None:
            out["workload"] = self.workload.to_json()
        if self.safepoint:
            out["safepoint"] = True
        if self.kb_timer is not None:
            out["kb_timer"] = self.kb_timer.to_json()
        if self.interval is not None:
            out["interval"] = self.interval
        if self.count is not None:
            out["count"] = self.count
        return out

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "CoreSpec":
        _reject_unknown(
            obj,
            ("role", "workload", "strategy", "safepoint", "kb_timer", "interval", "count"),
            "core spec",
        )
        workload = obj.get("workload")
        kb_timer = obj.get("kb_timer")
        safepoint = obj.get("safepoint", False)
        if not isinstance(safepoint, bool):
            raise ConfigError(f"safepoint must be a bool, got {safepoint!r}")
        return cls(
            role=obj.get("role", "workload"),
            workload=WorkloadSpec.from_json(workload) if workload is not None else None,
            strategy=obj.get("strategy", "flush"),
            safepoint=safepoint,
            kb_timer=TimerSpec.from_json(kb_timer) if kb_timer is not None else None,
            interval=(
                _require_int(obj["interval"], "sender interval")
                if "interval" in obj
                else None
            ),
            count=_require_int(obj["count"], "sender count") if "count" in obj else None,
        )


@dataclass(frozen=True, slots=True)
class UipiLink:
    """A UIPI route: ``sender`` core's UITT slot 0 -> ``receiver``'s UPID."""

    sender: int
    receiver: int
    vector: int = 1

    def __post_init__(self) -> None:
        _require_int(self.sender, "link sender")
        _require_int(self.receiver, "link receiver")
        _require_int(self.vector, "link vector")
        if self.sender < 0 or self.receiver < 0:
            raise ConfigError(f"link endpoints must be non-negative: {self}")
        if self.sender == self.receiver:
            raise ConfigError(f"link endpoints must differ, got core {self.sender}")
        if not 1 <= self.vector <= 63:
            raise ConfigError(f"user vector must be in [1, 63], got {self.vector}")

    def to_json(self) -> dict:
        return {"receiver": self.receiver, "sender": self.sender, "vector": self.vector}

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "UipiLink":
        _reject_unknown(obj, ("sender", "receiver", "vector"), "uipi link")
        for key in ("sender", "receiver"):
            if key not in obj:
                raise ConfigError(f"uipi link is missing required key {key!r}")
        return cls(
            sender=_require_int(obj["sender"], "link sender"),
            receiver=_require_int(obj["receiver"], "link receiver"),
            vector=_require_int(obj.get("vector", 1), "link vector"),
        )


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """The fault plan: explicit :class:`Fault` records, a seeded random
    spec, or both (explicit faults win when present).

    The random form compiles through :meth:`FaultPlan.random`, so the same
    (seed, count, kinds, horizon) draws the same schedule everywhere; the
    explicit form is what the shrinker materializes a spec into so it can
    drop entries one at a time.
    """

    seed: int = 0
    count: int = 0
    kinds: Tuple[str, ...] = CYCLE_TIER_KINDS
    horizon: int = 50_000
    max_index: int = 16
    max_delay: int = 1_000
    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        _require_int(self.seed, "fault seed")
        _require_int(self.count, "fault count")
        _require_int(self.horizon, "fault horizon")
        _require_int(self.max_index, "fault max_index")
        _require_int(self.max_delay, "fault max_delay")
        if self.count < 0 or self.count > 64:
            raise ConfigError(f"fault count must be in [0, 64], got {self.count}")
        if self.horizon < 1:
            raise ConfigError(f"fault horizon must be positive, got {self.horizon}")
        if self.max_index < 1 or self.max_delay < 1:
            raise ConfigError("fault max_index and max_delay must be positive")
        kinds = tuple(self.kinds)
        object.__setattr__(self, "kinds", kinds)
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ConfigError(f"unknown fault kinds {unknown}; expected {FAULT_KINDS}")
        if self.count and not kinds:
            raise ConfigError("a random fault spec with count > 0 needs kinds")
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise ConfigError(f"faults entries must be Fault records, got {fault!r}")

    @property
    def is_explicit(self) -> bool:
        return bool(self.faults)

    def total_faults(self) -> int:
        return len(self.faults) if self.is_explicit else self.count

    def to_json(self) -> dict:
        out: Dict[str, Any] = {"count": self.count, "seed": self.seed}
        if self.count:
            out["horizon"] = self.horizon
            out["kinds"] = list(self.kinds)
            out["max_delay"] = self.max_delay
            out["max_index"] = self.max_index
        if self.faults:
            out["faults"] = [f.to_json() for f in self.faults]
        return out

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "FaultSpec":
        _reject_unknown(
            obj,
            ("seed", "count", "kinds", "horizon", "max_index", "max_delay", "faults"),
            "fault spec",
        )
        faults = obj.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ConfigError("fault spec 'faults' must be a list")
        kinds = obj.get("kinds", list(CYCLE_TIER_KINDS))
        if not isinstance(kinds, (list, tuple)):
            raise ConfigError("fault spec 'kinds' must be a list")
        return cls(
            seed=_require_int(obj.get("seed", 0), "fault seed"),
            count=_require_int(obj.get("count", 0), "fault count"),
            kinds=tuple(kinds),
            horizon=_require_int(obj.get("horizon", 50_000), "fault horizon"),
            max_index=_require_int(obj.get("max_index", 16), "fault max_index"),
            max_delay=_require_int(obj.get("max_delay", 1_000), "fault max_delay"),
            faults=tuple(Fault.from_json(f) for f in faults),
        )


@dataclass(frozen=True, slots=True)
class Scenario:
    """A complete, validated, reproducible scenario."""

    name: str = "scenario"
    cores: Tuple[CoreSpec, ...] = field(default_factory=tuple)
    links: Tuple[UipiLink, ...] = ()
    faults: FaultSpec = field(default_factory=FaultSpec)
    engines: Tuple[str, ...] = ENGINE_LEG_NAMES
    max_cycles: int = 200_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(f"scenario name must be a non-empty string, got {self.name!r}")
        cores = tuple(self.cores)
        links = tuple(self.links)
        engines = tuple(self.engines)
        object.__setattr__(self, "cores", cores)
        object.__setattr__(self, "links", links)
        object.__setattr__(self, "engines", engines)
        _require_int(self.max_cycles, "max_cycles")
        _require_int(self.seed, "scenario seed")
        if not MIN_MAX_CYCLES <= self.max_cycles <= MAX_MAX_CYCLES:
            raise ConfigError(
                f"max_cycles must be in [{MIN_MAX_CYCLES}, {MAX_MAX_CYCLES}], "
                f"got {self.max_cycles}"
            )
        if not cores:
            raise ConfigError("a scenario needs at least one core")
        if len(cores) > MAX_CORES:
            raise ConfigError(f"at most {MAX_CORES} cores, got {len(cores)}")
        for core in cores:
            if not isinstance(core, CoreSpec):
                raise ConfigError(f"cores entries must be CoreSpec, got {core!r}")
        if not any(c.role == "workload" for c in cores):
            raise ConfigError("a scenario needs at least one workload core")
        memory_cores = [
            i
            for i, c in enumerate(cores)
            if c.workload is not None and c.workload.kind in MEMORY_WORKLOAD_KINDS
        ]
        if len(memory_cores) > 1:
            raise ConfigError(
                f"cores {memory_cores} all run memory-image workloads; their "
                f"data addresses would alias in shared memory (at most one of "
                f"{MEMORY_WORKLOAD_KINDS} per scenario; replicate count_loop/"
                f"fib instead)"
            )
        unknown_engines = [e for e in engines if e not in ENGINE_LEG_NAMES]
        if unknown_engines:
            raise ConfigError(
                f"unknown engine legs {unknown_engines}; expected a subset of "
                f"{ENGINE_LEG_NAMES}"
            )
        if len(engines) < 1:
            raise ConfigError("the engine matrix needs at least one leg")
        if len(set(engines)) != len(engines):
            raise ConfigError(f"duplicate engine legs in {engines}")
        seen_senders = set()
        seen_receivers = set()
        for link in links:
            if not isinstance(link, UipiLink):
                raise ConfigError(f"links entries must be UipiLink, got {link!r}")
            for endpoint in (link.sender, link.receiver):
                if endpoint >= len(cores):
                    raise ConfigError(
                        f"link references core {endpoint}, but the scenario has "
                        f"{len(cores)} cores"
                    )
            if cores[link.sender].role != "uipi_sender":
                raise ConfigError(
                    f"link sender core {link.sender} has role "
                    f"{cores[link.sender].role!r}, expected 'uipi_sender'"
                )
            if cores[link.receiver].role != "workload":
                raise ConfigError(
                    f"link receiver core {link.receiver} has role "
                    f"{cores[link.receiver].role!r}, expected 'workload'"
                )
            if link.sender in seen_senders:
                raise ConfigError(f"core {link.sender} appears in more than one link")
            if link.receiver in seen_receivers:
                raise ConfigError(f"core {link.receiver} receives more than one link")
            seen_senders.add(link.sender)
            seen_receivers.add(link.receiver)
        for i, core in enumerate(cores):
            if core.role == "uipi_sender" and i not in seen_senders:
                raise ConfigError(f"sender core {i} has no link")
        seen_message_slots = set()
        for fault in self.faults.faults:
            # The injector keys message faults on (core, accept index) —
            # two actions for one slot is unresolvable, so reject it here
            # rather than as an install-time crash.
            if fault.kind in MESSAGE_KINDS:
                slot = (fault.core, fault.index)
                if slot in seen_message_slots:
                    raise ConfigError(
                        f"two message faults target accept #{fault.index} on "
                        f"core {fault.core}"
                    )
                seen_message_slots.add(slot)
            if fault.core >= len(cores):
                raise ConfigError(
                    f"fault targets core {fault.core}, but the scenario has "
                    f"{len(cores)} cores"
                )
            # A spurious notification runs the recognition microcode, which
            # reads the target's UPID — only link receivers have one.
            if fault.kind == "spurious_uintr" and fault.core not in seen_receivers:
                raise ConfigError(
                    f"spurious_uintr targets core {fault.core}, which receives "
                    f"no UIPI link (no UPID to recognize against)"
                )

    # -- canonical JSON ------------------------------------------------

    def to_json(self) -> dict:
        return {
            "cores": [c.to_json() for c in self.cores],
            "engines": list(self.engines),
            "faults": self.faults.to_json(),
            "links": [l.to_json() for l in self.links],
            "max_cycles": self.max_cycles,
            "name": self.name,
            "seed": self.seed,
        }

    def dumps(self) -> str:
        """Byte-stable canonical form: equal scenarios dump identically."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "Scenario":
        _reject_unknown(
            obj,
            ("name", "cores", "links", "faults", "engines", "max_cycles", "seed"),
            "scenario",
        )
        cores = obj.get("cores", [])
        links = obj.get("links", [])
        engines = obj.get("engines", list(ENGINE_LEG_NAMES))
        if not isinstance(cores, (list, tuple)):
            raise ConfigError("scenario 'cores' must be a list")
        if not isinstance(links, (list, tuple)):
            raise ConfigError("scenario 'links' must be a list")
        if not isinstance(engines, (list, tuple)):
            raise ConfigError("scenario 'engines' must be a list")
        return cls(
            name=obj.get("name", "scenario"),
            cores=tuple(CoreSpec.from_json(c) for c in cores),
            links=tuple(UipiLink.from_json(l) for l in links),
            faults=FaultSpec.from_json(obj.get("faults", {})),
            engines=tuple(engines),
            max_cycles=_require_int(obj.get("max_cycles", 200_000), "max_cycles"),
            seed=_require_int(obj.get("seed", 0), "scenario seed"),
        )

    @classmethod
    def loads(cls, text: str) -> "Scenario":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"scenario JSON does not parse: {exc}") from exc
        return cls.from_json(obj)

    # -- identity and size ---------------------------------------------

    def scenario_id(self) -> str:
        """Content hash of the canonical dump (scenario identity)."""
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()[:12]

    def size_key(self) -> Tuple[int, int, int, int, int]:
        """A lexicographic size metric the shrinker drives strictly down:
        (cores, faults, timers, knob mass, max_cycles)."""
        knob_mass = 0
        timers = 0
        for core in self.cores:
            if core.kb_timer is not None:
                timers += 1
            if core.workload is not None:
                knob_mass += sum(v for _, v in core.workload.knobs)
            if core.role == "uipi_sender":
                knob_mass += (core.interval or 0) + (core.count or 0)
        return (
            len(self.cores),
            self.faults.total_faults(),
            timers,
            knob_mass,
            self.max_cycles,
        )
