"""Convenience wrappers for enabling xUI features on cycle-tier systems.

These mirror what the paper's modified kernel/runtime would do through
system calls and the new instructions, for callers who configure a
:class:`repro.cpu.multicore.MultiCoreSystem` directly.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, ProtocolError
from repro.cpu.core import Core
from repro.cpu.delivery import TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem


def _require_tracking(core: Core, feature: str) -> None:
    if not isinstance(core.strategy, TrackedStrategy):
        raise ConfigError(
            f"{feature} requires the tracked-interrupt strategy on core "
            f"{core.core_id} (got {core.strategy.name!r})"
        )


def enable_safepoint_mode(core: Core) -> None:
    """Turn on safepoint mode (§4.4): interrupts are delivered only at
    safepoint-prefixed instructions.  Requires tracking."""
    _require_tracking(core, "safepoint mode")
    core.uintr.safepoint_mode = True


def disable_safepoint_mode(core: Core) -> None:
    core.uintr.safepoint_mode = False


def arm_periodic_timer(system: MultiCoreSystem, core_id: int, period_cycles: int, vector: int = 2) -> None:
    """Kernel-enable and user-arm the KB timer on ``core_id`` (§4.3).

    Equivalent to ``enable_kb_timer()`` (syscall) followed by the user-level
    ``set_timer(period, periodic)`` instruction.
    """
    if period_cycles <= 0:
        raise ConfigError("period must be positive")
    system.enable_kb_timer(core_id, vector=vector)
    core = system.cores[core_id]
    core.uintr.kb_timer.arm_periodic(period_cycles, now=core.cycle)


def arm_oneshot_timer(system: MultiCoreSystem, core_id: int, deadline_cycle: int, vector: int = 2) -> None:
    """Kernel-enable and arm a one-shot KB timer deadline (§4.3)."""
    system.enable_kb_timer(core_id, vector=vector)
    core = system.cores[core_id]
    if deadline_cycle <= core.cycle:
        raise ProtocolError("one-shot deadline is already in the past")
    core.uintr.kb_timer.arm_oneshot(deadline_cycle)


def setup_device_forwarding(
    system: MultiCoreSystem, core_id: int, vector: int, user_vector: int = 3
) -> None:
    """Route device interrupts on ``vector`` to the thread on ``core_id``
    (§4.5), with the thread running (fast path active)."""
    system.enable_forwarding(core_id, vector=vector, user_vector=user_vector)
