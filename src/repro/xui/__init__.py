"""xUI — the paper's four extensions, as a feature-level façade (§4).

The implementations live where the hardware would put them; this package
collects them under the contribution's name:

- **Tracked interrupts** (§4.2): :class:`repro.cpu.delivery.TrackedStrategy`
  (front-end injection, ROB source bits, re-injection after squash).
- **Hardware safepoints** (§4.4): the safepoint instruction prefix
  (:func:`repro.cpu.isa.safepoint`, ``Instruction.with_safepoint``), the
  safepoint-mode flag, and :func:`enable_safepoint_mode`.
- **KB timer** (§4.3): :class:`repro.cpu.uintr_state.KBTimerState` and the
  ``set_timer``/``clear_timer`` instructions; :func:`arm_periodic_timer`.
- **Interrupt forwarding** (§4.5): the local APIC's ``forwarding_enabled``
  / ``forwarded_active`` registers (:class:`repro.uintr.apic.LocalApic`)
  and the DUPID slow path (:class:`repro.kernel.syscalls.KernelInterface`).
"""

from repro.cpu.delivery import TrackedStrategy
from repro.cpu.uintr_state import KBTimerState
from repro.xui.features import (
    enable_safepoint_mode,
    disable_safepoint_mode,
    arm_periodic_timer,
    arm_oneshot_timer,
    setup_device_forwarding,
)

__all__ = [
    "TrackedStrategy",
    "KBTimerState",
    "enable_safepoint_mode",
    "disable_safepoint_mode",
    "arm_periodic_timer",
    "arm_oneshot_timer",
    "setup_device_forwarding",
]
