"""Notification-mechanism abstraction and the calibrated cost model.

The event tier (Figures 6-9) charges per-event costs for each notification
mechanism rather than simulating every micro-op; :class:`CostModel` is the
single source of those constants, with defaults matching the paper's
measurements and a ``from_cycle_model`` derivation that re-measures them on
the cycle tier.
"""

from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism

__all__ = ["CostModel", "Mechanism"]
