"""The calibrated per-event cost model (cycles at the paper's 2 GHz clock).

Defaults are the paper's measured/reported constants (§2, §3.4 Table 2,
§4.1, §6.1).  ``CostModel.from_cycle_model()`` re-derives the interrupt
costs by running the cycle tier's characterization experiments, keeping the
two tiers consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.common.units import us_to_cycles


@dataclass(frozen=True)
class CostModel:
    """Per-event costs, in cycles @ 2 GHz."""

    # -- user interrupts (Table 2, Figure 4) -------------------------------
    #: Receiver-side cost of one UIPI with the flush strategy (Fig 4: ~645;
    #: Table 2 reports 720 for the raw receiver path).
    uipi_receive_flush: float = 645.0
    #: Receiver-side cost of a tracked IPI (notification + delivery, §4.2).
    uipi_receive_tracked: float = 231.0
    #: Receiver-side cost of a tracked KB-timer or forwarded-device
    #: interrupt (delivery only, §4.3/§4.5).
    timer_receive_tracked: float = 105.0
    #: End-to-end UIPI latency, senduipi issue to handler entry (Table 2).
    uipi_end_to_end: float = 1360.0
    #: Sender-side cost of one senduipi (Table 2).
    senduipi: float = 383.0
    clui: float = 2.0
    stui: float = 32.0

    # -- signals and OS interfaces (§2) -------------------------------------
    #: Full cost of one signal delivery (~2.4 us at 2 GHz).
    signal_delivery: float = 4800.0
    #: The OS context-switch share of a signal (~1.4 us).
    signal_kernel_share: float = 2800.0
    #: Per-event cost on a timer thread using setitimer() (signal-based).
    setitimer_event: float = 5200.0
    #: Per-event cost on a timer thread using nanosleep() (sleep/wake).
    nanosleep_event: float = 3600.0
    #: Minimum achievable OS interval-timer period (~2 us, §6.2.3: "almost
    #: at the limit of the OS interval timer").
    os_timer_min_period: float = 4000.0

    # -- shared-memory polling (§2, §4.2) ------------------------------------
    #: One negative poll (L1 hit + predicted branch).
    poll_check: float = 3.0
    #: A positive poll (remote-dirty miss + mispredict).
    poll_notify: float = 100.0

    # -- scheduling ----------------------------------------------------------
    #: User-level thread switch (Aspen-style runtime).
    uthread_switch: float = 250.0
    #: Kernel thread context switch.
    kthread_switch: float = 2800.0
    #: Loop overhead per receiver on a dedicated rdtsc-spin timer core
    #: (bookkeeping around each senduipi; with senduipi this bounds the
    #: fan-out at ~22 workers per timer core at a 5 us quantum, §6.1).
    timer_core_loop_overhead: float = 70.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"cost {name} must be non-negative, got {value}")

    # -- derived helpers -----------------------------------------------------
    def preemption_cost(self, mechanism: "str") -> float:
        """Receiver-side cost of one preemption notification."""
        from repro.notify.mechanisms import Mechanism

        mech = Mechanism(mechanism) if not isinstance(mechanism, Mechanism) else mechanism
        if mech is Mechanism.SIGNAL:
            return self.signal_delivery
        if mech is Mechanism.UIPI:
            return self.uipi_receive_flush
        if mech is Mechanism.XUI_TRACKED_IPI:
            return self.uipi_receive_tracked
        if mech in (Mechanism.XUI_KB_TIMER, Mechanism.XUI_DEVICE):
            return self.timer_receive_tracked
        if mech is Mechanism.POLLING:
            return self.poll_notify
        raise ConfigError(f"no preemption cost for mechanism {mech}")

    def timer_core_capacity(self, interval_cycles: float) -> int:
        """How many workers one rdtsc-spin timer core can notify per interval."""
        per_worker = self.senduipi + self.timer_core_loop_overhead
        return int(interval_cycles // per_worker)

    def scaled(self, **overrides: float) -> "CostModel":
        return replace(self, **overrides)

    @classmethod
    def paper_defaults(cls) -> "CostModel":
        return cls()

    @classmethod
    def from_cycle_model(cls, quick: bool = True) -> "CostModel":
        """Re-derive the interrupt costs from the cycle tier.

        Runs the Figure 4-style characterization on the cycle model (a
        counting-loop workload with periodic interrupts) and replaces the
        interrupt constants with the measured values.  ``quick`` uses a
        shorter run (fewer interrupts averaged).
        """
        from repro.experiments.characterize import measure_interrupt_costs

        measured = measure_interrupt_costs(quick=quick)
        return cls(
            uipi_receive_flush=measured["uipi_receive_flush"],
            uipi_receive_tracked=measured["uipi_receive_tracked"],
            timer_receive_tracked=measured["timer_receive_tracked"],
            uipi_end_to_end=measured["uipi_end_to_end"],
            senduipi=measured["senduipi"],
            clui=measured["clui"],
            stui=measured["stui"],
        )
