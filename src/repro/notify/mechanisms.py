"""Notification mechanism identifiers used across the event tier."""

from __future__ import annotations

from enum import Enum


class Mechanism(Enum):
    """How a core/thread learns about an asynchronous event.

    The evaluation compares these throughout §6:

    - ``POLLING``: busy-spin on shared memory (or device queues).
    - ``PERIODIC_POLL``: poll on an OS interval timer (setitimer).
    - ``SIGNAL``: POSIX signals.
    - ``UIPI``: Intel user IPIs as shipped (flush-based receive).
    - ``XUI_TRACKED_IPI``: UIPI + xUI tracked interrupts.
    - ``XUI_KB_TIMER``: xUI kernel-bypass timer + tracking (§4.3).
    - ``XUI_DEVICE``: xUI interrupt forwarding + tracking (§4.5).
    """

    POLLING = "polling"
    PERIODIC_POLL = "periodic_poll"
    #: mwait-style idling: parks the core on *one* monitored line — the §2
    #: limitation ("only works with a single queue") that HyperPlane [47]
    #: builds an accelerator around and xUI removes.
    MWAIT = "mwait"
    SIGNAL = "signal"
    UIPI = "uipi"
    XUI_TRACKED_IPI = "xui_tracked_ipi"
    XUI_KB_TIMER = "xui_kb_timer"
    XUI_DEVICE = "xui_device"

    @property
    def is_xui(self) -> bool:
        return self in (
            Mechanism.XUI_TRACKED_IPI,
            Mechanism.XUI_KB_TIMER,
            Mechanism.XUI_DEVICE,
        )

    @property
    def needs_timer_core(self) -> bool:
        """Does preemption with this mechanism need a dedicated timer core?

        UIPI/signals have no user-level timer, so runtimes dedicate a core
        (or OS timer thread) as the time source; the xUI KB timer gives
        every core its own (§4.3, Figure 6).
        """
        return self in (Mechanism.UIPI, Mechanism.SIGNAL, Mechanism.XUI_TRACKED_IPI)
