"""Multi-core cycle simulation: cores in lockstep plus the APIC bus.

Cores share a :class:`SharedMemory` (so UPID traffic and polled flags incur
coherence costs) and an inter-APIC message timeline with the calibrated IPI
wire latency.  The system also provides the kernel-ish setup the cycle-tier
experiments need: allocating UPIDs/UITTs (``register_handler`` /
``register_sender``, §3.2), enabling KB timers (§4.3), and registering
device-interrupt forwarding (§4.5).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.common.counters import (
    GLOBAL_COUNTERS,
    batch_engine_enabled,
    fast_engine_enabled,
    macro_engine_enabled,
)
from repro.common.errors import ConfigError, SimulationError
from repro.cpu import batchstep
from repro.cpu.config import SystemConfig
from repro.cpu.core import FAR_FUTURE, NA_BACKOFF_CAP, Core
from repro.cpu.macroop import MacroController
from repro.cpu.cache import SharedMemory
from repro.cpu.delivery import DeliveryStrategy
from repro.cpu.program import Program
from repro.sim.trace import TraceRecorder
from repro.uintr.apic import InterruptKind, LocalApic
from repro.uintr.uitt import UITT
from repro.uintr.upid import UPID, UPID_BYTES

#: Memory region where the "kernel" allocates UPIDs and UITTs.
KERNEL_STRUCTS_BASE = 0x100_0000
#: Default stack base per core (stacks grow down, 64 KiB apart).
STACK_BASE = 0x800_0000
#: Conventional vector used for UIPI notifications (UINV).
UIPI_NOTIFICATION_VECTOR = 0xEC


class MultiCoreSystem:
    """A set of cores stepped in lockstep on a shared global cycle."""

    def __init__(
        self,
        programs: Sequence[Program],
        strategies: Sequence[DeliveryStrategy],
        config: Optional[SystemConfig] = None,
        trace: bool = False,
        trace_max_events: Optional[int] = None,
    ) -> None:
        if len(programs) != len(strategies):
            raise ConfigError("one strategy per program/core is required")
        if not programs:
            raise ConfigError("at least one core is required")
        self.config = config or SystemConfig.sapphire_rapids_like()
        self.cycle = 0
        self.shared = SharedMemory()
        self.trace = TraceRecorder(enabled=trace, max_events=trace_max_events)
        self._timeline: List[Tuple[int, int, Callable[[], None], Optional[int]]] = []
        self._timeline_seq = itertools.count()
        self._alloc_ptr = KERNEL_STRUCTS_BASE

        self.apics: List[LocalApic] = []
        self.cores: List[Core] = []
        for core_id, (program, strategy) in enumerate(zip(programs, strategies)):
            apic = LocalApic(core_id, uipi_notification_vector=UIPI_NOTIFICATION_VECTOR)
            self.apics.append(apic)
            core = Core(
                core_id=core_id,
                program=program,
                config=self.config,
                shared_memory=self.shared,
                apic=apic,
                strategy=strategy,
                send_ipi=self._send_ipi,
                trace=self.trace,
            )
            core.arch_regs[15] = STACK_BASE + core_id * 0x10000  # stack pointer
            self.cores.append(core)

    # ------------------------------------------------------------------
    # Timeline (APIC bus and device events)
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        core_hint: Optional[int] = None,
    ) -> None:
        """Schedule ``callback`` on the inter-core timeline.

        ``core_hint`` names the only core whose state the callback can
        affect (IPIs and device interrupts touch just the destination
        APIC); the batch stepper uses it for targeted invalidation.  Leave
        it ``None`` — the conservative default, every idle core woken —
        for any callback that may touch arbitrary state (scheduled
        faults, tests poking cores directly).
        """
        if delay != delay:  # NaN compares unequal to itself
            raise SimulationError("cannot schedule with a NaN delay")
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(
            self._timeline,
            (self.cycle + delay, next(self._timeline_seq), callback, core_hint),
        )

    def _send_ipi(self, dest_apic_id: int, vector: int) -> None:
        if not 0 <= dest_apic_id < len(self.apics):
            raise SimulationError(f"IPI to unknown APIC {dest_apic_id}")
        apic = self.apics[dest_apic_id]

        def deliver() -> None:
            apic.accept(vector, self.cycle, kind=None)
            self.trace.record(self.cycle, "ipi_arrival", core=dest_apic_id, vector=vector)

        wire_latency = self.config.timing.ipi_wire_latency
        if _obs.enabled:
            _obs.TRACER.complete(
                self.cycle, wire_latency, "ipi.wire", f"apic{dest_apic_id}",
                _obs.CAT_IRQ, vector=vector,
            )
        self.schedule(wire_latency, deliver, core_hint=dest_apic_id)

    def raise_device_interrupt(self, core_id: int, vector: int, delay: int = 0) -> None:
        """A device raises ``vector`` at ``core_id`` after ``delay`` cycles."""
        apic = self.apics[core_id]

        def deliver() -> None:
            apic.accept(vector, self.cycle, kind=InterruptKind.DEVICE)
            self.trace.record(self.cycle, "device_intr", core=core_id, vector=vector)

        self.schedule(delay, deliver, core_hint=core_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        while self._timeline and self._timeline[0][0] <= self.cycle:
            heapq.heappop(self._timeline)[2]()
        for core in self.cores:
            core.step(self.cycle)
        self.cycle += 1

    def run(self, max_cycles: int, until_halted: Optional[Sequence[int]] = None) -> int:
        """Step up to ``max_cycles``; stop early when the given cores halt.

        Returns the number of cycles advanced (stepped or skipped).

        This is the cycle tier's hottest loop; :meth:`step` is inlined and
        the per-cycle lookups hoisted.  ``self.cycle`` stays current while
        timeline callbacks run (they schedule relative to it).

        With the fast engine enabled (default; ``REPRO_FAST=0`` opts out)
        the loop skips cores whose pipelines are provably quiescent
        (``Core.next_activity_cycle``): an idle core is accounted without
        stepping while active cores keep stepping, and when *every* core is
        quiescent the global clock jumps to the earliest of the cores' next
        activity and the timeline head.  Any timeline event (IPIs, device
        interrupts) invalidates every core's cached horizon, since external
        wakeups arrive through the timeline.  Results are byte-identical to
        the naive stepper.
        """
        watch = (
            [self.cores[i] for i in until_halted] if until_halted is not None else None
        )
        start = self.cycle
        cores = self.cores
        timeline = self._timeline
        heappop = heapq.heappop
        stepped = 0
        skipped0 = sum(core.engine_cycles_skipped for core in cores)
        hits0 = sum(core.uop_cache.hits for core in cores)
        misses0 = sum(core.uop_cache.misses for core in cores)
        if not fast_engine_enabled():
            for _ in range(max_cycles):
                if watch is not None and all(core.halted for core in watch):
                    break
                cycle = self.cycle
                while timeline and timeline[0][0] <= cycle:
                    heappop(timeline)[2]()
                for core in cores:
                    if not core.halted:
                        core.step(cycle)
                        stepped += 1
                self.cycle = cycle + 1
        else:
            end = start + max_cycles
            macro_on = macro_engine_enabled()

            def timeline_head() -> Optional[int]:
                return timeline[0][0] if timeline else None

            for core in cores:
                core._next_activity = 0  # conservative: step the first cycle
                if macro_on:
                    if core._macro is None:
                        core._macro = MacroController(core, cores, timeline_head)
                else:
                    core._macro = None
            use_batch = len(cores) > 1 and batch_engine_enabled()
            if use_batch and not batchstep.available():
                GLOBAL_COUNTERS.batch_scalar_fallbacks += 1
                use_batch = False
            if use_batch:
                # Multi-core runs go through the SoA batch stepper
                # (``REPRO_BATCH``): idle cores live in numpy lanes and only
                # the active run list is visited per cycle.  Single-core
                # runs keep the scalar loop below — there is no idle group
                # to vectorize and the loop is already tight.
                stepped = batchstep.run_batched(self, end, watch, macro_on)
                g = GLOBAL_COUNTERS
                g.cycles_stepped += stepped
                g.cycles_skipped += (
                    sum(core.engine_cycles_skipped for core in cores) - skipped0
                )
                g.uop_cache_hits += sum(core.uop_cache.hits for core in cores) - hits0
                g.uop_cache_misses += (
                    sum(core.uop_cache.misses for core in cores) - misses0
                )
                return self.cycle - start
            cycle = start
            jump = 0
            if watch is None or not all(core.halted for core in watch):
                while cycle < end:
                    if timeline and timeline[0][0] <= cycle:
                        while timeline and timeline[0][0] <= cycle:
                            heappop(timeline)[2]()
                        # External wakeups (IPIs, device interrupts) arrive
                        # through the timeline: re-evaluate every core.
                        for core in cores:
                            core._next_activity = 0
                    min_next = FAR_FUTURE
                    for core in cores:
                        if core.halted:
                            continue
                        na = core._next_activity
                        if na > cycle:
                            # Quiescent: accounted lazily via the idle anchor
                            # (a per-cycle ``note_skipped(1)`` call here would
                            # dominate mixed dense/idle runs).
                            if core._idle_anchor < 0:
                                core._idle_anchor = cycle
                            if na < min_next:
                                min_next = na
                            continue
                        anchor = core._idle_anchor
                        if anchor >= 0:
                            core._idle_anchor = -1
                            core.note_skipped(cycle - anchor)
                        mac = core._macro
                        if mac is not None and (mac._scanning or mac._want_arm):
                            jump = mac.on_boundary(cycle, end)
                            if jump:
                                # Replay covered [cycle, cycle + jump) in
                                # O(1); safe only because every other core is
                                # halted (a formation precondition).
                                break
                        core.step(cycle)
                        stepped += 1
                        if core.halted:
                            continue
                        backoff = core._na_backoff
                        if backoff > 0:
                            # Busy streak: step on without re-scanning the
                            # horizon (always safe, just conservative).
                            core._na_backoff = backoff - 1
                            na = cycle + 1
                        else:
                            na = core.next_activity_cycle()
                            if na > cycle + 1:
                                core._na_streak = 0
                            else:
                                streak = core._na_streak
                                if streak < 4 * NA_BACKOFF_CAP:
                                    streak += 1
                                    core._na_streak = streak
                                core._na_backoff = streak >> 2
                        core._next_activity = na
                        if na < min_next:
                            min_next = na
                    if jump:
                        cycle += jump
                        jump = 0
                        self.cycle = cycle
                        continue
                    self.cycle = cycle + 1
                    if watch is not None and all(core.halted for core in watch):
                        break
                    if min_next > cycle + 1:
                        # Everything is quiet: jump to the earliest activity,
                        # capped by the window end and the timeline head.
                        target = min_next if min_next < end else end
                        if timeline:
                            head_time = timeline[0][0]
                            if head_time < target:
                                target = head_time
                        if target > cycle + 1:
                            for core in cores:
                                if not core.halted and core._idle_anchor < 0:
                                    core._idle_anchor = cycle + 1
                            self.cycle = target
                            cycle = target
                            continue
                    cycle += 1
            # Flush outstanding idle windows: the naive stepper accounts
            # every non-halted core through the last executed iteration.
            stop = self.cycle
            for core in cores:
                anchor = core._idle_anchor
                if anchor >= 0:
                    core._idle_anchor = -1
                    if stop > anchor:
                        core.note_skipped(stop - anchor)
        g = GLOBAL_COUNTERS
        g.cycles_stepped += stepped
        g.cycles_skipped += sum(core.engine_cycles_skipped for core in cores) - skipped0
        g.uop_cache_hits += sum(core.uop_cache.hits for core in cores) - hits0
        g.uop_cache_misses += sum(core.uop_cache.misses for core in cores) - misses0
        return self.cycle - start

    # ------------------------------------------------------------------
    # Kernel-ish setup (the §3.2 system calls)
    # ------------------------------------------------------------------

    def _allocate(self, size: int, align: int = 64) -> int:
        self._alloc_ptr = (self._alloc_ptr + align - 1) & ~(align - 1)
        addr = self._alloc_ptr
        self._alloc_ptr += size
        return addr

    def register_handler(self, core_id: int, handler_label: Optional[str] = None) -> int:
        """``register_handler(...)``: allocate a UPID for the thread on
        ``core_id`` and point UINT_Handler at its handler.  Returns the UPID
        address."""
        core = self.cores[core_id]
        program = core.program
        if handler_label is not None:
            handler_index = program.labels[handler_label]
        else:
            handler_index = program.handler_index
        if handler_index is None:
            raise ConfigError(f"core {core_id} program has no interrupt handler")
        upid_addr = self._allocate(UPID_BYTES)
        upid = UPID(self.shared, upid_addr)
        upid.clear()
        upid.set_notification_vector(UIPI_NOTIFICATION_VECTOR)
        upid.set_notification_destination(core_id)
        core.uintr.upid_addr = upid_addr
        core.uintr.handler_index = handler_index
        return upid_addr

    def register_sender(self, sender_core_id: int, receiver_upid_addr: int, user_vector: int) -> int:
        """``register_sender(...)``: add a UITT entry on the sender mapping a
        ``senduipi`` index to the receiver's UPID.  Returns the UITT index."""
        core = self.cores[sender_core_id]
        if core.uintr.uitt_base is None:
            core.uintr.uitt_base = self._allocate(64 * 16)
            core.uitt = UITT(self.shared, core.uintr.uitt_base)
        return core.uitt.append(receiver_upid_addr, user_vector)

    def connect_uipi(
        self, sender_core_id: int, receiver_core_id: int, user_vector: int = 1
    ) -> int:
        """Full UIPI route setup; returns the sender's UITT index."""
        upid_addr = self.register_handler(receiver_core_id)
        return self.register_sender(sender_core_id, upid_addr, user_vector)

    def enable_kb_timer(self, core_id: int, vector: int = 2) -> None:
        """``enable_kb_timer()``: the kernel writes kb_config_MSR (§4.3)."""
        core = self.cores[core_id]
        if core.uintr.handler_index is None:
            if core.program.handler_index is None:
                raise ConfigError(f"core {core_id} program has no interrupt handler")
            core.uintr.handler_index = core.program.handler_index
        core.uintr.kb_timer.enabled = True
        core.uintr.kb_timer.vector = vector

    def enable_forwarding(self, core_id: int, vector: int, user_vector: int = 3) -> None:
        """Register device-interrupt forwarding on ``core_id`` (§4.5) with
        the current thread active (fast path)."""
        core = self.cores[core_id]
        if core.uintr.handler_index is None:
            if core.program.handler_index is None:
                raise ConfigError(f"core {core_id} program has no interrupt handler")
            core.uintr.handler_index = core.program.handler_index
        apic = self.apics[core_id]
        apic.enable_forwarding(vector, user_vector)
        apic.set_active_vectors(apic.forwarding_enabled)
