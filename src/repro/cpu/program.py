"""Programs and the assembler-style builder.

A :class:`Program` is a flat list of instructions plus a label table.  The
program counter of the cycle tier is an *index* into this list; instruction
``i`` occupies byte address ``code_base + 4 * i`` for I-cache purposes.

Programs may designate a *user interrupt handler* entry label; the interrupt
delivery microcode transfers control there and the handler returns with
``uiret`` (§3.3 step 5-7).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.common.errors import ConfigError
from repro.cpu import isa
from repro.cpu.isa import Instruction, Op

#: Byte address of instruction index 0 (arbitrary; shared by all programs).
CODE_BASE = 0x40_0000
#: Encoded instruction size in bytes (for I-cache line behaviour).
INSTR_BYTES = 4


def instruction_address(index: int) -> int:
    """Byte address of the instruction at ``index`` (for the I-cache)."""
    return CODE_BASE + INSTR_BYTES * index


@dataclass
class Program:
    """An executable program for the cycle tier."""

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    handler_label: Optional[str] = None
    entry_label: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ConfigError(f"program {self.name!r} has no instructions")
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ConfigError(f"label {label!r} out of range: {index}")
        if self.handler_label is not None and self.handler_label not in self.labels:
            raise ConfigError(f"handler label {self.handler_label!r} is not defined")
        if self.entry_label is not None and self.entry_label not in self.labels:
            raise ConfigError(f"entry label {self.entry_label!r} is not defined")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def entry_index(self) -> int:
        return self.labels[self.entry_label] if self.entry_label else 0

    @property
    def handler_index(self) -> Optional[int]:
        return self.labels[self.handler_label] if self.handler_label else None

    def at(self, index: int) -> Instruction:
        if not 0 <= index < len(self.instructions):
            raise ConfigError(f"program index out of range: {index}")
        return self.instructions[index]


class ProgramBuilder:
    """Builds a :class:`Program`, resolving labels to indices.

    Usage::

        b = ProgramBuilder("spin")
        b.label("loop")
        b.emit(isa.addi(1, 1, 1))
        b.emit(isa.jmp("loop"))
        program = b.build()
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._handler_label: Optional[str] = None
        self._entry_label: Optional[str] = None

    def __len__(self) -> int:
        return len(self._instructions)

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the next instruction's index."""
        if name in self._labels:
            raise ConfigError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)
        return self

    def emit(self, *instructions: Instruction) -> "ProgramBuilder":
        self._instructions.extend(instructions)
        return self

    def handler(self, label: str) -> "ProgramBuilder":
        """Designate ``label`` as the user interrupt handler entry point."""
        self._handler_label = label
        return self

    def entry(self, label: str) -> "ProgramBuilder":
        self._entry_label = label
        return self

    # ------------------------------------------------------------------
    # Common code fragments
    # ------------------------------------------------------------------

    def emit_default_handler(
        self,
        label: str = "ui_handler",
        body_instructions: int = 4,
        counter_addr: Optional[int] = None,
        scratch: int = 12,
    ) -> "ProgramBuilder":
        """Emit a small user-interrupt handler and register it.

        The handler optionally increments a completion counter in memory
        (used by tests to observe deliveries), does a little ALU work, and
        returns with ``uiret`` — the shape of a minimal preemption handler.
        """
        self.label(label)
        self.handler(label)
        if counter_addr is not None:
            self.emit(isa.movi(scratch, counter_addr))
            self.emit(isa.load(scratch - 1, scratch, 0))
            self.emit(isa.addi(scratch - 1, scratch - 1, 1))
            self.emit(isa.store(scratch - 1, scratch, 0))
        for _ in range(body_instructions):
            self.emit(isa.addi(scratch, scratch, 1))
        self.emit(isa.uiret())
        return self

    def build(self) -> Program:
        resolved: List[Instruction] = []
        for position, instruction in enumerate(self._instructions):
            target = instruction.target
            if isinstance(target, str):
                if target not in self._labels:
                    raise ConfigError(
                        f"instruction {position} references undefined label {target!r}"
                    )
                instruction = replace(instruction, target=self._labels[target])
            resolved.append(instruction)
        return Program(
            instructions=resolved,
            labels=dict(self._labels),
            handler_label=self._handler_label,
            entry_label=self._entry_label,
            name=self.name,
        )
