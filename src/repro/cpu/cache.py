"""Cache hierarchy and shared-memory model for the cycle tier.

Each core owns a private L1I and L1D; all cores share a :class:`SharedMemory`
that provides value storage plus a light-weight coherence directory.  The
directory tracks, per line, which core last wrote it; a read by a different
core pays the ``remote_dirty_latency`` (a cross-core transfer through the
LLC).  This is the behaviour UIPI's UPID traffic and shared-memory polling
depend on: a remote write invalidates the local copy, so the next local read
misses (§2, §4.2 "Cheaper than shared memory notification?").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.cpu.config import CacheParams, MemoryParams


class SetAssociativeCache:
    """An LRU set-associative cache tracking presence only (no data).

    Data values live in :class:`SharedMemory`; the cache decides latency.
    """

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self._line_shift = params.line_bytes.bit_length() - 1
        self._num_sets = params.num_sets
        # Each set is an ordered list of tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def lookup(self, addr: int) -> bool:
        """Check presence and update LRU; fill on miss.  True on hit."""
        line = addr >> self._line_shift
        tags = self._sets[line % self._num_sets]
        if tags and tags[-1] == line:
            # MRU fast path: repeated accesses to the same line (hot loops,
            # streaming) skip the remove/append shuffle, which for the tail
            # entry is a no-op reorder anyway.
            self.hits += 1
            return True
        if line in tags:
            tags.remove(line)
            tags.append(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(tags) >= self.params.associativity:
            tags.pop(0)
        tags.append(line)
        return False

    def contains(self, addr: int) -> bool:
        """Presence check with no LRU update and no fill."""
        line = self.line_of(addr)
        return line in self._sets[line % self._num_sets]

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr``; True if it was present."""
        line = self.line_of(addr)
        tags = self._sets[line % self._num_sets]
        if line in tags:
            tags.remove(line)
            return True
        return False

    def flush(self) -> None:
        for tags in self._sets:
            tags.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class SharedMemory:
    """Word-granular value store plus a line-granular coherence directory.

    Values are 64-bit words keyed by byte address (addresses are expected to
    be 8-byte aligned by convention; unaligned addresses are rounded down).
    """

    LINE_BYTES = 64

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        #: line -> core id of the last writer (None = clean/boot state)
        self._last_writer: Dict[int, Optional[int]] = {}
        #: observers notified on every write: callables (core_id, addr).
        self._write_observers: List = []

    @staticmethod
    def word_addr(addr: int) -> int:
        return addr & ~0x7

    @classmethod
    def line_of(cls, addr: int) -> int:
        return addr // cls.LINE_BYTES

    def read(self, addr: int) -> int:
        return self._words.get(addr & ~0x7, 0)

    def write(self, addr: int, value: int, core_id: Optional[int] = None) -> None:
        self._words[addr & ~0x7] = value
        if core_id is not None:
            self._last_writer[addr // 64] = core_id
        for observer in self._write_observers:
            observer(core_id, addr)

    def snapshot_words(self) -> Tuple[Tuple[int, int], ...]:
        """The current memory image as sorted (addr, value) pairs.

        Used by the result cache to fold a workload's initial memory image
        into its content hash."""
        return tuple(sorted(self._words.items()))

    def add_write_observer(self, observer) -> None:
        """Register ``observer(core_id, addr)`` called on every write."""
        self._write_observers.append(observer)

    def last_writer(self, addr: int) -> Optional[int]:
        return self._last_writer.get(self.line_of(addr))

    def clear_writer(self, addr: int) -> None:
        self._last_writer.pop(self.line_of(addr), None)


class MemoryHierarchy:
    """One core's view of the memory system: L1D + shared levels below.

    ``load``/``store`` return an access latency in cycles and perform the
    value transfer against :class:`SharedMemory`.  Cross-core communication
    costs arise from the directory: reading a line whose last writer is a
    different core forces an L1 miss at ``remote_dirty_latency`` even if a
    stale copy was cached locally.

    The hierarchy is *synchronous*: a memory access's full latency is fixed
    at issue time and carried by the µop's completion entry in the core's
    ``exec_heap``.  The cycle-skipping engine depends on this — with no
    asynchronous memory responses, every future memory event is visible as
    an exec-heap completion time, so ``Core.next_activity_cycle`` needs no
    separate memory-system clause.
    """

    def __init__(
        self,
        core_id: int,
        dcache: CacheParams,
        memory_params: MemoryParams,
        shared: SharedMemory,
        l2: Optional[CacheParams] = None,
    ) -> None:
        self.core_id = core_id
        self.dcache = SetAssociativeCache(dcache)
        self.l2cache = SetAssociativeCache(
            l2
            or CacheParams(
                size_bytes=1024 * 1024,
                associativity=16,
                line_bytes=dcache.line_bytes,
                hit_latency=memory_params.l2_hit_latency,
            )
        )
        self.params = memory_params
        self.shared = shared
        self.remote_misses = 0

    def _miss_latency(self, addr: int) -> int:
        """Latency below L1 for ``addr``.

        A line recently written by another core comes from that core's cache
        via the LLC; otherwise the private L2 decides between an L2 hit and
        a memory access (working sets past the L2 pay DRAM latency — the
        pointer-chase experiments of §3.5/§6.1 depend on this).
        """
        writer = self.shared.last_writer(addr)
        if writer is not None and writer != self.core_id:
            self.remote_misses += 1
            # The transfer also installs the line in our L2.
            self.l2cache.lookup(addr)
            return self.params.remote_dirty_latency
        if self.l2cache.lookup(addr):
            return self.params.l2_hit_latency
        return self.params.dram_latency

    def load(self, addr: int) -> Tuple[int, int]:
        """Return ``(latency_cycles, value)`` for a load of ``addr``."""
        if addr < 0:
            # Wrong-path loads can form garbage addresses; clamp them so they
            # behave like (cacheable) accesses to low memory.
            addr = -addr
        writer = self.shared.last_writer(addr)
        remote_dirty = writer is not None and writer != self.core_id
        if remote_dirty:
            # Remote write invalidated our copy: force a miss, then take
            # ownership of the clean line locally.
            self.dcache.invalidate(addr)
        hit = self.dcache.lookup(addr)
        if hit and not remote_dirty:
            latency = self.dcache.params.hit_latency
        else:
            latency = self.dcache.params.hit_latency + self._miss_latency(addr)
            if remote_dirty:
                # The transfer leaves the line shared/clean; later local
                # reads hit until the remote core writes again.
                self.shared.clear_writer(addr)
        return latency, self.shared.read(addr)

    def store(self, addr: int, value: int) -> int:
        """Perform a store; return its completion latency in cycles."""
        if addr < 0:
            addr = -addr
        writer = self.shared.last_writer(addr)
        remote_dirty = writer is not None and writer != self.core_id
        if remote_dirty:
            self.dcache.invalidate(addr)
        hit = self.dcache.lookup(addr)
        if hit and not remote_dirty:
            latency = self.dcache.params.hit_latency
        else:
            # Write-allocate: fetch ownership (RFO) before writing.
            latency = self.dcache.params.hit_latency + self._miss_latency(addr)
        self.shared.write(addr, value, core_id=self.core_id)
        return latency

    def store_probe(self, addr: int) -> int:
        """Latency phase of a store (RFO/cache fill); the value is written at commit."""
        if addr < 0:
            addr = -addr
        writer = self.shared.last_writer(addr)
        remote_dirty = writer is not None and writer != self.core_id
        if remote_dirty:
            self.dcache.invalidate(addr)
        hit = self.dcache.lookup(addr)
        if hit and not remote_dirty:
            return self.dcache.params.hit_latency
        return self.dcache.params.hit_latency + self._miss_latency(addr)

    def warm(self, addr: int) -> None:
        """Pre-fill the line holding ``addr`` (test/benchmark setup)."""
        self.dcache.lookup(addr)


class InstructionCache:
    """The L1I: presence-only cache with next-line prefetch.

    Sequential code streams through the front-end without repeated miss
    stalls (the prefetcher runs ahead); only redirects to cold targets pay
    the miss.
    """

    PREFETCH_DEGREE = 2

    def __init__(self, params: CacheParams, memory_params: MemoryParams) -> None:
        self.cache = SetAssociativeCache(params)
        self.params = memory_params

    def fetch_latency(self, addr: int) -> int:
        """Latency for a fetch block at ``addr`` (0 extra on an L1I hit)."""
        hit = self.cache.lookup(addr)
        line = self.cache.params.line_bytes
        for ahead in range(1, self.PREFETCH_DEGREE + 1):
            self.cache.lookup(addr + ahead * line)
        return 0 if hit else self.params.l2_hit_latency

    def warm_range(self, start_addr: int, end_addr: int) -> None:
        addr = start_addr
        while addr <= end_addr:
            self.cache.lookup(addr)
            addr += self.cache.params.line_bytes
