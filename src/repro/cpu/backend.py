"""Back-end structures: in-flight micro-ops, functional units, LSQ.

The :class:`UOp` is the unit of everything in flight: program instructions
decode to one µop each (``senduipi`` expands via the MSROM), and interrupt
microcode is injected as µop streams by the front-end.  Each µop carries the
``from_interrupt`` source bit the tracking hardware adds to every ROB entry
(§4.2 "bill of materials").
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.cpu.config import CoreParams
from repro.cpu.isa import (
    DIV_OPS,
    FP_OPS,
    INT_ALU_OPS,
    MUL_OPS,
    Instruction,
    Op,
)

# µop lifecycle states
ST_WAITING = 0  # in ROB, operands or front-end latency outstanding
ST_READY = 1  # eligible for issue
ST_EXECUTING = 2
ST_DONE = 3

# TESTUI is gated to the ROB head (not a stall) so it observes the
# architectural UIF, which CLUI/STUI update at commit.
_SERIALIZING_OPS = frozenset((Op.MSR_WRITE, Op.STUI, Op.TESTUI))
_BRANCH_OPS = frozenset((Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP, Op.CALL, Op.RET))
_COND_BRANCH_OPS = frozenset((Op.BEQ, Op.BNE, Op.BLT, Op.BGE))


def _classify_op(op: Op) -> str:
    if op in INT_ALU_OPS:
        return "int"
    if op in MUL_OPS or op in DIV_OPS:
        return "mul"
    if op in FP_OPS:
        return "fp"
    if op in (Op.LOAD, Op.STORE):
        return "mem"
    if op in _BRANCH_OPS:
        return "branch"
    return "other"


#: Per-op decode metadata, folded into one dict so the µop hot path pays a
#: single enum-hash lookup instead of a chain of frozenset membership tests:
#: ``(is_serializing, is_branch, is_cond_branch, fu_class)``.
OP_META: Dict[Op, tuple] = {
    op: (op in _SERIALIZING_OPS, op in _BRANCH_OPS, op in _COND_BRANCH_OPS, _classify_op(op))
    for op in Op
}


class UOp:
    """One in-flight micro-op (a ROB entry)."""

    __slots__ = (
        "seq",
        "op",
        "pc",
        "instr",
        "semantic",
        "is_micro",
        "from_interrupt",
        "macro_last",
        "dest",
        "src_regs",
        "imm",
        "target",
        "safepoint",
        "chain",
        "extra_latency",
        "pred_taken",
        "pred_target",
        "history_token",
        "ras_snapshot",
        "state",
        "wait_count",
        "producers",
        "dependents",
        "src_values",
        "result",
        "addr",
        "store_value",
        "frontend_ready",
        "complete_cycle",
        "squashed",
        "uitt_index",
        "macro_first",
        "actual_taken",
        "actual_target",
        "is_serializing",
        "is_branch",
        "is_cond_branch",
        "fu_class",
    )

    def __init__(
        self,
        seq: int,
        op: Op,
        pc: int,
        frontend_ready: int,
        instr: Optional[Instruction] = None,
        semantic: str = "",
        is_micro: bool = False,
        from_interrupt: bool = False,
        macro_last: bool = True,
        dest: Optional[int] = None,
        src_regs: tuple = (),
        imm: int = 0,
        target: Optional[int] = None,
        safepoint: bool = False,
        chain: bool = False,
        extra_latency: int = 0,
        uitt_index: int = 0,
        macro_first: bool = True,
    ) -> None:
        self.seq = seq
        self.op = op
        # Classified once at dispatch; read many times per µop on the
        # complete/issue/squash paths.
        meta = OP_META[op]
        self.is_serializing = meta[0]
        self.is_branch = meta[1]
        self.is_cond_branch = meta[2]
        self.fu_class = meta[3]
        self.pc = pc
        self.instr = instr
        self.semantic = semantic
        self.is_micro = is_micro
        self.from_interrupt = from_interrupt
        self.macro_last = macro_last
        self.dest = dest
        self.src_regs = src_regs
        self.imm = imm
        self.target = target
        self.safepoint = safepoint
        self.chain = chain
        self.extra_latency = extra_latency
        self.uitt_index = uitt_index
        # prediction metadata (branches only)
        self.pred_taken = False
        self.pred_target: Optional[int] = None
        self.history_token = 0
        self.ras_snapshot: Optional[List[int]] = None
        # dynamic state
        self.state = ST_WAITING
        self.wait_count = 0
        self.producers: Dict[int, "UOp"] = {}
        self.dependents: List["UOp"] = []
        self.src_values: Dict[int, int] = {}
        self.result: int = 0
        self.addr: Optional[int] = None
        self.store_value: int = 0
        self.frontend_ready = frontend_ready
        self.complete_cycle = -1
        self.squashed = False
        self.macro_first = macro_first
        self.actual_taken = False
        self.actual_target: Optional[int] = None

    def source_value(self, reg: int, arch_regs: List[int]) -> int:
        """Operand value: the in-flight producer's result, or the committed register."""
        producer = self.producers.get(reg)
        if producer is not None:
            return producer.result
        return self.src_values.get(reg, arch_regs[reg])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "µ" if self.is_micro else ""
        return f"<UOp{tag} #{self.seq} {self.op.name} pc={self.pc} st={self.state}>"


class FunctionalUnits:
    """Per-cycle issue-bandwidth limits for each execution-resource class."""

    def __init__(self, params: CoreParams) -> None:
        self.params = params
        self._cycle = -1
        self._used: Dict[str, int] = {}
        self._limits = {
            "int": params.int_alu_units,
            "mul": params.mul_units,
            "fp": params.fp_units,
            "mem": 3,  # 2 load + 1 store ports, pooled
            "branch": 2,
            "other": params.issue_width,
        }
        # Per-op latency resolved once against this core's parameters; the
        # issue hot path reads the table instead of re-deriving per µop.
        self._latency: Dict[Op, int] = {op: self._latency_of(op) for op in Op}

    @staticmethod
    def classify(op: Op) -> str:
        return OP_META[op][3]

    def try_acquire(self, op: Op, cycle: int, unit: Optional[str] = None) -> bool:
        # Keyed on the cycle *value*, not on call count, so the bandwidth
        # table resets correctly when the cycle-skipping engine jumps the
        # clock over quiescent stretches.
        if cycle != self._cycle:
            self._cycle = cycle
            self._used.clear()
        if unit is None:
            unit = OP_META[op][3]
        used = self._used.get(unit, 0)
        if used >= self._limits[unit]:
            return False
        self._used[unit] = used + 1
        return True

    def _latency_of(self, op: Op) -> int:
        params = self.params
        if op in MUL_OPS:
            return params.mul_latency
        if op in DIV_OPS:
            return params.div_latency
        if op is Op.FDIV:
            return params.fp_div_latency
        if op in FP_OPS:
            return params.fp_latency
        return params.int_alu_latency

    def latency(self, op: Op) -> int:
        return self._latency[op]


class LoadStoreQueues:
    """Occupancy tracking plus store-to-load forwarding over in-flight stores."""

    def __init__(self, params: CoreParams) -> None:
        self.params = params
        self.loads: List[UOp] = []
        self.stores: List[UOp] = []

    def has_load_slot(self) -> bool:
        return len(self.loads) < self.params.lq_size

    def has_store_slot(self) -> bool:
        return len(self.stores) < self.params.sq_size

    def add(self, uop: UOp) -> None:
        if uop.op is Op.LOAD:
            if not self.has_load_slot():
                raise SimulationError("load queue overflow")
            self.loads.append(uop)
        elif uop.op is Op.STORE:
            if not self.has_store_slot():
                raise SimulationError("store queue overflow")
            self.stores.append(uop)

    def remove(self, uop: UOp) -> None:
        if uop.op is Op.LOAD and uop in self.loads:
            self.loads.remove(uop)
        elif uop.op is Op.STORE and uop in self.stores:
            self.stores.remove(uop)

    def has_unresolved_older_store(self, load: UOp) -> bool:
        """Any older store whose address is still unknown?  Loads wait for
        those (conservative memory disambiguation, no replay machinery)."""
        for store in self.stores:
            if store.seq < load.seq and store.addr is None and not store.squashed:
                return True
        return False

    def forward_value(self, load: UOp) -> Optional[int]:
        """Youngest older same-word store's value, if its address is known."""
        if load.addr is None:
            return None
        word = load.addr & ~0x7
        best: Optional[UOp] = None
        for store in self.stores:
            if store.seq < load.seq and store.addr is not None and (store.addr & ~0x7) == word:
                if best is None or store.seq > best.seq:
                    best = store
        return best.store_value if best is not None else None

    def drop_squashed(self) -> None:
        self.loads = [u for u in self.loads if not u.squashed]
        self.stores = [u for u in self.stores if not u.squashed]


def squash_penalty_cycles(num_squashed: int, squash_width: int) -> int:
    """Cycles the squash occupies given the per-cycle squash-width limit."""
    if num_squashed <= 0:
        return 0
    return int(math.ceil(num_squashed / squash_width))
