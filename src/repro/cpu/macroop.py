"""Macro-op trace tier (``REPRO_MACRO``): O(1) replay of hot loop bodies.

The cycle-skipping engine (``REPRO_FAST``) wins when cores are quiescent but
is floored by the per-cycle interpreter on dense loops.  This tier closes
that gap with the classic trace-cache move, applied to the *simulator*
rather than the simulated frontend:

1. **Detect** — :class:`repro.cpu.hotness.HotnessTracker` counts committed
   taken backward branches; crossing the threshold nominates a loop.
2. **Record** — at the next cycle boundary the controller snapshots the
   full microarchitectural state (ROB slots, heaps, LSQ, rename map,
   predictor tables, caches, timers) and keeps stepping normally while
   logging every committed uop and every load/store latency.
3. **Match** — at each later boundary it looks for the *shifted repeat* of
   the snapshot: the same pipeline picture with every sequence number
   advanced by ``cc`` (uops committed in the window) and every timestamp by
   ``delta`` (cycles elapsed).  That equivalence — ``sigma`` below — is what
   makes replay sound: if stepping ``delta`` cycles maps state S0 to
   ``sigma(S0)``, stepping another ``delta`` maps ``sigma(S0)`` to
   ``sigma^2(S0)``, and ``n`` periods can be applied as one O(1) update.
4. **Replay** — a functional evaluator re-executes the *architectural*
   loop body (template decode only, no pipeline) to produce the committed
   register/memory write-set per period, while a copy-on-write cache
   overlay proves every load/store latency repeats.  The period count ``n``
   is capped by every notification-visible horizon: run end, the event
   timeline (fault injections, watches), and armed timer deadlines.
5. **Bail** — anything else — a pending interrupt, an armed fault
   interceptor, a latency or branch divergence, another live core — either
   blocks formation or caps ``n``, and the interpreter resumes at the exact
   cycle it would have reached natively.  Delivery semantics, invariant
   probes, and trace timestamps stay bit-identical to the naive engine.

Everything here reads only the core it was handed — no wall clock, no
mutable module globals (detlint PRO104) — so replay is simulation-pure and
deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.counters import GLOBAL_COUNTERS
from repro.cpu.backend import ST_DONE, ST_EXECUTING, ST_WAITING, UOp
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.hotness import HotnessTracker
from repro.cpu.isa import NUM_REGS, Op

MASK64 = (1 << 64) - 1

#: Ops the functional replay evaluator understands.  Anything else in the
#: loop body (serializing ops, microcode, CALL/RET, RDTSC, HALT) blocks
#: formation — those either touch notification state or read the clock.
SUPPORTED_OPS = frozenset(
    (
        Op.ADD,
        Op.FADD,
        Op.SUB,
        Op.MUL,
        Op.FMUL,
        Op.DIV,
        Op.FDIV,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.MOV,
        Op.MOVI,
        Op.LOAD,
        Op.STORE,
        Op.BEQ,
        Op.BNE,
        Op.BLT,
        Op.BGE,
        Op.JMP,
    )
)

_BRANCH_OPS = frozenset((Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP))

#: Boundaries a recording may scan for the shifted repeat before aborting.
MAX_SCAN = 512
#: Consecutive expired scan windows allowed to re-snapshot in place before
#: the controller gives the loop up and waits for hotness again.  A loop
#: still warming its caches is *about* to become periodic — dropping back
#: to hotness accumulation would waste the cycles between windows.
MAX_RESCANS = 3
#: Minimum cycles of timer/timeline headroom required to arm a recording.
MIN_ARM_HEADROOM = 64
#: Absolute cap on periods applied per replay session (runaway backstop).
MAX_PERIODS = 1 << 20

#: Delivery strategies whose idle state is fully captured by an empty
#: ``pending_inventory()`` — the only ones replay may run under.
_REPLAY_SAFE_STRATEGIES = (FlushStrategy, DrainStrategy, TrackedStrategy)

_IDLE = 0
_SCAN = 1


def _signed(value: int) -> int:
    return value - (1 << 64) if value >= (1 << 63) else value


class _UopShot:
    """Immutable picture of one ROB slot, with producers/dependents resolved
    to ROB indices (or committed-window positions for retired producers)."""

    __slots__ = (
        "seq",
        "op",
        "pc",
        "instr",
        "macro_first",
        "macro_last",
        "dest",
        "src_regs",
        "imm",
        "target",
        "safepoint",
        "chain",
        "uitt_index",
        "extra_latency",
        "pred_taken",
        "pred_target",
        "history_token",
        "state",
        "wait_count",
        "frontend_ready",
        "complete_cycle",
        "result",
        "addr",
        "store_value",
        "actual_taken",
        "actual_target",
        "producers",
        "dependents",
    )

    def __init__(self, uop: UOp, index_of: Dict[int, int], seq0: int) -> None:
        self.seq = uop.seq
        self.op = uop.op
        self.pc = uop.pc
        self.instr = uop.instr
        self.macro_first = uop.macro_first
        self.macro_last = uop.macro_last
        self.dest = uop.dest
        self.src_regs = uop.src_regs
        self.imm = uop.imm
        self.target = uop.target
        self.safepoint = uop.safepoint
        self.chain = uop.chain
        self.uitt_index = uop.uitt_index
        self.extra_latency = uop.extra_latency
        self.pred_taken = uop.pred_taken
        self.pred_target = uop.pred_target
        self.history_token = uop.history_token
        self.state = uop.state
        self.wait_count = uop.wait_count
        self.frontend_ready = uop.frontend_ready
        self.complete_cycle = uop.complete_cycle
        self.result = uop.result
        self.addr = uop.addr
        self.store_value = uop.store_value
        self.actual_taken = uop.actual_taken
        self.actual_target = uop.actual_target
        # Only fields the core will still *read* take part in the sigma
        # compare.  Operand values are read once, when execution starts
        # (``UOp.source_value`` call sites), so producer edges are dead for
        # state >= ST_EXECUTING; a producer only ever wakes dependents that
        # are still ST_WAITING (and unsquashed) at completion, so everything
        # else in the dependents list is inert bookkeeping.  Comparing dead
        # edges would demand fetch-phase alignment deep OoO windows (memops)
        # never reach, without adding any soundness.
        # producers: reg -> ("r", rob_index) | ("x", window_position)
        producers: List[Tuple[int, str, int]] = []
        ok = True
        if uop.state < ST_EXECUTING:
            for reg in sorted(uop.producers):
                prod = uop.producers[reg]
                idx = index_of.get(id(prod))
                if idx is not None:
                    producers.append((reg, "r", idx))
                elif prod.state == ST_DONE and not prod.squashed:
                    producers.append((reg, "x", prod.seq - seq0))
                else:
                    ok = False  # squashed leftover — not sigma-comparable
        deps: List[int] = []
        for dep in uop.dependents:
            if dep.squashed or dep.state != ST_WAITING:
                continue  # already woken (or dead): never touched again
            idx = index_of.get(id(dep))
            if idx is None:
                ok = False  # waiting dependent outside the ROB — bail
                break
            deps.append(idx)
        self.producers = tuple(producers) if ok else None
        self.dependents = tuple(sorted(deps))


class _Snapshot:
    """Full boundary picture of one core, taken when a recording is armed."""

    __slots__ = (
        "t0",
        "seq0",
        "seq_next",
        "shots",
        "loads_idx",
        "stores_idx",
        "ready",
        "execq",
        "rename",
        "arch_regs",
        "fetch_pc",
        "iq_count",
        "fetch_stall_until",
        "current_fetch_line",
        "lpcc",
        "conservative_loads",
        "notif_pir",
        "stats",
        "uintr_state",
        "kb_state",
        "apic_timer_state",
        "predictions",
        "mispredictions",
        "gshare_table",
        "gshare_history",
        "btb_tags",
        "btb_targets",
        "ras_stack",
        "icache_sets",
        "icache_hits",
        "icache_misses",
        "uop_sets",
        "uop_hits",
        "uop_misses",
        "remote_misses",
        "apic_ctrs",
        "apic_queue_lens",
        "fingerprint",
    )


def _timer_state(timer) -> Tuple:
    return (
        timer.enabled,
        timer.vector,
        timer.armed,
        timer.periodic,
        timer.deadline,
        timer.period,
    )


def _fingerprint(core) -> Tuple:
    """Cheap per-boundary hash-alike gating the full sigma comparison."""
    rob = core.rob
    head = rob[0] if rob else None
    return (
        core.fetch_pc,
        len(rob),
        core.iq_count,
        head.pc if head is not None else -1,
        head.state if head is not None else -1,
        len(core.ready_heap),
        len(core.exec_heap),
        len(core.lsq.loads),
        len(core.lsq.stores),
        core._current_fetch_line,
    )


def _snapshot_core(core) -> Optional[_Snapshot]:
    """Capture the sigma-comparison baseline, or None if the pipeline holds
    anything the comparison (or the functional evaluator) cannot model."""
    rob = core.rob
    if not rob:
        return None
    seq0 = rob[0].seq
    index_of: Dict[int, int] = {}
    for i, uop in enumerate(rob):
        if uop.seq != seq0 + i:  # non-contiguous: a squash is in flight
            return None
        index_of[id(uop)] = i
    shots: List[_UopShot] = []
    for uop in rob:
        if (
            uop.op not in SUPPORTED_OPS
            or uop.is_micro
            or uop.from_interrupt
            or uop.squashed
            or uop.semantic
            or uop.instr is None
            or uop.ras_snapshot is not None
            or uop.src_values
        ):
            return None
        shot = _UopShot(uop, index_of, seq0)
        if shot.producers is None:
            return None
        shots.append(shot)
    rename: List[Tuple[int, int]] = []
    for reg in sorted(core.reg_producer):
        idx = index_of.get(id(core.reg_producer[reg]))
        if idx is None:
            return None
        rename.append((reg, idx))
    # Shadows are stored in sorted (t, seq) order, not raw heapq array
    # order: the internal array layout depends on push/pop history, but
    # heappop only ever sees the sorted order, so that is all sigma needs.
    ready: List[Tuple[int, int, int]] = []
    for t, seq, uop in core.ready_heap:
        idx = index_of.get(id(uop))
        if idx is None:
            return None
        ready.append((t, seq, idx))
    ready.sort()
    execq: List[Tuple[int, int, int]] = []
    for t, seq, uop in core.exec_heap:
        idx = index_of.get(id(uop))
        if idx is None:
            return None
        execq.append((t, seq, idx))
    execq.sort()
    loads_idx = tuple(index_of.get(id(u), -1) for u in core.lsq.loads)
    stores_idx = tuple(index_of.get(id(u), -1) for u in core.lsq.stores)
    if -1 in loads_idx or -1 in stores_idx:
        return None

    snap = _Snapshot()
    snap.t0 = core.cycle
    snap.seq0 = seq0
    snap.seq_next = core._seq
    snap.shots = shots
    snap.loads_idx = loads_idx
    snap.stores_idx = stores_idx
    snap.ready = ready
    snap.execq = execq
    snap.rename = tuple(rename)
    snap.arch_regs = list(core.arch_regs)
    snap.fetch_pc = core.fetch_pc
    snap.iq_count = core.iq_count
    snap.fetch_stall_until = core.fetch_stall_until
    snap.current_fetch_line = core._current_fetch_line
    snap.lpcc = core.last_program_commit_cycle
    snap.conservative_loads = frozenset(core._conservative_loads)
    snap.notif_pir = core._notif_pir
    snap.stats = dict(core.stats.__dict__)
    u = core.uintr
    snap.uintr_state = (
        u.uif,
        u.uirr,
        u.handler_index,
        u.upid_addr,
        u.uitt_base,
        u.safepoint_mode,
        u.ui_return_pc,
        u.in_handler,
    )
    snap.kb_state = _timer_state(u.kb_timer)
    snap.apic_timer_state = _timer_state(core.apic_timer)
    pred = core.predictor
    snap.predictions = pred.predictions
    snap.mispredictions = pred.mispredictions
    snap.gshare_table = list(pred.gshare._table)
    snap.gshare_history = pred.gshare._history
    snap.btb_tags = list(pred.btb._tags)
    snap.btb_targets = list(pred.btb._targets)
    snap.ras_stack = list(pred.ras._stack)
    icache = core.icache.cache
    snap.icache_sets = [list(tags) for tags in icache._sets]
    snap.icache_hits = icache.hits
    snap.icache_misses = icache.misses
    uc = core.uop_cache
    snap.uop_sets = [list(tags) for tags in uc._sets]
    snap.uop_hits = uc.hits
    snap.uop_misses = uc.misses
    snap.remote_misses = core.hierarchy.remote_misses
    apic = core.apic
    snap.apic_ctrs = (
        apic.accepted,
        apic.forwarded_fast,
        apic.forwarded_slow,
        apic.faults_dropped,
        apic.user_queued,
    )
    snap.apic_queue_lens = (len(apic.slow_path_queue), len(apic.kernel_queue))
    snap.fingerprint = _fingerprint(core)
    return snap


#: CoreStats fields that must not move at all inside a recording window.
_ZERO_DELTA_STATS = (
    "squashed_uops",
    "branch_squashes",
    "memory_order_squashes",
    "serialize_stall_cycles",
    "interrupts_delivered",
    "interrupt_flushes",
    "committed_handler_instructions",
)


class _Match:
    """A confirmed sigma-periodic window: S1 == shift(S0) by (cc, delta)."""

    __slots__ = (
        "cc",
        "delta",
        "ext_fixups",
        "pred_delta",
        "icache_hits_d",
        "icache_misses_d",
        "uop_hits_d",
        "uop_misses_d",
        "fsu_shift",
    )


def _sigma_match(core, snap: _Snapshot, commits: Sequence[UOp]) -> Optional[_Match]:
    """Does the core, at this boundary, equal the snapshot shifted by the
    recording window?  Returns the match descriptor, or None."""
    cc = len(commits)
    if cc < 1:
        return None
    delta = core.cycle - snap.t0  # both ends measured pre-step at a boundary
    if delta < 1:
        return None
    seq0 = snap.seq0
    rob = core.rob
    shots = snap.shots
    if len(rob) != len(shots):
        return None
    # Commit-stream contiguity: exactly the snapshot's oldest cc uops
    # retired, in order, with nothing squashed in between.
    for i, uop in enumerate(commits):
        if uop.seq != seq0 + i:
            return None
    # Core scalars that must be byte-equal (loop phase) or trivially clean.
    if (
        core.halted
        or core.wait_reason is not None
        or core.delivery_state is not None
        or core.current_interrupt is not None
        or core.interrupt_path
        or core._last_chain_uop is not None
        or core._trace_resume_pending
        or core._serialize_until != -1
        or core.inject_pos < len(core.inject_queue)
        or core.macro_pos < len(core.macro_queue)
        or core.apic._pending
        or core.fetch_pc != snap.fetch_pc
        or core.iq_count != snap.iq_count
        or core._current_fetch_line != snap.current_fetch_line
        or core._notif_pir != snap.notif_pir
        or core._seq != snap.seq_next + cc
        or frozenset(core._conservative_loads) != snap.conservative_loads
    ):
        return None
    # fetch_stall_until: either inert on both ends, or shifted with time.
    fsu = core.fetch_stall_until
    if fsu == snap.fetch_stall_until + delta:
        fsu_shift = True
    elif fsu == snap.fetch_stall_until and fsu <= snap.t0:
        fsu_shift = False
    else:
        return None
    # Stats deltas: pure loop progress, no squashes, no interrupt activity.
    stats = core.stats.__dict__
    s0 = snap.stats
    if (
        stats["cycles"] - s0["cycles"] != delta
        or stats["committed_uops"] - s0["committed_uops"] != cc
        or stats["fetched_uops"] - s0["fetched_uops"] != cc
        or stats["committed_instructions"] - s0["committed_instructions"] != cc
    ):
        return None
    for name in _ZERO_DELTA_STATS:
        if stats[name] != s0[name]:
            return None
    if core.last_program_commit_cycle != snap.lpcc + delta:
        return None
    # Notification state: identical, and quiet.
    u = core.uintr
    if (
        u.in_handler
        or (
            u.uif,
            u.uirr,
            u.handler_index,
            u.upid_addr,
            u.uitt_base,
            u.safepoint_mode,
            u.ui_return_pc,
            u.in_handler,
        )
        != snap.uintr_state
        or _timer_state(u.kb_timer) != snap.kb_state
        or _timer_state(core.apic_timer) != snap.apic_timer_state
    ):
        return None
    apic = core.apic
    if (
        apic.accepted,
        apic.forwarded_fast,
        apic.forwarded_slow,
        apic.faults_dropped,
        apic.user_queued,
    ) != snap.apic_ctrs or (
        len(apic.slow_path_queue),
        len(apic.kernel_queue),
    ) != snap.apic_queue_lens:
        return None
    if core.hierarchy.remote_misses != snap.remote_misses:
        return None
    # Front-end structures: byte-equal (steady loops saturate them).
    pred = core.predictor
    if (
        pred.mispredictions != snap.mispredictions
        or pred.gshare._history != snap.gshare_history
        or pred.gshare._table != snap.gshare_table
        or pred.btb._tags != snap.btb_tags
        or pred.btb._targets != snap.btb_targets
        or pred.ras._stack != snap.ras_stack
    ):
        return None
    icache = core.icache.cache
    uc = core.uop_cache
    if icache._sets != snap.icache_sets or uc._sets != snap.uop_sets:
        return None
    # Per-slot structural comparison against the shifted snapshot.
    index_of: Dict[int, int] = {}
    for i, uop in enumerate(rob):
        if uop.seq != seq0 + cc + i:
            return None
        index_of[id(uop)] = i
    ext_fixups: List[Tuple[UOp, int]] = []
    for i, live in enumerate(rob):
        shot = shots[i]
        if (
            live.op is not shot.op
            or live.pc != shot.pc
            or live.instr is not shot.instr
            or live.is_micro
            or live.from_interrupt
            or live.squashed
            or live.semantic
            or live.src_values
            or live.ras_snapshot is not None
            or live.macro_first != shot.macro_first
            or live.macro_last != shot.macro_last
            or live.dest != shot.dest
            or live.src_regs != shot.src_regs
            or live.imm != shot.imm
            or live.target != shot.target
            or live.safepoint != shot.safepoint
            or live.chain != shot.chain
            or live.uitt_index != shot.uitt_index
            or live.extra_latency != shot.extra_latency
            or live.pred_taken != shot.pred_taken
            or live.pred_target != shot.pred_target
            or live.history_token != shot.history_token
            or live.state != shot.state
        ):
            return None
        # Mirror _UopShot's liveness rules: frontend_ready/wait_count are
        # read only while ST_WAITING (the wakeup path), producers only
        # until execution starts, dependents only while still waiting.
        # complete_cycle is inert after its exec_heap push (the heap entry
        # carries its own copy and is compared, shifted, below).
        if live.state == ST_WAITING:
            if live.wait_count != shot.wait_count:
                return None
            # Wakeup uses max(cycle, frontend_ready): a frontend_ready
            # already in the past (on both sides) can never win that max
            # again, so only future values must line up shifted.
            if live.frontend_ready != shot.frontend_ready + delta and not (
                shot.frontend_ready <= snap.t0 and live.frontend_ready <= core.cycle
            ):
                return None
        prods: List[Tuple[int, str, int]] = []
        if live.state < ST_EXECUTING:
            for reg in sorted(live.producers):
                prod = live.producers[reg]
                idx = index_of.get(id(prod))
                if idx is not None:
                    prods.append((reg, "r", idx))
                elif prod.state == ST_DONE and not prod.squashed:
                    q1 = prod.seq - seq0
                    if not 0 <= q1 < cc:
                        return None
                    prods.append((reg, "x", q1 - cc))
                    ext_fixups.append((prod, q1))
                else:
                    return None
        if tuple(prods) != shot.producers:
            return None
        deps: List[int] = []
        for dep in live.dependents:
            if dep.squashed or dep.state != ST_WAITING:
                continue
            idx = index_of.get(id(dep))
            if idx is None:
                return None
            deps.append(idx)
        if tuple(sorted(deps)) != shot.dependents:
            return None
    # Rename map, LSQ membership, scheduler heaps: same picture, shifted.
    rename: List[Tuple[int, int]] = []
    for reg in sorted(core.reg_producer):
        idx = index_of.get(id(core.reg_producer[reg]))
        if idx is None:
            return None
        rename.append((reg, idx))
    if tuple(rename) != snap.rename:
        return None
    if tuple(
        index_of.get(id(uq), -1) for uq in core.lsq.loads
    ) != snap.loads_idx or tuple(
        index_of.get(id(uq), -1) for uq in core.lsq.stores
    ) != snap.stores_idx:
        return None
    # Heaps are compared in sorted (t, seq) order — the only order heappop
    # can observe (the internal array layout depends on push/pop history).
    # Entries already eligible at the snapshot (t0 <= snap.t0) are lagging
    # backlog: their exact timestamp is dead — pops compare it against the
    # current cycle, which it is already below on both sides — but their
    # *relative* order still decides bandwidth-limited pop order, and the
    # pairwise sorted zip enforces exactly that.  Future entries must shift.
    for heap, shadow in ((core.ready_heap, snap.ready), (core.exec_heap, snap.execq)):
        if len(heap) != len(shadow):
            return None
        for (t, seq, uop), (t0, s0q, idx) in zip(sorted(heap), shadow):
            if seq != s0q + cc or uop is not rob[idx]:
                return None
            if t != t0 + delta and not (t0 <= snap.t0 and t <= core.cycle):
                return None

    match = _Match()
    match.cc = cc
    match.delta = delta
    match.ext_fixups = ext_fixups
    match.pred_delta = pred.predictions - snap.predictions
    match.icache_hits_d = icache.hits - snap.icache_hits
    match.icache_misses_d = icache.misses - snap.icache_misses
    match.uop_hits_d = uc.hits - snap.uop_hits
    match.uop_misses_d = uc.misses - snap.uop_misses
    match.fsu_shift = fsu_shift
    return match


def _build_template(commits: Sequence[UOp]) -> Optional[List[Tuple]]:
    """Decode the committed window into (op, dest, src_regs, imm, target, pc)
    tuples — the loop body B.  None if anything is beyond the evaluator."""
    body: List[Tuple] = []
    for uop in commits:
        if (
            uop.op not in SUPPORTED_OPS
            or uop.is_micro
            or uop.from_interrupt
            or uop.semantic
            or not (uop.macro_first and uop.macro_last)
        ):
            return None
        op = uop.op
        nsrc = len(uop.src_regs)
        if op is Op.STORE:
            if nsrc < 2:
                return None
        elif op in (Op.MOV, Op.SHL, Op.SHR, Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            if nsrc < 1:
                return None
        body.append((uop.op, uop.dest, uop.src_regs, uop.imm, uop.target, uop.pc))
    return body


def _evaluate(
    body: Sequence[Tuple],
    regs0: Sequence[int],
    horizon: int,
    shared_read,
) -> Tuple[List[Tuple], List[List[int]], int]:
    """Architecturally execute positions ``[0, horizon)`` of the unrolled
    loop, decoding position ``p`` from ``body[p % cc]``.

    Returns ``(records, regs_at, f)`` where ``records[p]`` is
    ``(result, addr, store_value, taken)``, ``regs_at[m]`` is the register
    file after ``m`` full periods, and ``f`` is the first position whose
    behaviour leaves the recorded loop (a branch off the body, or a load
    aliasing an earlier replayed store) — ``horizon`` if none diverge.
    Loads read live shared memory; the alias guard makes that sound by
    fencing ``f`` below any position that could observe a deferred store.
    """
    cc = len(body)
    regs = list(regs0)
    records: List[Tuple] = []
    regs_at: List[List[int]] = [list(regs)]
    store_words: set = set()
    p = 0
    while p < horizon:
        op, dest, src_regs, imm, target, pc = body[p % cc]
        result = 0
        addr = None
        store_value = 0
        taken = False
        if op is Op.LOAD:
            if src_regs:
                addr = (regs[src_regs[0]] + imm) & MASK64
            else:
                addr = imm
            if (addr & ~0x7) in store_words:
                return records, regs_at, p
            result = shared_read(addr)
        elif op is Op.STORE:
            if src_regs:
                addr = (regs[src_regs[0]] + imm) & MASK64
            else:
                addr = imm
            store_value = regs[src_regs[1]]
            store_words.add(addr & ~0x7)
        elif op is Op.JMP:
            taken = True
        elif op in _BRANCH_OPS:
            lhs = regs[src_regs[0]]
            rhs = regs[src_regs[1]] if len(src_regs) > 1 else imm
            if op is Op.BEQ:
                taken = lhs == rhs
            elif op is Op.BNE:
                taken = lhs != rhs
            elif op is Op.BLT:
                taken = _signed(lhs) < _signed(rhs)
            else:  # BGE
                taken = _signed(lhs) >= _signed(rhs)
        elif op is Op.MOVI:
            result = imm & MASK64
        elif op is Op.MOV:
            result = regs[src_regs[0]]
        elif op is Op.SHL:
            result = (regs[src_regs[0]] << (imm & 63)) & MASK64
        elif op is Op.SHR:
            result = (regs[src_regs[0]] & MASK64) >> (imm & 63)
        else:
            a = regs[src_regs[0]] if src_regs else 0
            b = regs[src_regs[1]] if len(src_regs) > 1 else imm
            if op in (Op.ADD, Op.FADD):
                result = (a + b) & MASK64
            elif op is Op.SUB:
                result = (a - b) & MASK64
            elif op in (Op.MUL, Op.FMUL):
                result = (a * b) & MASK64
            elif op in (Op.DIV, Op.FDIV):
                result = (a // b) & MASK64 if b else 0
            elif op is Op.AND:
                result = a & b
            elif op is Op.OR:
                result = a | b
            else:  # XOR
                result = (a ^ b) & MASK64
        records.append((result, addr, store_value, taken))
        if dest is not None:
            regs[dest] = result & MASK64
        # Control-flow guard: the implied successor must stay on the body.
        next_pc = target if taken else pc + 1
        if next_pc != body[(p + 1) % cc][5]:
            return records, regs_at, p
        p += 1
        if p % cc == 0:
            regs_at.append(list(regs))
    return records, regs_at, horizon


def _values_ok(u, rec: Tuple, op) -> bool:
    """Do a ROB slot's data fields agree with the functional record for its
    position?  (For snapshots `u` is a :class:`_UopShot` — same field names.)"""
    result, addr, store_value, taken = rec
    if op in _BRANCH_OPS:
        # Predicted direction must equal the functional outcome no matter
        # the state, else a squash is pending inside the replay window.
        if u.pred_taken != taken or (taken and u.pred_target != u.target):
            return False
    if u.state >= ST_EXECUTING:
        if op is Op.LOAD:
            return u.addr == addr and u.result == result
        if op is Op.STORE:
            return u.addr == addr and u.store_value == store_value
        if op in _BRANCH_OPS:
            return u.actual_taken == taken and u.actual_target == u.target
        return u.result == result
    return (
        u.result == 0
        and u.addr is None
        and u.store_value == 0
        and not u.actual_taken
        and u.actual_target is None
    )


class _CacheOverlay:
    """Copy-on-write shadow of one :class:`SetAssociativeCache`.

    Replay probes run the exact ``lookup`` algorithm (MRU fast path, LRU
    shuffle, fill-with-evict) against lazily copied sets, so nothing touches
    the real cache until every probed period has matched the template."""

    __slots__ = ("cache", "_copies", "hits", "misses")

    def __init__(self, cache) -> None:
        self.cache = cache
        self._copies: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int) -> bool:
        cache = self.cache
        line = addr >> cache._line_shift
        index = line % cache._num_sets
        tags = self._copies.get(index)
        if tags is None:
            tags = list(cache._sets[index])
            self._copies[index] = tags
        if tags and tags[-1] == line:
            self.hits += 1
            return True
        if line in tags:
            tags.remove(line)
            tags.append(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(tags) >= cache.params.associativity:
            tags.pop(0)
        tags.append(line)
        return False

    def flush_into_real(self) -> None:
        cache = self.cache
        sets = cache._sets
        for index in sorted(self._copies):
            sets[index] = self._copies[index]
        cache.hits += self.hits
        cache.misses += self.misses


def _probe_periods(core, mem_template, records, cc: int, n: int):
    """Prove the template's load/store latencies repeat for ``n`` periods.

    Returns ``(n_ok, dcache_overlay, l2_overlay)`` — ``n_ok`` may be smaller
    than requested if some period diverges (overlays are rebuilt so they
    cover exactly the validated periods); ``(0, None, None)`` if even the
    first period fails."""
    hierarchy = core.hierarchy
    shared = core.shared
    core_id = core.core_id
    hit_latency = hierarchy.dcache.params.hit_latency
    l2_hit = hierarchy.params.l2_hit_latency
    dram = hierarchy.params.dram_latency
    while n >= 1:
        dcache_ov = _CacheOverlay(hierarchy.dcache)
        l2_ov = _CacheOverlay(hierarchy.l2cache)
        completed = n
        for m in range(n):
            base = (m + 1) * cc
            good = True
            for pos, latency in mem_template:
                addr = records[pos + base][1]
                writer = shared.last_writer(addr)
                if writer is not None and writer != core_id:
                    good = False  # cross-core line: let the interpreter pay
                    break
                if dcache_ov.lookup(addr):
                    lat = hit_latency
                elif l2_ov.lookup(addr):
                    lat = hit_latency + l2_hit
                else:
                    lat = hit_latency + dram
                if lat != latency:
                    good = False
                    break
            if not good:
                completed = m
                break
        if completed == n:
            return n, dcache_ov, l2_ov
        n = completed  # rebuild overlays for the validated prefix only
    return 0, None, None


def _eligible(core, cores) -> bool:
    """Is this core in a state where a recording could ever replay safely?

    Everything notification-visible must be quiet: no other live cores (a
    remote store could land mid-window), no pending or in-flight interrupt
    work, no armed fault interceptor, no invariant write-observers, no
    microcode, and a delivery strategy whose idle state is fully described
    by an empty ``pending_inventory()``."""
    for other in cores:
        if other is not core and not other.halted:
            return False
    strategy = core.strategy
    return (
        not core.halted
        and core.wait_reason is None
        and core.delivery_state is None
        and core.current_interrupt is None
        and not core.interrupt_path
        and not core.uintr.in_handler
        and not core.apic._pending
        and not core.apic.slow_path_queue
        and core.apic.fault_interceptor is None
        and core.inject_pos >= len(core.inject_queue)
        and core.macro_pos >= len(core.macro_queue)
        and core._serialize_until < 0
        and isinstance(strategy, _REPLAY_SAFE_STRATEGIES)
        and not strategy.pending_inventory()
        and not core.shared._write_observers
    )


class MacroController:
    """Per-core driver of the detect → record → match → replay loop.

    Installed on ``core._macro`` by the multi-core fast path when
    ``REPRO_MACRO`` is enabled; ``on_boundary`` is called once per core per
    cycle boundary and returns the number of cycles replay just covered
    (0 when the interpreter should simply step)."""

    __slots__ = (
        "core",
        "cores",
        "hotness",
        "_timeline_peek",
        "_scanning",
        "_want_arm",
        "_scan_deadline",
        "_rescans",
        "_snap",
        "_commits",
        "_mem_log",
    )

    def __init__(self, core, cores, timeline_peek=None) -> None:
        self.core = core
        self.cores = cores
        self.hotness = HotnessTracker()
        self._timeline_peek = timeline_peek
        self._scanning = False
        self._want_arm = False
        self._scan_deadline = 0
        self._rescans = 0
        self._snap: Optional[_Snapshot] = None
        self._commits: List[UOp] = []
        self._mem_log: List[Tuple] = []

    # -- hooks from Core ------------------------------------------------
    def note_backedge(self, pc: int) -> None:
        if not self._scanning and self.hotness.note_backedge(pc) is not None:
            self._want_arm = True

    def commit_log(self) -> List[UOp]:
        return self._commits

    # -- the boundary hook ----------------------------------------------
    def on_boundary(self, cycle: int, end: int) -> int:
        """Called pre-step at each cycle boundary; returns replayed cycles."""
        if self._scanning:
            core = self.core
            snap = self._snap
            if (
                core.halted
                or core.apic._pending
                or core.wait_reason is not None
                or core.delivery_state is not None
                or core.stats.squashed_uops != snap.stats["squashed_uops"]
            ):
                self._abort_form()
                return 0
            if cycle > self._scan_deadline:
                self._expire_scan(cycle)
                return 0
            if _fingerprint(core) != snap.fingerprint:
                return 0
            match = _sigma_match(core, snap, self._commits)
            if match is None:
                return 0
            return self._replay(match, cycle, end)
        if self._want_arm:
            self._want_arm = False
            self._try_arm(cycle)
        return 0

    # -- internals -------------------------------------------------------
    def _timeline_head(self) -> Optional[int]:
        peek = self._timeline_peek
        return peek() if peek is not None else None

    def _reset(self) -> None:
        self._scanning = False
        self._rescans = 0
        self._snap = None
        self.core._macro_rec = None
        self._commits.clear()
        self._mem_log.clear()
        self.hotness.reset()

    def _abort_form(self) -> None:
        GLOBAL_COUNTERS.macro_form_aborts += 1
        self._reset()

    def _expire_scan(self, cycle: int) -> None:
        """Scan window expired without a repeat — often the loop is still
        warming caches, and the *next* snapshot will be the one that
        recurs.  Re-arm with a fresh snapshot right away (bounded) rather
        than falling all the way back to hotness accumulation: the loop
        did not get any less hot."""
        GLOBAL_COUNTERS.macro_form_aborts += 1
        rescans = self._rescans
        self._reset()
        if rescans < MAX_RESCANS:
            self._try_arm(cycle)
            if self._scanning:
                self._rescans = rescans + 1

    def _try_arm(self, cycle: int) -> None:
        core = self.core
        if not _eligible(core, self.cores):
            self.hotness.reset()
            return
        for timer in (core.uintr.kb_timer, core.apic_timer):
            if timer.armed:
                fire = timer.next_fire_cycle()
                if fire is not None and fire - cycle < MIN_ARM_HEADROOM:
                    self.hotness.reset()
                    return
        head = self._timeline_head()
        if head is not None and head - cycle < MIN_ARM_HEADROOM:
            self.hotness.reset()
            return
        snap = _snapshot_core(core)
        if snap is None:
            GLOBAL_COUNTERS.macro_form_aborts += 1  # snapshot refused
            self.hotness.reset()
            return
        self._snap = snap
        self._commits.clear()
        self._mem_log.clear()
        core._macro_rec = self._mem_log
        self._scanning = True
        self._scan_deadline = cycle + MAX_SCAN

    def _replay(self, match: _Match, cycle: int, end: int) -> int:
        core = self.core
        snap = self._snap
        cc = match.cc
        delta = match.delta
        rob_len = len(core.rob)

        # Period budget from every notification-visible horizon.  Landing
        # exactly on a horizon cycle is safe: the event fires there natively.
        n_bound = (end - cycle) // delta
        limited_by_event = False
        if n_bound > MAX_PERIODS:
            n_bound = MAX_PERIODS
        head = self._timeline_head()
        if head is not None:
            bound = (head - cycle) // delta
            if bound < n_bound:
                n_bound = bound
                limited_by_event = True
        for timer in (core.uintr.kb_timer, core.apic_timer):
            if timer.armed:
                fire = timer.next_fire_cycle()
                if fire is not None:
                    bound = (fire - cycle) // delta
                    if bound < n_bound:
                        n_bound = bound
                        limited_by_event = True
        if n_bound < 1:
            GLOBAL_COUNTERS.macro_bail_event += 1
            self._abort_form()
            return 0

        body = _build_template(self._commits)
        if body is None:
            self._abort_form()
            return 0
        horizon = (n_bound + 1) * cc + rob_len
        records, regs_at, f = _evaluate(
            body, snap.arch_regs, horizon, core.shared.read
        )
        # The recorded window itself must be reproducible: the evaluator's
        # registers after one period must equal the live register file.
        if f < cc + rob_len or regs_at[1] != core.arch_regs:
            self._abort_form()
            return 0
        # Memory template: position-resolved accesses with fixed latencies.
        mem_template: List[Tuple[int, int]] = []
        ok = True
        for seq, is_load, latency, forwarded, addr in self._mem_log:
            pos = seq - snap.seq0
            if forwarded or pos < 0 or pos >= cc + rob_len:
                ok = False
                break
            expected = Op.LOAD if is_load else Op.STORE
            if body[pos % cc][0] is not expected or records[pos][1] != addr:
                ok = False
                break
            mem_template.append((pos, latency))
        if not ok:
            self._abort_form()
            return 0
        # Every in-flight value (snapshot and live ends) must agree with the
        # functional stream at its window position.
        shots = snap.shots
        for i, live in enumerate(core.rob):
            op = shots[i].op
            if not _values_ok(shots[i], records[i], op) or not _values_ok(
                live, records[cc + i], op
            ):
                GLOBAL_COUNTERS.macro_form_aborts += 1
                self._reset()
                return 0
        GLOBAL_COUNTERS.macro_formations += 1

        if f < horizon:
            n_func = (f - rob_len) // cc - 1
        else:
            n_func = n_bound
        n = n_bound if n_bound < n_func else n_func
        if n < 1:
            GLOBAL_COUNTERS.macro_bail_divergence += 1
            self._reset()
            return 0
        n_ok, dcache_ov, l2_ov = _probe_periods(core, mem_template, records, cc, n)
        if n_ok < 1:
            GLOBAL_COUNTERS.macro_bail_divergence += 1
            self._reset()
            return 0
        if n_func < n_bound or n_ok < n:
            GLOBAL_COUNTERS.macro_bail_divergence += 1
        elif limited_by_event:
            GLOBAL_COUNTERS.macro_bail_event += 1
        else:
            GLOBAL_COUNTERS.macro_bail_horizon += 1
        n = n_ok

        self._apply(match, records, regs_at, body, n, dcache_ov, l2_ov)
        GLOBAL_COUNTERS.macro_replays += 1
        GLOBAL_COUNTERS.macro_replayed_periods += n
        GLOBAL_COUNTERS.macro_replayed_cycles += n * delta
        self._reset()
        return n * delta

    def _apply(self, match, records, regs_at, body, n, dcache_ov, l2_ov) -> None:
        """Jump the core from S1 to sigma^n(S1) in place."""
        core = self.core
        snap = self._snap
        cc = match.cc
        shift_cycles = n * match.delta
        shift_seq = n * cc
        # Architectural registers and the committed store write-set.
        core.arch_regs[:] = regs_at[n + 1]
        store_slots = [j for j in range(cc) if body[j][0] is Op.STORE]
        if store_slots:
            shared = core.shared
            core_id = core.core_id
            for m in range(1, n + 1):
                base = m * cc
                for j in store_slots:
                    rec = records[base + j]
                    shared.write(rec[1], rec[2] & MASK64, core_id=core_id)
        # Model counters: n more windows' worth of deltas.
        stats = core.stats.__dict__
        s0 = snap.stats
        for name in s0:
            stats[name] += (stats[name] - s0[name]) * n
        core.cycle += shift_cycles
        core._seq += shift_seq
        core.last_program_commit_cycle += shift_cycles
        if match.fsu_shift:
            core.fetch_stall_until += shift_cycles
        core.predictor.predictions += match.pred_delta * n
        icache = core.icache.cache
        icache.hits += match.icache_hits_d * n
        icache.misses += match.icache_misses_d * n
        uc = core.uop_cache
        uc.hits += match.uop_hits_d * n
        uc.misses += match.uop_misses_d * n
        # In-flight uops: shift timestamps/sequence, refresh data fields from
        # the functional stream at their new window positions.
        base = (n + 1) * cc
        for i, uop in enumerate(core.rob):
            uop.seq += shift_seq
            uop.frontend_ready += shift_cycles
            if uop.complete_cycle != -1:
                uop.complete_cycle += shift_cycles
            if uop.state >= ST_EXECUTING:
                result, addr, store_value, taken = records[base + i]
                op = uop.op
                if op is Op.LOAD:
                    uop.addr = addr
                    uop.result = result
                elif op is Op.STORE:
                    uop.addr = addr
                    uop.store_value = store_value
                elif op in _BRANCH_OPS:
                    uop.actual_taken = taken
                else:
                    uop.result = result
        for prod, q1 in match.ext_fixups:
            prod.result = records[q1 + shift_seq][0]
        core.ready_heap[:] = [
            (t + shift_cycles, s + shift_seq, u) for (t, s, u) in core.ready_heap
        ]
        core.exec_heap[:] = [
            (t + shift_cycles, s + shift_seq, u) for (t, s, u) in core.exec_heap
        ]
        dcache_ov.flush_into_real()
        l2_ov.flush_into_real()

