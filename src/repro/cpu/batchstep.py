"""Numpy-vectorized multi-core batch stepper (``REPRO_BATCH``).

The scalar fast loop in :meth:`MultiCoreSystem.run` visits *every* core at
*every* cycle, even when most of them are provably quiescent — with 16
cores and one busy sender that is 15 python-level horizon checks per cycle
that never do anything.  This module groups homogeneous quiescent cores
into struct-of-arrays numpy state and advances the whole group together
between notification-visible horizons:

* ``na`` — per-core quiescence horizon (``Core.next_activity_cycle``),
  ``FAR_FUTURE`` while a core is actively stepping or halted.  The group
  clock jump is a single vectorized ``min`` over this lane.
* ``anchor`` — first cycle of the current idle window (-1 while active);
  idle accounting is applied in bulk (``Core.note_skipped``) only when a
  core wakes, exactly like the scalar fast loop's lazy idle anchors.
* ``fetch_pc`` / ``rob_occ`` / ``serialize`` / ``kb_deadline`` /
  ``apic_deadline`` — per-pipeline-stage mirrors of the idle lanes,
  refreshed on demand in :meth:`BatchScheduler.lane_snapshot` (a parked
  core is frozen, so a lazy sample equals a park-time sample);
  diagnostics for the metrics registry and the tests (the authoritative
  state stays on the ``Core`` objects).

Only the *idle* side is vectorized: any core whose state diverges from the
batchable fast path — pending user interrupts, an armed fault interceptor,
a macro-op scan/arm in progress — never enters the idle group and keeps
stepping through the existing scalar :meth:`Core.step`, which is the
fallback the equality contract leans on (``note_skipped`` reproduces the
full effect of stepping a provably-quiescent cycle — the stall counters
*and* the ready-heap re-deferrals naive's issue stage would have made —
so batch and scalar runs are byte-identical).

Wakeups arrive three ways, mirroring the scalar loop's invalidation rules:

* a core's own horizon comes due (vectorized ``na <= cycle`` scan);
* a timeline event with a core hint (IPIs and device interrupts name their
  destination APIC) wakes just that core — *targeted invalidation*;
* a hint-less timeline event (scheduled faults may mutate any core) wakes
  every idle core — the scalar loop's conservative full invalidation.

This module is simulation-pure (detlint PRO104): it reads only the state
it is handed and keeps all mutable bookkeeping on the scheduler object.
Numpy is optional — :func:`available` gates dispatch and
``MultiCoreSystem.run`` falls back to the scalar fast loop without it.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop
from typing import List, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

from repro.common.counters import GLOBAL_COUNTERS
from repro.cpu.core import FAR_FUTURE

HAVE_NUMPY = _np is not None


def available() -> bool:
    """Can the batch stepper run?  (numpy importable)"""
    return _np is not None


def _divergent(core) -> bool:
    """May ``core`` enter the idle group, or must it stay on scalar step?

    Conservative by construction: a deliverable pending user interrupt, an
    armed fault interceptor, or a macro-op scan/arm in progress keeps the
    core on the per-cycle scalar path.  Extra stepping is results-invariant
    (the fast-engine contract), so this can only trade speed for safety.
    The pending check mirrors :meth:`Core.next_activity_cycle`'s own
    delivery clause — a *masked* pending interrupt (uif clear, or delivery
    already in flight) cannot act before the proven horizon, so it may
    park; a deliverable one must keep stepping.
    """
    if core.apic._pending and core.uintr.uif and core.delivery_state is None:
        return True
    if core.apic.fault_interceptor is not None:
        return True
    mac = core._macro
    if mac is not None and (mac._scanning or mac._want_arm):
        return True
    return False


class BatchScheduler:
    """Struct-of-arrays idle-group state for one ``MultiCoreSystem`` run."""

    __slots__ = (
        "system",
        "cores",
        "n",
        "na",
        "anchor",
        "fetch_pc",
        "rob_occ",
        "serialize",
        "kb_deadline",
        "apic_deadline",
        "idle_min",
        "run_list",
        "in_run",
    )

    def __init__(self, system) -> None:
        cores = system.cores
        n = len(cores)
        self.system = system
        self.cores = cores
        self.n = n
        #: Quiescence horizon per core; FAR_FUTURE = active or halted.
        self.na = _np.full(n, FAR_FUTURE, dtype=_np.int64)
        #: Idle-window start per core; -1 = active (accounting not owed).
        self.anchor = _np.full(n, -1, dtype=_np.int64)
        #: Pipeline-stage mirrors, sampled at idle transitions.
        self.fetch_pc = _np.zeros(n, dtype=_np.int64)
        self.rob_occ = _np.zeros(n, dtype=_np.int64)
        self.serialize = _np.zeros(n, dtype=bool)
        self.kb_deadline = _np.full(n, FAR_FUTURE, dtype=_np.int64)
        self.apic_deadline = _np.full(n, FAR_FUTURE, dtype=_np.int64)
        #: Cached min of ``na`` (exact: updated on transition, recomputed
        #: on wake).
        self.idle_min = FAR_FUTURE
        #: Sorted ids of actively-stepping cores (ascending: the scalar
        #: loop steps cores in id order and the batch loop must match).
        self.run_list: List[int] = [i for i, c in enumerate(cores) if not c.halted]
        self.in_run = bytearray(n)
        for i in self.run_list:
            self.in_run[i] = 1

    # -- idle-group membership -------------------------------------------

    def _park(self, i: int, core, cycle: int, nxt: int) -> None:
        """Move core ``i`` into the idle group until ``nxt``.

        The scalar loop would observe ``na > cycle`` on its next visit and
        open the anchor at ``cycle + 1`` (either in the per-core scan or
        the group-jump path); parking at transition time plants the same
        anchor, so the eventual ``note_skipped`` amounts are identical.
        """
        self.in_run[i] = 0
        self.na[i] = nxt
        self.anchor[i] = cycle + 1
        if nxt < self.idle_min:
            self.idle_min = nxt
        GLOBAL_COUNTERS.batch_idle_transitions += 1

    def _wake(self, i: int, cycle: int) -> None:
        """Flush core ``i``'s idle window and put it back on the run list."""
        if self.in_run[i]:
            return
        core = self.cores[i]
        if core.halted:
            return
        anchor = int(self.anchor[i])
        if anchor >= 0:
            self.anchor[i] = -1
            if cycle > anchor:
                core.note_skipped(cycle - anchor)
        self.na[i] = FAR_FUTURE
        insort(self.run_list, i)
        self.in_run[i] = 1

    def _recompute_idle_min(self) -> None:
        self.idle_min = int(self.na.min()) if self.n else FAR_FUTURE

    def _wake_due(self, cycle: int) -> None:
        """Wake every idle core whose horizon is due at ``cycle``."""
        due = _np.nonzero(self.na <= cycle)[0]
        for i in due:
            self._wake(int(i), cycle)
        GLOBAL_COUNTERS.batch_wakeups += len(due)
        self._recompute_idle_min()

    def _wake_all(self, cycle: int) -> None:
        idle = _np.nonzero(self.na < FAR_FUTURE)[0]
        for i in idle:
            self._wake(int(i), cycle)
        self.idle_min = FAR_FUTURE

    def flush_anchors(self, stop: int) -> None:
        """End-of-run: account every open idle window through ``stop``."""
        open_idle = _np.nonzero(self.anchor >= 0)[0]
        for i in open_idle:
            core = self.cores[int(i)]
            anchor = int(self.anchor[i])
            self.anchor[i] = -1
            if stop > anchor:
                core.note_skipped(stop - anchor)

    def lane_snapshot(self) -> dict:
        """Diagnostic view of the SoA lanes (tests and metrics poke this).

        The pipeline-stage mirrors are refreshed here, not in ``_park`` — a
        parked core is frozen (nothing mutates its state until it wakes),
        so sampling at snapshot time reads exactly the values the core
        parked with, and the per-transition hot path stays free of the
        sampling cost.
        """
        for i in range(self.n):
            if self.anchor[i] < 0:
                continue
            core = self.cores[i]
            self.fetch_pc[i] = core.fetch_pc
            self.rob_occ[i] = len(core.rob)
            self.serialize[i] = core._serialize_until >= 0
            kb = core.uintr.kb_timer
            fire = kb.next_fire_cycle() if kb.armed else None
            self.kb_deadline[i] = fire if fire is not None else FAR_FUTURE
            timer = core.apic_timer
            fire = timer.next_fire_cycle() if timer.armed else None
            self.apic_deadline[i] = fire if fire is not None else FAR_FUTURE
        return {
            "na": self.na.tolist(),
            "anchor": self.anchor.tolist(),
            "fetch_pc": self.fetch_pc.tolist(),
            "rob_occ": self.rob_occ.tolist(),
            "serialize": self.serialize.tolist(),
            "kb_deadline": self.kb_deadline.tolist(),
            "apic_deadline": self.apic_deadline.tolist(),
            "run_list": list(self.run_list),
        }


def run_batched(
    system,
    end: int,
    watch: Optional[Sequence],
    macro_on: bool,
) -> int:
    """The batch main loop; returns the number of core-cycles stepped.

    Drop-in replacement for the scalar fast branch of
    :meth:`MultiCoreSystem.run`: same timeline-drain ordering, same idle
    accounting, same macro-op boundary hook, same watch/halt semantics —
    the only difference is *which* cores get visited each cycle (the run
    list instead of all of them) and how the group clock jump target is
    computed (a vectorized ``min`` over the idle lane).
    """
    sched = BatchScheduler(system)
    cores = sched.cores
    run_list = sched.run_list
    timeline = system._timeline
    g = GLOBAL_COUNTERS
    g.batch_runs += 1
    stepped = 0
    cycle = system.cycle
    jump = 0
    if watch is None or not all(core.halted for core in watch):
        while cycle < end:
            if timeline and timeline[0][0] <= cycle:
                wake_all = False
                hints: List[int] = []
                while timeline and timeline[0][0] <= cycle:
                    entry = heappop(timeline)
                    entry[2]()
                    hint = entry[3]
                    if hint is None:
                        wake_all = True
                    else:
                        hints.append(hint)
                if wake_all:
                    # A hint-less event may have touched any core: the
                    # scalar loop re-evaluates everyone, so wake everyone.
                    g.batch_full_invalidations += 1
                    sched._wake_all(cycle)
                else:
                    g.batch_targeted_invalidations += len(hints)
                    for i in hints:
                        sched._wake(i, cycle)
                    sched._recompute_idle_min()
            if sched.idle_min <= cycle:
                sched._wake_due(cycle)
            if run_list:
                survivors: List[int] = []
                for pos, i in enumerate(run_list):
                    core = cores[i]
                    mac = core._macro
                    if mac is not None and (mac._scanning or mac._want_arm):
                        jump = mac.on_boundary(cycle, end)
                        if jump:
                            # Replay covered [cycle, cycle + jump) in O(1);
                            # formation requires every other core halted,
                            # so the rest of the run list keeps its state.
                            survivors.extend(run_list[pos:])
                            break
                    core.step(cycle)
                    stepped += 1
                    if core.halted:
                        sched.in_run[i] = 0
                        continue
                    # No backoff here, unlike the scalar loop: there the
                    # horizon scan is the per-visit cost worth amortising,
                    # but for the batch loop a parked core costs nothing,
                    # while every backoff cycle is a full (expensive)
                    # ``step`` through a provably-stalled pipeline.  Park
                    # at the first opportunity instead.
                    nxt = core.next_activity_cycle()
                    if nxt > cycle + 1:
                        if _divergent(core):
                            g.batch_divergence_blocks += 1
                            survivors.append(i)
                        else:
                            sched._park(i, core, cycle, nxt)
                    else:
                        survivors.append(i)
                run_list[:] = survivors
            if jump:
                cycle += jump
                jump = 0
                system.cycle = cycle
                continue
            system.cycle = cycle + 1
            if watch is not None and all(core.halted for core in watch):
                break
            if not run_list:
                # Group clock jump: every live core is in the idle lane.
                target = sched.idle_min if sched.idle_min < end else end
                if timeline:
                    head_time = timeline[0][0]
                    if head_time < target:
                        target = head_time
                if target > cycle + 1:
                    g.batch_group_jumps += 1
                    g.batch_cycles_jumped += target - (cycle + 1)
                    system.cycle = target
                    cycle = target
                    continue
            cycle += 1
    # Flush outstanding idle windows: the naive stepper accounts every
    # non-halted core through the last executed iteration.
    sched.flush_anchors(system.cycle)
    return stepped
