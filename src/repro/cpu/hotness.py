"""Hot-block detection for the macro-op trace tier (``REPRO_MACRO``).

The detector counts *committed, taken, backward* conditional branches per
branch PC — the classic trace-cache heuristic: a taken backward branch marks
a loop back-edge, and a back-edge that commits ``HOT_THRESHOLD`` times
without the counters being reset identifies a steady-state loop body worth
promoting to a macro-op (see ``repro.cpu.macroop``).

Counting happens at *commit* (never on the speculative path), so wrong-path
back-edges cannot arm the recorder.  The tracker is deliberately free of any
wall-clock or global state: its only inputs are the branch PCs the core
feeds it, keeping recording/replay simulation-pure (detlint PRO104).
"""

from __future__ import annotations

from typing import Dict, Optional

#: Committed back-edge executions before a loop is considered hot.
HOT_THRESHOLD = 64
#: Counter-table bound; a full table is reset wholesale (cheap and rare).
MAX_TRACKED_PCS = 256


class HotnessTracker:
    """Per-core committed back-edge counters with a hotness threshold."""

    __slots__ = ("threshold", "_counts")

    def __init__(self, threshold: int = HOT_THRESHOLD) -> None:
        self.threshold = threshold
        self._counts: Dict[int, int] = {}

    def note_backedge(self, pc: int) -> Optional[int]:
        """Count one committed taken backward branch at ``pc``.

        Returns ``pc`` when the branch just crossed the hotness threshold
        (the caller should try to arm a recording), else ``None``.
        """
        counts = self._counts
        count = counts.get(pc, 0) + 1
        if count >= self.threshold:
            counts.clear()
            return pc
        if count == 1 and len(counts) >= MAX_TRACKED_PCS:
            counts.clear()
        counts[pc] = count
        return None

    def reset(self) -> None:
        """Forget all counts (after a formation attempt, bail, or replay)."""
        self._counts.clear()
