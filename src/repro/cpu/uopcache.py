"""The decoded micro-op cache (DSB) and loop-stream path (§4.4).

Modern Intel front-ends often bypass the decoders: recently decoded micro-ops
are served from a micro-op cache (and very hot loops from the loop stream
detector).  §4.4 calls out the interaction with hardware safepoints: "we add
a bit to the encoding of each micro-op to indicate whether it is a
safepoint", so safepoint-mode delivery still recognizes safepoints when
instructions never pass through the decoders.

The model: a small set-associative structure keyed by program index whose
entries are the *decoded* form — (dest, sources, immediate, target, and the
safepoint bit).  Hits shorten the effective front-end depth (fewer pipeline
stages between fetch and issue); misses decode normally and fill the cache.
The safepoint bit is stored in the entry, exercised by the safepoint tests
regardless of which path fetched the instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.cpu.isa import Instruction, Op


@dataclass(frozen=True, slots=True)
class UopCacheEntry:
    """One cached decoded micro-op (the 'encoding' of §4.4, with its
    safepoint bit).

    The entry is the *full* decoded template: everything
    ``Core._dispatch_instruction`` needs to instantiate a µop — operation,
    register slots, immediate, branch target, extra issue latency, and the
    safepoint bit — so a hit skips re-deriving the decoded form entirely and
    builds the µop by cheap copy.
    """

    pc: int
    dest: Optional[int]
    src_regs: Tuple[int, ...]
    imm: int
    target: Optional[int]
    safepoint: bool
    op_name: str
    #: The operation itself (op_name is kept for display/back-compat).
    op: Optional[Op] = None
    #: Extra issue latency baked into the decoded form (e.g. the stui stall).
    extra_latency: int = 0


class UopCache:
    """Set-associative cache of decoded micro-ops, indexed by program PC."""

    __slots__ = ("num_sets", "ways", "hit_depth_bonus", "_sets", "hits", "misses")

    def __init__(self, sets: int = 64, ways: int = 8, hit_depth_bonus: int = 4) -> None:
        if sets <= 0 or ways <= 0:
            raise ConfigError("uop cache geometry must be positive")
        if hit_depth_bonus < 0:
            raise ConfigError("hit_depth_bonus must be non-negative")
        self.num_sets = sets
        self.ways = ways
        #: Front-end stages skipped on a hit (decode/complex-decode stages).
        self.hit_depth_bonus = hit_depth_bonus
        self._sets: List[List[UopCacheEntry]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, pc: int) -> List[UopCacheEntry]:
        return self._sets[pc % self.num_sets]

    def lookup(self, pc: int) -> Optional[UopCacheEntry]:
        """Serve the decoded form of ``pc`` if cached (LRU update)."""
        entries = self._sets[pc % self.num_sets]
        if entries:
            # Hot loops re-fetch the same PC back to back: the MRU entry sits
            # at the tail, so serve it without the pop/append LRU shuffle.
            entry = entries[-1]
            if entry.pc == pc:
                self.hits += 1
                return entry
        for index, entry in enumerate(entries):
            if entry.pc == pc:
                entries.append(entries.pop(index))
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def fill(
        self, pc: int, instruction: Instruction, dest, src_regs, extra_latency: int = 0
    ) -> UopCacheEntry:
        """Insert the decoded form of ``instruction`` (called on the decode
        path); carries the safepoint prefix into the cached encoding."""
        entry = UopCacheEntry(
            pc=pc,
            dest=dest,
            src_regs=tuple(src_regs),
            imm=instruction.imm,
            target=instruction.target if isinstance(instruction.target, int) else None,
            safepoint=instruction.safepoint,
            op_name=instruction.op.name,
            op=instruction.op,
            extra_latency=extra_latency,
        )
        entries = self._set_for(pc)
        entries[:] = [e for e in entries if e.pc != pc]
        if len(entries) >= self.ways:
            entries.pop(0)
        entries.append(entry)
        return entry

    def invalidate_all(self) -> None:
        for entries in self._sets:
            entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
