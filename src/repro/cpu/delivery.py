"""Interrupt delivery strategies: flush, drain, and tracking (§3.5, §4.2).

*Flush* is what Sapphire Rapids does for UIPI: squash everything in flight,
redirect to the interrupt microcode — minimum time-to-handler, maximum lost
work, plus a refill penalty.

*Drain* is gem5's legacy model (§5.2): stop fetching, let the pipeline empty,
then inject — no lost work, but latency scales with what is in flight (and
gem5 historically added a fixed 13-cycle pad, reproduced here as
``extra_pad``).

*Tracking* is the xUI contribution: inject the interrupt microcode at the
front-end without squashing, mark injected micro-ops with the ROB source bit,
and re-inject after a misspeculation squash until the first interrupt
micro-op commits.  With safepoint mode enabled (§4.4) injection additionally
waits for a safepoint-prefixed instruction.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.common.errors import SimulationError
from repro.cpu.backend import UOp, squash_penalty_cycles
from repro.uintr.apic import PendingInterrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core


class DeliveryStrategy:
    """Base class: hooks the core calls each cycle and on pipeline events."""

    name = "base"
    #: When False, the core calls :meth:`on_cycle` only while its APIC has a
    #: pending interrupt.  A strategy may set this to False iff its
    #: ``on_cycle`` is a pure no-op without pending interrupts; the default
    #: (True) keeps ad-hoc subclasses polled every cycle.
    always_poll = True

    def __init__(self) -> None:
        self.core: Optional["Core"] = None

    def attach(self, core: "Core") -> None:
        self.core = core

    def cache_fingerprint(self) -> tuple:
        """Stable identity for result-cache keys (see ``repro.perf.cache``).

        Subclasses with behaviour-affecting parameters must extend this
        tuple, or distinct configurations would collide on one cache entry.
        """
        return (type(self).__qualname__, self.name)

    # -- hooks -----------------------------------------------------------
    def on_cycle(self) -> None:
        """Called at the top of every core cycle."""

    def try_inject_at_boundary(self) -> bool:
        """Called by fetch at each instruction boundary; True if microcode
        injection started (fetch should re-enter its loop)."""
        return False

    def on_squash(self, new_fetch_pc: int, squashed_interrupt_path: bool) -> None:
        """Called after any branch-misprediction squash."""

    def on_commit(self, uop: UOp) -> None:
        """Called for every committed µop."""

    def on_drain_wait(self) -> None:
        """Called each cycle while fetch is stopped in the drain state."""

    def next_activity_cycle(self) -> Optional[int]:
        """Earliest cycle this strategy may act on its own, for the
        cycle-skipping engine (see ``Core.next_activity_cycle``).

        ``None`` means "never, except when an interrupt is pending" (the
        core checks pending deliverability separately).  The base class
        conservatively returns ``cycle + 1`` — unknown subclasses may do
        arbitrary per-cycle work, so skipping is disabled until a strategy
        explicitly opts in by overriding this.
        """
        return self.core.cycle + 1

    def pending_inventory(self) -> tuple:
        """Interrupts this strategy holds privately (taken from the APIC but
        not yet injected).  The invariant checker's exactly-once delivery
        accounting sums these; strategies that stage interrupts must report
        them or held interrupts would look lost."""
        return ()

    # -- common helpers ----------------------------------------------------
    def _deliverable(self) -> bool:
        core = self.core
        return (
            core is not None
            and core.delivery_state is None
            and core.uintr.uif
            and core.apic.has_pending()
            and not core.halted
        )


class FlushStrategy(DeliveryStrategy):
    """Squash all in-flight work, then inject the interrupt microcode."""

    name = "flush"
    always_poll = False  # on_cycle is a no-op without a pending interrupt

    def next_activity_cycle(self) -> Optional[int]:
        return None  # acts only on pending interrupts (checked by the core)

    def on_cycle(self) -> None:
        core = self.core
        if not self._deliverable():
            return
        # Interrupts are accepted only at macro-instruction boundaries: wait
        # until the ROB head is the first µop of its macro.
        if core.rob and not core.rob[0].macro_first:
            return
        pending = core.apic.take()
        resume_pc, num_squashed = core.flush_all()
        core.stats.interrupt_flushes += 1
        core.trace.record(
            core.cycle, "flush_start", core=core.core_id, squashed=num_squashed
        )
        refill = (
            squash_penalty_cycles(num_squashed, core.params.squash_width)
            + core.timing.flush_refill_latency
        )
        core.inject_interrupt(pending, next_pc=resume_pc, refill_stall=refill)


class DrainStrategy(DeliveryStrategy):
    """Stop fetch, retire everything in flight, then inject.

    ``extra_pad`` reproduces gem5's fixed post-drain pad (§5.2: "a fixed 13
    cycles was artificially added after each drain").
    """

    name = "drain"
    #: Explicit (PRO101): on_cycle does real work while idle (it *starts*
    #: the drain), so the core must poll it every cycle.
    always_poll = True

    def __init__(self, extra_pad: int = 0) -> None:
        super().__init__()
        self.extra_pad = extra_pad
        self._pending: Optional[PendingInterrupt] = None

    def cache_fingerprint(self) -> tuple:
        return super().cache_fingerprint() + (self.extra_pad,)

    def pending_inventory(self) -> tuple:
        return (self._pending,) if self._pending is not None else ()

    def next_activity_cycle(self) -> Optional[int]:
        # While draining, injection triggers the cycle after the ROB empties;
        # commits only happen in stepped cycles, so re-evaluation after each
        # step keeps this exact.  With an empty ROB the injection is imminent.
        if self._pending is not None and not self.core.rob:
            return self.core.cycle + 1
        return None

    def on_cycle(self) -> None:
        core = self.core
        if self._pending is not None:
            if not core.rob:
                pending, self._pending = self._pending, None
                core.trace.record(core.cycle, "drain_complete", core=core.core_id)
                core.inject_interrupt(pending, next_pc=core.fetch_pc, refill_stall=self.extra_pad)
            return
        if not self._deliverable():
            return
        self._pending = core.apic.take()
        core.wait_reason = "drain"
        core.trace.record(core.cycle, "drain_start", core=core.core_id, inflight=len(core.rob))

    def on_squash(self, new_fetch_pc: int, squashed_interrupt_path: bool) -> None:
        # A mispredict resolved while draining: keep fetch stopped (the
        # squash handler cleared wait_reason) until the pipeline is empty.
        if self._pending is not None:
            self.core.wait_reason = "drain"


class TrackedStrategy(DeliveryStrategy):
    """xUI tracked interrupts (§4.2): inject without squashing, re-inject
    after misspeculation recovery until the first interrupt µop commits."""

    name = "tracked"
    always_poll = False  # on_cycle only stages pending interrupts

    def __init__(self) -> None:
        super().__init__()
        self._staged: Optional[PendingInterrupt] = None
        self._awaiting_safepoint = False
        self._first_committed = False

    def pending_inventory(self) -> tuple:
        return (self._staged,) if self._staged is not None else ()

    def next_activity_cycle(self) -> Optional[int]:
        # A staged interrupt may inject at any fetched instruction boundary
        # (safepoint-gated); step through that window.
        if self._staged is not None:
            return self.core.cycle + 1
        return None

    def on_cycle(self) -> None:
        core = self.core
        if self._staged is not None or not self._deliverable():
            return
        self._staged = core.apic.take()
        self._awaiting_safepoint = core.uintr.safepoint_mode
        core.trace.record(
            core.cycle, "tracked_accept", core=core.core_id, intr_kind=self._staged.kind.value
        )

    def try_inject_at_boundary(self) -> bool:
        core = self.core
        if self._staged is None:
            return False
        if core.delivery_state is not None or not core.uintr.uif:
            return False
        next_pc = core.fetch_pc
        if self._awaiting_safepoint:
            # Checks the micro-op cache's safepoint bit when the decoded
            # form is served from an optimized front-end path (§4.4).
            if not core.safepoint_at(next_pc):
                return False
        pending, self._staged = self._staged, None
        self._first_committed = False
        core.inject_interrupt(pending, next_pc=next_pc)
        return True

    def on_squash(self, new_fetch_pc: int, squashed_interrupt_path: bool) -> None:
        core = self.core
        if core.delivery_state != "inflight":
            return
        if self._first_committed or not squashed_interrupt_path:
            return
        # The injected stream was lost to misspeculation recovery before any
        # of it committed: re-stage it.  With safepoint mode on, the
        # safepoint we injected at was on the wrong path — resume normal
        # execution until the next safepoint (§4.4).
        pending = core.current_interrupt
        if pending is None:
            raise SimulationError("tracked re-injection with no in-flight interrupt")
        core.delivery_state = None
        core.current_interrupt = None
        core.trace.record(core.cycle, "tracked_reinject", core=core.core_id)
        self._staged = pending
        self._awaiting_safepoint = core.uintr.safepoint_mode

    def on_commit(self, uop: UOp) -> None:
        if uop.from_interrupt and self.core.delivery_state == "inflight":
            self._first_committed = True
