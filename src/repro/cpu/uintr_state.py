"""Per-core user-interrupt architectural state (registers/MSRs).

Collects the receiver-side architectural registers UIPI and xUI add to a
core: the user-interrupt flag (UIF), the user interrupt request register
(UIRR), the handler address register (UINT_Handler), the current thread's
UPID pointer, the UITT base, the safepoint-mode flag MSR (§4.4), and the
KB-timer MSRs (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common import bitfield
from repro.common.errors import ConfigError, ProtocolError


@dataclass(slots=True)
class KBTimerState:
    """The kernel-bypass timer's architectural state (§4.3).

    ``kb_config_MSR``: the kernel enables the timer and assigns its vector.
    ``set_timer(cycles, mode)``: user-level arm; one-shot mode interprets
    ``cycles`` as an absolute deadline, periodic mode as a period.
    ``kb_timer_state_MSR``: read by the kernel on context switch to save
    (deadline, vector, period, mode).
    """

    enabled: bool = False
    vector: int = 0
    armed: bool = False
    periodic: bool = False
    deadline: float = 0.0
    period: float = 0.0

    def arm_oneshot(self, deadline: float) -> None:
        if not self.enabled:
            raise ProtocolError("set_timer with KB timer disabled (enable_kb_timer first)")
        self.armed = True
        self.periodic = False
        self.deadline = deadline
        self.period = 0.0

    def arm_periodic(self, period: float, now: float) -> None:
        if not self.enabled:
            raise ProtocolError("set_timer with KB timer disabled (enable_kb_timer first)")
        if period <= 0:
            raise ConfigError(f"timer period must be positive, got {period}")
        self.armed = True
        self.periodic = True
        self.period = period
        self.deadline = now + period

    def disarm(self) -> None:
        self.armed = False

    def check_fire(self, now: float) -> bool:
        """True if the timer fires at ``now``; advances periodic deadlines."""
        if not (self.enabled and self.armed) or now < self.deadline:
            return False
        if self.periodic:
            # Advance past `now` so a delayed check does not burst-fire.
            while self.deadline <= now:
                self.deadline += self.period
        else:
            self.armed = False
        return True

    def next_fire_cycle(self) -> Optional[int]:
        """The earliest integer cycle at which :meth:`check_fire` returns
        True, or None when the timer cannot fire on its own.

        Used by the cycle-skipping engine: a quiescent core may jump the
        clock, but never past an armed timer's deadline.
        """
        if not (self.enabled and self.armed):
            return None
        return -int(-self.deadline // 1)  # ceil for float deadlines

    def save(self) -> "KBTimerState":
        """Snapshot for context switch (kernel reads kb_timer_state_MSR)."""
        return KBTimerState(
            enabled=self.enabled,
            vector=self.vector,
            armed=self.armed,
            periodic=self.periodic,
            deadline=self.deadline,
            period=self.period,
        )

    def restore(self, saved: "KBTimerState") -> None:
        self.enabled = saved.enabled
        self.vector = saved.vector
        self.armed = saved.armed
        self.periodic = saved.periodic
        self.deadline = saved.deadline
        self.period = saved.period


@dataclass(slots=True)
class UserInterruptFile:
    """The per-core user-interrupt register file."""

    #: UIF — user interrupts deliverable when True (stui sets, clui clears).
    uif: bool = True
    #: UIRR — pending user vectors latched by notification processing.
    uirr: int = 0
    #: UINT_Handler — program index of the registered user handler.
    handler_index: Optional[int] = None
    #: Current thread's UPID address (notification processing reads it).
    upid_addr: Optional[int] = None
    #: UITT base address for senduipi lookups.
    uitt_base: Optional[int] = None
    #: Safepoint-mode flag MSR (§4.4): deliver only at safepoint instructions.
    safepoint_mode: bool = False
    #: KB-timer MSRs (§4.3).
    kb_timer: KBTimerState = field(default_factory=KBTimerState)
    #: Return state consumed by uiret (shadow of the stack pushes).
    ui_return_pc: Optional[int] = None
    #: True between delivery and uiret commit.
    in_handler: bool = False

    def latch_uirr(self, pir: int) -> None:
        self.uirr |= pir

    def take_uirr_vector(self) -> int:
        """Pop the lowest pending vector from UIRR (delivery microcode)."""
        vector = bitfield.lowest_set_bit(self.uirr)
        if vector >= 0:
            self.uirr = bitfield.clear_bit(self.uirr, vector)
        return vector
